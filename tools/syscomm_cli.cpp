/**
 * @file
 * syscomm-cli — command-line client for syscommd.
 *
 * Speaks the line-JSON protocol (docs/protocol.md) over a Unix or TCP
 * socket and prints the daemon's response line to stdout, so shell
 * pipelines (and the CI daemon smoke job) can drive a daemon without
 * any other tooling:
 *
 *   syscomm-cli gen-ring-sweep --cells 8 --shapes 16 > sweep.json
 *   syscomm-cli --socket /tmp/sc.sock submit sweep.json
 *   syscomm-cli --socket /tmp/sc.sock wait s-000001 60000
 *   syscomm-cli --socket /tmp/sc.sock result s-000001
 *
 * gen-ring-sweep needs no daemon: it emits a ready-to-submit sweep
 * body over a ring program whose cells alternate W/R around the ring
 * — long-running, deadlock-free at any queue shape, and entirely
 * transfer ops, so sweep journals cover it bit-identically.
 *
 * Exit codes: 0 = daemon answered "ok": true; 1 = daemon answered
 * with an error/rejection; 2 = usage or transport failure; 3 = wait
 * timed out (distinct so scripts can tell "still running" from
 * "daemon unreachable").
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "serve/client.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "sim/shape_sweep.h"

namespace {

using syscomm::serve::JsonValue;
using syscomm::serve::ServeClient;

void
usage()
{
    std::fprintf(
        stderr,
        "usage: syscomm-cli [--socket PATH | --tcp HOST:PORT] COMMAND\n"
        "commands:\n"
        "  ping | stats | drain\n"
        "  submit [FILE] [--retry N] [--idempotency-key KEY]\n"
        "                       submit body from FILE (default stdin);\n"
        "                       --retry resends with backoff across\n"
        "                       daemon restarts (KEY makes it safe)\n"
        "  status ID\n"
        "  result ID\n"
        "  cancel ID\n"
        "  wait ID [TIMEOUT_MS] [--timeout MS] [--retry N]\n"
        "                       poll until terminal (default 60000);\n"
        "                       exit 3 = timed out, 2 = unreachable\n"
        "  gen-ring-sweep [--cells N] [--words W] [--streams S]\n"
        "                 [--shapes K] [--seeds R] [--checkpoint-every C]\n"
        "                 [--budget B] [--kernel event|reference]\n"
        "                 [--sweep-workers N]\n"
        "                 print a sweep submit body (no daemon needed)\n"
        "  sweep-merge [--require-complete] FILE...\n"
        "                 merge shard sweep journals into one summary\n"
        "                 with per-rung digest cross-checks (no daemon\n"
        "                 needed); exit 1 on any cross-check failure,\n"
        "                 or on an incomplete grid with\n"
        "                 --require-complete\n");
}

bool
parseInt(const char* text, long long& out)
{
    char* end = nullptr;
    out = std::strtoll(text, &end, 10);
    return end != text && *end == '\0';
}

/**
 * The CI workload: a ring of @p cells cells, @p streams messages from
 * every cell to its clockwise neighbor, each @p words long, with
 * writes and reads interleaved word by word so every queue drains as
 * it fills — the sweep runs long (cycles scale with words) without
 * deadlocking on any shape.
 */
std::string
ringProgramText(int cells, int words, int streams)
{
    std::ostringstream out;
    out << "cells " << cells << "\n";
    for (int c = 0; c < cells; ++c) {
        for (int s = 0; s < streams; ++s) {
            out << "message m" << c << "_" << s << " " << c << " -> "
                << (c + 1) % cells << "\n";
        }
    }
    for (int c = 0; c < cells; ++c) {
        const int prev = (c + cells - 1) % cells;
        out << "cell " << c << " {";
        for (int w = 0; w < words; ++w) {
            for (int s = 0; s < streams; ++s)
                out << " W(m" << c << "_" << s << ")";
            for (int s = 0; s < streams; ++s)
                out << " R(m" << prev << "_" << s << ")";
        }
        out << " }\n";
    }
    return out.str();
}

int
genRingSweep(int argc, char** argv, int argi)
{
    long long cells = 8, words = 400, streams = 1, shapes = 16;
    long long seeds = 1, checkpointEvery = 2000, budget = 0;
    long long sweepWorkers = 0;
    std::string kernel = "event";
    for (int i = argi; i < argc; i += 2) {
        const std::string arg = argv[i];
        const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
        long long n = 0;
        const bool num = value != nullptr && parseInt(value, n);
        if (arg == "--cells" && num)
            cells = n;
        else if (arg == "--words" && num)
            words = n;
        else if (arg == "--streams" && num)
            streams = n;
        else if (arg == "--shapes" && num)
            shapes = n;
        else if (arg == "--seeds" && num)
            seeds = n;
        else if (arg == "--checkpoint-every" && num)
            checkpointEvery = n;
        else if (arg == "--budget" && num)
            budget = n;
        else if (arg == "--sweep-workers" && num)
            sweepWorkers = n;
        else if (arg == "--kernel" && value != nullptr)
            kernel = value;
        else {
            usage();
            return 2;
        }
    }
    if (cells < 3 || words < 1 || streams < 1 || shapes < 1 ||
        seeds < 1) {
        std::fprintf(stderr, "gen-ring-sweep: bad parameters\n");
        return 2;
    }

    JsonValue body = JsonValue::object();
    body.set("kind", JsonValue::str("sweep"));
    body.set("program", JsonValue::str(ringProgramText(
                            int(cells), int(words), int(streams))));
    JsonValue topo = JsonValue::object();
    topo.set("kind", JsonValue::str("ring"));
    topo.set("cells", JsonValue::integer(cells));
    body.set("topology", std::move(topo));

    // A deterministic ladder over queue count, capacity and the
    // iWarp-style extension: the dimensions the paper sweeps.
    JsonValue shapeList = JsonValue::array();
    for (long long k = 0; k < shapes; ++k) {
        JsonValue shape = JsonValue::object();
        const long long queues = 1 + k % 4;
        const long long capacity = 1 + (k / 4) % 4;
        const long long extension = (k % 2 == 1) ? 2 : 0;
        shape.set("name", JsonValue::str(
                              "q" + std::to_string(queues) + "c" +
                              std::to_string(capacity) +
                              (extension > 0 ? "x" : "")));
        shape.set("queues", JsonValue::integer(queues));
        shape.set("capacity", JsonValue::integer(capacity));
        shape.set("extension", JsonValue::integer(extension));
        shape.set("penalty", JsonValue::integer(4));
        shapeList.push(std::move(shape));
    }
    body.set("shapes", std::move(shapeList));

    JsonValue requests = JsonValue::array();
    for (long long r = 0; r < seeds; ++r) {
        JsonValue request = JsonValue::object();
        request.set("policy", JsonValue::str("compatible"));
        request.set("seed", JsonValue::integer(1 + r));
        requests.push(std::move(request));
    }
    body.set("requests", std::move(requests));
    body.set("checkpoint_every", JsonValue::integer(checkpointEvery));
    if (budget > 0)
        body.set("cycle_budget", JsonValue::integer(budget));
    if (sweepWorkers > 0)
        body.set("sweep_workers", JsonValue::integer(sweepWorkers));
    body.set("kernel", JsonValue::str(kernel));

    std::printf("%s\n", syscomm::serve::writeJson(body).c_str());
    return 0;
}

/**
 * Merge N shard sweep journals into one summary line. This is the
 * reduce side of a multi-process sweep: run each shard with its own
 * --spool / journal (ShapeSweepOptions::shardBegin/shardEnd), then
 * merge the journal files here. mergeSweepJournals does the real
 * work — config-digest agreement, duplicate-row cross-checks, grid
 * completeness — so a disagreement between shards (a determinism
 * violation) is a hard exit 1, never a silently merged lie.
 */
int
sweepMerge(int argc, char** argv, int argi)
{
    bool requireComplete = false;
    std::vector<std::string> paths;
    for (int i = argi; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--require-complete")
            requireComplete = true;
        else if (arg.rfind("--", 0) == 0) {
            usage();
            return 2;
        } else
            paths.push_back(arg);
    }
    if (paths.empty()) {
        usage();
        return 2;
    }

    syscomm::sim::SweepMergeResult merged;
    std::string error;
    if (!syscomm::sim::mergeSweepJournals(paths, merged, error)) {
        JsonValue out = JsonValue::object();
        out.set("ok", JsonValue::boolean(false));
        out.set("error", JsonValue::str(error));
        std::printf("%s\n", syscomm::serve::writeJson(out).c_str());
        return 1;
    }

    JsonValue out = JsonValue::object();
    out.set("ok", JsonValue::boolean(true));
    out.set("config_digest",
            JsonValue::str(syscomm::serve::hexDigest(
                merged.configDigest)));
    out.set("journals", JsonValue::integer(
                            static_cast<std::int64_t>(paths.size())));
    out.set("shapes", JsonValue::integer(static_cast<std::int64_t>(
                          merged.numShapes)));
    out.set("requests", JsonValue::integer(static_cast<std::int64_t>(
                            merged.numRequests)));
    out.set("rows", JsonValue::integer(static_cast<std::int64_t>(
                        merged.rows.size())));
    out.set("duplicate_rows",
            JsonValue::integer(static_cast<std::int64_t>(
                merged.duplicateRows)));
    out.set("complete", JsonValue::boolean(merged.complete));

    int statusCounts[syscomm::sim::kNumRunStatuses] = {};
    for (const syscomm::sim::SweepMergeRow& row : merged.rows)
        ++statusCounts[static_cast<int>(row.result.status)];
    JsonValue counts = JsonValue::object();
    for (int i = 0; i < syscomm::sim::kNumRunStatuses; ++i) {
        if (statusCounts[i] > 0)
            counts.set(syscomm::sim::runStatusName(
                           static_cast<syscomm::sim::RunStatus>(i)),
                       JsonValue::integer(statusCounts[i]));
    }
    out.set("status_counts", std::move(counts));

    // The per-rung cross-check material: one digest fold per shape,
    // equal to the same fold over an unsharded run iff the sharded
    // sweep is bit-identical to it.
    JsonValue shapeDigests = JsonValue::array();
    for (std::uint64_t digest : merged.shapeDigests)
        shapeDigests.push(
            JsonValue::str(syscomm::serve::hexDigest(digest)));
    out.set("shape_digests", std::move(shapeDigests));

    std::printf("%s\n", syscomm::serve::writeJson(out).c_str());
    if (requireComplete && !merged.complete) {
        std::fprintf(stderr,
                     "sweep-merge: merged grid is incomplete\n");
        return 1;
    }
    return 0;
}

int
printResponse(const JsonValue& response)
{
    std::printf("%s\n", syscomm::serve::writeJson(response).c_str());
    return response.getBool("ok", false) ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string socketPath;
    std::string tcpHost;
    int tcpPort = -1;
    int argi = 1;
    while (argi < argc) {
        const std::string arg = argv[argi];
        if (arg == "--socket" && argi + 1 < argc) {
            socketPath = argv[argi + 1];
            argi += 2;
        } else if (arg == "--tcp" && argi + 1 < argc) {
            const std::string spec = argv[argi + 1];
            const std::size_t colon = spec.rfind(':');
            long long port = 0;
            if (colon == std::string::npos ||
                !parseInt(spec.c_str() + colon + 1, port)) {
                std::fprintf(stderr, "--tcp expects HOST:PORT\n");
                return 2;
            }
            tcpHost = spec.substr(0, colon);
            tcpPort = static_cast<int>(port);
            argi += 2;
        } else {
            break;
        }
    }
    if (argi >= argc) {
        usage();
        return 2;
    }
    const std::string command = argv[argi++];

    if (command == "gen-ring-sweep")
        return genRingSweep(argc, argv, argi);
    if (command == "sweep-merge")
        return sweepMerge(argc, argv, argi);
    if (command == "help" || command == "--help") {
        usage();
        return 0;
    }

    ServeClient client;
    std::string error;
    bool connected = false;
    if (!socketPath.empty())
        connected = client.connectUnix(socketPath, error);
    else if (tcpPort >= 0)
        connected = client.connectTcp(tcpHost, tcpPort, error);
    else
        error = "need --socket or --tcp";
    if (!connected) {
        std::fprintf(stderr, "syscomm-cli: %s\n", error.c_str());
        return 2;
    }

    JsonValue response;
    bool ok = false;
    if (command == "ping") {
        ok = client.ping(response, error);
    } else if (command == "stats") {
        ok = client.stats(response, error);
    } else if (command == "drain") {
        ok = client.drain(response, error);
    } else if (command == "submit") {
        std::string file;
        std::string idempotencyKey;
        long long retries = 0;
        while (argi < argc) {
            const std::string arg = argv[argi];
            if (arg == "--retry" && argi + 1 < argc &&
                parseInt(argv[argi + 1], retries)) {
                argi += 2;
            } else if (arg == "--idempotency-key" &&
                       argi + 1 < argc) {
                idempotencyKey = argv[argi + 1];
                argi += 2;
            } else if (file.empty() && arg.rfind("--", 0) != 0) {
                file = arg;
                ++argi;
            } else {
                usage();
                return 2;
            }
        }
        std::string text;
        if (!file.empty()) {
            std::ifstream in(file);
            if (!in) {
                std::fprintf(stderr, "syscomm-cli: cannot read %s\n",
                             file.c_str());
                return 2;
            }
            std::ostringstream ss;
            ss << in.rdbuf();
            text = ss.str();
        } else {
            std::ostringstream ss;
            ss << std::cin.rdbuf();
            text = ss.str();
        }
        JsonValue body;
        if (!syscomm::serve::parseJson(text, body, error)) {
            std::fprintf(stderr, "syscomm-cli: submit body: %s\n",
                         error.c_str());
            return 2;
        }
        if (!idempotencyKey.empty())
            body.set("idempotency_key",
                     JsonValue::str(idempotencyKey));
        std::string id;
        if (retries > 0) {
            syscomm::serve::RetryOptions retry;
            retry.maxAttempts = static_cast<int>(retries);
            ok = client.submitWithRetry(body, retry, id, response,
                                        error);
            // submitWithRetry reports rejections through `error`;
            // a populated response still prints below for scripts.
            if (!ok && response.isObject() &&
                response.find("rejected") != nullptr) {
                printResponse(response);
                return 1;
            }
        } else {
            ok = client.submit(body, id, response, error);
        }
    } else if (command == "status" || command == "result" ||
               command == "cancel") {
        if (argi >= argc) {
            usage();
            return 2;
        }
        const std::string id = argv[argi];
        if (command == "status")
            ok = client.status(id, response, error);
        else if (command == "result")
            ok = client.result(id, response, error);
        else
            ok = client.cancel(id, response, error);
    } else if (command == "wait") {
        if (argi >= argc) {
            usage();
            return 2;
        }
        const std::string id = argv[argi++];
        long long timeoutMs = 60'000;
        long long retries = 0;
        while (argi < argc) {
            const std::string arg = argv[argi];
            if (arg == "--timeout" && argi + 1 < argc &&
                parseInt(argv[argi + 1], timeoutMs)) {
                argi += 2;
            } else if (arg == "--retry" && argi + 1 < argc &&
                       parseInt(argv[argi + 1], retries)) {
                argi += 2;
            } else if (arg.rfind("--", 0) != 0 &&
                       parseInt(arg.c_str(), timeoutMs)) {
                ++argi; // legacy positional TIMEOUT_MS
            } else {
                usage();
                return 2;
            }
        }
        bool waited;
        if (retries > 0) {
            syscomm::serve::RetryOptions retry;
            retry.maxAttempts = static_cast<int>(retries);
            waited = client.waitTerminalRetry(id, int(timeoutMs),
                                              retry, response, error);
        } else {
            waited = client.waitTerminal(id, int(timeoutMs), response,
                                         error);
        }
        if (!waited) {
            std::fprintf(stderr, "syscomm-cli: %s\n", error.c_str());
            // 3 = the daemon is fine but the work outlived the
            // deadline; transport/protocol failures stay 2.
            return error.rfind("timeout", 0) == 0 ? 3 : 2;
        }
        return printResponse(response);
    } else {
        usage();
        return 2;
    }

    if (!ok) {
        std::fprintf(stderr, "syscomm-cli: %s\n", error.c_str());
        return 2;
    }
    return printResponse(response);
}
