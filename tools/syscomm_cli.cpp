/**
 * @file
 * syscomm-cli — command-line client for syscommd.
 *
 * Speaks the line-JSON protocol (docs/protocol.md) over a Unix or TCP
 * socket and prints the daemon's response line to stdout, so shell
 * pipelines (and the CI daemon smoke job) can drive a daemon without
 * any other tooling:
 *
 *   syscomm-cli gen-ring-sweep --cells 8 --shapes 16 > sweep.json
 *   syscomm-cli --socket /tmp/sc.sock submit sweep.json
 *   syscomm-cli --socket /tmp/sc.sock wait s-000001 60000
 *   syscomm-cli --socket /tmp/sc.sock result s-000001
 *
 * gen-ring-sweep needs no daemon: it emits a ready-to-submit sweep
 * body over a ring program whose cells alternate W/R around the ring
 * — long-running, deadlock-free at any queue shape, and entirely
 * transfer ops, so sweep journals cover it bit-identically.
 *
 * Exit codes: 0 = daemon answered "ok": true; 1 = daemon answered
 * with an error/rejection; 2 = usage or transport failure; 3 = wait
 * timed out (distinct so scripts can tell "still running" from
 * "daemon unreachable").
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/analyze.h"
#include "core/machine_spec.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/lint.h"
#include "serve/protocol.h"
#include "sim/machine.h"
#include "sim/shape_sweep.h"
#include "text/parser.h"

namespace {

using syscomm::serve::JsonValue;
using syscomm::serve::ServeClient;

void
usage()
{
    std::fprintf(
        stderr,
        "usage: syscomm-cli [--socket PATH | --tcp HOST:PORT] COMMAND\n"
        "commands:\n"
        "  ping | stats | drain\n"
        "  submit [FILE] [--retry N] [--idempotency-key KEY]\n"
        "                       submit body from FILE (default stdin);\n"
        "                       --retry resends with backoff across\n"
        "                       daemon restarts (KEY makes it safe)\n"
        "  status ID\n"
        "  result ID\n"
        "  cancel ID\n"
        "  wait ID [TIMEOUT_MS] [--timeout MS] [--retry N]\n"
        "                       poll until terminal (default 60000);\n"
        "                       exit 3 = timed out, 2 = unreachable\n"
        "  gen-ring-sweep [--cells N] [--words W] [--streams S]\n"
        "                 [--shapes K] [--seeds R] [--checkpoint-every C]\n"
        "                 [--budget B] [--kernel event|reference]\n"
        "                 [--sweep-workers N]\n"
        "                 print a sweep submit body (no daemon needed)\n"
        "  sweep-merge [--require-complete] FILE...\n"
        "                 merge shard sweep journals into one summary\n"
        "                 with per-rung digest cross-checks (no daemon\n"
        "                 needed); exit 1 on any cross-check failure,\n"
        "                 or on an incomplete grid with\n"
        "                 --require-complete\n"
        "  lint [FILE] [--topology linear|ring|mesh|torus]\n"
        "       [--rows R --cols C] [--queues N] [--capacity N]\n"
        "       [--extension N]\n"
        "                 static analysis of a text program (default\n"
        "                 stdin; no daemon needed): deadlock witness,\n"
        "                 buffer bounds, Theorem 1 feasibility. Exit 0\n"
        "                 unless the verdict is deadlock/invalid\n"
        "  audit [FILE] [topology/shape flags as for lint]\n"
        "        [--policy P] [--seed N] [--max-cycles N]\n"
        "        [--kernel event|reference]\n"
        "                 run the program with the section 7\n"
        "                 compatibility audit (no daemon needed); exit\n"
        "                 0 iff the run completed rule-compatible\n");
}

bool
parseInt(const char* text, long long& out)
{
    char* end = nullptr;
    out = std::strtoll(text, &end, 10);
    return end != text && *end == '\0';
}

/**
 * The CI workload: a ring of @p cells cells, @p streams messages from
 * every cell to its clockwise neighbor, each @p words long, with
 * writes and reads interleaved word by word so every queue drains as
 * it fills — the sweep runs long (cycles scale with words) without
 * deadlocking on any shape.
 */
std::string
ringProgramText(int cells, int words, int streams)
{
    std::ostringstream out;
    out << "cells " << cells << "\n";
    for (int c = 0; c < cells; ++c) {
        for (int s = 0; s < streams; ++s) {
            out << "message m" << c << "_" << s << " " << c << " -> "
                << (c + 1) % cells << "\n";
        }
    }
    for (int c = 0; c < cells; ++c) {
        const int prev = (c + cells - 1) % cells;
        out << "cell " << c << " {";
        for (int w = 0; w < words; ++w) {
            for (int s = 0; s < streams; ++s)
                out << " W(m" << c << "_" << s << ")";
            for (int s = 0; s < streams; ++s)
                out << " R(m" << prev << "_" << s << ")";
        }
        out << " }\n";
    }
    return out.str();
}

int
genRingSweep(int argc, char** argv, int argi)
{
    long long cells = 8, words = 400, streams = 1, shapes = 16;
    long long seeds = 1, checkpointEvery = 2000, budget = 0;
    long long sweepWorkers = 0;
    std::string kernel = "event";
    for (int i = argi; i < argc; i += 2) {
        const std::string arg = argv[i];
        const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
        long long n = 0;
        const bool num = value != nullptr && parseInt(value, n);
        if (arg == "--cells" && num)
            cells = n;
        else if (arg == "--words" && num)
            words = n;
        else if (arg == "--streams" && num)
            streams = n;
        else if (arg == "--shapes" && num)
            shapes = n;
        else if (arg == "--seeds" && num)
            seeds = n;
        else if (arg == "--checkpoint-every" && num)
            checkpointEvery = n;
        else if (arg == "--budget" && num)
            budget = n;
        else if (arg == "--sweep-workers" && num)
            sweepWorkers = n;
        else if (arg == "--kernel" && value != nullptr)
            kernel = value;
        else {
            usage();
            return 2;
        }
    }
    if (cells < 3 || words < 1 || streams < 1 || shapes < 1 ||
        seeds < 1) {
        std::fprintf(stderr, "gen-ring-sweep: bad parameters\n");
        return 2;
    }

    JsonValue body = JsonValue::object();
    body.set("kind", JsonValue::str("sweep"));
    body.set("program", JsonValue::str(ringProgramText(
                            int(cells), int(words), int(streams))));
    JsonValue topo = JsonValue::object();
    topo.set("kind", JsonValue::str("ring"));
    topo.set("cells", JsonValue::integer(cells));
    body.set("topology", std::move(topo));

    // A deterministic ladder over queue count, capacity and the
    // iWarp-style extension: the dimensions the paper sweeps.
    JsonValue shapeList = JsonValue::array();
    for (long long k = 0; k < shapes; ++k) {
        JsonValue shape = JsonValue::object();
        const long long queues = 1 + k % 4;
        const long long capacity = 1 + (k / 4) % 4;
        const long long extension = (k % 2 == 1) ? 2 : 0;
        shape.set("name", JsonValue::str(
                              "q" + std::to_string(queues) + "c" +
                              std::to_string(capacity) +
                              (extension > 0 ? "x" : "")));
        shape.set("queues", JsonValue::integer(queues));
        shape.set("capacity", JsonValue::integer(capacity));
        shape.set("extension", JsonValue::integer(extension));
        shape.set("penalty", JsonValue::integer(4));
        shapeList.push(std::move(shape));
    }
    body.set("shapes", std::move(shapeList));

    JsonValue requests = JsonValue::array();
    for (long long r = 0; r < seeds; ++r) {
        JsonValue request = JsonValue::object();
        request.set("policy", JsonValue::str("compatible"));
        request.set("seed", JsonValue::integer(1 + r));
        requests.push(std::move(request));
    }
    body.set("requests", std::move(requests));
    body.set("checkpoint_every", JsonValue::integer(checkpointEvery));
    if (budget > 0)
        body.set("cycle_budget", JsonValue::integer(budget));
    if (sweepWorkers > 0)
        body.set("sweep_workers", JsonValue::integer(sweepWorkers));
    body.set("kernel", JsonValue::str(kernel));

    std::printf("%s\n", syscomm::serve::writeJson(body).c_str());
    return 0;
}

/**
 * Merge N shard sweep journals into one summary line. This is the
 * reduce side of a multi-process sweep: run each shard with its own
 * --spool / journal (ShapeSweepOptions::shardBegin/shardEnd), then
 * merge the journal files here. mergeSweepJournals does the real
 * work — config-digest agreement, duplicate-row cross-checks, grid
 * completeness — so a disagreement between shards (a determinism
 * violation) is a hard exit 1, never a silently merged lie.
 */
int
sweepMerge(int argc, char** argv, int argi)
{
    bool requireComplete = false;
    std::vector<std::string> paths;
    for (int i = argi; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--require-complete")
            requireComplete = true;
        else if (arg.rfind("--", 0) == 0) {
            usage();
            return 2;
        } else
            paths.push_back(arg);
    }
    if (paths.empty()) {
        usage();
        return 2;
    }

    syscomm::sim::SweepMergeResult merged;
    std::string error;
    if (!syscomm::sim::mergeSweepJournals(paths, merged, error)) {
        JsonValue out = JsonValue::object();
        out.set("ok", JsonValue::boolean(false));
        out.set("error", JsonValue::str(error));
        std::printf("%s\n", syscomm::serve::writeJson(out).c_str());
        return 1;
    }

    JsonValue out = JsonValue::object();
    out.set("ok", JsonValue::boolean(true));
    out.set("config_digest",
            JsonValue::str(syscomm::serve::hexDigest(
                merged.configDigest)));
    out.set("journals", JsonValue::integer(
                            static_cast<std::int64_t>(paths.size())));
    out.set("shapes", JsonValue::integer(static_cast<std::int64_t>(
                          merged.numShapes)));
    out.set("requests", JsonValue::integer(static_cast<std::int64_t>(
                            merged.numRequests)));
    out.set("rows", JsonValue::integer(static_cast<std::int64_t>(
                        merged.rows.size())));
    out.set("duplicate_rows",
            JsonValue::integer(static_cast<std::int64_t>(
                merged.duplicateRows)));
    out.set("complete", JsonValue::boolean(merged.complete));

    int statusCounts[syscomm::sim::kNumRunStatuses] = {};
    for (const syscomm::sim::SweepMergeRow& row : merged.rows)
        ++statusCounts[static_cast<int>(row.result.status)];
    JsonValue counts = JsonValue::object();
    for (int i = 0; i < syscomm::sim::kNumRunStatuses; ++i) {
        if (statusCounts[i] > 0)
            counts.set(syscomm::sim::runStatusName(
                           static_cast<syscomm::sim::RunStatus>(i)),
                       JsonValue::integer(statusCounts[i]));
    }
    out.set("status_counts", std::move(counts));

    // The per-rung cross-check material: one digest fold per shape,
    // equal to the same fold over an unsharded run iff the sharded
    // sweep is bit-identical to it.
    JsonValue shapeDigests = JsonValue::array();
    for (std::uint64_t digest : merged.shapeDigests)
        shapeDigests.push(
            JsonValue::str(syscomm::serve::hexDigest(digest)));
    out.set("shape_digests", std::move(shapeDigests));

    std::printf("%s\n", syscomm::serve::writeJson(out).c_str());
    if (requireComplete && !merged.complete) {
        std::fprintf(stderr,
                     "sweep-merge: merged grid is incomplete\n");
        return 1;
    }
    return 0;
}

/**
 * Shared flag set of the offline lint/audit commands: a program file
 * (default stdin), the topology to route it over, and the queue
 * shape. Audit adds run knobs on top.
 */
struct OfflineArgs
{
    std::string file;
    std::string topoKind = "linear";
    long long rows = 0;
    long long cols = 0;
    long long queues = 2;
    long long capacity = 1;
    long long extension = 0;
    long long penalty = 4;
    std::string policy = "compatible";
    std::string kernel = "event";
    long long seed = 1;
    long long maxCycles = 1'000'000;
};

bool
parseOfflineArgs(int argc, char** argv, int argi, bool simFlags,
                 OfflineArgs& out)
{
    while (argi < argc) {
        const std::string arg = argv[argi];
        const char* value = argi + 1 < argc ? argv[argi + 1] : nullptr;
        long long n = 0;
        const bool num = value != nullptr && parseInt(value, n);
        if (arg == "--topology" && value != nullptr) {
            out.topoKind = value;
            argi += 2;
        } else if (arg == "--rows" && num) {
            out.rows = n;
            argi += 2;
        } else if (arg == "--cols" && num) {
            out.cols = n;
            argi += 2;
        } else if (arg == "--queues" && num) {
            out.queues = n;
            argi += 2;
        } else if (arg == "--capacity" && num) {
            out.capacity = n;
            argi += 2;
        } else if (arg == "--extension" && num) {
            out.extension = n;
            argi += 2;
        } else if (simFlags && arg == "--penalty" && num) {
            out.penalty = n;
            argi += 2;
        } else if (simFlags && arg == "--policy" && value != nullptr) {
            out.policy = value;
            argi += 2;
        } else if (simFlags && arg == "--kernel" && value != nullptr) {
            out.kernel = value;
            argi += 2;
        } else if (simFlags && arg == "--seed" && num) {
            out.seed = n;
            argi += 2;
        } else if (simFlags && arg == "--max-cycles" && num) {
            out.maxCycles = n;
            argi += 2;
        } else if (out.file.empty() && arg.rfind("--", 0) != 0) {
            out.file = arg;
            ++argi;
        } else {
            return false;
        }
    }
    return out.queues >= 1 && out.capacity >= 1 &&
           out.extension >= 0 && out.penalty >= 0 &&
           out.seed >= 0 && out.maxCycles >= 1;
}

/** Read the program source from @p file, or stdin when empty. */
bool
readProgramText(const std::string& file, std::string& text)
{
    if (file.empty()) {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        text = ss.str();
        return true;
    }
    std::ifstream in(file);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
    return true;
}

bool
buildOfflineTopology(const OfflineArgs& args, int cells,
                     syscomm::Topology& topo, std::string& error)
{
    using syscomm::Topology;
    if (args.topoKind == "linear") {
        topo = Topology::linearArray(cells);
        return true;
    }
    if (args.topoKind == "ring") {
        if (cells < 3) {
            error = "ring topology needs >= 3 cells";
            return false;
        }
        topo = Topology::ring(cells);
        return true;
    }
    if (args.topoKind == "mesh" || args.topoKind == "torus") {
        if (args.rows < 1 || args.cols < 1 ||
            args.rows * args.cols != cells) {
            error = "--rows x --cols must equal the program's "
                    "cell count";
            return false;
        }
        if (args.topoKind == "torus" &&
            (args.rows < 3 || args.cols < 3)) {
            error = "torus topology needs --rows/--cols >= 3";
            return false;
        }
        topo = args.topoKind == "torus"
                   ? Topology::torus(int(args.rows), int(args.cols))
                   : Topology::mesh(int(args.rows), int(args.cols));
        return true;
    }
    error = "unknown --topology '" + args.topoKind + "'";
    return false;
}

/**
 * Offline static analysis: parse a text program, route it over the
 * requested topology, and print the full core/analyze.h report as
 * JSON — the same body the daemon's lint verb returns, minus the
 * compile-cache bookkeeping. Exit 0 when the program is at least
 * plausibly runnable (certified or unknown); 1 when it is invalid or
 * carries a deadlock witness, so CI can gate on examples staying
 * clean.
 */
int
lintCommand(int argc, char** argv, int argi)
{
    OfflineArgs args;
    if (!parseOfflineArgs(argc, argv, argi, false, args)) {
        usage();
        return 2;
    }
    std::string text;
    if (!readProgramText(args.file, text)) {
        std::fprintf(stderr, "syscomm-cli: cannot read %s\n",
                     args.file.c_str());
        return 2;
    }
    const syscomm::text::ParseResult parsed =
        syscomm::text::parseProgram(text);
    if (!parsed.ok) {
        JsonValue out = JsonValue::object();
        out.set("ok", JsonValue::boolean(false));
        out.set("error",
                JsonValue::str("parse: " + parsed.error));
        std::printf("%s\n",
                    syscomm::serve::writeJson(out).c_str());
        return 1;
    }
    syscomm::Topology topo;
    std::string error;
    if (!buildOfflineTopology(args, parsed.program.numCells(), topo,
                              error)) {
        std::fprintf(stderr, "syscomm-cli: %s\n", error.c_str());
        return 2;
    }

    syscomm::AnalyzeOptions options;
    options.queuesPerLink = static_cast<int>(args.queues);
    options.queueCapacity = static_cast<int>(args.capacity);
    options.extensionCapacity = static_cast<int>(args.extension);
    const syscomm::AnalysisReport report =
        syscomm::analyzeProgram(parsed.program, topo, options);

    const bool ok =
        report.verdict != syscomm::LintVerdict::kDeadlock &&
        report.verdict != syscomm::LintVerdict::kInvalid;
    JsonValue out = JsonValue::object();
    out.set("ok", JsonValue::boolean(ok));
    out.set("lint", syscomm::serve::lintReportJson(report,
                                                   parsed.program));
    std::printf("%s\n", syscomm::serve::writeJson(out).c_str());
    return ok ? 0 : 1;
}

/**
 * Offline run + section 7 compatibility audit (sim/audit.h): execute
 * the program once with the assignment trace recorded and check every
 * queue grant against the ordered/simultaneous label rules. The lint
 * verdict is the static prediction; this is the dynamic half of the
 * same story, exposed so a shell loop can cross-validate the two.
 */
int
auditCommand(int argc, char** argv, int argi)
{
    OfflineArgs args;
    if (!parseOfflineArgs(argc, argv, argi, true, args)) {
        usage();
        return 2;
    }
    std::string text;
    if (!readProgramText(args.file, text)) {
        std::fprintf(stderr, "syscomm-cli: cannot read %s\n",
                     args.file.c_str());
        return 2;
    }
    const syscomm::text::ParseResult parsed =
        syscomm::text::parseProgram(text);
    if (!parsed.ok) {
        std::fprintf(stderr, "syscomm-cli: parse: %s\n",
                     parsed.error.c_str());
        return 1;
    }
    syscomm::Topology topo;
    std::string error;
    if (!buildOfflineTopology(args, parsed.program.numCells(), topo,
                              error)) {
        std::fprintf(stderr, "syscomm-cli: %s\n", error.c_str());
        return 2;
    }

    syscomm::sim::SimOptions options;
    options.audit = true;
    options.seed = static_cast<std::uint64_t>(args.seed);
    options.maxCycles = args.maxCycles;
    bool known = false;
    for (int i = 0; i < syscomm::sim::kNumPolicyKinds; ++i) {
        const auto kind = static_cast<syscomm::sim::PolicyKind>(i);
        if (args.policy == syscomm::sim::policyKindName(kind)) {
            options.policy = kind;
            known = true;
            break;
        }
    }
    if (!known) {
        std::fprintf(stderr, "syscomm-cli: unknown --policy '%s'\n",
                     args.policy.c_str());
        return 2;
    }
    if (args.kernel == "event") {
        options.kernel = syscomm::sim::KernelKind::kEventDriven;
    } else if (args.kernel == "reference") {
        options.kernel = syscomm::sim::KernelKind::kReference;
    } else {
        std::fprintf(stderr, "syscomm-cli: unknown --kernel '%s'\n",
                     args.kernel.c_str());
        return 2;
    }

    syscomm::MachineSpec spec;
    spec.topo = syscomm::SharedTopology(std::move(topo));
    spec.queuesPerLink = static_cast<int>(args.queues);
    spec.queueCapacity = static_cast<int>(args.capacity);
    spec.extensionCapacity = static_cast<int>(args.extension);
    spec.extensionPenalty = static_cast<int>(args.penalty);
    const syscomm::sim::RunResult result =
        syscomm::sim::simulateProgram(parsed.program, spec, options);

    const bool ok = result.completed() && result.audit.compatible;
    JsonValue out = JsonValue::object();
    out.set("ok", JsonValue::boolean(ok));
    out.set("status", JsonValue::str(result.statusStr()));
    out.set("cycles", JsonValue::integer(result.cycles));
    if (!result.error.empty())
        out.set("error", JsonValue::str(result.error));
    JsonValue audit = JsonValue::object();
    audit.set("compatible",
              JsonValue::boolean(result.audit.compatible));
    audit.set("violations",
              JsonValue::integer(static_cast<std::int64_t>(
                  result.audit.violations.size())));
    if (!result.audit.compatible)
        audit.set("detail",
                  JsonValue::str(result.audit.str(parsed.program)));
    out.set("audit", std::move(audit));
    JsonValue labels = JsonValue::array();
    for (std::int64_t label : result.labelsUsed)
        labels.push(JsonValue::integer(label));
    out.set("labels", std::move(labels));
    if (result.deadlock.deadlocked)
        out.set("deadlock",
                JsonValue::str(result.deadlock.render()));
    std::printf("%s\n", syscomm::serve::writeJson(out).c_str());
    return ok ? 0 : 1;
}

int
printResponse(const JsonValue& response)
{
    std::printf("%s\n", syscomm::serve::writeJson(response).c_str());
    return response.getBool("ok", false) ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string socketPath;
    std::string tcpHost;
    int tcpPort = -1;
    int argi = 1;
    while (argi < argc) {
        const std::string arg = argv[argi];
        if (arg == "--socket" && argi + 1 < argc) {
            socketPath = argv[argi + 1];
            argi += 2;
        } else if (arg == "--tcp" && argi + 1 < argc) {
            const std::string spec = argv[argi + 1];
            const std::size_t colon = spec.rfind(':');
            long long port = 0;
            if (colon == std::string::npos ||
                !parseInt(spec.c_str() + colon + 1, port)) {
                std::fprintf(stderr, "--tcp expects HOST:PORT\n");
                return 2;
            }
            tcpHost = spec.substr(0, colon);
            tcpPort = static_cast<int>(port);
            argi += 2;
        } else {
            break;
        }
    }
    if (argi >= argc) {
        usage();
        return 2;
    }
    const std::string command = argv[argi++];

    if (command == "gen-ring-sweep")
        return genRingSweep(argc, argv, argi);
    if (command == "sweep-merge")
        return sweepMerge(argc, argv, argi);
    if (command == "lint")
        return lintCommand(argc, argv, argi);
    if (command == "audit")
        return auditCommand(argc, argv, argi);
    if (command == "help" || command == "--help") {
        usage();
        return 0;
    }

    ServeClient client;
    std::string error;
    bool connected = false;
    if (!socketPath.empty())
        connected = client.connectUnix(socketPath, error);
    else if (tcpPort >= 0)
        connected = client.connectTcp(tcpHost, tcpPort, error);
    else
        error = "need --socket or --tcp";
    if (!connected) {
        std::fprintf(stderr, "syscomm-cli: %s\n", error.c_str());
        return 2;
    }

    JsonValue response;
    bool ok = false;
    if (command == "ping") {
        ok = client.ping(response, error);
    } else if (command == "stats") {
        ok = client.stats(response, error);
    } else if (command == "drain") {
        ok = client.drain(response, error);
    } else if (command == "submit") {
        std::string file;
        std::string idempotencyKey;
        long long retries = 0;
        while (argi < argc) {
            const std::string arg = argv[argi];
            if (arg == "--retry" && argi + 1 < argc &&
                parseInt(argv[argi + 1], retries)) {
                argi += 2;
            } else if (arg == "--idempotency-key" &&
                       argi + 1 < argc) {
                idempotencyKey = argv[argi + 1];
                argi += 2;
            } else if (file.empty() && arg.rfind("--", 0) != 0) {
                file = arg;
                ++argi;
            } else {
                usage();
                return 2;
            }
        }
        std::string text;
        if (!file.empty()) {
            std::ifstream in(file);
            if (!in) {
                std::fprintf(stderr, "syscomm-cli: cannot read %s\n",
                             file.c_str());
                return 2;
            }
            std::ostringstream ss;
            ss << in.rdbuf();
            text = ss.str();
        } else {
            std::ostringstream ss;
            ss << std::cin.rdbuf();
            text = ss.str();
        }
        JsonValue body;
        if (!syscomm::serve::parseJson(text, body, error)) {
            std::fprintf(stderr, "syscomm-cli: submit body: %s\n",
                         error.c_str());
            return 2;
        }
        if (!idempotencyKey.empty())
            body.set("idempotency_key",
                     JsonValue::str(idempotencyKey));
        std::string id;
        if (retries > 0) {
            syscomm::serve::RetryOptions retry;
            retry.maxAttempts = static_cast<int>(retries);
            ok = client.submitWithRetry(body, retry, id, response,
                                        error);
            // submitWithRetry reports rejections through `error`;
            // a populated response still prints below for scripts.
            if (!ok && response.isObject() &&
                response.find("rejected") != nullptr) {
                printResponse(response);
                return 1;
            }
        } else {
            ok = client.submit(body, id, response, error);
        }
    } else if (command == "status" || command == "result" ||
               command == "cancel") {
        if (argi >= argc) {
            usage();
            return 2;
        }
        const std::string id = argv[argi];
        if (command == "status")
            ok = client.status(id, response, error);
        else if (command == "result")
            ok = client.result(id, response, error);
        else
            ok = client.cancel(id, response, error);
    } else if (command == "wait") {
        if (argi >= argc) {
            usage();
            return 2;
        }
        const std::string id = argv[argi++];
        long long timeoutMs = 60'000;
        long long retries = 0;
        while (argi < argc) {
            const std::string arg = argv[argi];
            if (arg == "--timeout" && argi + 1 < argc &&
                parseInt(argv[argi + 1], timeoutMs)) {
                argi += 2;
            } else if (arg == "--retry" && argi + 1 < argc &&
                       parseInt(argv[argi + 1], retries)) {
                argi += 2;
            } else if (arg.rfind("--", 0) != 0 &&
                       parseInt(arg.c_str(), timeoutMs)) {
                ++argi; // legacy positional TIMEOUT_MS
            } else {
                usage();
                return 2;
            }
        }
        bool waited;
        if (retries > 0) {
            syscomm::serve::RetryOptions retry;
            retry.maxAttempts = static_cast<int>(retries);
            waited = client.waitTerminalRetry(id, int(timeoutMs),
                                              retry, response, error);
        } else {
            waited = client.waitTerminal(id, int(timeoutMs), response,
                                         error);
        }
        if (!waited) {
            std::fprintf(stderr, "syscomm-cli: %s\n", error.c_str());
            // 3 = the daemon is fine but the work outlived the
            // deadline; transport/protocol failures stay 2.
            return error.rfind("timeout", 0) == 0 ? 3 : 2;
        }
        return printResponse(response);
    } else {
        usage();
        return 2;
    }

    if (!ok) {
        std::fprintf(stderr, "syscomm-cli: %s\n", error.c_str());
        return 2;
    }
    return printResponse(response);
}
