/**
 * @file
 * syscommd — the simulation-as-a-service daemon executable.
 *
 * Thin lifecycle shell around serve::SyscommDaemon: parse flags, bind
 * sockets, then sit in a control-word loop. Signals only store into
 * the ServiceControl word (the one async-signal-safe thing there is
 * to do); the main loop notices and performs the actual transition:
 *
 *   SIGTERM/SIGINT -> drain: stop admitting, park journaled sweeps at
 *                     their next checkpoint, exit 0 with the spool in
 *                     a resumable state.
 *   SIGHUP         -> reload: re-scan the spool for submissions
 *                     dropped in by other tools, keep serving.
 *
 * A SIGKILLed daemon skips the drain, which is the scenario the spool
 * exists for: restart it on the same --spool and it re-admits the
 * backlog and resumes journaled sweeps bit-identically (CI does
 * exactly this in its daemon smoke job).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>

#include "serve/control.h"
#include "serve/daemon.h"

namespace {

// Signal handlers may only do an atomic store; the daemon's control
// word is designed for exactly that. Global because handlers take no
// context.
syscomm::serve::ServiceControl* g_control = nullptr;

void
onDrainSignal(int)
{
    if (g_control != nullptr)
        g_control->set(syscomm::serve::ServiceWant::kDrain);
}

void
onReloadSignal(int)
{
    if (g_control != nullptr)
        g_control->set(syscomm::serve::ServiceWant::kReload);
}

void
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --socket PATH        unix listening socket\n"
        "  --tcp PORT           TCP port on 127.0.0.1 (0 = ephemeral)\n"
        "  --spool DIR          durability directory (resume after kill)\n"
        "  --workers N          executor threads (default 2)\n"
        "  --sweep-workers N    threads inside one sweep (default 1;\n"
        "                       0 = size to hardware; a submission's\n"
        "                       sweep_workers field can cap it)\n"
        "  --queue N            admission queue bound (default 64)\n"
        "  --cache N            compiled-program cache entries (default 32)\n"
        "  --slice N            run slice cycles (default 100000)\n"
        "  --checkpoint-every N sweep checkpoint interval (default 5000)\n"
        "  --budget N           default cycle budget (default 50000000)\n"
        "  --fsync POLICY       none | markers | always (default none)\n"
        "  --watchdog-ms N      fail a run whose slice stalls N ms\n"
        "                       (default 0 = disabled)\n"
        "  --lint MODE          off | warn | enforce (default off):\n"
        "                       static analysis at admission; enforce\n"
        "                       rejects statically-deadlocked programs\n"
        "                       with the blocked-cycle witness\n",
        argv0);
}

bool
parseLong(const char* text, long long& out)
{
    char* end = nullptr;
    out = std::strtoll(text, &end, 10);
    return end != text && *end == '\0';
}

} // namespace

int
main(int argc, char** argv)
{
    syscomm::serve::DaemonOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
        long long n = 0;
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        }
        if (value == nullptr) {
            usage(argv[0]);
            return 2;
        }
        if (arg == "--socket") {
            options.socketPath = value;
        } else if (arg == "--tcp" && parseLong(value, n)) {
            options.tcpPort = static_cast<int>(n);
        } else if (arg == "--spool") {
            options.spoolDir = value;
        } else if (arg == "--workers" && parseLong(value, n)) {
            options.workers = static_cast<int>(n);
        } else if (arg == "--sweep-workers" && parseLong(value, n)) {
            options.sweepWorkers = static_cast<int>(n);
        } else if (arg == "--queue" && parseLong(value, n)) {
            options.maxQueue = static_cast<std::size_t>(n);
        } else if (arg == "--cache" && parseLong(value, n)) {
            options.cacheCapacity = static_cast<std::size_t>(n);
        } else if (arg == "--slice" && parseLong(value, n)) {
            options.sliceCycles = n;
        } else if (arg == "--checkpoint-every" && parseLong(value, n)) {
            options.sweepCheckpointEvery = n;
        } else if (arg == "--budget" && parseLong(value, n)) {
            options.defaultCycleBudget = n;
        } else if (arg == "--fsync") {
            if (!syscomm::serve::parseFsyncPolicy(
                    value, options.fsyncPolicy)) {
                std::fprintf(stderr,
                             "syscommd: bad --fsync '%s'\n", value);
                return 2;
            }
        } else if (arg == "--watchdog-ms" && parseLong(value, n)) {
            options.watchdogMs = n;
        } else if (arg == "--lint") {
            if (!syscomm::serve::parseLintMode(value,
                                               options.lintMode)) {
                std::fprintf(stderr,
                             "syscommd: bad --lint '%s'\n", value);
                return 2;
            }
        } else {
            usage(argv[0]);
            return 2;
        }
        ++i;
    }
    if (options.socketPath.empty() && options.tcpPort < 0) {
        std::fprintf(stderr,
                     "syscommd: need --socket and/or --tcp\n");
        return 2;
    }

    syscomm::serve::SyscommDaemon daemon(std::move(options));
    std::string error;
    if (!daemon.start(error)) {
        std::fprintf(stderr, "syscommd: %s\n", error.c_str());
        return 1;
    }
    g_control = &daemon.control();
    std::signal(SIGTERM, onDrainSignal);
    std::signal(SIGINT, onDrainSignal);
    std::signal(SIGHUP, onReloadSignal);

    std::printf("syscommd: serving");
    if (daemon.boundTcpPort() >= 0)
        std::printf(" tcp=127.0.0.1:%d", daemon.boundTcpPort());
    std::printf("\n");
    std::fflush(stdout);

    using syscomm::serve::ServiceWant;
    for (;;) {
        const ServiceWant want = daemon.control().get();
        if (want == ServiceWant::kReload) {
            daemon.reload();
            daemon.control().advance(ServiceWant::kReload,
                                     ServiceWant::kServe);
        } else if (want == ServiceWant::kDrain ||
                   want == ServiceWant::kStop) {
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    // Drain: requestDrain() flips in-flight stop flags; then wait for
    // workers to park before exiting so every journaled sweep has its
    // final checkpoint on disk.
    std::printf("syscommd: draining\n");
    std::fflush(stdout);
    daemon.requestDrain();
    while (!daemon.waitIdle(250)) {
        // In-flight sweeps park within ~checkpointEvery cycles; keep
        // waiting (a stuck simulation is still bounded by its cycle
        // budget slices).
    }
    daemon.stop();
    std::printf("syscommd: stopped\n");
    return 0;
}
