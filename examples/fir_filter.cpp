/**
 * @file
 * FIR filtering on a systolic array — the workload that motivates the
 * paper's Fig. 2. Builds a k-tap filter, compiles it, runs it, and
 * checks the outputs against a direct computation.
 *
 * Usage: fir_filter [taps] [outputs]
 */

#include <cstdio>
#include <cstdlib>

#include "algos/fir.h"
#include "core/compile.h"
#include "sim/machine.h"
#include "text/printer.h"

using namespace syscomm;

int
main(int argc, char** argv)
{
    int taps = argc > 1 ? std::atoi(argv[1]) : 3;
    int outputs = argc > 2 ? std::atoi(argv[2]) : 6;
    if (taps < 1 || outputs < 1) {
        std::printf("usage: %s [taps >= 1] [outputs >= 1]\n", argv[0]);
        return 1;
    }

    algos::FirSpec spec = algos::FirSpec::random(taps, outputs, 2026);
    Program program = algos::makeFirProgram(spec);

    std::printf("%d-tap FIR, %d outputs, host + %d cells\n\n", taps,
                outputs, taps);
    if (program.totalOps() < 120)
        std::printf("%s\n", text::renderColumns(program).c_str());

    MachineSpec machine;
    machine.topo = algos::firTopology(taps);
    machine.queuesPerLink = 2;
    CompilePlan plan = compileProgram(program, machine);
    std::printf("%s\n", plan.report(program).c_str());
    if (!plan.ok)
        return 1;

    sim::SessionOptions options;
    options.labels = plan.normalizedLabels;
    sim::SimSession session(program, machine, options);
    sim::RunRequest request;
    request.collect = sim::Collect::kReceived; // the y-stream values
    sim::RunResult result = session.run(request);
    std::printf("status: %s in %lld cycles (%lld words delivered)\n\n",
                result.statusStr(), static_cast<long long>(result.cycles),
                static_cast<long long>(result.stats.wordsDelivered));

    auto y = *program.messageByName(algos::firHostOutputMessage());
    std::vector<double> expected = algos::firReference(spec);
    double max_err = 0.0;
    for (std::size_t j = 0; j < expected.size(); ++j) {
        double err = std::abs(result.received[y][j] - expected[j]);
        max_err = std::max(max_err, err);
        if (j < 8) {
            std::printf("y[%zu] = %10.4f   (reference %10.4f)\n", j,
                        result.received[y][j], expected[j]);
        }
    }
    std::printf("...\nmax |error| = %g\n", max_err);
    return max_err < 1e-9 ? 0 : 1;
}
