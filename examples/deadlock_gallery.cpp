/**
 * @file
 * A guided tour of the paper's deadlock examples: the deadlocked
 * programs of Fig. 5, the benign cycle of Fig. 6, and the three
 * queue-induced deadlocks of Figs. 7-9 with their fixes.
 */

#include <cstdio>

#include "algos/paper_figures.h"
#include "core/compile.h"
#include "sim/machine.h"
#include "text/printer.h"

using namespace syscomm;

namespace {

void
show(const char* title, const Program& p, const Topology& topo,
     int queues, sim::PolicyKind kind)
{
    std::printf("--- %s ---\n%s", title, text::renderColumns(p).c_str());

    MachineSpec spec;
    spec.topo = topo;
    spec.queuesPerLink = queues;
    CompilePlan plan = compileProgram(p, spec);
    std::printf("crossing-off: %s\n",
                plan.crossoff.deadlockFree ? "deadlock-free" : "DEADLOCKED");
    if (!plan.crossoff.deadlockFree)
        std::printf("%s", plan.crossoff.describeStuck(p).c_str());
    else
        std::printf("labels: %s\n", plan.labeling.str(p).c_str());

    // Stats-only run: the gallery wants the status and the deadlock
    // snapshot, which a session produces without any Collect flags.
    // Labels resolve lazily, only for the runs whose policy needs
    // them.
    sim::SessionOptions options;
    options.precomputeLabels = false;
    sim::RunRequest request;
    request.policy = kind;
    sim::RunResult r = sim::SimSession(p, spec, options).run(request);
    std::printf("run (%s, %d queue(s)/link): %s",
                sim::policyKindName(kind), queues, r.statusStr());
    if (r.status == sim::RunStatus::kCompleted)
        std::printf(" in %lld cycles", static_cast<long long>(r.cycles));
    std::printf("\n");
    if (r.status == sim::RunStatus::kDeadlocked)
        std::printf("%s", r.deadlock.render().c_str());
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("================ deadlocked programs (Fig. 5) "
                "================\n\n");
    show("P1 (fixable by buffering >= 2)", algos::fig5P1(),
         algos::fig5Topology(), 2, sim::PolicyKind::kCompatible);
    show("P2 (fixable by buffering >= 1)", algos::fig5P2(),
         algos::fig5Topology(), 2, sim::PolicyKind::kCompatible);
    show("P3 (unfixable: reads face reads)", algos::fig5P3(),
         algos::fig5Topology(), 2, sim::PolicyKind::kCompatible);

    std::printf("================ a cycle that is fine (Fig. 6) "
                "================\n\n");
    show("message ring on 4 cells", algos::fig6CycleProgram(),
         algos::fig6Topology(), 1, sim::PolicyKind::kCompatible);

    std::printf("================ queue-induced deadlocks "
                "================\n\n");
    show("Fig. 7 under FCFS (B steals C's queue)", algos::fig7Program(),
         algos::fig7Topology(), 1, sim::PolicyKind::kFcfs);
    show("Fig. 7 under compatible assignment", algos::fig7Program(),
         algos::fig7Topology(), 1, sim::PolicyKind::kCompatible);
    show("Fig. 8 with one queue (interleaved reads)",
         algos::fig8Program(), algos::fig8Topology(), 1,
         sim::PolicyKind::kCompatible);
    show("Fig. 8 with two queues", algos::fig8Program(),
         algos::fig8Topology(), 2, sim::PolicyKind::kCompatible);
    show("Fig. 9 with one queue (interleaved writes)",
         algos::fig9Program(), algos::fig9Topology(), 1,
         sim::PolicyKind::kCompatible);
    show("Fig. 9 with two queues", algos::fig9Program(),
         algos::fig9Topology(), 2, sim::PolicyKind::kCompatible);
    return 0;
}
