/**
 * @file
 * Matrix multiplication on a 2-D mesh — "results of the paper apply
 * to arrays of higher dimensionalities". A and B stream through the
 * mesh, each cell accumulates one C entry, and the results drain to
 * the corner cell over XY routes.
 *
 * Usage: mesh_matmul_demo [n] [k]
 */

#include <cstdio>
#include <cstdlib>

#include "algos/mesh_matmul.h"
#include "core/compile.h"
#include "sim/machine.h"

using namespace syscomm;

int
main(int argc, char** argv)
{
    int n = argc > 1 ? std::atoi(argv[1]) : 3;
    int k = argc > 2 ? std::atoi(argv[2]) : 4;
    if (n < 2 || k < 1) {
        std::printf("usage: %s [n >= 2] [k >= 1]\n", argv[0]);
        return 1;
    }

    algos::MatMulSpec spec = algos::MatMulSpec::random(n, k, 7);
    Program program = algos::makeMatMulProgram(spec);
    std::printf("C = A(%dx%d) * B(%dx%d) on a %dx%d mesh: %d messages, "
                "%d ops\n\n",
                n, k, k, n, n, n, program.numMessages(),
                program.totalOps());

    MachineSpec machine;
    machine.topo = algos::matmulTopology(spec);
    machine.queuesPerLink = 4;
    CompilePlan plan = compileProgram(program, machine);
    std::printf("%s\n", plan.report(program).c_str());
    if (!plan.ok)
        return 1;

    sim::SessionOptions options;
    options.labels = plan.normalizedLabels;
    sim::SimSession session(program, machine, options);
    sim::RunRequest request;
    request.collect = sim::Collect::kReceived; // the C-matrix values
    sim::RunResult result = session.run(request);
    std::printf("status: %s in %lld cycles\n\n", result.statusStr(),
                static_cast<long long>(result.cycles));
    if (result.status != sim::RunStatus::kCompleted)
        return 1;

    std::vector<double> got =
        algos::extractMatMulResult(program, result.received, spec);
    std::vector<double> want = algos::matmulReference(spec);
    double max_err = 0.0;
    for (int i = 0; i < n && i < 4; ++i) {
        for (int j = 0; j < n && j < 4; ++j)
            std::printf("%10.4f", got[i * n + j]);
        std::printf("\n");
    }
    for (std::size_t i = 0; i < want.size(); ++i)
        max_err = std::max(max_err, std::abs(got[i] - want[i]));
    std::printf("\nmax |error| vs reference = %g\n", max_err);
    return max_err < 1e-9 ? 0 : 1;
}
