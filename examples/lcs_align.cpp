/**
 * @file
 * Sequence comparison on a systolic array — the application of the
 * paper's reference [8] (LoPresti's P-NAC nucleic-acid comparator).
 * Computes the longest-common-subsequence length of two strings on a
 * linear array, one cell per character of the first string.
 *
 * Usage: lcs_align [seqA] [seqB]
 */

#include <cstdio>
#include <string>

#include "algos/align.h"
#include "core/compile.h"
#include "sim/machine.h"
#include "sim/trace.h"

using namespace syscomm;

int
main(int argc, char** argv)
{
    algos::AlignSpec spec;
    if (argc > 2) {
        spec.a = argv[1];
        spec.b = argv[2];
    } else {
        spec = algos::AlignSpec::random(8, 14, 1988);
    }
    if (spec.a.empty() || spec.b.empty()) {
        std::printf("usage: %s <seqA> <seqB>\n", argv[0]);
        return 1;
    }

    std::printf("A = %s (one cell per character)\nB = %s (streamed "
                "through)\n\n",
                spec.a.c_str(), spec.b.c_str());

    Program program = algos::makeLcsProgram(spec);
    MachineSpec machine;
    machine.topo = algos::alignTopology(spec);
    machine.queuesPerLink = 2; // B and ROW streams share a label

    CompilePlan plan = compileProgram(program, machine);
    std::printf("%s\n", plan.report(program).c_str());
    if (!plan.ok)
        return 1;

    sim::SessionOptions options;
    options.labels = plan.normalizedLabels;
    sim::SimSession session(program, machine, options);
    sim::RunRequest request;
    // The timeline rendering consumes assignment/release events; the
    // result value arrives via kReceived.
    request.collect = sim::Collect::kReceived | sim::Collect::kEvents |
                      sim::Collect::kReleases | sim::Collect::kMsgTiming;
    sim::RunResult result = session.run(request);
    if (result.status != sim::RunStatus::kCompleted) {
        std::printf("simulation failed: %s\n", result.statusStr());
        return 1;
    }

    auto res = *program.messageByName("RES");
    int got = static_cast<int>(result.received[res][0]);
    int want = algos::lcsReference(spec);
    std::printf("LCS length: %d (DP reference: %d) in %lld cycles\n\n",
                got, want, static_cast<long long>(result.cycles));
    std::printf("%s",
                sim::renderQueueTimeline(result, program, machine, 60)
                    .c_str());
    return got == want ? 0 : 1;
}
