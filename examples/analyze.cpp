/**
 * @file
 * CLI deadlock analyzer for programs in the textual format. Reads a
 * program from a file (or stdin with "-"), runs the full pipeline, and
 * optionally simulates.
 *
 * Usage: analyze <file|-> [--queues N] [--capacity N] [--lookahead]
 *                [--run] [--policy fcfs|compatible|static|random]
 *
 * With no file argument, analyzes a built-in demo program.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/compile.h"
#include "sim/machine.h"
#include "text/parser.h"
#include "text/printer.h"

using namespace syscomm;

namespace {

const char* kDemo = R"(# Fig. 7 of Kung (1988)
cells 4
message A 1 -> 2
message B 2 -> 3
message C 0 -> 3
cell 0 { W(C) W(C) W(C) W(C) }
cell 1 { W(A) W(A) W(A) W(A) }
cell 2 { R(A) R(A) R(A) R(A) W(B) W(B) W(B) W(B) }
cell 3 { R(C) R(C) R(C) R(C) R(B) R(B) R(B) R(B) }
)";

std::string
readAll(std::istream& in)
{
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

int
main(int argc, char** argv)
{
    std::string source = kDemo;
    int queues = 2;
    int capacity = 1;
    bool lookahead = false;
    bool run = false;
    sim::PolicyKind policy = sim::PolicyKind::kCompatible;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--queues" && i + 1 < argc) {
            queues = std::atoi(argv[++i]);
        } else if (arg == "--capacity" && i + 1 < argc) {
            capacity = std::atoi(argv[++i]);
        } else if (arg == "--lookahead") {
            lookahead = true;
        } else if (arg == "--run") {
            run = true;
        } else if (arg == "--policy" && i + 1 < argc) {
            std::string name = argv[++i];
            if (name == "fcfs")
                policy = sim::PolicyKind::kFcfs;
            else if (name == "static")
                policy = sim::PolicyKind::kStatic;
            else if (name == "random")
                policy = sim::PolicyKind::kRandom;
            else
                policy = sim::PolicyKind::kCompatible;
        } else if (arg == "-") {
            source = readAll(std::cin);
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s <file|-> [--queues N] [--capacity N] "
                        "[--lookahead] [--run] [--policy P]\n",
                        argv[0]);
            return 0;
        } else {
            std::ifstream file(arg);
            if (!file) {
                std::fprintf(stderr, "cannot open %s\n", arg.c_str());
                return 1;
            }
            source = readAll(file);
        }
    }

    text::ParseResult parsed = text::parseProgram(source);
    if (!parsed.ok) {
        std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
        return 1;
    }
    const Program& program = parsed.program;
    std::printf("%s\n", text::renderColumns(program).c_str());

    // Assume a linear array spanning the declared cells.
    MachineSpec machine;
    machine.topo = Topology::linearArray(program.numCells());
    machine.queuesPerLink = queues;
    machine.queueCapacity = capacity;

    CompileOptions options;
    options.lookahead = lookahead;
    CompilePlan plan = compileProgram(program, machine, options);
    std::printf("%s", plan.report(program).c_str());

    if (run) {
        // Compile-once session; the audit is opt-in per run.
        sim::SessionOptions session_options;
        if (plan.ok)
            session_options.labels = plan.normalizedLabels;
        sim::SimSession session(program, machine, session_options);
        sim::RunRequest request;
        request.policy = policy;
        request.collect = sim::Collect::kAudit;
        sim::RunResult r = session.run(request);
        std::printf("\nrun (%s): %s in %lld cycles\n",
                    sim::policyKindName(policy), r.statusStr(),
                    static_cast<long long>(r.cycles));
        if (r.status == sim::RunStatus::kDeadlocked)
            std::printf("%s", r.deadlock.render().c_str());
        std::printf("%s\n", r.audit.str(program).c_str());
    }
    return plan.ok ? 0 : 2;
}
