/**
 * @file
 * Quickstart: declare messages, write cell programs, compile with the
 * deadlock-avoidance pipeline, and simulate.
 *
 * The scenario is a 3-cell relay with a reply: cell 0 streams four
 * words to cell 2 through cell 1, which doubles each word in passing;
 * cell 2 sums them and sends one word back.
 */

#include <cstdio>

#include "core/compile.h"
#include "sim/machine.h"
#include "text/printer.h"

using namespace syscomm;

int
main()
{
    // 1. Describe the machine: a 3-cell linear array, two hardware
    //    queues per link, each buffering one word.
    MachineSpec machine;
    machine.topo = Topology::linearArray(3);
    machine.queuesPerLink = 2;
    machine.queueCapacity = 1;

    // 2. Declare the messages and write the cell programs. Every read
    //    and write is known up front — the systolic model's contract.
    Program program(3);
    MessageId in = program.declareMessage("IN", 0, 1);
    MessageId fwd = program.declareMessage("FWD", 1, 2);
    MessageId reply = program.declareMessage("REPLY", 2, 0);

    constexpr int kWords = 4;
    for (int i = 0; i < kWords; ++i) {
        double v = 1.0 + i;
        program.compute(0, [v](CellContext& ctx) { ctx.setNextWrite(v); });
        program.write(0, in);
    }
    program.read(0, reply);

    for (int i = 0; i < kWords; ++i) {
        program.read(1, in);
        program.compute(1, [](CellContext& ctx) {
            ctx.setNextWrite(2.0 * ctx.lastRead());
        });
        program.write(1, fwd);
    }

    for (int i = 0; i < kWords; ++i) {
        program.read(2, fwd);
        program.compute(2, [](CellContext& ctx) {
            ctx.local(0) += ctx.lastRead();
        });
    }
    program.compute(2, [](CellContext& ctx) {
        ctx.setNextWrite(ctx.local(0));
    });
    program.write(2, reply);

    std::printf("program:\n%s\n", text::renderColumns(program).c_str());

    // 3. Compile: crossing-off, section 6 labeling, feasibility.
    CompilePlan plan = compileProgram(program, machine);
    std::printf("%s\n", plan.report(program).c_str());
    if (!plan.ok) {
        std::printf("compile failed: %s\n", plan.error.c_str());
        return 1;
    }

    // 4. Build a simulation session: validation, labeling and all
    //    machine-state allocation happen once, here. (For a single
    //    throwaway run, sim::simulateProgram(program, machine) still
    //    works and wraps exactly this.)
    sim::SessionOptions sessionOptions;
    sessionOptions.labels = plan.normalizedLabels;
    sim::SimSession session(program, machine, sessionOptions);

    // 5. Run under the compatible queue-assignment policy. Results
    //    are opt-in: ask for the received values and the section 7
    //    audit; status, cycle count and stats always come back.
    sim::RunRequest request;
    request.collect = sim::Collect::kReceived | sim::Collect::kAudit;
    sim::RunResult result = session.run(request);

    std::printf("status: %s in %lld cycles\n", result.statusStr(),
                static_cast<long long>(result.cycles));
    std::printf("cell 0 received reply = %.1f (expected %.1f)\n",
                result.received[reply][0], 2.0 * (1 + 2 + 3 + 4));
    std::printf("assignment trace: %s\n",
                result.audit.compatible ? "compatible" : "VIOLATIONS");

    // 6. The compiled session runs any number of requests — here the
    //    unsafe FCFS baseline, no recompilation, stats-only.
    sim::RunRequest baseline;
    baseline.policy = sim::PolicyKind::kFcfs;
    sim::RunResult fcfs = session.run(baseline);
    std::printf("fcfs baseline: %s in %lld cycles\n", fcfs.statusStr(),
                static_cast<long long>(fcfs.cycles));
    return 0;
}
