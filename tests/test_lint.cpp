/**
 * @file
 * End-to-end tests of the daemon's static-analysis surface over a
 * live Unix socket: the `lint` verb answers with the full report and
 * shares the compile cache, `--lint warn` admits everything but
 * stamps diagnostics onto terminal results, and `--lint enforce`
 * rejects statically-deadlocked submissions at admission — with the
 * blocked-cycle witness in the reply and zero simulation cycles
 * spent.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <sstream>
#include <string>

#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/json.h"

namespace syscomm::serve {
namespace {

const char* kReadCycle = "cells 2\n"
                         "message X 0 -> 1\n"
                         "message Y 1 -> 0\n"
                         "cell 0 { R(Y) W(X) }\n"
                         "cell 1 { R(X) W(Y) }\n";

/** Fig. 7 of the paper: certified, zero diagnostics. */
const char* kFig7 = "cells 4\n"
                    "message A 1 -> 2\n"
                    "message B 2 -> 3\n"
                    "message C 0 -> 3\n"
                    "cell 0 { W(C) W(C) W(C) W(C) }\n"
                    "cell 1 { W(A) W(A) W(A) W(A) }\n"
                    "cell 2 { R(A) R(A) R(A) R(A)"
                    " W(B) W(B) W(B) W(B) }\n"
                    "cell 3 { R(C) R(C) R(C) R(C)"
                    " R(B) R(B) R(B) R(B) }\n";

/** Word-interleaved ring: deadlock-free on any shape (via lookahead
 *  buffering — "unknown" to the analyzer, not certified). */
std::string
ringText(int cells, int words)
{
    std::ostringstream out;
    out << "cells " << cells << "\n";
    for (int c = 0; c < cells; ++c)
        out << "message m" << c << " " << c << " -> "
            << (c + 1) % cells << "\n";
    for (int c = 0; c < cells; ++c) {
        out << "cell " << c << " {";
        for (int w = 0; w < words; ++w)
            out << " W(m" << c << ") R(m" << (c + cells - 1) % cells
                << ")";
        out << " }\n";
    }
    return out.str();
}

JsonValue
linearTopology(int cells)
{
    return JsonValue::object()
        .set("kind", JsonValue::str("linear"))
        .set("cells", JsonValue::integer(cells));
}

JsonValue
runBody(const std::string& program, JsonValue topology,
        const std::string& policy)
{
    JsonValue body = JsonValue::object();
    body.set("kind", JsonValue::str("run"));
    body.set("program", JsonValue::str(program));
    body.set("topology", std::move(topology));
    body.set("shape", JsonValue::object()
                          .set("queues", JsonValue::integer(2))
                          .set("capacity", JsonValue::integer(1)));
    JsonValue requests = JsonValue::array();
    requests.push(JsonValue::object()
                      .set("policy", JsonValue::str(policy))
                      .set("seed", JsonValue::integer(1)));
    body.set("requests", std::move(requests));
    return body;
}

struct DaemonHandle
{
    std::unique_ptr<SyscommDaemon> daemon;
    std::string socketPath;

    void start(DaemonOptions::LintMode mode, const char* tag)
    {
        DaemonOptions options;
        options.socketPath = testing::TempDir() + "sc_lint_" + tag +
                             "_" + std::to_string(::getpid()) +
                             ".sock";
        options.workers = 2;
        options.lintMode = mode;
        socketPath = options.socketPath;
        daemon = std::make_unique<SyscommDaemon>(std::move(options));
        std::string error;
        ASSERT_TRUE(daemon->start(error)) << error;
    }

    void connect(ServeClient& client)
    {
        std::string error;
        ASSERT_TRUE(client.connectUnix(socketPath, error)) << error;
    }

    ~DaemonHandle()
    {
        if (daemon)
            daemon->stop();
    }
};

JsonValue
lintRequest(const std::string& program)
{
    JsonValue msg = JsonValue::object();
    msg.set("verb", JsonValue::str("lint"));
    msg.set("program", JsonValue::str(program));
    msg.set("topology", linearTopology(2));
    return msg;
}

TEST(ServeLint, LintVerbReportsWitnessAndSharesTheCache)
{
    DaemonHandle handle;
    handle.start(DaemonOptions::LintMode::kOff, "verb");
    ServeClient client;
    handle.connect(client);

    JsonValue response;
    std::string error;
    ASSERT_TRUE(client.request(lintRequest(kReadCycle), response,
                               error))
        << error;
    EXPECT_TRUE(response.getBool("ok", false)) << writeJson(response);
    EXPECT_FALSE(response.getBool("cached_compile", true));
    const JsonValue* lint = response.find("lint");
    ASSERT_NE(lint, nullptr);
    EXPECT_EQ(lint->getString("verdict"), "deadlock");
    const JsonValue* witness = lint->find("witness");
    ASSERT_NE(witness, nullptr);
    const JsonValue* cycle = witness->find("cycle");
    ASSERT_NE(cycle, nullptr);
    EXPECT_EQ(cycle->items().size(), 2u);
    EXPECT_FALSE(response.getString("digest").empty());

    // Same program again: the compile (and with it the memoized
    // analysis) is a cache hit.
    JsonValue again;
    ASSERT_TRUE(client.request(lintRequest(kReadCycle), again,
                               error))
        << error;
    EXPECT_TRUE(again.getBool("cached_compile", false))
        << writeJson(again);
    EXPECT_EQ(again.getString("digest"),
              response.getString("digest"));

    // The verb answers on any daemon; admission stays un-gated in
    // kOff (the deadlocked run is admitted and dynamically wedges).
    std::string id;
    JsonValue submitResponse;
    ASSERT_TRUE(client.submit(
        runBody(kReadCycle, linearTopology(2), "fcfs"), id,
        submitResponse, error))
        << error;
    EXPECT_TRUE(submitResponse.getBool("ok", false));
    JsonValue status;
    ASSERT_TRUE(client.waitTerminal(id, 60'000, status, error))
        << error;
    EXPECT_EQ(status.getString("state"), "deadlocked");
}

TEST(ServeLint, WarnModeStampsDiagnosticsOnTheResult)
{
    DaemonHandle handle;
    handle.start(DaemonOptions::LintMode::kWarn, "warn");
    ServeClient client;
    handle.connect(client);

    // The deadlocked program is still admitted (warn does not gate),
    // wedges dynamically, and its result carries the lint report.
    std::string id;
    JsonValue response;
    std::string error;
    ASSERT_TRUE(client.submit(
        runBody(kReadCycle, linearTopology(2), "fcfs"), id, response,
        error))
        << error;
    EXPECT_TRUE(response.getBool("ok", false)) << writeJson(response);
    JsonValue status;
    ASSERT_TRUE(client.waitTerminal(id, 60'000, status, error))
        << error;
    EXPECT_EQ(status.getString("state"), "deadlocked");

    JsonValue result;
    ASSERT_TRUE(client.result(id, result, error)) << error;
    const JsonValue* body = result.find("result");
    ASSERT_NE(body, nullptr) << writeJson(result);
    const JsonValue* lint = body->find("lint");
    ASSERT_NE(lint, nullptr) << writeJson(result);
    EXPECT_EQ(lint->getString("verdict"), "deadlock");
    ASSERT_NE(lint->find("witness"), nullptr);

    // A certified program's result stays clean: no lint member.
    std::string cleanId;
    ASSERT_TRUE(client.submit(
        runBody(kFig7, linearTopology(4), "compatible"), cleanId,
        response, error))
        << error;
    ASSERT_TRUE(client.waitTerminal(cleanId, 60'000, status, error))
        << error;
    EXPECT_EQ(status.getString("state"), "completed");
    JsonValue cleanResult;
    ASSERT_TRUE(client.result(cleanId, cleanResult, error)) << error;
    const JsonValue* cleanBody = cleanResult.find("result");
    ASSERT_NE(cleanBody, nullptr);
    EXPECT_EQ(cleanBody->find("lint"), nullptr)
        << writeJson(cleanResult);
}

TEST(ServeLint, EnforceRejectsBeforeAnySimulationCycle)
{
    DaemonHandle handle;
    handle.start(DaemonOptions::LintMode::kEnforce, "enforce");
    ServeClient client;
    handle.connect(client);

    std::string id;
    JsonValue response;
    std::string error;
    const bool accepted = client.submit(
        runBody(kReadCycle, linearTopology(2), "fcfs"), id, response,
        error);
    EXPECT_FALSE(accepted && response.getBool("ok", false))
        << writeJson(response);
    EXPECT_EQ(response.getString("rejected"), "lint");
    EXPECT_EQ(response.getString("state"), "rejected");
    const JsonValue* lint = response.find("lint");
    ASSERT_NE(lint, nullptr) << writeJson(response);
    EXPECT_EQ(lint->getString("verdict"), "deadlock");
    const JsonValue* witness = lint->find("witness");
    ASSERT_NE(witness, nullptr);
    EXPECT_EQ(witness->find("cycle")->items().size(), 2u);

    // Rejected at admission: nothing ever compiled-for-run, ran, or
    // terminated — the counters prove zero simulation happened.
    JsonValue stats = handle.daemon->statsJson();
    EXPECT_EQ(stats.getString("lint_mode"), "enforce");
    const JsonValue* queue = stats.find("queue");
    ASSERT_NE(queue, nullptr);
    EXPECT_EQ(queue->getInt("rejected_lint", -1), 1);
    const JsonValue* subs = stats.find("submissions");
    ASSERT_NE(subs, nullptr);
    EXPECT_EQ(subs->getInt("running", -1), 0);
    EXPECT_EQ(subs->getInt("completed", -1), 0);
    EXPECT_EQ(subs->getInt("deadlocked", -1), 0);

    // A certified program sails through enforce — and because the
    // admission gate already compiled it through the shared cache,
    // even this FIRST submission's execution is a cache hit.
    std::string cleanId;
    ASSERT_TRUE(client.submit(
        runBody(ringText(4, 8),
                JsonValue::object()
                    .set("kind", JsonValue::str("ring"))
                    .set("cells", JsonValue::integer(4)),
                "compatible"),
        cleanId, response, error))
        << error;
    EXPECT_TRUE(response.getBool("ok", false)) << writeJson(response);
    JsonValue status;
    ASSERT_TRUE(client.waitTerminal(cleanId, 60'000, status, error))
        << error;
    EXPECT_EQ(status.getString("state"), "completed");
    JsonValue result;
    ASSERT_TRUE(client.result(cleanId, result, error)) << error;
    const JsonValue* body = result.find("result");
    ASSERT_NE(body, nullptr);
    EXPECT_TRUE(body->getBool("cached_compile", false))
        << writeJson(result);
}

TEST(ServeLint, IdempotentRetryDedupsAheadOfTheGate)
{
    DaemonHandle handle;
    handle.start(DaemonOptions::LintMode::kEnforce, "dedup");
    ServeClient client;
    handle.connect(client);

    JsonValue body = runBody(ringText(4, 8),
                             JsonValue::object()
                                 .set("kind", JsonValue::str("ring"))
                                 .set("cells",
                                      JsonValue::integer(4)),
                             "compatible");
    body.set("idempotency_key", JsonValue::str("job-lint-1"));

    std::string id1;
    JsonValue response1;
    std::string error;
    ASSERT_TRUE(client.submit(body, id1, response1, error)) << error;
    EXPECT_TRUE(response1.getBool("ok", false));

    // The retry lands on the original id without re-running the
    // admission analysis gate.
    std::string id2;
    JsonValue response2;
    ASSERT_TRUE(client.submit(body, id2, response2, error)) << error;
    EXPECT_TRUE(response2.getBool("ok", false));
    EXPECT_EQ(id2, id1);
    EXPECT_TRUE(response2.getBool("deduplicated", false))
        << writeJson(response2);
}

} // namespace
} // namespace syscomm::serve
