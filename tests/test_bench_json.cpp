/**
 * @file
 * Regression coverage for the BENCH_*.json emission in
 * bench/bench_util.h: every line a JsonWriter produces must be a
 * valid JSON object — including when callers hand it NaN/Inf values,
 * raw "nan"/"inf" extra tokens, almost-numeric strings ("+5", "0x1f",
 * "1e"), quotes and control characters. A single invalid line breaks
 * every downstream consumer of a results file, which is exactly how
 * the nan/inf hole was found.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cfloat>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "../bench/bench_util.h"

namespace syscomm {
namespace {

/**
 * A strict validating parser for the subset of JSON the writer emits:
 * one object of string keys mapping to strings, numbers or null.
 * Returns false on anything RFC 8259 would reject.
 */
class LineParser
{
  public:
    explicit LineParser(const std::string& s) : s_(s) {}

    bool
    parse()
    {
        skipWs();
        if (!parseObject())
            return false;
        skipWs();
        return at_ == s_.size();
    }

  private:
    bool
    parseObject()
    {
        if (!eat('{'))
            return false;
        skipWs();
        if (eat('}'))
            return true;
        for (;;) {
            skipWs();
            if (!parseString())
                return false;
            skipWs();
            if (!eat(':'))
                return false;
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (eat('}'))
                return true;
            if (!eat(','))
                return false;
        }
    }

    bool
    parseValue()
    {
        if (at_ < s_.size() && s_[at_] == '"')
            return parseString();
        if (matchLiteral("null") || matchLiteral("true") ||
            matchLiteral("false"))
            return true;
        return parseNumber();
    }

    bool
    parseString()
    {
        if (!eat('"'))
            return false;
        while (at_ < s_.size()) {
            char c = s_[at_];
            if (c == '"') {
                ++at_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control char: invalid JSON
            if (c == '\\') {
                ++at_;
                if (at_ >= s_.size())
                    return false;
                char e = s_[at_];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (at_ + i >= s_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                s_[at_ + i])))
                            return false;
                    }
                    at_ += 4;
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return false;
                }
            }
            ++at_;
        }
        return false; // unterminated
    }

    bool
    parseNumber()
    {
        std::size_t start = at_;
        if (at_ < s_.size() && s_[at_] == '-')
            ++at_;
        if (at_ < s_.size() && s_[at_] == '0') {
            ++at_;
        } else if (!digits()) {
            return false;
        }
        if (at_ < s_.size() && s_[at_] == '.') {
            ++at_;
            if (!digits())
                return false;
        }
        if (at_ < s_.size() && (s_[at_] == 'e' || s_[at_] == 'E')) {
            ++at_;
            if (at_ < s_.size() && (s_[at_] == '+' || s_[at_] == '-'))
                ++at_;
            if (!digits())
                return false;
        }
        return at_ > start;
    }

    bool
    digits()
    {
        std::size_t start = at_;
        while (at_ < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[at_])))
            ++at_;
        return at_ > start;
    }

    bool
    matchLiteral(const char* lit)
    {
        std::size_t n = std::string(lit).size();
        if (s_.compare(at_, n, lit) == 0) {
            at_ += n;
            return true;
        }
        return false;
    }

    bool
    eat(char c)
    {
        if (at_ < s_.size() && s_[at_] == c) {
            ++at_;
            return true;
        }
        return false;
    }

    void
    skipWs()
    {
        while (at_ < s_.size() &&
               (s_[at_] == ' ' || s_[at_] == '\t'))
            ++at_;
    }

    const std::string& s_;
    std::size_t at_ = 0;
};

std::vector<std::string>
emitAdversarialRecords(const std::string& path)
{
    bench::JsonWriter json("torture \"bench\"\n", path);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();

    json.record("plain", 1.25);
    json.record("nan_value", nan);
    json.record("pos_inf", inf);
    json.record("neg_inf", -inf);
    json.record("dbl_max", DBL_MAX);
    json.record("neg_dbl_max", -DBL_MAX);
    json.record("tiny", std::numeric_limits<double>::denorm_min());
    // Extras covering the raw-token grammar: strtod-accepted forms
    // JSON forbids must come out quoted, real numbers bare.
    json.record("extras", 0.0,
                {{"nan_token", "nan"},
                 {"inf_token", "inf"},
                 {"neg_inf_token", "-inf"},
                 {"plus", "+5"},
                 {"hex", "0x1f"},
                 {"trailing_dot", "5."},
                 {"leading_dot", ".5"},
                 {"bare_e", "1e"},
                 {"leading_zero", "007"},
                 {"empty", ""},
                 {"ok_int", "-12"},
                 {"ok_float", "3.5e-2"},
                 {"quote", "say \"hi\\there"},
                 {"control", std::string("a\nb\x01c")}});

    std::vector<std::string> lines;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

TEST(BenchJson, EveryEmittedLineParsesAsJson)
{
    const std::string path =
        testing::TempDir() + "bench_json_torture.json";
    std::remove(path.c_str());
    std::vector<std::string> lines = emitAdversarialRecords(path);
    ASSERT_EQ(lines.size(), 8u);
    for (const std::string& line : lines) {
        EXPECT_TRUE(LineParser(line).parse()) << "invalid JSON: " << line;
    }
    std::remove(path.c_str());
}

TEST(BenchJson, NonFiniteValuesBecomeNullAndFiniteOnesDoNot)
{
    const std::string path =
        testing::TempDir() + "bench_json_nonfinite.json";
    std::remove(path.c_str());
    std::vector<std::string> lines = emitAdversarialRecords(path);
    ASSERT_EQ(lines.size(), 8u);

    auto lineFor = [&](const std::string& metric) {
        for (const std::string& line : lines) {
            if (line.find("\"" + metric + "\"") != std::string::npos)
                return line;
        }
        return std::string();
    };
    EXPECT_NE(lineFor("nan_value").find("\"value\": null"),
              std::string::npos);
    EXPECT_NE(lineFor("pos_inf").find("\"value\": null"),
              std::string::npos);
    EXPECT_NE(lineFor("neg_inf").find("\"value\": null"),
              std::string::npos);
    // DBL_MAX is finite: it must survive as a number (the old range
    // check nulled everything past 1e308).
    EXPECT_EQ(lineFor("dbl_max").find("null"), std::string::npos);
    EXPECT_EQ(lineFor("neg_dbl_max").find("null"), std::string::npos);

    // Raw nan/inf extra tokens must be quoted, never bare.
    const std::string extras = lineFor("extras");
    EXPECT_NE(extras.find("\"nan_token\": \"nan\""), std::string::npos);
    EXPECT_NE(extras.find("\"inf_token\": \"inf\""), std::string::npos);
    EXPECT_NE(extras.find("\"ok_int\": -12"), std::string::npos);
    EXPECT_NE(extras.find("\"ok_float\": 3.5e-2"), std::string::npos);
    std::remove(path.c_str());
}

/**
 * The committed BENCH_*.json files at the repo root are read by CI
 * trend tooling and by humans comparing runs; a stale file with
 * placeholder rows (the "recovery_outcome": -1 / all-zero-digest rows
 * an older bench_fault_sweep emitted for runs whose fault plan never
 * fired) silently poisons both. Scan every committed results file:
 * each line must parse, no row may carry the -1 placeholder outcome,
 * and an all-zero digest is only acceptable on a row that also
 * records a non-empty error (a genuinely unrecoverable run never
 * produced a recovery machine to digest).
 */
TEST(BenchJson, CommittedBenchFilesContainNoPlaceholderRows)
{
#ifndef SYSCOMM_SOURCE_DIR
    GTEST_SKIP() << "SYSCOMM_SOURCE_DIR not defined";
#else
    namespace fs = std::filesystem;
    const fs::path root(SYSCOMM_SOURCE_DIR);
    ASSERT_TRUE(fs::exists(root)) << root;

    int filesSeen = 0;
    for (const fs::directory_entry& entry : fs::directory_iterator(root)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) != 0 ||
            entry.path().extension() != ".json")
            continue;
        ++filesSeen;
        std::ifstream in(entry.path());
        ASSERT_TRUE(in.is_open()) << entry.path();
        std::string line;
        int lineNo = 0;
        while (std::getline(in, line)) {
            ++lineNo;
            if (line.empty())
                continue;
            EXPECT_TRUE(LineParser(line).parse())
                << name << ":" << lineNo << ": invalid JSON: " << line;
            EXPECT_EQ(line.find("\"recovery_outcome\", \"value\": -1"),
                      std::string::npos)
                << name << ":" << lineNo
                << ": placeholder -1 outcome row — regenerate the "
                   "bench output";
            // An all-zero digest without an explanation is the old
            // placeholder; with a recorded error it is a legitimate
            // unrecoverable run.
            if (line.find("0x0000000000000000") != std::string::npos) {
                EXPECT_EQ(line.find("\"error\": \"\""), std::string::npos)
                    << name << ":" << lineNo
                    << ": zero digest with empty error — placeholder "
                       "row, regenerate the bench output";
                EXPECT_EQ(line.find("\"faulted\": \"no\""),
                          std::string::npos)
                    << name << ":" << lineNo
                    << ": zero digest on a non-faulted run — "
                       "placeholder row, regenerate the bench output";
            }
        }
    }
    // The repo ships results files; seeing none means the path wiring
    // broke and the scan silently checked nothing.
    EXPECT_GT(filesSeen, 0) << "no BENCH_*.json found under " << root;
#endif
}

} // namespace
} // namespace syscomm
