/**
 * @file
 * SimSession / SweepRunner coverage: the compile-once/run-many entry
 * point must be indistinguishable from a fresh single-use simulator
 * on every run, across interleaved seeds and policies; the threaded
 * sweep driver must equal a serial loop over the same requests; and
 * the Collect flags must gate exactly the vectors they name without
 * perturbing any counter.
 */

#include <gtest/gtest.h>

#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algos/paper_figures.h"
#include "core/program_gen.h"
#include "sim/batch.h"
#include "sim/machine.h"
#include "sim/session.h"
#include "test_support.h"

namespace syscomm {
namespace {

using sim::ArraySimulator;
using sim::Collect;
using sim::collects;
using sim::KernelKind;
using sim::PolicyKind;
using sim::RunRequest;
using sim::RunResult;
using sim::RunStatus;
using sim::SessionOptions;
using sim::SimOptions;
using sim::SimSession;
using sim::simulateProgram;
using sim::SweepOptions;
using sim::SweepRunner;
using sim::SweepSummary;

/** A seed-sensitive workload: perturbed program under unsafe policies
 *  (covers both completed and deadlocked runs). */
Program
perturbedProgram(std::uint64_t seed)
{
    Topology topo = Topology::linearArray(5);
    GenOptions gen;
    gen.numMessages = 6;
    gen.maxWords = 4;
    gen.seed = 200 + seed;
    gen.interleave = 0.5;
    Program p = randomDeadlockFreeProgram(topo, gen);
    return perturbProgram(p, static_cast<int>(1 + seed % 4), seed);
}

MachineSpec
smallSpec(int cells, int queues, int capacity)
{
    MachineSpec spec;
    spec.topo = Topology::linearArray(cells);
    spec.queuesPerLink = queues;
    spec.queueCapacity = capacity;
    return spec;
}

// ---------------------------------------------------------------------
// (a) run -> reset -> run is bit-identical to a fresh simulator
// ---------------------------------------------------------------------

TEST(SimSession, RerunIsBitIdenticalToFreshSimulator)
{
    for (KernelKind kernel :
         {KernelKind::kEventDriven, KernelKind::kReference}) {
        for (PolicyKind policy :
             {PolicyKind::kCompatible, PolicyKind::kFcfs,
              PolicyKind::kRandom}) {
            Program p = perturbedProgram(3);
            MachineSpec spec = smallSpec(5, 2, 1);

            SessionOptions session;
            session.kernel = kernel;
            SimSession reused(p, spec, session);

            RunRequest request;
            request.policy = policy;
            request.seed = 7;
            request.maxCycles = 20'000;
            request.collect = Collect::kAll;

            RunResult first = reused.run(request);
            RunResult second = reused.run(request);
            RunResult third = reused.run(request);

            SimOptions legacy;
            legacy.kernel = kernel;
            legacy.policy = policy;
            legacy.seed = 7;
            legacy.maxCycles = 20'000;
            legacy.audit = true;
            RunResult fresh = simulateProgram(p, spec, legacy);

            std::string ctx =
                std::string("kernel=") + sim::kernelKindName(kernel) +
                " policy=" + sim::policyKindName(policy);
            expectSameRunResult(second, first, ctx + " (2nd vs 1st)");
            expectSameRunResult(third, first, ctx + " (3rd vs 1st)");
            expectSameRunResult(first, fresh, ctx + " (session vs fresh)");
        }
    }
    EXPECT_NE(perturbedProgram(3).numMessages(), 0);
}

// ---------------------------------------------------------------------
// (b) interleaved different-seed runs don't leak state
// ---------------------------------------------------------------------

TEST(SimSession, InterleavedSeedsDoNotLeakState)
{
    Program p = perturbedProgram(5);
    MachineSpec spec = smallSpec(5, 1, 1);

    SimSession session(p, spec);
    const std::uint64_t seeds[] = {1, 2, 9, 4, 2, 1, 9};

    // Fresh baselines per seed.
    std::vector<RunResult> fresh;
    for (std::uint64_t seed : seeds) {
        SimOptions legacy;
        legacy.policy = PolicyKind::kRandom;
        legacy.seed = seed;
        legacy.maxCycles = 20'000;
        legacy.audit = true; // Collect::kAll audits too
        fresh.push_back(simulateProgram(p, spec, legacy));
    }

    // The same seeds interleaved through one session.
    for (std::size_t i = 0; i < std::size(seeds); ++i) {
        RunRequest request;
        request.policy = PolicyKind::kRandom;
        request.seed = seeds[i];
        request.maxCycles = 20'000;
        request.collect = Collect::kAll;
        RunResult r = session.run(request);
        expectSameRunResult(r, fresh[i],
                         "seed=" + std::to_string(seeds[i]) + " pos=" +
                             std::to_string(i));
    }
    EXPECT_EQ(session.runCount(), static_cast<int>(std::size(seeds)));
}

TEST(SimSession, InterleavedPoliciesDoNotLeakState)
{
    Program p = perturbedProgram(2);
    MachineSpec spec = smallSpec(5, 2, 1);
    SimSession session(p, spec);

    const PolicyKind order[] = {
        PolicyKind::kCompatible, PolicyKind::kFcfs, PolicyKind::kRandom,
        PolicyKind::kCompatibleEager, PolicyKind::kCompatible,
        PolicyKind::kRandom, PolicyKind::kFcfs};
    for (PolicyKind policy : order) {
        RunRequest request;
        request.policy = policy;
        request.seed = 11;
        request.maxCycles = 20'000;
        request.collect = Collect::kAll;
        RunResult r = session.run(request);

        SimOptions legacy;
        legacy.policy = policy;
        legacy.seed = 11;
        legacy.maxCycles = 20'000;
        legacy.audit = true; // Collect::kAll audits too
        RunResult fresh = simulateProgram(p, spec, legacy);
        expectSameRunResult(r, fresh,
                         std::string("policy=") +
                             sim::policyKindName(policy));
    }
}

// ---------------------------------------------------------------------
// (c) SweepRunner == serial loop over the same requests
// ---------------------------------------------------------------------

std::vector<RunRequest>
mixedRequests()
{
    std::vector<RunRequest> requests;
    const PolicyKind policies[] = {PolicyKind::kCompatible,
                                   PolicyKind::kFcfs, PolicyKind::kRandom};
    for (PolicyKind policy : policies) {
        for (std::uint64_t seed = 1; seed <= 8; ++seed) {
            RunRequest request;
            request.policy = policy;
            request.seed = seed;
            request.maxCycles = 20'000;
            request.collect = Collect::kEvents | Collect::kReceived;
            requests.push_back(request);
        }
    }
    return requests;
}

TEST(SweepRunner, MatchesSerialLoop)
{
    Program p = perturbedProgram(7);
    MachineSpec spec = smallSpec(5, 2, 1);
    std::vector<RunRequest> requests = mixedRequests();

    // Serial loop through one session.
    SimSession serial(p, spec);
    std::vector<RunResult> serialResults;
    for (const RunRequest& request : requests)
        serialResults.push_back(serial.run(request));

    for (int workers : {1, 2, 4}) {
        SweepOptions sweepOptions;
        sweepOptions.numWorkers = workers;
        SweepRunner runner(p, spec, {}, sweepOptions);
        SweepSummary summary = runner.run(requests);

        ASSERT_EQ(summary.results.size(), requests.size());
        EXPECT_EQ(summary.workersUsed,
                  std::min<int>(workers,
                                static_cast<int>(requests.size())));
        for (std::size_t i = 0; i < requests.size(); ++i) {
            expectSameRunResult(summary.results[i], serialResults[i],
                             "workers=" + std::to_string(workers) +
                                 " request=" + std::to_string(i));
        }

        // Aggregates equal the serial aggregation too.
        SweepSummary serialSummary =
            sim::summarizeSweep(std::move(serialResults), requests);
        EXPECT_EQ(summary.completed(), serialSummary.completed());
        EXPECT_EQ(summary.deadlocked(), serialSummary.deadlocked());
        EXPECT_EQ(summary.p50Cycles, serialSummary.p50Cycles);
        EXPECT_EQ(summary.p90Cycles, serialSummary.p90Cycles);
        EXPECT_EQ(summary.p99Cycles, serialSummary.p99Cycles);
        EXPECT_EQ(summary.minCycles, serialSummary.minCycles);
        EXPECT_EQ(summary.maxCycles, serialSummary.maxCycles);
        EXPECT_DOUBLE_EQ(summary.meanCycles, serialSummary.meanCycles);
        ASSERT_EQ(summary.perPolicy.size(),
                  serialSummary.perPolicy.size());
        for (std::size_t k = 0; k < summary.perPolicy.size(); ++k) {
            EXPECT_EQ(summary.perPolicy[k].policy,
                      serialSummary.perPolicy[k].policy);
            EXPECT_EQ(summary.perPolicy[k].runs,
                      serialSummary.perPolicy[k].runs);
            EXPECT_EQ(summary.perPolicy[k].completed,
                      serialSummary.perPolicy[k].completed);
            EXPECT_EQ(summary.perPolicy[k].deadlocked,
                      serialSummary.perPolicy[k].deadlocked);
            EXPECT_DOUBLE_EQ(summary.perPolicy[k].meanCycles,
                             serialSummary.perPolicy[k].meanCycles);
        }
        serialResults = std::move(serialSummary.results);
    }
}

TEST(SweepRunner, PersistentPoolKeepsBatchesDeterministic)
{
    // Many small batches through one runner: the pool threads are
    // spawned by the first threaded batch and reused by every later
    // one (pooledWorkers never shrinks), interleaved batch shapes —
    // including single-request batches that run inline — do not
    // perturb results, and every batch matches the serial loop
    // bit for bit.
    Program p = perturbedProgram(7);
    MachineSpec spec = smallSpec(5, 2, 1);
    std::vector<RunRequest> requests = mixedRequests();

    SimSession serial(p, spec);
    std::vector<RunResult> serialResults;
    for (const RunRequest& request : requests)
        serialResults.push_back(serial.run(request));

    SweepOptions sweepOptions;
    sweepOptions.numWorkers = 3;
    SweepRunner runner(p, spec, {}, sweepOptions);
    EXPECT_EQ(runner.pooledWorkers(), 0); // lazily spawned

    for (int batch = 0; batch < 4; ++batch) {
        SweepSummary summary = runner.run(requests);
        EXPECT_EQ(runner.pooledWorkers(), 2); // workers - 1, persistent
        ASSERT_EQ(summary.results.size(), requests.size());
        for (std::size_t i = 0; i < requests.size(); ++i) {
            expectSameRunResult(summary.results[i], serialResults[i],
                             "batch=" + std::to_string(batch) +
                                 " request=" + std::to_string(i));
        }

        // An inline single-request batch between threaded ones.
        std::vector<RunRequest> one{requests[batch]};
        SweepSummary single = runner.run(one);
        ASSERT_EQ(single.results.size(), 1u);
        EXPECT_EQ(single.workersUsed, 1);
        expectSameRunResult(single.results.front(), serialResults[batch],
                         "inline batch=" + std::to_string(batch));
        EXPECT_EQ(runner.pooledWorkers(), 2); // pool never shed
    }
}

TEST(SweepRunner, StatusHistogramCoversDeadlocks)
{
    // Fig. 7 at one queue per link: the compatible policy completes,
    // FCFS jams — the histogram must see both terminal states.
    Program p = algos::fig7Program();
    MachineSpec spec;
    spec.topo = algos::fig7Topology();
    spec.queuesPerLink = 1;
    spec.queueCapacity = 1;
    std::vector<RunRequest> requests;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        RunRequest request;
        request.policy =
            seed % 2 ? PolicyKind::kFcfs : PolicyKind::kCompatible;
        request.seed = seed;
        request.maxCycles = 20'000;
        requests.push_back(request);
    }
    SweepRunner runner(p, spec, {}, {4});
    SweepSummary summary = runner.run(requests);
    EXPECT_EQ(summary.completed(), 6);
    EXPECT_EQ(summary.deadlocked(), 6);
    ASSERT_EQ(summary.perPolicy.size(), 2u);
    EXPECT_EQ(summary.perPolicy[0].policy, PolicyKind::kCompatible);
    EXPECT_EQ(summary.perPolicy[0].completed, 6);
    EXPECT_EQ(summary.perPolicy[1].policy, PolicyKind::kFcfs);
    EXPECT_EQ(summary.perPolicy[1].deadlocked, 6);
    EXPECT_FALSE(summary.str().empty());
}

TEST(SweepSummary, PrintedHistogramCoversEveryStatusIncludingPaused)
{
    // A paused run in a batch must appear in the printed report: the
    // histogram line is generated from runStatusName over all
    // kNumRunStatuses buckets, so a status added later cannot be
    // silently dropped (kPaused was, before this printed by name).
    std::vector<RunResult> results(sim::kNumRunStatuses);
    for (int s = 0; s < sim::kNumRunStatuses; ++s)
        results[s].status = static_cast<RunStatus>(s);
    std::vector<RunRequest> requests(results.size());
    SweepSummary summary =
        sim::summarizeSweep(std::move(results), requests);
    const std::string text = summary.str();
    for (int s = 0; s < sim::kNumRunStatuses; ++s) {
        const std::string bucket =
            std::string(sim::runStatusName(static_cast<RunStatus>(s))) +
            " 1";
        EXPECT_NE(text.find(bucket), std::string::npos)
            << "missing bucket '" << bucket << "' in:\n"
            << text;
    }
}

TEST(SweepSummary, AllErrorBatchHasNoFabricatedCycleDistribution)
{
    // Every run a config error: there is no cycle distribution, and
    // the order statistics must say so (-1) instead of computing
    // percentiles of an empty vector (UB) or faking a 0.
    std::vector<RunResult> results(3);
    std::vector<RunRequest> requests(3);
    SweepSummary summary =
        sim::summarizeSweep(std::move(results), requests);
    EXPECT_EQ(summary.minCycles, -1);
    EXPECT_EQ(summary.maxCycles, -1);
    EXPECT_EQ(summary.p50Cycles, -1);
    EXPECT_EQ(summary.p90Cycles, -1);
    EXPECT_EQ(summary.p99Cycles, -1);
    EXPECT_DOUBLE_EQ(summary.meanCycles, 0.0);
    EXPECT_EQ(summary.statusCounts[static_cast<int>(
                  RunStatus::kConfigError)],
              3);
    EXPECT_FALSE(summary.str().empty());
}

// ---------------------------------------------------------------------
// (d) Collect flags off => vectors empty, stats unchanged
// ---------------------------------------------------------------------

TEST(SimSession, CollectFlagsGateVectorsWithoutChangingStats)
{
    Program p = perturbedProgram(4);
    MachineSpec spec = smallSpec(5, 2, 2);
    SimSession session(p, spec);

    RunRequest all;
    all.seed = 3;
    all.maxCycles = 20'000;
    all.collect = Collect::kAll;
    RunResult full = session.run(all);

    RunRequest none = all;
    none.collect = Collect::kNone;
    RunResult bare = session.run(none);

    // Identical simulation...
    EXPECT_EQ(bare.status, full.status);
    EXPECT_EQ(bare.cycles, full.cycles);
    EXPECT_TRUE(bare.stats == full.stats)
        << "full:\n"
        << full.stats.summary() << "bare:\n"
        << bare.stats.summary();
    EXPECT_EQ(bare.labelsUsed, full.labelsUsed);

    // ...with nothing materialized.
    EXPECT_TRUE(bare.events.empty());
    EXPECT_TRUE(bare.releases.empty());
    EXPECT_TRUE(bare.msgTiming.empty());
    EXPECT_TRUE(bare.received.empty());
    EXPECT_TRUE(bare.audit.compatible);
    EXPECT_TRUE(bare.audit.violations.empty());

    // And the full run actually collected things to gate.
    EXPECT_FALSE(full.events.empty());
    EXPECT_FALSE(full.releases.empty());
    EXPECT_FALSE(full.msgTiming.empty());
    EXPECT_FALSE(full.received.empty());

    // Each flag gates exactly its vector.
    RunRequest timingOnly = all;
    timingOnly.collect = Collect::kMsgTiming;
    RunResult timed = session.run(timingOnly);
    EXPECT_TRUE(timed.events.empty());
    EXPECT_TRUE(timed.received.empty());
    EXPECT_EQ(timed.msgTiming, full.msgTiming);
    EXPECT_TRUE(timed.stats == full.stats);

    RunRequest auditOnly = all;
    auditOnly.collect = Collect::kAudit;
    RunResult audited = session.run(auditOnly);
    // The audit consumed the event log internally but did not
    // materialize it.
    EXPECT_TRUE(audited.events.empty());
    EXPECT_EQ(audited.audit.compatible, full.audit.compatible);
    EXPECT_EQ(audited.audit.violations.size(),
              full.audit.violations.size());
}

// ---------------------------------------------------------------------
// Observer streaming
// ---------------------------------------------------------------------

class RecordingObserver : public sim::RunObserver
{
  public:
    void onAssign(const sim::AssignmentEvent& e) override
    {
        assigns.push_back(e);
    }
    void onRelease(const sim::AssignmentEvent& e) override
    {
        releases.push_back(e);
    }
    void onDeliver(MessageId msg, int seq, double value, Cycle now) override
    {
        (void)value;
        (void)now;
        deliveries.emplace_back(msg, seq);
    }

    std::vector<sim::AssignmentEvent> assigns;
    std::vector<sim::AssignmentEvent> releases;
    std::vector<std::pair<MessageId, int>> deliveries;
};

TEST(SimSession, ObserverStreamsWhatCollectWouldMaterialize)
{
    Program p = perturbedProgram(1);
    MachineSpec spec = smallSpec(5, 2, 1);
    SimSession session(p, spec);

    RunRequest collected;
    collected.seed = 2;
    collected.maxCycles = 20'000;
    collected.collect = Collect::kEvents | Collect::kReleases;
    RunResult full = session.run(collected);

    RecordingObserver observer;
    RunRequest streamed;
    streamed.seed = 2;
    streamed.maxCycles = 20'000;
    streamed.observer = &observer;
    RunResult bare = session.run(streamed);

    EXPECT_EQ(bare.status, full.status);
    EXPECT_TRUE(bare.events.empty());
    EXPECT_EQ(observer.assigns, full.events);
    EXPECT_EQ(observer.releases, full.releases);
    EXPECT_EQ(static_cast<std::int64_t>(observer.deliveries.size()),
              full.stats.wordsDelivered);
}

// ---------------------------------------------------------------------
// Config errors don't poison the session
// ---------------------------------------------------------------------

TEST(SimSession, RecoversAfterPolicyConfigError)
{
    // Static assignment on a 1-queue machine with competing messages
    // fails at cycle 0; the next run on the same session must be
    // unaffected.
    Program p = perturbedProgram(6);
    MachineSpec spec = smallSpec(5, 1, 1);
    SimSession session(p, spec);

    RunRequest bad;
    bad.policy = PolicyKind::kStatic;
    bad.maxCycles = 20'000;
    RunResult failed = session.run(bad);
    ASSERT_EQ(failed.status, RunStatus::kConfigError);
    EXPECT_FALSE(failed.error.empty());

    RunRequest good;
    good.policy = PolicyKind::kCompatible;
    good.maxCycles = 20'000;
    good.collect = Collect::kAll;
    RunResult after = session.run(good);

    SimOptions legacy;
    legacy.policy = PolicyKind::kCompatible;
    legacy.maxCycles = 20'000;
    RunResult fresh = simulateProgram(p, spec, legacy);
    expectSameRunResult(after, fresh, "run after config error");
}

TEST(SimSession, StaticCycleZeroEventsKeepAscendingLinkOrder)
{
    // The pre-session simulator set links up in ascending order at
    // cycle 0; the routed-links-only loop must preserve that order in
    // the event log.
    Program p(4);
    MessageId m = p.declareMessage("M", 0, 3); // crosses links 0,1,2
    p.write(0, m);
    p.read(3, m);
    MachineSpec spec = smallSpec(4, 1, 1);

    SimSession session(p, spec);
    RunRequest request;
    request.policy = PolicyKind::kStatic;
    request.collect = Collect::kEvents;
    RunResult r = session.run(request);
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    ASSERT_EQ(r.events.size(), 3u);
    for (std::size_t i = 0; i < r.events.size(); ++i) {
        EXPECT_EQ(r.events[i].cycle, 0);
        EXPECT_EQ(r.events[i].link, static_cast<LinkIndex>(i));
    }
}

TEST(SimSession, ConfigErrorResultHonorsCollectFlags)
{
    // Static setup fully succeeds on link 0 (one crossing, one
    // queue) and then fails on link 1 (two competing crossings): the
    // partial cycle-0 assignment event from link 0 must not leak into
    // a result that never asked for events.
    Program p(3);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 1, 2);
    MessageId c = p.declareMessage("C", 1, 2);
    p.write(0, a);
    p.read(1, a);
    p.write(1, b);
    p.read(2, b);
    p.write(1, c);
    p.read(2, c);
    MachineSpec spec = smallSpec(3, 1, 1);

    SimSession session(p, spec);
    RunRequest bad;
    bad.policy = PolicyKind::kStatic;
    bad.collect = Collect::kAudit; // audit tracks events internally
    RunResult r = session.run(bad);
    ASSERT_EQ(r.status, RunStatus::kConfigError);
    EXPECT_TRUE(r.events.empty());

    // Asking for events does expose the partial cycle-0 log, exactly
    // as the single-use simulator always did.
    bad.collect = Collect::kAudit | Collect::kEvents;
    RunResult collected = session.run(bad);
    ASSERT_EQ(collected.status, RunStatus::kConfigError);
    EXPECT_FALSE(collected.events.empty());
}

TEST(SimSession, InvalidProgramReportsConfigErrorEveryRun)
{
    Program p(2);
    p.declareMessage("M", 0, 0); // sender == receiver: validation fails
    MachineSpec spec = smallSpec(2, 2, 1);

    SimSession session(p, spec);
    EXPECT_FALSE(session.valid());
    EXPECT_FALSE(session.error().empty());
    for (int i = 0; i < 2; ++i) {
        RunResult r = session.run({});
        EXPECT_EQ(r.status, RunStatus::kConfigError);
        EXPECT_FALSE(r.error.empty());
    }
}

// ---------------------------------------------------------------------
// Session labels & per-run overrides
// ---------------------------------------------------------------------

TEST(SimSession, RunLabelOverridesDoNotStickToTheSession)
{
    Program p = perturbedProgram(8);
    MachineSpec spec = smallSpec(5, 2, 1);
    SimSession session(p, spec);

    RunRequest plain;
    plain.maxCycles = 20'000;
    plain.collect = Collect::kAll;
    RunResult before = session.run(plain);

    // Trivial all-equal labels for one run only.
    RunRequest trivial = plain;
    trivial.labels.assign(p.numMessages(), 0);
    RunResult overridden = session.run(trivial);
    EXPECT_EQ(overridden.labelsUsed, trivial.labels);

    RunResult after = session.run(plain);
    expectSameRunResult(after, before, "after label override");
}

TEST(SimSession, LabelFreeRunsAreHistoryIndependent)
{
    Program p = perturbedProgram(9);
    MachineSpec spec = smallSpec(5, 2, 1);
    SimSession session(p, spec);

    RunRequest fcfs;
    fcfs.policy = PolicyKind::kFcfs;
    fcfs.maxCycles = 20'000;
    fcfs.collect = Collect::kEvents; // events but no audit: no labels
    RunResult before = session.run(fcfs);
    EXPECT_TRUE(before.labelsUsed.empty());

    // A compatible run resolves the session labels...
    RunRequest compat;
    compat.maxCycles = 20'000;
    EXPECT_FALSE(session.run(compat).labelsUsed.empty());

    // ...but an identical label-free request still reports none, and
    // matches both its own first run and a fresh simulator.
    RunResult after = session.run(fcfs);
    expectSameRunResult(after, before, "fcfs after compatible");

    SimOptions legacy;
    legacy.policy = PolicyKind::kFcfs;
    legacy.maxCycles = 20'000;
    RunResult fresh = simulateProgram(p, spec, legacy);
    EXPECT_TRUE(fresh.labelsUsed.empty());
    EXPECT_EQ(after.labelsUsed, fresh.labelsUsed);
    EXPECT_EQ(after.events, fresh.events);

    // Legacy callers that hand labels to a label-free policy still
    // see them echoed (the wrapper forwards them as a per-run
    // override).
    SimOptions withLabels = legacy;
    withLabels.labels.assign(p.numMessages(), 0);
    EXPECT_EQ(simulateProgram(p, spec, withLabels).labelsUsed,
              withLabels.labels);
}

// ---------------------------------------------------------------------
// (h) pooled workers with per-worker arenas, interleaved across
//     machine shapes
// ---------------------------------------------------------------------

TEST(SweepRunner, InterleavedMultiShapeBatchesMatchSerial)
{
    // Three runners over three machine *shapes* (queue count /
    // capacity / extension ladders), each with its own persistent
    // worker pool and per-worker arena-backed sessions. Batches are
    // fed to the runners round-robin — the interleaving a
    // shape-ladder sweep produces — and every result must equal a
    // serial SimSession loop. Run under TSan in CI: any sharing of
    // hot arena state between workers (or stale state surviving the
    // request-queue hand-off between batches) is a race or a
    // mismatch here.
    Program p = perturbedProgram(6);
    const MachineSpec shapes[] = {
        smallSpec(5, 1, 1),
        smallSpec(5, 2, 2),
        [] {
            MachineSpec s = smallSpec(5, 2, 1);
            s.extensionCapacity = 2;
            s.extensionPenalty = 3;
            return s;
        }(),
    };

    SweepOptions threaded;
    threaded.numWorkers = 3;
    std::vector<std::unique_ptr<SweepRunner>> runners;
    std::vector<std::unique_ptr<SimSession>> serials;
    for (const MachineSpec& shape : shapes) {
        runners.push_back(std::make_unique<SweepRunner>(
            p, shape, SessionOptions{}, threaded));
        serials.push_back(std::make_unique<SimSession>(p, shape));
    }

    const PolicyKind policies[] = {PolicyKind::kCompatible,
                                   PolicyKind::kFcfs, PolicyKind::kRandom};
    for (int round = 0; round < 3; ++round) {
        std::vector<RunRequest> batch;
        for (std::uint64_t seed = 1; seed <= 6; ++seed) {
            RunRequest request;
            request.policy = policies[(round + seed) % 3];
            request.seed = 100 * (round + 1) + seed;
            request.maxCycles = 20'000;
            request.collect =
                seed % 2 ? Collect::kAll
                         : Collect::kEvents | Collect::kMsgTiming;
            batch.push_back(request);
        }
        for (std::size_t shape = 0; shape < runners.size(); ++shape) {
            SweepSummary sweep = runners[shape]->run(batch);
            ASSERT_EQ(sweep.results.size(), batch.size());
            for (std::size_t i = 0; i < batch.size(); ++i) {
                expectSameRunResult(serials[shape]->run(batch[i]),
                                 sweep.results[i],
                                 "round " + std::to_string(round) +
                                     " shape " + std::to_string(shape) +
                                     " request " + std::to_string(i));
            }
        }
    }
    for (const auto& runner : runners)
        EXPECT_EQ(runner->pooledWorkers(), 2); // 3 workers - lead thread
}

} // namespace
} // namespace syscomm
