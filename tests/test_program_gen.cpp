/**
 * @file
 * Random program generators (section 3.3 writing strategy).
 */

#include <gtest/gtest.h>

#include "core/crossoff.h"
#include "core/program_gen.h"

namespace syscomm {
namespace {

TEST(ProgramGen, GeneratedProgramsValidate)
{
    Topology topo = Topology::linearArray(4);
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        GenOptions gen;
        gen.seed = seed;
        Program p = randomDeadlockFreeProgram(topo, gen);
        EXPECT_TRUE(p.valid()) << "seed " << seed;
        EXPECT_EQ(p.numMessages(), gen.numMessages);
    }
}

TEST(ProgramGen, GeneratedProgramsAreDeadlockFree)
{
    // The section 3.3 strategy guarantees deadlock-freedom.
    for (auto topo : {Topology::linearArray(3), Topology::linearArray(6),
                      Topology::ring(5), Topology::mesh(3, 3)}) {
        for (std::uint64_t seed = 0; seed < 25; ++seed) {
            GenOptions gen;
            gen.numMessages = 12;
            gen.seed = seed;
            Program p = randomDeadlockFreeProgram(topo, gen);
            EXPECT_TRUE(isDeadlockFree(p))
                << topo.name() << " seed " << seed;
        }
    }
}

TEST(ProgramGen, Deterministic)
{
    Topology topo = Topology::linearArray(4);
    GenOptions gen;
    gen.seed = 7;
    Program a = randomDeadlockFreeProgram(topo, gen);
    Program b = randomDeadlockFreeProgram(topo, gen);
    ASSERT_EQ(a.numMessages(), b.numMessages());
    for (CellId c = 0; c < a.numCells(); ++c) {
        ASSERT_EQ(a.cellOps(c).size(), b.cellOps(c).size());
        for (std::size_t i = 0; i < a.cellOps(c).size(); ++i)
            EXPECT_EQ(a.cellOps(c)[i], b.cellOps(c)[i]);
    }
}

TEST(ProgramGen, AdjacentOnlyOption)
{
    Topology topo = Topology::linearArray(6);
    GenOptions gen;
    gen.multiHop = false;
    gen.numMessages = 20;
    gen.seed = 3;
    Program p = randomDeadlockFreeProgram(topo, gen);
    for (const MessageDecl& m : p.messages())
        EXPECT_TRUE(topo.linkBetween(m.sender, m.receiver).has_value());
}

TEST(ProgramGen, PerturbationPreservesValidity)
{
    Topology topo = Topology::linearArray(4);
    GenOptions gen;
    gen.seed = 11;
    Program p = randomDeadlockFreeProgram(topo, gen);
    Program q = perturbProgram(p, 50, 99);
    EXPECT_TRUE(q.valid());
    EXPECT_EQ(q.totalTransferOps(), p.totalTransferOps());
}

TEST(ProgramGen, PerturbationCanCreateDeadlocks)
{
    // Not guaranteed per instance, but across seeds some perturbed
    // programs must be deadlocked — that is their purpose.
    Topology topo = Topology::linearArray(3);
    int deadlocked = 0;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        GenOptions gen;
        gen.numMessages = 6;
        gen.seed = seed;
        Program p = randomDeadlockFreeProgram(topo, gen);
        Program q = perturbProgram(p, 30, seed * 13 + 1);
        if (!isDeadlockFree(q))
            ++deadlocked;
    }
    EXPECT_GT(deadlocked, 0);
}

TEST(ProgramGen, ZeroSwapPerturbationIsIdentity)
{
    Topology topo = Topology::linearArray(4);
    GenOptions gen;
    gen.seed = 5;
    Program p = randomDeadlockFreeProgram(topo, gen);
    Program q = perturbProgram(p, 0, 1);
    for (CellId c = 0; c < p.numCells(); ++c) {
        ASSERT_EQ(p.cellOps(c).size(), q.cellOps(c).size());
        for (std::size_t i = 0; i < p.cellOps(c).size(); ++i)
            EXPECT_EQ(p.cellOps(c)[i], q.cellOps(c)[i]);
    }
}

} // namespace
} // namespace syscomm
