/**
 * @file
 * Simulator fundamentals: single transfers, multi-hop forwarding,
 * compute values, blocking, and deadlock detection on the Fig. 5
 * programs.
 */

#include <gtest/gtest.h>

#include "algos/paper_figures.h"
#include "sim/machine.h"

namespace syscomm {
namespace {

using sim::PolicyKind;
using sim::RunResult;
using sim::RunStatus;
using sim::SimOptions;
using sim::simulateProgram;

MachineSpec
spec(Topology topo, int queues = 2, int capacity = 1)
{
    MachineSpec s;
    s.topo = std::move(topo);
    s.queuesPerLink = queues;
    s.queueCapacity = capacity;
    return s;
}

TEST(SimBasic, SingleWordAdjacent)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    p.compute(0, [](CellContext& ctx) { ctx.setNextWrite(42.0); });
    p.write(0, a);
    p.read(1, a);
    RunResult r = simulateProgram(p, spec(Topology::linearArray(2)));
    ASSERT_EQ(r.status, RunStatus::kCompleted) << r.error;
    ASSERT_EQ(r.received[a].size(), 1u);
    EXPECT_DOUBLE_EQ(r.received[a][0], 42.0);
    EXPECT_EQ(r.stats.wordsDelivered, 1);
    EXPECT_EQ(r.stats.assignments, 1);
    EXPECT_EQ(r.stats.releases, 1);
}

TEST(SimBasic, MultiHopForwarding)
{
    Program p(5);
    MessageId a = p.declareMessage("A", 0, 4);
    for (int i = 0; i < 3; ++i) {
        double v = 10.0 + i;
        p.compute(0, [v](CellContext& ctx) { ctx.setNextWrite(v); });
        p.write(0, a);
    }
    for (int i = 0; i < 3; ++i)
        p.read(4, a);
    RunResult r = simulateProgram(p, spec(Topology::linearArray(5)));
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    EXPECT_EQ(r.received[a], (std::vector<double>{10.0, 11.0, 12.0}));
    // Three words crossed three intermediate hops each.
    EXPECT_EQ(r.stats.wordsForwarded, 9);
    // Four links were assigned once each.
    EXPECT_EQ(r.stats.assignments, 4);
    EXPECT_EQ(r.stats.releases, 4);
}

TEST(SimBasic, PipelineLatencyScalesWithHops)
{
    // One word over h hops takes ~h+1 cycles plus assignment startup.
    for (int cells : {2, 4, 8}) {
        Program p(cells);
        MessageId a = p.declareMessage("A", 0, cells - 1);
        p.write(0, a);
        p.read(cells - 1, a);
        RunResult r = simulateProgram(p, spec(Topology::linearArray(cells)));
        ASSERT_EQ(r.status, RunStatus::kCompleted);
        EXPECT_GE(r.cycles, cells - 1);
        EXPECT_LE(r.cycles, 3 * cells + 4);
    }
}

TEST(SimBasic, PassThroughForwardsLastRead)
{
    // A bare R/W pair forwards the read value (no compute needed).
    Program p(3);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 1, 2);
    p.compute(0, [](CellContext& ctx) { ctx.setNextWrite(7.5); });
    p.write(0, a);
    p.read(1, a);
    p.write(1, b);
    p.read(2, b);
    RunResult r = simulateProgram(p, spec(Topology::linearArray(3)));
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    EXPECT_DOUBLE_EQ(r.received[b][0], 7.5);
}

TEST(SimBasic, ComputeOpsRunInOrder)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    p.compute(0, [](CellContext& ctx) { ctx.local(0) = 3.0; });
    p.compute(0, [](CellContext& ctx) { ctx.local(0) *= 4.0; });
    p.compute(0, [](CellContext& ctx) {
        ctx.setNextWrite(ctx.local(0) + 1.0);
    });
    p.write(0, a);
    p.read(1, a);
    RunResult r = simulateProgram(p, spec(Topology::linearArray(2)));
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    EXPECT_DOUBLE_EQ(r.received[a][0], 13.0);
    EXPECT_EQ(r.stats.computeOps, 3);
}

TEST(SimBasic, Fig5P1AndP3DeadlockAtRuntime)
{
    // Section 3.2 assumes pure latches (zero buffering); our queues
    // hold at least one word, which is exactly the lookahead bound 1.
    // P1 needs two words of buffering, so it still deadlocks at
    // capacity 1; P3 deadlocks at any capacity.
    for (Program p : {algos::fig5P1(), algos::fig5P3()}) {
        RunResult r = simulateProgram(p, spec(algos::fig5Topology(), 2, 1));
        EXPECT_EQ(r.status, RunStatus::kDeadlocked) << r.statusStr();
        EXPECT_TRUE(r.deadlock.deadlocked);
        EXPECT_FALSE(r.deadlock.render().empty());
    }
}

TEST(SimBasic, Fig5P2CompletesWithOneWordBuffer)
{
    // P2 (facing writes) needs exactly one word of buffering per
    // queue — which matches its lookahead classification with bound 1.
    Program p = algos::fig5P2();
    RunResult r = simulateProgram(p, spec(algos::fig5Topology(), 2, 1));
    EXPECT_EQ(r.status, RunStatus::kCompleted) << r.statusStr();
}

TEST(SimBasic, P1CompletesWithBufferTwo)
{
    // Section 8's example: two-word queues resolve P1 (A and B on
    // separate queues).
    Program p = algos::fig5P1();
    RunResult r = simulateProgram(p, spec(algos::fig5Topology(), 2, 2));
    EXPECT_EQ(r.status, RunStatus::kCompleted) << r.statusStr();
}

TEST(SimBasic, P3NeverCompletes)
{
    // Cyclic read-first: no buffer size helps.
    Program p = algos::fig5P3();
    RunResult r = simulateProgram(p, spec(algos::fig5Topology(), 4, 16));
    EXPECT_EQ(r.status, RunStatus::kDeadlocked);
}

TEST(SimBasic, InvalidProgramIsConfigError)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    p.write(0, a); // no read
    RunResult r = simulateProgram(p, spec(Topology::linearArray(2)));
    EXPECT_EQ(r.status, RunStatus::kConfigError);
    EXPECT_FALSE(r.error.empty());
}

TEST(SimBasic, BlockedCyclesAreCounted)
{
    // Receiver waits for the word to travel 3 hops: it accumulates
    // blocked cycles.
    Program p(4);
    MessageId a = p.declareMessage("A", 0, 3);
    p.write(0, a);
    p.read(3, a);
    RunResult r = simulateProgram(p, spec(Topology::linearArray(4)));
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    EXPECT_GT(r.stats.cellBlockedCycles, 0);
    EXPECT_GT(r.stats.perCellBlocked[3], 0);
}

TEST(SimBasic, ReceivedValuesInOrder)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    for (int i = 0; i < 8; ++i) {
        double v = i * 2.0;
        p.compute(0, [v](CellContext& ctx) { ctx.setNextWrite(v); });
        p.write(0, a);
    }
    for (int i = 0; i < 8; ++i)
        p.read(1, a);
    RunResult r = simulateProgram(p, spec(Topology::linearArray(2)));
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    ASSERT_EQ(r.received[a].size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_DOUBLE_EQ(r.received[a][i], i * 2.0);
}

TEST(SimBasic, QueueReusedAcrossSequentialMessages)
{
    // Section 2.3 / Fig. 3: "a queue in the sequence can be assigned
    // to another message only after the last word in the current
    // message has passed the queue". With one queue per link, two
    // sequential messages must reuse the same hardware queue.
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 0, 1);
    for (int i = 0; i < 3; ++i)
        p.write(0, a);
    for (int i = 0; i < 3; ++i)
        p.read(1, a);
    p.write(0, b);
    p.read(1, b);
    RunResult r = simulateProgram(p, spec(Topology::linearArray(2), 1));
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    ASSERT_EQ(r.events.size(), 2u);
    EXPECT_EQ(r.events[0].msg, a);
    EXPECT_EQ(r.events[1].msg, b);
    EXPECT_EQ(r.events[0].queueId, r.events[1].queueId);
    // B's assignment comes only after A's release.
    ASSERT_EQ(r.releases.size(), 2u);
    EXPECT_GE(r.events[1].cycle, r.releases[0].cycle);
}

TEST(SimBasic, QueueDirectionResetOnReassignment)
{
    // "At the time when a queue is being assigned to a new message,
    // the direction of the queue can be reset": a request-reply pair
    // sharing one queue flips its direction.
    Program p(2);
    MessageId req = p.declareMessage("Q", 0, 1);
    MessageId rep = p.declareMessage("R", 1, 0);
    p.write(0, req);
    p.read(0, rep);
    p.read(1, req);
    p.write(1, rep);
    RunResult r = simulateProgram(p, spec(Topology::linearArray(2), 1));
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    ASSERT_EQ(r.events.size(), 2u);
    EXPECT_EQ(r.events[0].queueId, r.events[1].queueId);
    EXPECT_NE(r.events[0].dir, r.events[1].dir);
}

TEST(SimBasic, RunsOnTorusTopology)
{
    Topology topo = Topology::torus(3, 3);
    Program p(9);
    MessageId m = p.declareMessage("M", 0, 8);
    for (int i = 0; i < 4; ++i)
        p.write(0, m);
    for (int i = 0; i < 4; ++i)
        p.read(8, m);
    MachineSpec s;
    s.topo = topo;
    s.queuesPerLink = 1;
    RunResult r = simulateProgram(p, s);
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    EXPECT_EQ(r.received[m].size(), 4u);
}

TEST(SimBasic, LabelsAutoComputedWhenEmpty)
{
    Program p = algos::fig7Program();
    SimOptions options;
    options.policy = PolicyKind::kCompatible;
    RunResult r =
        simulateProgram(p, spec(algos::fig7Topology(), 1), options);
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    ASSERT_EQ(r.labelsUsed.size(), 3u);
    EXPECT_EQ(r.labelsUsed[*p.messageByName("A")], 1);
    EXPECT_EQ(r.labelsUsed[*p.messageByName("C")], 2);
    EXPECT_EQ(r.labelsUsed[*p.messageByName("B")], 3);
}

} // namespace
} // namespace syscomm
