/**
 * @file
 * End-to-end syscommd tests over a live Unix socket: submissions walk
 * the status machine to the right terminal states, compile sharing is
 * observable (N concurrent identical submissions advance
 * CompiledProgram::buildCount() by exactly one), a full admission
 * queue rejects explicitly, cancel works on waiting and in-flight
 * submissions, and a drained daemon's spool resumes on a second
 * daemon with per-row machine digests bit-identical to an
 * uninterrupted reference. The multi-client suites run under TSan in
 * CI.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "sim/shape_sweep.h"
#include "text/parser.h"

namespace syscomm::serve {
namespace {

std::string
tempDir(const std::string& name)
{
    const std::string dir = testing::TempDir() + name + "_" +
                            std::to_string(::getpid());
    return dir;
}

/**
 * Ring program with writes and reads interleaved word by word: long
 * running (cycles scale with @p words), deadlock-free at any shape —
 * the serving workhorse (same construction syscomm-cli's
 * gen-ring-sweep emits).
 */
std::string
ringText(int cells, int words)
{
    std::ostringstream out;
    out << "cells " << cells << "\n";
    for (int c = 0; c < cells; ++c)
        out << "message m" << c << " " << c << " -> "
            << (c + 1) % cells << "\n";
    for (int c = 0; c < cells; ++c) {
        out << "cell " << c << " {";
        for (int w = 0; w < words; ++w)
            out << " W(m" << c << ") R(m" << (c + cells - 1) % cells
                << ")";
        out << " }\n";
    }
    return out.str();
}

/**
 * Every cell writes all its words before reading any: with more words
 * than total queue space the ring fills and every cell blocks on a
 * write — a guaranteed deadlock for the kDeadlocked path.
 */
std::string
blockingRingText(int cells, int words)
{
    std::ostringstream out;
    out << "cells " << cells << "\n";
    for (int c = 0; c < cells; ++c)
        out << "message m" << c << " " << c << " -> "
            << (c + 1) % cells << "\n";
    for (int c = 0; c < cells; ++c) {
        out << "cell " << c << " {";
        for (int w = 0; w < words; ++w)
            out << " W(m" << c << ")";
        for (int w = 0; w < words; ++w)
            out << " R(m" << (c + cells - 1) % cells << ")";
        out << " }\n";
    }
    return out.str();
}

JsonValue
ringTopology(int cells)
{
    return JsonValue::object()
        .set("kind", JsonValue::str("ring"))
        .set("cells", JsonValue::integer(cells));
}

JsonValue
shapeJson(const std::string& name, int queues, int capacity,
          int extension)
{
    return JsonValue::object()
        .set("name", JsonValue::str(name))
        .set("queues", JsonValue::integer(queues))
        .set("capacity", JsonValue::integer(capacity))
        .set("extension", JsonValue::integer(extension))
        .set("penalty", JsonValue::integer(4));
}

/** A run body over @p program on a ring, one default-ish shape. */
JsonValue
runBody(const std::string& program, int cells)
{
    JsonValue body = JsonValue::object();
    body.set("kind", JsonValue::str("run"));
    body.set("program", JsonValue::str(program));
    body.set("topology", ringTopology(cells));
    body.set("shape", shapeJson("q2c2", 2, 2, 0));
    return body;
}

/** A sweep body: @p numShapes ladder x seeds 1..@p seeds. */
JsonValue
sweepBody(const std::string& program, int cells, int numShapes,
          int seeds, Cycle checkpointEvery)
{
    JsonValue body = JsonValue::object();
    body.set("kind", JsonValue::str("sweep"));
    body.set("program", JsonValue::str(program));
    body.set("topology", ringTopology(cells));
    JsonValue shapes = JsonValue::array();
    for (int k = 0; k < numShapes; ++k)
        shapes.push(shapeJson("s" + std::to_string(k), 1 + k % 3,
                              1 + (k / 3) % 3, (k % 2) * 2));
    body.set("shapes", std::move(shapes));
    JsonValue requests = JsonValue::array();
    for (int r = 0; r < seeds; ++r)
        requests.push(JsonValue::object()
                          .set("policy",
                               JsonValue::str("compatible"))
                          .set("seed", JsonValue::integer(1 + r)));
    body.set("requests", std::move(requests));
    body.set("checkpoint_every",
             JsonValue::integer(checkpointEvery));
    return body;
}

/** Submit @p body and wait for a terminal state; returns the id. */
std::string
submitAndWait(ServeClient& client, const JsonValue& body,
              JsonValue& statusResponse)
{
    std::string id;
    std::string error;
    JsonValue response;
    EXPECT_TRUE(client.submit(body, id, response, error)) << error;
    EXPECT_TRUE(response.getBool("ok", false))
        << writeJson(response);
    if (id.empty())
        return id;
    EXPECT_TRUE(client.waitTerminal(id, 60'000, statusResponse,
                                    error))
        << error;
    return id;
}

/** Fetch the terminal result body (the "result" member). */
JsonValue
fetchResult(ServeClient& client, const std::string& id)
{
    JsonValue response;
    std::string error;
    EXPECT_TRUE(client.result(id, response, error)) << error;
    EXPECT_TRUE(response.getBool("ok", false))
        << writeJson(response);
    const JsonValue* result = response.find("result");
    return result != nullptr ? *result : JsonValue();
}

/** Flatten a sweep result's rows to comparable key strings. */
std::vector<std::string>
rowKeys(const JsonValue& sweepResult)
{
    std::vector<std::string> keys;
    const JsonValue* rows = sweepResult.find("rows");
    if (rows == nullptr || !rows->isArray())
        return keys;
    for (const JsonValue& row : rows->items()) {
        keys.push_back(row.getString("name") + "/" +
                       std::to_string(row.getInt("request", -1)) +
                       ":" + row.getString("status") + ":" +
                       std::to_string(row.getInt("cycles", -1)) +
                       ":" + row.getString("machine_digest"));
    }
    return keys;
}

struct DaemonHandle
{
    std::unique_ptr<SyscommDaemon> daemon;
    std::string socketPath;

    void start(DaemonOptions options)
    {
        socketPath = options.socketPath;
        daemon = std::make_unique<SyscommDaemon>(std::move(options));
        std::string error;
        ASSERT_TRUE(daemon->start(error)) << error;
    }

    void connect(ServeClient& client)
    {
        std::string error;
        ASSERT_TRUE(client.connectUnix(socketPath, error)) << error;
    }

    ~DaemonHandle()
    {
        if (daemon)
            daemon->stop();
    }
};

DaemonOptions
baseOptions(const std::string& tag)
{
    DaemonOptions options;
    options.socketPath = testing::TempDir() + "sc_" + tag + "_" +
                         std::to_string(::getpid()) + ".sock";
    options.workers = 2;
    return options;
}

// ---------------------------------------------------------------------
// Terminal states of single runs
// ---------------------------------------------------------------------

TEST(ServeDaemon, RunCompletesAndRerunsBitIdentically)
{
    DaemonHandle handle;
    handle.start(baseOptions("run"));
    ServeClient client;
    handle.connect(client);

    const JsonValue body = runBody(ringText(4, 50), 4);
    JsonValue status;
    const std::string id1 = submitAndWait(client, body, status);
    ASSERT_FALSE(id1.empty());
    EXPECT_EQ(status.getString("state"), "completed");

    JsonValue result1 = fetchResult(client, id1);
    EXPECT_EQ(result1.getString("status"), "completed");
    EXPECT_GT(result1.getInt("cycles", 0), 0);
    const std::string digest = result1.getString("machine_digest");
    ASSERT_EQ(digest.size(), 18u) << digest; // "0x" + 16 hex chars
    EXPECT_FALSE(result1.getBool("cached_compile", true));

    // Same submission again: the compile comes from the cache and
    // the run reproduces the digest bit-exactly.
    const std::string id2 = submitAndWait(client, body, status);
    JsonValue result2 = fetchResult(client, id2);
    EXPECT_TRUE(result2.getBool("cached_compile", false));
    EXPECT_EQ(result2.getString("machine_digest"), digest);
    EXPECT_EQ(result2.getInt("cycles", -1),
              result1.getInt("cycles", -2));
}

TEST(ServeDaemon, DeadlockedRunReportsDeadlocked)
{
    DaemonHandle handle;
    handle.start(baseOptions("dead"));
    ServeClient client;
    handle.connect(client);

    // 8 words into capacity-1 queues with no extension: wedges.
    JsonValue body = runBody(blockingRingText(3, 8), 3);
    body.set("shape", shapeJson("q1c1", 1, 1, 0));
    JsonValue status;
    const std::string id = submitAndWait(client, body, status);
    ASSERT_FALSE(id.empty());
    EXPECT_EQ(status.getString("state"), "deadlocked");
    JsonValue result = fetchResult(client, id);
    EXPECT_EQ(result.getString("status"), "deadlocked");
}

TEST(ServeDaemon, CycleBudgetParksTerminalAsBudgetExhausted)
{
    DaemonOptions options = baseOptions("budget");
    options.sliceCycles = 16; // several slices inside a small budget
    DaemonHandle handle;
    handle.start(options);
    ServeClient client;
    handle.connect(client);

    JsonValue body = runBody(ringText(4, 4000), 4);
    body.set("cycle_budget", JsonValue::integer(100));
    JsonValue status;
    const std::string id = submitAndWait(client, body, status);
    ASSERT_FALSE(id.empty());
    EXPECT_EQ(status.getString("state"), "budget-exhausted");
    JsonValue result = fetchResult(client, id);
    EXPECT_EQ(result.getString("status"), "budget-exhausted");
    EXPECT_EQ(result.getInt("cycle_budget", 0), 100);
    EXPECT_GE(result.getInt("cycles", 0), 100);
}

TEST(ServeDaemon, InvalidProgramFinishesAsError)
{
    DaemonHandle handle;
    handle.start(baseOptions("inval"));
    ServeClient client;
    handle.connect(client);

    // Parses fine but fails compile-time validation: message to a
    // cell the ring cannot route to itself.
    JsonValue body = runBody(
        "cells 3\nmessage a 0 -> 0\ncell 0 { W(a) R(a) }\n", 3);
    JsonValue status;
    const std::string id = submitAndWait(client, body, status);
    ASSERT_FALSE(id.empty());
    EXPECT_EQ(status.getString("state"), "error");
    JsonValue response;
    std::string error;
    ASSERT_TRUE(client.result(id, response, error)) << error;
    EXPECT_FALSE(
        response.find("result")->getString("error").empty());
}

// ---------------------------------------------------------------------
// Sweeps: daemon rows == direct ShapeSweep rows
// ---------------------------------------------------------------------

TEST(ServeDaemon, SweepMatchesDirectShapeSweepBitExactly)
{
    DaemonHandle handle;
    handle.start(baseOptions("sweep"));
    ServeClient client;
    handle.connect(client);

    const std::string program = ringText(4, 60);
    const JsonValue body = sweepBody(program, 4, 6, 2, 500);
    JsonValue status;
    const std::string id = submitAndWait(client, body, status);
    ASSERT_FALSE(id.empty());
    EXPECT_EQ(status.getString("state"), "completed");
    const JsonValue result = fetchResult(client, id);
    const std::vector<std::string> served = rowKeys(result);
    ASSERT_EQ(served.size(), 12u);

    // The same grid run directly through ShapeSweep — through the
    // shared-compile ctor the daemon itself uses.
    text::ParseResult parsed = text::parseProgram(program);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    Submission sub;
    std::string error;
    JsonValue wire = body;
    wire.set("verb", JsonValue::str("submit"));
    ASSERT_TRUE(parseSubmission(wire, sub, error)) << error;

    auto compiled = sim::CompiledProgram::compile(
        parsed.program, SharedTopology(Topology::ring(4)));
    ASSERT_TRUE(compiled->valid()) << compiled->error();
    sim::ShapeSweepOptions sweepOptions;
    sweepOptions.numWorkers = 1;
    sim::ShapeSweep sweep(compiled, sub.shapes, sweepOptions);
    sim::ShapeSweepResult direct = sweep.run(sub.requests);
    ASSERT_TRUE(direct.complete);
    ASSERT_EQ(direct.rows.size(), served.size());
    for (std::size_t i = 0; i < direct.rows.size(); ++i) {
        const sim::ShapeSweepRow& row = direct.rows[i];
        const std::string key =
            sub.shapes[row.shape].name + "/" +
            std::to_string(row.request) + ":" +
            row.result.statusStr() + ":" +
            std::to_string(row.result.cycles) + ":" +
            hexDigest(row.machineDigest);
        EXPECT_EQ(served[i], key) << "row " << i;
    }
}

// ---------------------------------------------------------------------
// Compile sharing across concurrent clients (TSan runs this)
// ---------------------------------------------------------------------

TEST(ServeDaemon, ConcurrentIdenticalSubmissionsCompileOnce)
{
    DaemonOptions options = baseOptions("share");
    options.workers = 4;
    DaemonHandle handle;
    handle.start(options);

    const JsonValue body = runBody(ringText(5, 40), 5);
    constexpr int kClients = 6;
    const std::int64_t before = sim::CompiledProgram::buildCount();

    std::atomic<int> completed{0};
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&] {
            ServeClient client;
            std::string error;
            ASSERT_TRUE(
                client.connectUnix(handle.socketPath, error))
                << error;
            JsonValue status;
            const std::string id =
                submitAndWait(client, body, status);
            ASSERT_FALSE(id.empty());
            EXPECT_EQ(status.getString("state"), "completed");
            completed.fetch_add(1);
        });
    }
    for (std::thread& t : threads)
        t.join();
    EXPECT_EQ(completed.load(), kClients);

    // The tentpole acceptance criterion: one build, period.
    EXPECT_EQ(sim::CompiledProgram::buildCount() - before, 1);

    ServeClient client;
    handle.connect(client);
    JsonValue stats;
    std::string error;
    ASSERT_TRUE(client.stats(stats, error)) << error;
    const JsonValue* cache = stats.find("cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->getInt("misses", -1), 1);
    EXPECT_EQ(cache->getInt("hits", -1), kClients - 1);
    const JsonValue* subs = stats.find("submissions");
    ASSERT_NE(subs, nullptr);
    EXPECT_EQ(subs->getInt("completed", -1), kClients);
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

TEST(ServeDaemon, FullQueueRejectsExplicitly)
{
    DaemonOptions options = baseOptions("queue");
    options.workers = 1;
    options.maxQueue = 2;
    DaemonHandle handle;
    handle.start(options);
    ServeClient client;
    handle.connect(client);

    // A long sweep pins the single worker; two more fill the queue;
    // the fourth must be rejected NOW, not blocked. The grid must
    // keep the worker busy for seconds even when a loaded parallel
    // test runner starves this thread between submits — a 16-cell
    // grid could finish mid-test and free a queue slot. Scale via
    // the seed axis, not words: a bigger program makes every filler
    // submit proportionally slower to transfer and parse, which
    // hands the worker *more* time per queue slot, not less.
    // Teardown cancels everything, so the extra length costs
    // nothing.
    const JsonValue big =
        sweepBody(ringText(6, 4000), 6, 8, 64, 500);
    std::string error;
    std::vector<std::string> admitted;
    {
        std::string id;
        JsonValue response;
        ASSERT_TRUE(client.submit(big, id, response, error))
            << error;
        ASSERT_TRUE(response.getBool("ok", false))
            << writeJson(response);
        admitted.push_back(id);
        // Wait until the worker picked it up so the next two really
        // land in the queue, not behind it.
        for (int i = 0; i < 2000; ++i) {
            ASSERT_TRUE(client.status(id, response, error)) << error;
            if (response.getString("state") != "waiting")
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
    }
    for (int i = 0; i < 2; ++i) {
        std::string id;
        JsonValue response;
        ASSERT_TRUE(client.submit(big, id, response, error))
            << error;
        ASSERT_TRUE(response.getBool("ok", false))
            << writeJson(response);
        admitted.push_back(id);
    }
    std::string id;
    JsonValue response;
    ASSERT_TRUE(client.submit(big, id, response, error)) << error;
    EXPECT_FALSE(response.getBool("ok", true));
    EXPECT_EQ(response.getString("rejected"), "queue_full");
    EXPECT_EQ(response.getString("state"), "rejected");
    EXPECT_TRUE(id.empty());

    JsonValue stats;
    ASSERT_TRUE(client.stats(stats, error)) << error;
    EXPECT_EQ(stats.find("queue")->getInt("rejected_queue_full", 0),
              1);

    // Unblock the teardown: cancel everything admitted.
    for (const std::string& sid : admitted)
        client.cancel(sid, response, error);
}

// ---------------------------------------------------------------------
// Cancel
// ---------------------------------------------------------------------

TEST(ServeDaemon, CancelWaitingAndInFlightSubmissions)
{
    DaemonOptions options = baseOptions("cancel");
    options.workers = 1;
    DaemonHandle handle;
    handle.start(options);
    ServeClient client;
    handle.connect(client);

    const JsonValue big = sweepBody(ringText(6, 4000), 6, 8, 2, 200);
    std::string idA;
    std::string idB;
    JsonValue response;
    std::string error;
    ASSERT_TRUE(client.submit(big, idA, response, error)) << error;
    ASSERT_TRUE(response.getBool("ok", false));
    ASSERT_TRUE(client.submit(big, idB, response, error)) << error;
    ASSERT_TRUE(response.getBool("ok", false));

    // B sits behind A on the single worker: cancelling it is
    // deterministic and immediate.
    ASSERT_TRUE(client.cancel(idB, response, error)) << error;
    EXPECT_TRUE(response.getBool("ok", false))
        << writeJson(response);
    ASSERT_TRUE(client.status(idB, response, error)) << error;
    EXPECT_EQ(response.getString("state"), "cancelled");

    // Cancelling a terminal submission is an explicit error.
    ASSERT_TRUE(client.cancel(idB, response, error)) << error;
    EXPECT_FALSE(response.getBool("ok", true));
    EXPECT_NE(response.getString("error").find("terminal"),
              std::string::npos);

    // A is (most likely) in flight; cancel asks it to stop at its
    // next checkpoint. Either way it must end cancelled-or-terminal
    // promptly rather than running the full sweep.
    ASSERT_TRUE(client.cancel(idA, response, error)) << error;
    JsonValue status;
    ASSERT_TRUE(client.waitTerminal(idA, 60'000, status, error))
        << error;
    const std::string state = status.getString("state");
    EXPECT_TRUE(state == "cancelled" || state == "completed")
        << state;
}

// ---------------------------------------------------------------------
// Result/status error paths
// ---------------------------------------------------------------------

TEST(ServeDaemon, ResultBeforeTerminalIsAnExplicitError)
{
    DaemonOptions options = baseOptions("early");
    options.workers = 1;
    DaemonHandle handle;
    handle.start(options);
    ServeClient client;
    handle.connect(client);

    const JsonValue big = sweepBody(ringText(6, 4000), 6, 6, 2, 200);
    std::string id;
    JsonValue response;
    std::string error;
    ASSERT_TRUE(client.submit(big, id, response, error)) << error;
    ASSERT_TRUE(response.getBool("ok", false));

    ASSERT_TRUE(client.result(id, response, error)) << error;
    EXPECT_FALSE(response.getBool("ok", true));
    EXPECT_NE(response.getString("error").find("not finished"),
              std::string::npos);
    EXPECT_FALSE(response.getString("state").empty());

    ASSERT_TRUE(client.result("s-424242", response, error)) << error;
    EXPECT_FALSE(response.getBool("ok", true));

    client.cancel(id, response, error);
}

// ---------------------------------------------------------------------
// Drain -> park -> restart -> bit-identical resume
// ---------------------------------------------------------------------

TEST(ServeDaemon, DrainedSpoolResumesBitIdenticallyOnRestart)
{
    const std::string spoolA = tempDir("serve_spool_a");
    const std::string spoolB = tempDir("serve_spool_b");
    const JsonValue sweepLong =
        sweepBody(ringText(6, 6000), 6, 6, 2, 200);
    const JsonValue sweepShort =
        sweepBody(ringText(4, 300), 4, 4, 2, 100);

    // Reference: an uninterrupted daemon runs both sweeps.
    std::vector<std::string> referenceLong;
    std::vector<std::string> referenceShort;
    {
        DaemonOptions options = baseOptions("ref");
        options.spoolDir = spoolB;
        options.workers = 1;
        DaemonHandle handle;
        handle.start(options);
        ServeClient client;
        handle.connect(client);
        JsonValue status;
        const std::string idLong =
            submitAndWait(client, sweepLong, status);
        ASSERT_EQ(status.getString("state"), "completed");
        const std::string idShort =
            submitAndWait(client, sweepShort, status);
        ASSERT_EQ(status.getString("state"), "completed");
        referenceLong = rowKeys(fetchResult(client, idLong));
        referenceShort = rowKeys(fetchResult(client, idShort));
        ASSERT_EQ(referenceLong.size(), 12u);
        ASSERT_EQ(referenceShort.size(), 8u);
    }

    // Interrupted: submit both on one worker, drain while the long
    // sweep runs (the short one is still waiting — its park is
    // deterministic), then shut the daemon down.
    std::string idLong;
    std::string idShort;
    {
        DaemonOptions options = baseOptions("drainA");
        options.spoolDir = spoolA;
        options.workers = 1;
        DaemonHandle handle;
        handle.start(options);
        ServeClient client;
        handle.connect(client);
        JsonValue response;
        std::string error;
        ASSERT_TRUE(
            client.submit(sweepLong, idLong, response, error))
            << error;
        ASSERT_TRUE(response.getBool("ok", false));
        ASSERT_TRUE(
            client.submit(sweepShort, idShort, response, error))
            << error;
        ASSERT_TRUE(response.getBool("ok", false));

        // Let the long sweep actually start before draining.
        for (int i = 0; i < 2000; ++i) {
            ASSERT_TRUE(client.status(idLong, response, error))
                << error;
            const std::string state = response.getString("state");
            if (state != "waiting")
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }

        ASSERT_TRUE(client.drain(response, error)) << error;
        EXPECT_EQ(response.getString("control"), "draining");
        // New submissions are refused while draining.
        std::string rejectedId;
        ASSERT_TRUE(client.submit(sweepShort, rejectedId, response,
                                  error))
            << error;
        EXPECT_FALSE(response.getBool("ok", true));
        EXPECT_EQ(response.getString("rejected"), "draining");

        ASSERT_TRUE(handle.daemon->waitIdle(60'000));
        // The short sweep never got a worker: parked waiting.
        ASSERT_TRUE(client.status(idShort, response, error))
            << error;
        EXPECT_EQ(response.getString("state"), "waiting");
        handle.daemon->stop();
    }

    // Restart on the same spool: both submissions finish, and every
    // row matches the uninterrupted reference bit for bit.
    {
        DaemonOptions options = baseOptions("drainB");
        options.spoolDir = spoolA;
        options.workers = 1;
        DaemonHandle handle;
        handle.start(options);
        ServeClient client;
        handle.connect(client);
        JsonValue status;
        std::string error;
        ASSERT_TRUE(
            client.waitTerminal(idLong, 60'000, status, error))
            << error;
        EXPECT_EQ(status.getString("state"), "completed");
        ASSERT_TRUE(
            client.waitTerminal(idShort, 60'000, status, error))
            << error;
        EXPECT_EQ(status.getString("state"), "completed");

        const JsonValue longResult = fetchResult(client, idLong);
        EXPECT_EQ(rowKeys(longResult), referenceLong);
        EXPECT_EQ(rowKeys(fetchResult(client, idShort)),
                  referenceShort);

        // If the drain parked the long sweep mid-run (the common
        // case), the resumed daemon must have replayed finished rows
        // from the journal rather than re-running them.
        const std::int64_t fromJournal =
            longResult.getInt("rows_from_journal", -1);
        EXPECT_GE(fromJournal, 0);

        // Terminal results persist across yet another restart via
        // their done markers.
        handle.daemon->stop();
        DaemonOptions options2 = baseOptions("drainC");
        options2.spoolDir = spoolA;
        DaemonHandle handle2;
        handle2.start(options2);
        ServeClient client2;
        handle2.connect(client2);
        EXPECT_EQ(rowKeys(fetchResult(client2, idLong)),
                  referenceLong);
        JsonValue stats;
        ASSERT_TRUE(client2.stats(stats, error)) << error;
        EXPECT_EQ(stats.find("submissions")->getInt("completed", 0),
                  2);
    }
}

// ---------------------------------------------------------------------
// Drain parks an in-flight single run too
// ---------------------------------------------------------------------

TEST(ServeDaemon, DrainParksInFlightRunAndRestartRecomputesIt)
{
    const std::string spool = tempDir("serve_spool_run");
    JsonValue body = runBody(ringText(5, 20000), 5);
    std::string id;
    std::string digestRef;

    // Reference digest from an uninterrupted daemon.
    {
        DaemonOptions options = baseOptions("runref");
        DaemonHandle handle;
        handle.start(options);
        ServeClient client;
        handle.connect(client);
        JsonValue status;
        const std::string rid = submitAndWait(client, body, status);
        ASSERT_EQ(status.getString("state"), "completed");
        digestRef =
            fetchResult(client, rid).getString("machine_digest");
    }

    {
        DaemonOptions options = baseOptions("runA");
        options.spoolDir = spool;
        options.workers = 1;
        options.sliceCycles = 64; // park quickly once asked
        DaemonHandle handle;
        handle.start(options);
        ServeClient client;
        handle.connect(client);
        JsonValue response;
        std::string error;
        ASSERT_TRUE(client.submit(body, id, response, error))
            << error;
        ASSERT_TRUE(response.getBool("ok", false));
        handle.daemon->requestDrain();
        ASSERT_TRUE(handle.daemon->waitIdle(60'000));
        // Wherever the drain caught it, the submission is either
        // parked (waiting) or already done; never half-reported.
        ASSERT_TRUE(client.status(id, response, error)) << error;
        const std::string state = response.getString("state");
        EXPECT_TRUE(state == "waiting" || state == "completed")
            << state;
        handle.daemon->stop();
    }

    {
        DaemonOptions options = baseOptions("runB");
        options.spoolDir = spool;
        DaemonHandle handle;
        handle.start(options);
        ServeClient client;
        handle.connect(client);
        JsonValue status;
        std::string error;
        ASSERT_TRUE(client.waitTerminal(id, 60'000, status, error))
            << error;
        EXPECT_EQ(status.getString("state"), "completed");
        EXPECT_EQ(
            fetchResult(client, id).getString("machine_digest"),
            digestRef);
    }
}

} // namespace
} // namespace syscomm::serve
