/**
 * @file
 * Cross-validation of the static analyzer against the simulator: over
 * randomized programs (clean section 3.3 constructions plus
 * perturbed variants) on three topologies, the static verdict and
 * the dynamic outcome must never disagree —
 *
 *   certified  => a compatible-policy run completes (Theorem 1),
 *   deadlock   => a run deadlocks under ANY policy, and the dynamic
 *                 DeadlockReport implicates every witnessed cell.
 *
 * Both simulator kernels are held to this, so the suite doubles as a
 * kernel-equivalence check through the analyzer's lens. kUnknown
 * programs make no static claim, but still must simulate without
 * faulting.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/analyze.h"
#include "core/machine_spec.h"
#include "core/program.h"
#include "core/program_gen.h"
#include "core/topology.h"
#include "sim/machine.h"

namespace syscomm {
namespace {

struct Tally
{
    int programs = 0;
    int certified = 0;
    int witnessed = 0;
    int unknown = 0;
};

sim::RunResult
runOnce(const Program& program, const Topology& topo,
        sim::PolicyKind policy, sim::KernelKind kernel)
{
    MachineSpec spec;
    spec.topo = SharedTopology(Topology(topo));
    spec.queuesPerLink = 2;
    spec.queueCapacity = 1;
    sim::SimOptions options;
    options.policy = policy;
    options.kernel = kernel;
    options.maxCycles = 200'000;
    return sim::simulateProgram(program, spec, options);
}

void
checkProgram(const Program& program, const Topology& topo,
             Tally& tally)
{
    const AnalysisReport report = analyzeProgram(program, topo);
    ++tally.programs;
    const sim::KernelKind kernels[] = {sim::KernelKind::kEventDriven,
                                       sim::KernelKind::kReference};

    if (report.verdict == LintVerdict::kCertified) {
        ++tally.certified;
        for (const sim::KernelKind kernel : kernels) {
            const sim::RunResult result = runOnce(
                program, topo, sim::PolicyKind::kCompatible, kernel);
            EXPECT_TRUE(result.completed())
                << "certified program failed dynamically ("
                << result.statusStr() << "):\n"
                << report.render(program);
        }
        return;
    }

    if (report.verdict == LintVerdict::kDeadlock) {
        ++tally.witnessed;
        ASSERT_FALSE(report.witness.empty());
        std::set<CellId> witnessed;
        for (const WitnessEntry& entry : report.witness.cycle)
            witnessed.insert(entry.cell);
        // The witness claims deadlock under ANY policy; hold it to
        // the harshest ones on both kernels.
        const sim::PolicyKind policies[] = {
            sim::PolicyKind::kFcfs, sim::PolicyKind::kCompatible};
        for (const sim::PolicyKind policy : policies) {
            for (const sim::KernelKind kernel : kernels) {
                const sim::RunResult result =
                    runOnce(program, topo, policy, kernel);
                ASSERT_EQ(result.status, sim::RunStatus::kDeadlocked)
                    << "witnessed program did not deadlock ("
                    << result.statusStr() << "):\n"
                    << report.render(program);
                std::set<CellId> blocked;
                for (const auto& info : result.deadlock.cells)
                    blocked.insert(info.cell);
                for (const CellId cell : witnessed) {
                    EXPECT_TRUE(blocked.count(cell) > 0)
                        << "witness cell " << cell
                        << " not blocked dynamically:\n"
                        << report.render(program) << "\n"
                        << result.deadlock.render();
                }
            }
        }
        return;
    }

    ++tally.unknown;
    // No static claim, but the simulator must still terminate
    // cleanly (complete, deadlock, or exhaust the budget).
    const sim::RunResult result = runOnce(
        program, topo, sim::PolicyKind::kFcfs, kernels[0]);
    EXPECT_NE(result.status, sim::RunStatus::kConfigError)
        << result.error;
}

void
sweepTopology(const Topology& topo, std::uint64_t seedBase,
              int seeds, Tally& tally)
{
    for (int s = 0; s < seeds; ++s) {
        GenOptions gen;
        gen.numMessages = 6;
        gen.maxWords = 4;
        gen.seed = seedBase + static_cast<std::uint64_t>(s);
        gen.interleave = 0.4;
        const Program clean = randomDeadlockFreeProgram(topo, gen);
        checkProgram(clean, topo, tally);
        // Perturbations keep word counts valid but may wreck the
        // section 3.3 order — the analyzer's job is to notice.
        const Program shaken =
            perturbProgram(clean, 3, gen.seed + 1'000);
        checkProgram(shaken, topo, tally);
    }
}

TEST(AnalyzeCrossVal, StaticVerdictNeverDisagreesWithDynamics)
{
    Tally tally;
    sweepTopology(Topology::linearArray(5), 10, 35, tally);
    sweepTopology(Topology::ring(5), 2'000, 35, tally);
    sweepTopology(Topology::mesh(3, 3), 3'000, 35, tally);

    // The acceptance bar: >= 200 distinct programs, and the suite
    // must actually exercise both interesting verdicts — a sweep
    // that never certifies or never witnesses proves nothing.
    EXPECT_GE(tally.programs, 200);
    EXPECT_GE(tally.certified, 40) << "generator drifted";
    EXPECT_GE(tally.witnessed, 5) << "perturbation too gentle";
    ::testing::Test::RecordProperty("programs", tally.programs);
    ::testing::Test::RecordProperty("certified", tally.certified);
    ::testing::Test::RecordProperty("witnessed", tally.witnessed);
    ::testing::Test::RecordProperty("unknown", tally.unknown);
}

} // namespace
} // namespace syscomm
