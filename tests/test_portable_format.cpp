/**
 * @file
 * Format-v3 portability and self-validation coverage:
 *
 *  - sim/serial.h emits fixed little-endian bytes with golden
 *    byte-level expectations, and the byte-swapped-writer simulation
 *    (a big-endian host modelled end to end) produces identical
 *    streams — the wire order is defined by value, not by host;
 *  - a sweep journal and a session checkpoint written under the
 *    byte-swapped simulation are byte-identical to native ones and
 *    read back / resume identically;
 *  - peekCheckpointInfo survives ~1k seeded truncations and bit
 *    flips without ever reading out of bounds (the ASan job turns
 *    "never" into a hard guarantee) and rejects torn headers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "serve/io.h"
#include "sim/crc32c.h"
#include "sim/serial.h"
#include "sim/session.h"
#include "sim/shape_sweep.h"
#include "test_support.h"

namespace syscomm {
namespace {

using sim::ByteReader;
using sim::ByteWriter;
using sim::CheckpointInfo;
using sim::RunRequest;
using sim::RunResult;
using sim::RunStatus;
using sim::ShapeSpec;
using sim::ShapeSweep;
using sim::ShapeSweepOptions;
using sim::ShapeSweepResult;
using sim::SimSession;

/** splitmix64 — the tests' deterministic fuzz source. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** RAII guard so a failing test cannot leak the global flag. */
struct SwappedWriter
{
    SwappedWriter() { sim::setByteSwappedWriterSimulation(true); }
    ~SwappedWriter() { sim::setByteSwappedWriterSimulation(false); }
};

std::string
tempPath(const std::string& name)
{
    return testing::TempDir() + name;
}

Program
longRunProgram()
{
    Program p(4);
    MessageId id = p.declareMessage("S", 0, 3);
    for (int w = 0; w < 30; ++w) {
        for (int g = 0; g < 6; ++g)
            p.compute(0,
                      [](CellContext& ctx) { ctx.local(0) += 1.0; });
        p.write(0, id);
    }
    for (int w = 0; w < 30; ++w)
        p.read(3, id);
    return p;
}

// ---------------------------------------------------------------------
// Scalar wire format
// ---------------------------------------------------------------------

TEST(PortableFormat, ScalarsEncodeLittleEndianByteForByte)
{
    std::vector<std::uint8_t> out;
    ByteWriter w(out);
    w.put(std::uint32_t{0x11223344});
    w.put(std::int64_t{-2});
    w.put(std::uint8_t{0xab});
    w.put(true);
    w.put(1.0); // IEEE-754: 0x3ff0000000000000

    const std::uint8_t want[] = {
        0x44, 0x33, 0x22, 0x11,                         // u32 LE
        0xfe, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, // -2 LE
        0xab,                                           // u8
        0x01,                                           // bool
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf0, 0x3f, // 1.0 LE
    };
    ASSERT_EQ(out.size(), sizeof(want));
    for (std::size_t i = 0; i < sizeof(want); ++i)
        EXPECT_EQ(out[i], want[i]) << "byte " << i;
}

TEST(PortableFormat, ByteSwappedWriterProducesIdenticalBytes)
{
    const auto encodeAll = [] {
        std::vector<std::uint8_t> out;
        ByteWriter w(out);
        w.put(std::uint64_t{0x0102030405060708ull});
        w.put(std::int32_t{-123456});
        w.put(std::int16_t{-2});
        w.put(std::uint8_t{7});
        w.put(false);
        w.put(3.14159265358979);
        w.put(sim::RunStatus::kDeadlocked); // enums travel as values
        w.putVector(std::vector<double>{1.5, -2.5, 0.0});
        w.putVector(std::vector<std::uint8_t>{1, 2, 3});
        w.putString("portable");
        return out;
    };
    const std::vector<std::uint8_t> native = encodeAll();
    std::vector<std::uint8_t> swapped;
    {
        SwappedWriter guard;
        swapped = encodeAll();
    }
    EXPECT_EQ(native, swapped);

    // And the stream decodes back to the same values either way.
    ByteReader r(native.data(), native.size());
    EXPECT_EQ(r.get<std::uint64_t>(), 0x0102030405060708ull);
    EXPECT_EQ(r.get<std::int32_t>(), -123456);
    EXPECT_EQ(r.get<std::int16_t>(), -2);
    EXPECT_EQ(r.get<std::uint8_t>(), 7);
    EXPECT_EQ(r.get<bool>(), false);
    EXPECT_EQ(r.get<double>(), 3.14159265358979);
    EXPECT_EQ(r.get<sim::RunStatus>(), sim::RunStatus::kDeadlocked);
    std::vector<double> doubles;
    EXPECT_TRUE(r.getVector(doubles));
    EXPECT_EQ(doubles, (std::vector<double>{1.5, -2.5, 0.0}));
    std::vector<std::uint8_t> bytes;
    EXPECT_TRUE(r.getVector(bytes));
    EXPECT_EQ(bytes, (std::vector<std::uint8_t>{1, 2, 3}));
    std::string s;
    EXPECT_TRUE(r.getString(s));
    EXPECT_EQ(s, "portable");
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(PortableFormat, Crc32cMatchesKnownVectors)
{
    // RFC 3720 test vector: 32 zero bytes.
    std::uint8_t zeros[32] = {};
    EXPECT_EQ(sim::crc32c(zeros, sizeof(zeros)), 0x8a9136aau);
    // "123456789" — the classic check value for CRC-32C.
    const char* digits = "123456789";
    EXPECT_EQ(sim::crc32c(digits, 9), 0xe3069283u);
    // Chaining across a split equals one shot.
    const std::uint32_t head = sim::crc32c(digits, 4);
    EXPECT_EQ(sim::crc32c(digits + 4, 5, head), 0xe3069283u);
}

// ---------------------------------------------------------------------
// Whole-artifact identity under the byte-swapped writer
// ---------------------------------------------------------------------

TEST(PortableFormat, CheckpointBytesIdenticalUnderByteSwappedWriter)
{
    Program p = longRunProgram();
    MachineSpec spec;
    spec.topo = Topology::linearArray(4);
    spec.queuesPerLink = 2;
    RunRequest paused;
    paused.pauseAt = 60;

    SimSession native(p, spec);
    ASSERT_EQ(native.run(paused).status, RunStatus::kPaused);
    std::vector<std::uint8_t> nativeBytes;
    ASSERT_TRUE(native.saveCheckpoint(nativeBytes));

    std::vector<std::uint8_t> swappedBytes;
    {
        SwappedWriter guard;
        SimSession swapped(p, spec);
        ASSERT_EQ(swapped.run(paused).status, RunStatus::kPaused);
        ASSERT_TRUE(swapped.saveCheckpoint(swappedBytes));
    }
    EXPECT_EQ(nativeBytes, swappedBytes);

    // The "foreign" checkpoint restores and finishes identically.
    SimSession heir(p, spec);
    ASSERT_TRUE(heir.restoreCheckpoint({}, swappedBytes));
    SimSession oracle(p, spec);
    expectSameRunResult(heir.resume(), oracle.run({}),
                        "byte-swapped checkpoint restore");
    EXPECT_EQ(heir.machineDigest(), oracle.machineDigest());
}

TEST(PortableFormat, SweepJournalIdenticalUnderByteSwappedWriter)
{
    Program p = longRunProgram();
    Topology topo = Topology::linearArray(4);
    std::vector<ShapeSpec> shapes;
    for (int queues : {1, 2}) {
        ShapeSpec shape;
        shape.name = "q" + std::to_string(queues);
        shape.queuesPerLink = queues;
        shapes.push_back(std::move(shape));
    }
    std::vector<RunRequest> requests(1);

    ShapeSweepOptions options;
    options.numWorkers = 1;
    options.checkpointEvery = 40; // several checkpoint records
    options.journalPath = tempPath("portable_native.journal");
    ShapeSweep nativeSweep(p, topo, shapes, options);
    const ShapeSweepResult nativeResult = nativeSweep.run(requests);
    ASSERT_TRUE(nativeResult.complete);
    ASSERT_FALSE(nativeResult.journalError)
        << nativeResult.journalErrorText;

    options.journalPath = tempPath("portable_swapped.journal");
    ShapeSweepResult swappedResult;
    {
        SwappedWriter guard;
        ShapeSweep swappedSweep(p, topo, shapes, options);
        swappedResult = swappedSweep.run(requests);
    }
    ASSERT_TRUE(swappedResult.complete);

    std::string nativeBytes;
    std::string swappedBytes;
    std::string error;
    ASSERT_TRUE(serve::Io::system().readFile(
        tempPath("portable_native.journal"), nativeBytes, error));
    ASSERT_TRUE(serve::Io::system().readFile(
        tempPath("portable_swapped.journal"), swappedBytes, error));
    ASSERT_FALSE(nativeBytes.empty());
    EXPECT_EQ(nativeBytes, swappedBytes);

    // The "foreign-written" journal replays on this host: a second
    // run over it serves every row from the journal, bit-identically.
    ShapeSweep reader(p, topo, shapes, options);
    const ShapeSweepResult replayed = reader.run(requests);
    ASSERT_TRUE(replayed.complete);
    EXPECT_EQ(replayed.rowsFromJournal, replayed.rows.size());
    ASSERT_EQ(replayed.rows.size(), nativeResult.rows.size());
    for (std::size_t i = 0; i < replayed.rows.size(); ++i) {
        EXPECT_EQ(replayed.rows[i].machineDigest,
                  nativeResult.rows[i].machineDigest)
            << "row " << i;
    }
}

// ---------------------------------------------------------------------
// peekCheckpointInfo bounds fuzz
// ---------------------------------------------------------------------

TEST(PortableFormat, PeekCheckpointInfoParsesAndRejectsTornHeaders)
{
    Program p = longRunProgram();
    MachineSpec spec;
    spec.topo = Topology::linearArray(4);
    spec.queuesPerLink = 2;
    SimSession session(p, spec);
    RunRequest paused;
    paused.pauseAt = 60;
    ASSERT_EQ(session.run(paused).status, RunStatus::kPaused);
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(session.saveCheckpoint(bytes));

    CheckpointInfo info;
    ASSERT_TRUE(
        sim::peekCheckpointInfo(bytes.data(), bytes.size(), info));
    EXPECT_EQ(info.machineDigest, session.machineDigest());
    EXPECT_EQ(info.cycles, 60);
    EXPECT_EQ(info.writeSeq.size(), info.readSeq.size());

    // Degenerate inputs.
    EXPECT_FALSE(sim::peekCheckpointInfo(nullptr, 0, info));
    EXPECT_FALSE(sim::peekCheckpointInfo(bytes.data(), 0, info));
    EXPECT_FALSE(sim::peekCheckpointInfo(bytes.data(), 4, info));
}

TEST(PortableFormat, PeekCheckpointInfoSurvivesTruncationAndBitFlipFuzz)
{
    Program p = longRunProgram();
    MachineSpec spec;
    spec.topo = Topology::linearArray(4);
    spec.queuesPerLink = 2;
    SimSession session(p, spec);
    RunRequest paused;
    paused.pauseAt = 60;
    ASSERT_EQ(session.run(paused).status, RunStatus::kPaused);
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(session.saveCheckpoint(bytes));
    constexpr std::size_t kFixedHeader = 4 + 4 + 8 + 1 + 8 + 8 + 8;

    // 500 seeded truncations: any prefix must parse or reject, never
    // read past the buffer (the ASan CI job enforces "never").
    CheckpointInfo info;
    for (std::uint64_t trial = 0; trial < 500; ++trial) {
        const std::size_t cut =
            static_cast<std::size_t>(mix64(0x7c0ffee + trial) %
                                     (bytes.size() + 1));
        const bool parsed =
            sim::peekCheckpointInfo(bytes.data(), cut, info);
        if (cut < kFixedHeader)
            EXPECT_FALSE(parsed) << "cut " << cut;
        if (parsed)
            EXPECT_EQ(info.writeSeq.size(), info.readSeq.size());
    }

    // 500 seeded bit flips (plus a truncation half the time): parse
    // or reject cleanly; a parse must still return sane vectors.
    for (std::uint64_t trial = 0; trial < 500; ++trial) {
        std::vector<std::uint8_t> mutated = bytes;
        const std::uint64_t h = mix64(0xb17f11b + trial);
        mutated[static_cast<std::size_t>(h % mutated.size())] ^=
            static_cast<std::uint8_t>(1u << (mix64(h) % 8));
        std::size_t size = mutated.size();
        if (trial % 2 == 1)
            size = static_cast<std::size_t>(mix64(h ^ 0x5eed) %
                                            (mutated.size() + 1));
        const bool parsed =
            sim::peekCheckpointInfo(mutated.data(), size, info);
        if (parsed) {
            EXPECT_EQ(info.writeSeq.size(), info.readSeq.size());
            EXPECT_GE(info.resumeFrom, 0);
            EXPECT_GE(info.cycles, 0);
        }
    }
}

} // namespace
} // namespace syscomm
