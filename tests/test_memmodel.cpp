/**
 * @file
 * Systolic vs memory-to-memory model (paper Fig. 1 and section 1):
 * four local memory accesses per word at every cell that both reads
 * and writes it; zero under the systolic model.
 */

#include <gtest/gtest.h>

#include "algos/streams.h"
#include "sim/machine.h"
#include "sim/memmodel.h"

namespace syscomm {
namespace {

using sim::compareModels;
using sim::ModelComparison;
using sim::RunStatus;
using sim::SimOptions;
using sim::simulateProgram;

MachineSpec
spec(Topology topo, int queues = 2)
{
    MachineSpec s;
    s.topo = std::move(topo);
    s.queuesPerLink = queues;
    return s;
}

/** A pipeline that forwards `words` words through every interior cell. */
Program
forwardingPipeline(int cells, int words)
{
    Program p(cells);
    std::vector<MessageId> hop(cells, kInvalidMessage);
    for (int c = 1; c < cells; ++c) {
        hop[c] = p.declareMessage("H" + std::to_string(c), c - 1, c);
    }
    for (int w = 0; w < words; ++w)
        p.write(0, hop[1]);
    for (int c = 1; c + 1 < cells; ++c) {
        for (int w = 0; w < words; ++w) {
            p.read(c, hop[c]);
            p.write(c, hop[c + 1]);
        }
    }
    for (int w = 0; w < words; ++w)
        p.read(cells - 1, hop[cells - 1]);
    return p;
}

TEST(MemModel, SystolicHasZeroMemoryAccesses)
{
    Program p = forwardingPipeline(4, 6);
    sim::RunResult r = simulateProgram(p, spec(Topology::linearArray(4)));
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    EXPECT_EQ(r.stats.memAccesses, 0);
}

TEST(MemModel, MemoryToMemoryChargesFourPerUpdate)
{
    // Each interior cell performs R + W per word: 2 + 2 accesses, the
    // paper's "at least four local memory accesses ... to update a
    // data item flowing through the array".
    int cells = 4, words = 6;
    Program p = forwardingPipeline(cells, words);
    SimOptions options;
    options.memoryToMemory = true;
    sim::RunResult r =
        simulateProgram(p, spec(Topology::linearArray(cells)), options);
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    // Interior cells: (cells-2) * words * 4; endpoints add 2 per word
    // each (host write staging + receiver read staging).
    std::int64_t interior = static_cast<std::int64_t>(cells - 2) * words * 4;
    std::int64_t endpoints = 2LL * words * 2;
    EXPECT_EQ(r.stats.memAccesses, interior + endpoints);
}

TEST(MemModel, MemoryToMemoryIsSlower)
{
    Program p = forwardingPipeline(5, 12);
    ModelComparison cmp =
        compareModels(p, spec(Topology::linearArray(5)));
    ASSERT_EQ(cmp.systolic.status, RunStatus::kCompleted);
    ASSERT_EQ(cmp.memToMem.status, RunStatus::kCompleted);
    EXPECT_GT(cmp.memToMem.cycles, cmp.systolic.cycles);
    EXPECT_GT(cmp.speedup(), 1.5);
}

TEST(MemModel, SpeedupGrowsWithMemoryCost)
{
    Program p = forwardingPipeline(4, 8);
    SimOptions cheap;
    cheap.memAccessCost = 1;
    SimOptions expensive;
    expensive.memAccessCost = 4;
    ModelComparison c1 =
        compareModels(p, spec(Topology::linearArray(4)), cheap);
    ModelComparison c2 =
        compareModels(p, spec(Topology::linearArray(4)), expensive);
    EXPECT_GT(c2.speedup(), c1.speedup());
}

TEST(MemModel, ResultsAreIdenticalAcrossModels)
{
    // The memory model changes timing, never values.
    algos::StreamSpec sspec;
    sspec.numCells = 3;
    sspec.numStreams = 2;
    sspec.wordsPerStream = 4;
    sspec.pattern = algos::StreamPattern::kInterleaved;
    Program p = algos::makeStreamsProgram(sspec);
    ModelComparison cmp =
        compareModels(p, spec(Topology::linearArray(3)));
    ASSERT_EQ(cmp.systolic.status, RunStatus::kCompleted);
    ASSERT_EQ(cmp.memToMem.status, RunStatus::kCompleted);
    EXPECT_EQ(cmp.systolic.stats.wordsDelivered,
              cmp.memToMem.stats.wordsDelivered);
}

TEST(MemModel, SummaryMentionsSpeedup)
{
    Program p = forwardingPipeline(3, 4);
    ModelComparison cmp =
        compareModels(p, spec(Topology::linearArray(3)));
    EXPECT_NE(cmp.summary().find("speedup"), std::string::npos);
    EXPECT_GT(cmp.accessesPerWord(), 0.0);
}

} // namespace
} // namespace syscomm
