/**
 * @file
 * Crossing-off procedure (paper section 3): Fig. 2/4 trace, the
 * deadlocked programs of Fig. 5, and the cycle example of Fig. 6.
 */

#include <gtest/gtest.h>

#include "algos/paper_figures.h"
#include "core/crossoff.h"

namespace syscomm {
namespace {

using algos::fig2FirProgram;
using algos::fig5P1;
using algos::fig5P2;
using algos::fig5P3;
using algos::fig6CycleProgram;
using algos::fig7Program;

TEST(CrossOff, Fig2IsDeadlockFree)
{
    Program p = fig2FirProgram();
    ASSERT_TRUE(p.valid());
    CrossOffResult result = crossOff(p);
    EXPECT_TRUE(result.deadlockFree);
    EXPECT_EQ(result.remainingOps, 0);
    // Every transfer op crossed: 2 ops per pair.
    EXPECT_EQ(static_cast<int>(result.sequence.size()) * 2,
              p.totalTransferOps());
}

TEST(CrossOff, Fig4TraceShape)
{
    // Fig. 4 runs in 12 steps; steps 3, 5 and 9 (1-based) cross two
    // pairs, every other step crosses one.
    Program p = fig2FirProgram();
    CrossOffResult result = crossOff(p);
    ASSERT_TRUE(result.deadlockFree);
    ASSERT_EQ(result.rounds.size(), 12u);
    for (std::size_t step = 0; step < result.rounds.size(); ++step) {
        std::size_t expected =
            (step == 2 || step == 4 || step == 8) ? 2u : 1u;
        EXPECT_EQ(result.rounds[step].size(), expected)
            << "step " << step + 1;
    }
}

TEST(CrossOff, Fig4FirstStepIsXA)
{
    Program p = fig2FirProgram();
    CrossOffResult result = crossOff(p);
    ASSERT_FALSE(result.rounds.empty());
    ASSERT_EQ(result.rounds[0].size(), 1u);
    EXPECT_EQ(p.message(result.rounds[0][0].msg).name, "XA");
}

TEST(CrossOff, Fig5ProgramsAreDeadlocked)
{
    for (Program p : {fig5P1(), fig5P2(), fig5P3()}) {
        ASSERT_TRUE(p.valid());
        CrossOffResult result = crossOff(p);
        EXPECT_FALSE(result.deadlockFree);
        // "there is no executable pair even at the beginning".
        EXPECT_TRUE(result.rounds.empty());
        EXPECT_EQ(result.remainingOps, p.totalTransferOps());
    }
}

TEST(CrossOff, Fig5StuckDescriptionsNameTheFronts)
{
    Program p = fig5P1();
    CrossOffResult result = crossOff(p);
    std::string desc = result.describeStuck(p);
    EXPECT_NE(desc.find("W(A)"), std::string::npos);
    EXPECT_NE(desc.find("R(B)"), std::string::npos);
}

TEST(CrossOff, Fig6CycleIsDeadlockFree)
{
    // Messages form a sender/receiver cycle, but the program is
    // deadlock-free: checking for message cycles is insufficient.
    Program p = fig6CycleProgram();
    ASSERT_TRUE(p.valid());
    EXPECT_TRUE(isDeadlockFree(p));
}

TEST(CrossOff, Fig7IsDeadlockFree)
{
    EXPECT_TRUE(isDeadlockFree(fig7Program()));
}

TEST(CrossOff, EmptyProgramIsDeadlockFree)
{
    Program p(2);
    EXPECT_TRUE(isDeadlockFree(p));
}

TEST(CrossOff, SingleTransfer)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    p.write(0, a);
    p.read(1, a);
    CrossOffResult result = crossOff(p);
    EXPECT_TRUE(result.deadlockFree);
    ASSERT_EQ(result.rounds.size(), 1u);
    EXPECT_EQ(result.rounds[0][0].msg, a);
}

TEST(CrossOff, ReversedReceiverDeadlocks)
{
    // Reversing C3's first two statements in Fig. 2 (the paper's
    // example of breaking deadlock-freedom) yields a deadlock. Build
    // the equivalent minimal scenario: receiver writes its result
    // before reading the input that produces it.
    Program p(2);
    MessageId x = p.declareMessage("X", 0, 1);
    MessageId y = p.declareMessage("Y", 1, 0);
    p.write(0, x);
    p.read(0, y);
    p.write(1, y); // should be R(X) first
    p.read(1, x);
    EXPECT_FALSE(isDeadlockFree(p));
}

TEST(CrossOff, WordOrderWithinMessagePreserved)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    for (int i = 0; i < 3; ++i)
        p.write(0, a);
    for (int i = 0; i < 3; ++i)
        p.read(1, a);
    CrossOffResult result = crossOff(p);
    ASSERT_TRUE(result.deadlockFree);
    for (std::size_t i = 0; i < result.sequence.size(); ++i)
        EXPECT_EQ(result.sequence[i].wordIndex, static_cast<int>(i));
}

TEST(CrossOff, ComputeOpsAreTransparent)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    p.compute(0, ComputeFn{});
    p.write(0, a);
    p.compute(1, ComputeFn{});
    p.compute(1, ComputeFn{});
    p.read(1, a);
    EXPECT_TRUE(isDeadlockFree(p));
}

TEST(CrossOff, EngineStepwiseMatchesGreedy)
{
    Program p = fig2FirProgram();
    CrossOffEngine engine(p);
    int crossed = 0;
    while (!engine.done()) {
        auto pairs = engine.executablePairs();
        ASSERT_FALSE(pairs.empty());
        engine.crossOffPair(pairs.front());
        ++crossed;
    }
    EXPECT_EQ(crossed * 2, p.totalTransferOps());
}

TEST(CrossOff, FrontOpTracksProgress)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 0, 1);
    p.write(0, a);
    p.write(0, b);
    p.read(1, a);
    p.read(1, b);
    CrossOffEngine engine(p);
    EXPECT_EQ(engine.frontOp(0), 0);
    auto pairs = engine.executablePairs();
    ASSERT_EQ(pairs.size(), 1u);
    engine.crossOffPair(pairs[0]);
    EXPECT_EQ(engine.frontOp(0), 1);
    pairs = engine.executablePairs();
    ASSERT_EQ(pairs.size(), 1u);
    EXPECT_EQ(pairs[0].msg, b);
    engine.crossOffPair(pairs[0]);
    EXPECT_TRUE(engine.done());
    EXPECT_EQ(engine.frontOp(0), -1);
    EXPECT_EQ(engine.frontOp(1), -1);
}

} // namespace
} // namespace syscomm
