/**
 * @file
 * Program IR construction and structural validation (paper section 2).
 */

#include <gtest/gtest.h>

#include "core/program.h"

namespace syscomm {
namespace {

Program
goodProgram()
{
    Program p(3);
    MessageId a = p.declareMessage("A", 0, 2);
    p.write(0, a);
    p.write(0, a);
    p.read(2, a);
    p.read(2, a);
    return p;
}

TEST(Program, ValidProgramHasNoIssues)
{
    Program p = goodProgram();
    EXPECT_TRUE(p.valid());
    EXPECT_TRUE(p.validate(3).empty());
}

TEST(Program, MessageIntrospection)
{
    Program p = goodProgram();
    EXPECT_EQ(p.numMessages(), 1);
    EXPECT_EQ(p.message(0).name, "A");
    EXPECT_EQ(p.message(0).sender, 0);
    EXPECT_EQ(p.message(0).receiver, 2);
    EXPECT_EQ(p.messageLength(0), 2);
    EXPECT_EQ(p.messageByName("A"), std::optional<MessageId>(0));
    EXPECT_FALSE(p.messageByName("Z").has_value());
    EXPECT_EQ(p.message(0).str(), "A: 0 -> 2");
}

TEST(Program, OpCounts)
{
    Program p = goodProgram();
    p.compute(1, ComputeFn{});
    EXPECT_EQ(p.totalOps(), 5);
    EXPECT_EQ(p.totalTransferOps(), 4);
}

TEST(Program, WriteFromWrongCellFlagged)
{
    Program p(3);
    MessageId a = p.declareMessage("A", 0, 2);
    p.write(1, a); // wrong: sender is 0
    p.read(2, a);
    auto issues = p.validate();
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].find("sender"), std::string::npos);
}

TEST(Program, ReadFromWrongCellFlagged)
{
    Program p(3);
    MessageId a = p.declareMessage("A", 0, 2);
    p.write(0, a);
    p.read(1, a); // wrong: receiver is 2
    auto issues = p.validate();
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].find("receiver"), std::string::npos);
}

TEST(Program, CountMismatchFlagged)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    p.write(0, a);
    p.write(0, a);
    p.read(1, a);
    auto issues = p.validate();
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].find("2 writes but 1 reads"), std::string::npos);
}

TEST(Program, UnusedMessageFlagged)
{
    Program p(2);
    p.declareMessage("A", 0, 1);
    auto issues = p.validate();
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].find("never used"), std::string::npos);
}

TEST(Program, SelfMessageFlagged)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 1, 1);
    p.write(1, a);
    p.read(1, a);
    auto issues = p.validate();
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].find("sender equals receiver"), std::string::npos);
}

TEST(Program, DuplicateNamesFlagged)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId a2 = p.declareMessage("A", 1, 0);
    p.write(0, a);
    p.read(1, a);
    p.write(1, a2);
    p.read(0, a2);
    auto issues = p.validate();
    bool found = false;
    for (const auto& issue : issues)
        found = found || issue.find("duplicate") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(Program, TopologyCellCountMismatch)
{
    Program p = goodProgram();
    auto issues = p.validate(5);
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].find("topology"), std::string::npos);
}

/** Minimal context for exercising compute callbacks directly. */
class DummyContext : public CellContext
{
  public:
    double lastRead() const override { return last; }
    void setNextWrite(double v) override { staged = v; }
    double& local(int i) override
    {
        if (i >= static_cast<int>(locals.size()))
            locals.resize(i + 1, 0.0);
        return locals[i];
    }
    CellId cellId() const override { return 0; }
    Cycle now() const override { return 0; }

    double last = 1.5;
    double staged = 0.0;
    std::vector<double> locals;
};

TEST(Program, ComputeFnsAreInvocable)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    p.compute(0, [](CellContext& ctx) { ctx.setNextWrite(ctx.lastRead()); });
    p.write(0, a);
    p.read(1, a);
    const Op& op = p.cellOps(0)[0];
    ASSERT_TRUE(op.isCompute());
    DummyContext ctx;
    p.computeFn(op.computeId)(ctx);
    EXPECT_DOUBLE_EQ(ctx.staged, 1.5);
}

TEST(Op, Factories)
{
    Op r = Op::read(3);
    Op w = Op::write(4);
    Op c = Op::compute(7);
    EXPECT_TRUE(r.isRead());
    EXPECT_TRUE(w.isWrite());
    EXPECT_TRUE(c.isCompute());
    EXPECT_TRUE(r.isTransfer());
    EXPECT_FALSE(c.isTransfer());
    EXPECT_EQ(r.msg, 3);
    EXPECT_EQ(c.computeId, 7);
    EXPECT_EQ(r, Op::read(3));
    EXPECT_FALSE(r == w);
}

} // namespace
} // namespace syscomm
