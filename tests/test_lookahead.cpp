/**
 * @file
 * Lookahead crossing-off (paper section 8.1): rules R1/R2, the Fig. 10
 * trace of program P1, and the P2/P3 contrast.
 */

#include <gtest/gtest.h>

#include "algos/paper_figures.h"
#include "core/crossoff.h"

namespace syscomm {
namespace {

using algos::fig5P1;
using algos::fig5P2;
using algos::fig5P3;

CrossOffOptions
lookahead(int bound)
{
    CrossOffOptions options;
    options.lookahead = true;
    options.skip_bound = uniformSkipBound(bound);
    return options;
}

TEST(Lookahead, P1DeadlockFreeWithBufferTwo)
{
    // Section 8: "suppose that each queue can buffer two words. Then
    // the run time deadlock ... will not occur."
    Program p = fig5P1();
    EXPECT_FALSE(isDeadlockFree(p));
    EXPECT_FALSE(crossOff(p, lookahead(1)).deadlockFree);
    EXPECT_TRUE(crossOff(p, lookahead(2)).deadlockFree);
}

TEST(Lookahead, Fig10PairSequence)
{
    // Fig. 10: first pair is W(B)/R(B) (skipping two W(A)s), then the
    // A words interleave with the remaining B word... P1 has messages
    // A (2 words) and B (1 word); the first crossed pair must be B.
    Program p = fig5P1();
    CrossOffResult result = crossOff(p, lookahead(2));
    ASSERT_TRUE(result.deadlockFree);
    ASSERT_FALSE(result.sequence.empty());
    EXPECT_EQ(p.message(result.sequence[0].msg).name, "B");
    // Locating W(B) skipped the two W(A)s.
    ASSERT_EQ(result.sequence[0].skippedMessages.size(), 1u);
    EXPECT_EQ(p.message(result.sequence[0].skippedMessages[0]).name, "A");
}

TEST(Lookahead, P2DeadlockFreeWithBufferOne)
{
    // P2 writes face each other; one word of buffering unblocks both.
    Program p = fig5P2();
    EXPECT_FALSE(isDeadlockFree(p));
    EXPECT_TRUE(crossOff(p, lookahead(1)).deadlockFree);
}

TEST(Lookahead, P3DeadlockedAtAnyBound)
{
    // Rule R1: reads can never be skipped. P3 starts with reads on
    // both sides, so no buffering helps.
    Program p = fig5P3();
    EXPECT_FALSE(crossOff(p, lookahead(1)).deadlockFree);
    EXPECT_FALSE(crossOff(p, lookahead(100)).deadlockFree);
    CrossOffOptions unlimited;
    unlimited.lookahead = true;
    unlimited.skip_bound = unlimitedSkipBound();
    EXPECT_FALSE(crossOff(p, unlimited).deadlockFree);
}

TEST(Lookahead, ZeroBoundEqualsBasicProcedure)
{
    for (Program p : {fig5P1(), fig5P2(), fig5P3()}) {
        CrossOffOptions options;
        options.lookahead = true;
        options.skip_bound = zeroSkipBound();
        EXPECT_EQ(crossOff(p, options).deadlockFree,
                  crossOff(p).deadlockFree);
    }
}

TEST(Lookahead, R2BoundIsPerMessage)
{
    // Sender: W(A) W(A) W(B); receiver: R(B) R(A) R(A) — the P1 shape.
    // Give A a bound of 1 (insufficient) and B a large one: still
    // deadlocked, because reaching W(B) skips two writes to A.
    Program p = fig5P1();
    auto a = *p.messageByName("A");
    CrossOffOptions options;
    options.lookahead = true;
    options.skip_bound = [a](MessageId m) { return m == a ? 1 : 100; };
    EXPECT_FALSE(crossOff(p, options).deadlockFree);

    options.skip_bound = [a](MessageId m) { return m == a ? 2 : 0; };
    EXPECT_TRUE(crossOff(p, options).deadlockFree);
}

TEST(Lookahead, RouteCapacityBoundUsesHopCount)
{
    // A message crossing three links with capacity-2 queues may have
    // six words in flight.
    Program p(4);
    MessageId m = p.declareMessage("M", 0, 3);
    p.write(0, m);
    p.read(3, m);
    Topology topo = Topology::linearArray(4);
    SkipBoundFn bound = routeCapacitySkipBound(p, topo, 2);
    EXPECT_EQ(bound(m), 6);
}

TEST(Lookahead, DeepInterleaveNeedsMatchingBound)
{
    // Sender emits k words of A then one of B; receiver wants B first.
    for (int k : {1, 2, 5, 9}) {
        Program p(2);
        MessageId a = p.declareMessage("A", 0, 1);
        MessageId b = p.declareMessage("B", 0, 1);
        for (int i = 0; i < k; ++i)
            p.write(0, a);
        p.write(0, b);
        p.read(1, b);
        for (int i = 0; i < k; ++i)
            p.read(1, a);
        EXPECT_FALSE(crossOff(p, lookahead(k - 1)).deadlockFree) << k;
        EXPECT_TRUE(crossOff(p, lookahead(k)).deadlockFree) << k;
        (void)a;
        (void)b;
    }
}

TEST(Lookahead, SkippedMessagesReported)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 0, 1);
    MessageId c = p.declareMessage("C", 0, 1);
    p.write(0, a);
    p.write(0, b);
    p.write(0, c);
    p.read(1, c);
    p.read(1, a);
    p.read(1, b);
    CrossOffResult result = crossOff(p, lookahead(1));
    ASSERT_TRUE(result.deadlockFree);
    // First pair is C; locating its write skips one write to A and one
    // to B.
    EXPECT_EQ(result.sequence[0].msg, c);
    EXPECT_EQ(result.sequence[0].skippedMessages,
              (std::vector<MessageId>{a, b}));
}

} // namespace
} // namespace syscomm
