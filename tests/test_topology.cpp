/**
 * @file
 * Topologies and deterministic routing.
 */

#include <gtest/gtest.h>

#include "core/route.h"
#include "core/topology.h"

namespace syscomm {
namespace {

TEST(Topology, LinearArray)
{
    Topology t = Topology::linearArray(4);
    EXPECT_EQ(t.numCells(), 4);
    EXPECT_EQ(t.numLinks(), 3);
    EXPECT_TRUE(t.linkBetween(0, 1).has_value());
    EXPECT_TRUE(t.linkBetween(1, 0).has_value());
    EXPECT_FALSE(t.linkBetween(0, 2).has_value());
    EXPECT_EQ(t.neighbors(1), (std::vector<CellId>{0, 2}));
    EXPECT_EQ(t.neighbors(0), (std::vector<CellId>{1}));
}

TEST(Topology, LinearRoute)
{
    Topology t = Topology::linearArray(5);
    EXPECT_EQ(t.routePath(0, 4), (std::vector<CellId>{0, 1, 2, 3, 4}));
    EXPECT_EQ(t.routePath(3, 1), (std::vector<CellId>{3, 2, 1}));
    EXPECT_EQ(t.routePath(2, 2), (std::vector<CellId>{2}));
}

TEST(Topology, Ring)
{
    Topology t = Topology::ring(5);
    EXPECT_EQ(t.numLinks(), 5);
    EXPECT_TRUE(t.linkBetween(0, 4).has_value());
    // Shortest way from 0 to 4 is the wrap link.
    EXPECT_EQ(t.routePath(0, 4), (std::vector<CellId>{0, 4}));
    EXPECT_EQ(t.routePath(0, 2), (std::vector<CellId>{0, 1, 2}));
}

TEST(Topology, Mesh)
{
    Topology t = Topology::mesh(3, 4);
    EXPECT_EQ(t.numCells(), 12);
    // 3*3 horizontal + 2*4 vertical = 17 links.
    EXPECT_EQ(t.numLinks(), 17);
    EXPECT_TRUE(t.isMesh());
    EXPECT_EQ(t.meshRows(), 3);
    EXPECT_EQ(t.meshCols(), 4);
}

TEST(Topology, MeshXyRouting)
{
    Topology t = Topology::mesh(3, 3);
    // (0,0) -> (2,2): column first (0,0)->(0,1)->(0,2), then rows.
    EXPECT_EQ(t.routePath(0, 8), (std::vector<CellId>{0, 1, 2, 5, 8}));
    // (2,1) -> (0,0): column to 0, then up.
    EXPECT_EQ(t.routePath(7, 0), (std::vector<CellId>{7, 6, 3, 0}));
}

TEST(Topology, CustomGraph)
{
    // A 'Y' shape: 0-1, 1-2, 1-3.
    Topology t = Topology::custom(4, {{0, 1}, {2, 1}, {1, 3}});
    EXPECT_EQ(t.numLinks(), 3);
    EXPECT_EQ(t.routePath(0, 3), (std::vector<CellId>{0, 1, 3}));
    EXPECT_EQ(t.routePath(2, 0), (std::vector<CellId>{2, 1, 0}));
    // Endpoint order was normalized.
    EXPECT_EQ(t.link(1).a, 1);
    EXPECT_EQ(t.link(1).b, 2);
}

TEST(Topology, DirectionFrom)
{
    Topology t = Topology::linearArray(3);
    LinkIndex l = *t.linkBetween(0, 1);
    EXPECT_EQ(t.directionFrom(l, 0), LinkDir::kForward);
    EXPECT_EQ(t.directionFrom(l, 1), LinkDir::kBackward);
    EXPECT_EQ(opposite(LinkDir::kForward), LinkDir::kBackward);
}

TEST(Route, ComputeRouteHops)
{
    Topology t = Topology::linearArray(4);
    Route r = computeRoute(t, 0, 3);
    ASSERT_EQ(r.numHops(), 3);
    EXPECT_EQ(r.hops[0].from, 0);
    EXPECT_EQ(r.hops[0].to, 1);
    EXPECT_EQ(r.hops[0].dir, LinkDir::kForward);
    EXPECT_EQ(r.hops[2].to, 3);
    EXPECT_EQ(r.str(), "0 -> 1 -> 2 -> 3");

    Route back = computeRoute(t, 3, 0);
    EXPECT_EQ(back.hops[0].dir, LinkDir::kBackward);
}

TEST(Route, AdjacentCells)
{
    Topology t = Topology::linearArray(2);
    Route r = computeRoute(t, 1, 0);
    EXPECT_EQ(r.numHops(), 1);
    EXPECT_EQ(r.hops[0].dir, LinkDir::kBackward);
}

TEST(Topology, BfsTieBreaksDeterministically)
{
    // Two equal-length paths 0-1-3 and 0-2-3: BFS prefers the smaller
    // neighbor (1).
    Topology t = Topology::custom(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
    EXPECT_EQ(t.routePath(0, 3), (std::vector<CellId>{0, 1, 3}));
}

TEST(Topology, Torus)
{
    Topology t = Topology::torus(3, 4);
    EXPECT_EQ(t.numCells(), 12);
    // Every cell has degree 4: 2 * cells links.
    EXPECT_EQ(t.numLinks(), 24);
    for (CellId c = 0; c < t.numCells(); ++c)
        EXPECT_EQ(t.neighbors(c).size(), 4u) << c;
    // Wraparound shortens the route: (0,0) -> (0,3) is one hop.
    EXPECT_EQ(t.routePath(0, 3), (std::vector<CellId>{0, 3}));
    // (0,0) -> (2,0) wraps vertically.
    EXPECT_EQ(t.routePath(0, 8), (std::vector<CellId>{0, 8}));
}

TEST(Topology, TorusRoutesAreMinimal)
{
    Topology torus = Topology::torus(4, 4);
    Topology mesh = Topology::mesh(4, 4);
    // Torus routes are never longer than mesh routes.
    for (CellId a = 0; a < 16; ++a) {
        for (CellId b = 0; b < 16; ++b) {
            EXPECT_LE(torus.routePath(a, b).size(),
                      mesh.routePath(a, b).size())
                << a << "->" << b;
        }
    }
}

TEST(Topology, Names)
{
    EXPECT_EQ(Topology::linearArray(4).name(), "linear(4)");
    EXPECT_EQ(Topology::ring(3).name(), "ring(3)");
    EXPECT_EQ(Topology::mesh(2, 3).name(), "mesh(2x3)");
    EXPECT_EQ(Topology::torus(3, 3).name(), "torus(3x3)");
}

} // namespace
} // namespace syscomm
