/**
 * @file
 * The kernel's active-set structures against a std::set oracle. The
 * event-driven kernel's correctness rests on these sets behaving
 * exactly like an ordered set under arbitrary insert/erase/cursor
 * interleavings — including mutation *during* a cursor scan, where
 * the by-value re-seek contract says elements inserted ahead of the
 * cursor are visited this pass and elements inserted behind it are
 * not. Both implementations (BitIndexSet, the hierarchical bitmap the
 * kernel uses; SortedIndexSet, the sorted-vector reference) are
 * driven through randomized scripts next to a std::set executing the
 * same script.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>
#include <vector>

#include "sim/active_set.h"

namespace syscomm::sim {
namespace {

constexpr int kInvalid = -1;

/** std::set-backed oracle with the same cursor API. */
class OracleSet
{
  public:
    void insert(int i) { s_.insert(i); }
    void erase(int i) { s_.erase(i); }
    bool contains(int i) const { return s_.count(i) > 0; }
    bool empty() const { return s_.empty(); }
    int size() const { return static_cast<int>(s_.size()); }
    void clear() { s_.clear(); }

    int
    largest() const
    {
        return s_.empty() ? kInvalid : *s_.rbegin();
    }

    int
    largestBelow(int bound) const
    {
        auto it = s_.lower_bound(bound);
        if (it == s_.begin())
            return kInvalid;
        return *std::prev(it);
    }

    int
    firstAtLeast(int bound) const
    {
        auto it = s_.lower_bound(bound);
        return it == s_.end() ? kInvalid : *it;
    }

  private:
    std::set<int> s_;
};

/**
 * Drive @p set and the oracle through the same randomized script of
 * mutations and cursor queries; every query must agree.
 */
template <typename Set>
void
stressAgainstOracle(Set& set, int universe, std::uint64_t seed,
                    int steps)
{
    OracleSet oracle;
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> pick(0, universe - 1);
    std::uniform_int_distribution<int> op(0, 9);

    for (int step = 0; step < steps; ++step) {
        int i = pick(rng);
        switch (op(rng)) {
          case 0:
          case 1:
          case 2:
            set.insert(i);
            oracle.insert(i);
            break;
          case 3:
          case 4:
            set.erase(i);
            oracle.erase(i);
            break;
          case 5:
            ASSERT_EQ(set.contains(i), oracle.contains(i)) << "step " << step;
            break;
          case 6:
            ASSERT_EQ(set.firstAtLeast(i), oracle.firstAtLeast(i))
                << "step " << step << " bound " << i;
            break;
          case 7:
            ASSERT_EQ(set.largestBelow(i), oracle.largestBelow(i))
                << "step " << step << " bound " << i;
            break;
          case 8:
            ASSERT_EQ(set.largest(), oracle.largest()) << "step " << step;
            break;
          default:
            ASSERT_EQ(set.empty(), oracle.empty()) << "step " << step;
            ASSERT_EQ(set.size(), oracle.size()) << "step " << step;
            break;
        }
    }
    // Full ascending walk at the end: identical contents.
    int a = set.firstAtLeast(0);
    int b = oracle.firstAtLeast(0);
    while (a != kInvalid || b != kInvalid) {
        ASSERT_EQ(a, b);
        a = set.firstAtLeast(a + 1);
        b = oracle.firstAtLeast(b + 1);
    }
}

/**
 * Ascending scan with mutations mid-scan (the kernel's cellPhase
 * pattern): both structures must visit the identical sequence when
 * the same mutations are applied at the same scan positions.
 */
template <typename Set>
void
scanWithMutations(Set& set, int universe, std::uint64_t seed)
{
    OracleSet oracle;
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> pick(0, universe - 1);
    std::uniform_int_distribution<int> coin(0, 5);

    for (int k = 0; k < universe / 2; ++k) {
        int i = pick(rng);
        set.insert(i);
        oracle.insert(i);
    }

    for (int pass = 0; pass < 8; ++pass) {
        int a = set.firstAtLeast(0);
        int b = oracle.firstAtLeast(0);
        int visited = 0;
        while (a != kInvalid || b != kInvalid) {
            ASSERT_EQ(a, b) << "pass " << pass << " visit " << visited;
            // Mutate mid-scan: sometimes drop the current element
            // (the kernel erases a cell that went done or to sleep),
            // sometimes insert a random element (a wake) — ahead of
            // the cursor it must be visited later this pass, behind
            // it must not.
            switch (coin(rng)) {
              case 0:
                set.erase(a);
                oracle.erase(a);
                break;
              case 1:
              case 2: {
                int j = pick(rng);
                set.insert(j);
                oracle.insert(j);
                break;
              }
              default:
                break;
            }
            a = set.firstAtLeast(a + 1);
            b = oracle.firstAtLeast(b + 1);
            ++visited;
            ASSERT_LE(visited, 4 * universe) << "scan diverged";
        }
    }

    // Descending scan with mutations (the forwarding-phase pattern).
    for (int pass = 0; pass < 8; ++pass) {
        int a = set.largest();
        int b = oracle.largest();
        while (a != kInvalid || b != kInvalid) {
            ASSERT_EQ(a, b) << "descending pass " << pass;
            if (coin(rng) == 0) {
                set.erase(a);
                oracle.erase(a);
            } else if (coin(rng) == 1) {
                int j = pick(rng);
                set.insert(j);
                oracle.insert(j);
            }
            a = set.largestBelow(a);
            b = oracle.largestBelow(b);
        }
    }
}

TEST(BitIndexSet, RandomizedOpsMatchStdSet)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        for (int universe : {1, 7, 64, 65, 1000, 5000}) {
            BitIndexSet<int, kInvalid> set;
            set.resize(universe);
            stressAgainstOracle(set, universe, seed, 4000);
        }
    }
}

TEST(BitIndexSet, ScanWithMutationInterleavings)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        BitIndexSet<int, kInvalid> set;
        set.resize(700);
        scanWithMutations(set, 700, seed);
    }
}

TEST(BitIndexSet, LargeUniverseSparseAndDense)
{
    // Three summary levels (above 64^2 leaf bits) at 100k: the size
    // the kernel actually runs.
    BitIndexSet<int, kInvalid> set;
    set.resize(100000);
    EXPECT_TRUE(set.empty());
    EXPECT_EQ(set.firstAtLeast(0), kInvalid);
    EXPECT_EQ(set.largest(), kInvalid);

    set.insert(0);
    set.insert(99999);
    set.insert(4097);
    EXPECT_EQ(set.size(), 3);
    EXPECT_EQ(set.firstAtLeast(0), 0);
    EXPECT_EQ(set.firstAtLeast(1), 4097);
    EXPECT_EQ(set.firstAtLeast(4098), 99999);
    EXPECT_EQ(set.largestBelow(99999), 4097);
    EXPECT_EQ(set.largest(), 99999);
    set.erase(4097);
    EXPECT_EQ(set.firstAtLeast(1), 99999);

    // Idempotent mutations.
    set.insert(0);
    EXPECT_EQ(set.size(), 2);
    set.erase(4097);
    EXPECT_EQ(set.size(), 2);

    // Dense fill of one 64^2 block, then clear keeps it reusable.
    for (int i = 2000; i < 7000; ++i)
        set.insert(i);
    EXPECT_EQ(set.size(), 5002);
    EXPECT_EQ(set.firstAtLeast(1), 2000);
    EXPECT_EQ(set.largestBelow(99999), 6999);
    set.clear();
    EXPECT_TRUE(set.empty());
    EXPECT_EQ(set.firstAtLeast(0), kInvalid);
    set.insert(12345);
    EXPECT_EQ(set.largest(), 12345);
    set.clear();

    stressAgainstOracle(set, 100000, 42, 20000);
}

TEST(SortedIndexSet, RandomizedOpsMatchStdSet)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        SortedIndexSet<int, kInvalid> set;
        stressAgainstOracle(set, 1000, seed, 4000);
    }
}

TEST(SortedIndexSet, ScanWithMutationInterleavings)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        SortedIndexSet<int, kInvalid> set;
        scanWithMutations(set, 500, seed);
    }
}

} // namespace
} // namespace syscomm::sim
