/**
 * @file
 * Statistics accounting invariants of the simulator.
 */

#include <gtest/gtest.h>

#include "algos/fir.h"
#include "algos/paper_figures.h"
#include "core/program_gen.h"
#include "sim/machine.h"

namespace syscomm {
namespace {

using sim::RunStatus;

TEST(Stats, WordAccountingOnFir)
{
    algos::FirSpec fir = algos::FirSpec::random(4, 8, 1);
    Program p = algos::makeFirProgram(fir);
    MachineSpec spec;
    spec.topo = algos::firTopology(4);
    spec.queuesPerLink = 2;
    sim::RunResult r = sim::simulateProgram(p, spec);
    ASSERT_EQ(r.status, RunStatus::kCompleted);

    std::int64_t words = 0;
    for (MessageId m = 0; m < p.numMessages(); ++m)
        words += p.messageLength(m);
    EXPECT_EQ(r.stats.wordsDelivered, words);
    // All FIR messages are single-hop: nothing is forwarded.
    EXPECT_EQ(r.stats.wordsForwarded, 0);
    // Every R/W/compute executed exactly once.
    EXPECT_EQ(r.stats.opsExecuted, p.totalOps());
    // One queue assignment and one release per message (single hop).
    EXPECT_EQ(r.stats.assignments, p.numMessages());
    EXPECT_EQ(r.stats.releases, p.numMessages());
}

TEST(Stats, ForwardingAccountingMultiHop)
{
    Program p(4);
    MessageId m = p.declareMessage("M", 0, 3);
    for (int i = 0; i < 5; ++i)
        p.write(0, m);
    for (int i = 0; i < 5; ++i)
        p.read(3, m);
    MachineSpec spec;
    spec.topo = Topology::linearArray(4);
    spec.queuesPerLink = 1;
    sim::RunResult r = sim::simulateProgram(p, spec);
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    // 5 words over 3 hops: 2 internal moves each.
    EXPECT_EQ(r.stats.wordsForwarded, 10);
    EXPECT_EQ(r.stats.assignments, 3);
    EXPECT_EQ(r.stats.releases, 3);
    EXPECT_EQ(r.stats.requests, 3); // one per hop
}

TEST(Stats, PerCellBlockedSumsToTotal)
{
    Program p = algos::fig7Program();
    MachineSpec spec;
    spec.topo = algos::fig7Topology();
    spec.queuesPerLink = 1;
    sim::RunResult r = sim::simulateProgram(p, spec);
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    Cycle sum = 0;
    for (Cycle c : r.stats.perCellBlocked)
        sum += c;
    EXPECT_EQ(sum, r.stats.cellBlockedCycles);
}

TEST(Stats, QueueBusyNeverExceedsCyclesTimesQueues)
{
    Topology topo = Topology::linearArray(4);
    GenOptions gen;
    gen.numMessages = 8;
    gen.seed = 17;
    gen.interleave = 0.0; // no related classes: 2 queues suffice
    Program p = randomDeadlockFreeProgram(topo, gen);
    MachineSpec spec;
    spec.topo = topo;
    spec.queuesPerLink = 2;
    sim::RunResult r = sim::simulateProgram(p, spec);
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    EXPECT_LE(r.stats.queueBusyCycles,
              r.cycles * topo.numLinks() * spec.queuesPerLink);
    EXPECT_GT(r.stats.queueBusyCycles, 0);
    EXPECT_GE(r.stats.avgQueueOccupancy(), 0.0);
    EXPECT_LE(r.stats.avgQueueOccupancy(), spec.queueCapacity);
}

TEST(Stats, RequestWaitAccumulates)
{
    // Fig. 7 at one queue/link: C must wait for A's queue on link 1-2
    // and B must wait for C on link 2-3.
    Program p = algos::fig7Program();
    MachineSpec spec;
    spec.topo = algos::fig7Topology();
    spec.queuesPerLink = 1;
    sim::RunResult r = sim::simulateProgram(p, spec);
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    EXPECT_GT(r.stats.requestWaitCycles, 0);
    EXPECT_GT(r.stats.avgRequestWait(), 0.0);
}

TEST(Stats, SummaryMentionsKeyCounters)
{
    Program p = algos::fig2FirProgram();
    MachineSpec spec;
    spec.topo = algos::fig2Topology();
    spec.queuesPerLink = 2;
    sim::RunResult r = sim::simulateProgram(p, spec);
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    std::string s = r.stats.summary();
    EXPECT_NE(s.find("cycles:"), std::string::npos);
    EXPECT_NE(s.find("words delivered:"), std::string::npos);
    EXPECT_NE(s.find("queue assignments:"), std::string::npos);
}

TEST(Stats, MaxCyclesStatusWhenBudgetTooSmall)
{
    algos::FirSpec fir = algos::FirSpec::random(3, 16, 2);
    Program p = algos::makeFirProgram(fir);
    MachineSpec spec;
    spec.topo = algos::firTopology(3);
    spec.queuesPerLink = 2;
    sim::SimOptions options;
    options.maxCycles = 10; // far too few
    sim::RunResult r = sim::simulateProgram(p, spec, options);
    EXPECT_EQ(r.status, RunStatus::kMaxCycles);
    EXPECT_EQ(r.cycles, 10);
}

} // namespace
} // namespace syscomm
