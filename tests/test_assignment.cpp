/**
 * @file
 * Queue-assignment policies (section 7) at the LinkState level.
 */

#include <gtest/gtest.h>

#include "sim/arena.h"
#include "sim/assignment.h"

namespace syscomm::sim {
namespace {

/**
 * Arena-backed free-standing link: LinkState is a view over SimArena
 * pools, so the arena must live alongside it.
 */
struct TestLink
{
    SimArena arena;
    LinkState& link;
    explicit TestLink(int queues)
        : link(arena.buildSingleLink(queues, /*capacity=*/1,
                                     /*ext_capacity=*/0,
                                     /*ext_penalty=*/0))
    {}
};

TEST(StaticPolicyT, AssignsEverythingUpFront)
{
    TestLink tl(3);
    LinkState& link = tl.link;
    link.addCrossing(0, LinkDir::kForward, 0, 2);
    link.addCrossing(1, LinkDir::kForward, 0, 2);
    link.addCrossing(2, LinkDir::kBackward, 0, 1);
    StaticPolicy policy;
    std::vector<AssignmentDecision> decisions;
    ASSERT_TRUE(policy.initLink(link, decisions));
    EXPECT_EQ(decisions.size(), 3u);
    EXPECT_EQ(link.numFreeQueues(), 0);
    for (const auto& c : link.crossings())
        EXPECT_EQ(c.phase, CrossingPhase::kAssigned);
}

TEST(StaticPolicyT, FailsWhenShortOnQueues)
{
    TestLink tl(1);
    LinkState& link = tl.link;
    link.addCrossing(0, LinkDir::kForward, 0, 1);
    link.addCrossing(1, LinkDir::kForward, 0, 1);
    StaticPolicy policy;
    std::vector<AssignmentDecision> decisions;
    EXPECT_FALSE(policy.initLink(link, decisions));
}

TEST(FcfsPolicyT, ServesInRequestOrder)
{
    TestLink tl(1);
    LinkState& link = tl.link;
    link.addCrossing(0, LinkDir::kForward, 0, 1);
    link.addCrossing(1, LinkDir::kForward, 0, 1);
    link.request(1, 1); // message 1 asks first
    link.request(0, 2);
    FcfsPolicy policy;
    std::vector<AssignmentDecision> decisions;
    policy.tick(link, 3, decisions);
    ASSERT_EQ(decisions.size(), 1u);
    EXPECT_EQ(decisions[0].msg, 1);
}

TEST(FcfsPolicyT, TieBrokenByMessageId)
{
    TestLink tl(1);
    LinkState& link = tl.link;
    link.addCrossing(2, LinkDir::kForward, 0, 1);
    link.addCrossing(1, LinkDir::kForward, 0, 1);
    link.request(2, 5);
    link.request(1, 5);
    FcfsPolicy policy;
    std::vector<AssignmentDecision> decisions;
    policy.tick(link, 6, decisions);
    ASSERT_EQ(decisions.size(), 1u);
    EXPECT_EQ(decisions[0].msg, 1);
}

TEST(CompatiblePolicyT, OrderedByLabelNotArrival)
{
    // Message 1 (label 2) requests first, but message 0 (label 1) must
    // be served first.
    TestLink tl(1);
    LinkState& link = tl.link;
    link.addCrossing(0, LinkDir::kForward, 0, 1);
    link.addCrossing(1, LinkDir::kForward, 0, 1);
    link.request(1, 1);
    CompatiblePolicy policy({1, 2}, false);
    std::vector<AssignmentDecision> decisions;
    policy.tick(link, 2, decisions);
    EXPECT_TRUE(decisions.empty()); // label 1 has not requested yet

    link.request(0, 3);
    policy.tick(link, 4, decisions);
    ASSERT_EQ(decisions.size(), 1u);
    EXPECT_EQ(decisions[0].msg, 0);

    // Label 2 still waits: label 1 holds the only queue.
    decisions.clear();
    policy.tick(link, 5, decisions);
    EXPECT_TRUE(decisions.empty());
}

TEST(CompatiblePolicyT, SameLabelAssignedSimultaneously)
{
    TestLink tl(2);
    LinkState& link = tl.link;
    link.addCrossing(0, LinkDir::kForward, 0, 1);
    link.addCrossing(1, LinkDir::kForward, 0, 1);
    link.request(0, 1);
    CompatiblePolicy policy({1, 1}, false);
    std::vector<AssignmentDecision> decisions;
    policy.tick(link, 2, decisions);
    // Both or neither: both, since two queues are free and one member
    // requested.
    EXPECT_EQ(decisions.size(), 2u);
}

TEST(CompatiblePolicyT, SameLabelGroupWaitsForEnoughQueues)
{
    TestLink tl(1);
    LinkState& link = tl.link;
    link.addCrossing(0, LinkDir::kForward, 0, 1);
    link.addCrossing(1, LinkDir::kForward, 0, 1);
    link.request(0, 1);
    link.request(1, 1);
    CompatiblePolicy policy({1, 1}, false);
    std::vector<AssignmentDecision> decisions;
    policy.tick(link, 2, decisions);
    EXPECT_TRUE(decisions.empty()); // needs 2 free queues, has 1
}

TEST(CompatiblePolicyT, EagerReservesBeforeRequest)
{
    TestLink tl(1);
    LinkState& link = tl.link;
    link.addCrossing(0, LinkDir::kForward, 0, 1);
    CompatiblePolicy policy({1}, true);
    std::vector<AssignmentDecision> decisions;
    policy.tick(link, 1, decisions);
    ASSERT_EQ(decisions.size(), 1u); // assigned before any request
    EXPECT_EQ(link.crossing(0).phase, CrossingPhase::kAssigned);
}

TEST(CompatiblePolicyT, LargerLabelProceedsAfterRelease)
{
    TestLink tl(1);
    LinkState& link = tl.link;
    link.addCrossing(0, LinkDir::kForward, 0, 1);
    link.addCrossing(1, LinkDir::kForward, 0, 1);
    link.request(0, 1);
    link.request(1, 1);
    CompatiblePolicy policy({1, 2}, false);
    std::vector<AssignmentDecision> decisions;
    policy.tick(link, 2, decisions);
    ASSERT_EQ(decisions.size(), 1u);
    EXPECT_EQ(decisions[0].msg, 0);

    // Pass message 0's single word through and release its queue.
    link.beginCycle(3);
    Word w;
    w.msg = 0;
    link.queue(0).push(w, 3);
    link.beginCycle(4);
    (void)link.queue(0).pop(4);
    link.finishMsg(0, 4);

    decisions.clear();
    policy.tick(link, 5, decisions);
    ASSERT_EQ(decisions.size(), 1u);
    EXPECT_EQ(decisions[0].msg, 1);
}

TEST(RandomPolicyT, EventuallyServesEveryRequest)
{
    TestLink tl(2);
    LinkState& link = tl.link;
    link.addCrossing(0, LinkDir::kForward, 0, 1);
    link.addCrossing(1, LinkDir::kForward, 0, 1);
    link.request(0, 1);
    link.request(1, 1);
    RandomPolicy policy(7);
    std::vector<AssignmentDecision> decisions;
    policy.tick(link, 2, decisions);
    EXPECT_EQ(decisions.size(), 2u);
}

TEST(PolicyFactory, NamesAndKinds)
{
    EXPECT_STREQ(policyKindName(PolicyKind::kFcfs), "fcfs");
    EXPECT_STREQ(policyKindName(PolicyKind::kCompatible), "compatible");
    auto p = makePolicy(PolicyKind::kCompatibleEager, {1}, 1);
    EXPECT_EQ(p->name(), "compatible-eager");
    auto s = makePolicy(PolicyKind::kStatic, {}, 1);
    EXPECT_EQ(s->name(), "static");
}

} // namespace
} // namespace syscomm::sim
