/**
 * @file
 * Deterministic fault injection (sim/fault.h + the session injector).
 *
 * The contracts under test, in order of importance:
 *  - faulted runs are bit-identical across kernels, across repeated
 *    runs of one session, and across pause/resume and checkpoint
 *    save/restore boundaries that land mid-fault-schedule;
 *  - a frozen run with injected hardware implicated terminates
 *    kFaulted with fault attribution in the deadlock report, while
 *    transient faults (stalls) and survivable ones (degrades) let the
 *    run complete;
 *  - plans are plain, validated data: seeded generation is
 *    reproducible, invalid targets are a config error, and checkpoint
 *    streams are gated on the exact plan digest.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/fault.h"
#include "test_support.h"

namespace syscomm {
namespace {

using sim::FaultEvent;
using sim::FaultKind;
using sim::FaultPlan;
using sim::FaultPlanOptions;
using sim::KernelKind;
using sim::RunRequest;
using sim::RunResult;
using sim::RunStatus;
using sim::SessionOptions;
using sim::SimSession;

constexpr int kCells = 8;
constexpr int kStreams = 4;
constexpr int kWords = 16;

/** Ring transfer streams (i -> i+3): every route has a detour, and
 *  killing a routed link freezes words mid-flight. */
Program
ringStreams()
{
    Program p(kCells);
    for (int s = 0; s < kStreams; ++s) {
        CellId from = static_cast<CellId>((s * kCells) / kStreams);
        CellId to = static_cast<CellId>((from + 3) % kCells);
        MessageId id = p.declareMessage("S" + std::to_string(s), from, to);
        for (int w = 0; w < kWords; ++w)
            p.write(from, id);
        for (int w = 0; w < kWords; ++w)
            p.read(to, id);
    }
    return p;
}

MachineSpec
ringSpec()
{
    MachineSpec spec;
    spec.topo = Topology::ring(kCells);
    spec.queuesPerLink = 2;
    spec.queueCapacity = 2;
    return spec;
}

/** The first hop of stream S0 (0 -> 3 routes through 0--1). */
LinkIndex
firstHopLink(const MachineSpec& spec)
{
    auto l = spec.topo.linkBetween(0, 1);
    EXPECT_TRUE(l.has_value());
    return *l;
}

Cycle
baselineCycles(const Program& p, const MachineSpec& spec)
{
    SimSession session(p, spec);
    RunResult r = session.run({});
    EXPECT_EQ(r.status, RunStatus::kCompleted);
    return r.cycles;
}

// ---------------------------------------------------------------------
// plan data: generation, ordering, validation
// ---------------------------------------------------------------------

TEST(FaultPlan, SeededGenerationIsReproducibleAndValid)
{
    MachineSpec spec = ringSpec();
    FaultPlanOptions fo;
    fo.seed = 42;
    fo.numEvents = 12;
    fo.killCells = true;
    FaultPlan a = sim::randomFaultPlan(spec.topo, spec, fo);
    FaultPlan b = sim::randomFaultPlan(spec.topo, spec, fo);
    ASSERT_EQ(a.size(), 12u);
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_EQ(a.validate(spec.topo, spec), "");
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.events()[i].describe(), b.events()[i].describe());
        if (i > 0) {
            EXPECT_LE(a.events()[i - 1].cycle, a.events()[i].cycle);
        }
    }

    fo.seed = 43;
    FaultPlan c = sim::randomFaultPlan(spec.topo, spec, fo);
    EXPECT_NE(a.digest(), c.digest());
}

TEST(FaultPlan, AddKeepsByCycleOrderStable)
{
    FaultPlan plan;
    FaultEvent late;
    late.cycle = 20;
    late.kind = FaultKind::kKillLink;
    late.link = 1;
    FaultEvent early;
    early.cycle = 5;
    early.kind = FaultKind::kStallLink;
    early.link = 0;
    early.arg = 3;
    FaultEvent alsoLate;
    alsoLate.cycle = 20;
    alsoLate.kind = FaultKind::kKillLink;
    alsoLate.link = 2;
    plan.add(late);
    plan.add(early);
    plan.add(alsoLate);
    ASSERT_EQ(plan.size(), 3u);
    EXPECT_EQ(plan.events()[0].cycle, 5);
    // Same-cycle events keep insertion order.
    EXPECT_EQ(plan.events()[1].link, 1);
    EXPECT_EQ(plan.events()[2].link, 2);
}

TEST(FaultPlan, ValidateCatchesBadTargets)
{
    MachineSpec spec = ringSpec();
    {
        FaultPlan plan;
        FaultEvent e;
        e.kind = FaultKind::kKillLink;
        e.link = static_cast<LinkIndex>(spec.topo.numLinks());
        plan.add(e);
        EXPECT_NE(plan.validate(spec.topo, spec), "");
    }
    {
        FaultPlan plan;
        FaultEvent e;
        e.kind = FaultKind::kDegradeQueue;
        e.link = 0;
        e.queue = 0;
        e.arg = 0; // capacity must be >= 1
        plan.add(e);
        EXPECT_NE(plan.validate(spec.topo, spec), "");
    }
    {
        FaultPlan plan;
        FaultEvent e;
        e.kind = FaultKind::kKillCell;
        e.cell = static_cast<CellId>(kCells);
        plan.add(e);
        EXPECT_NE(plan.validate(spec.topo, spec), "");
    }
}

TEST(FaultInject, InvalidPlanIsConfigError)
{
    Program p = ringStreams();
    MachineSpec spec = ringSpec();
    FaultPlan plan;
    FaultEvent e;
    e.kind = FaultKind::kKillLink;
    e.link = static_cast<LinkIndex>(spec.topo.numLinks());
    plan.add(e);

    SimSession session(p, spec);
    RunRequest request;
    request.faults = &plan;
    RunResult r = session.run(request);
    EXPECT_EQ(r.status, RunStatus::kConfigError);
    EXPECT_NE(r.error.find("fault plan"), std::string::npos);

    // The session stays usable for healthy runs afterwards.
    EXPECT_EQ(session.run({}).status, RunStatus::kCompleted);
}

// ---------------------------------------------------------------------
// terminal semantics: kFaulted + attribution, stalls, degrades
// ---------------------------------------------------------------------

TEST(FaultInject, KilledRoutedLinkFaultsWithAttribution)
{
    Program p = ringStreams();
    MachineSpec spec = ringSpec();
    FaultPlan plan;
    FaultEvent e;
    e.cycle = 5;
    e.kind = FaultKind::kKillLink;
    e.link = firstHopLink(spec);
    plan.add(e);

    SimSession session(p, spec);
    RunRequest request;
    request.faults = &plan;
    RunResult r = session.run(request);
    ASSERT_EQ(r.status, RunStatus::kFaulted);
    EXPECT_FALSE(r.completed());
    ASSERT_FALSE(r.deadlock.faults.empty());
    const std::string report = r.deadlock.render();
    EXPECT_NE(report.find("implicated faults"), std::string::npos);
    EXPECT_NE(report.find("kill-link"), std::string::npos);
}

TEST(FaultInject, KilledCellFaultsWithAttribution)
{
    Program p = ringStreams();
    MachineSpec spec = ringSpec();
    FaultPlan plan;
    FaultEvent e;
    e.cycle = 5;
    e.kind = FaultKind::kKillCell;
    e.cell = 3; // S0's receiver: its program can never finish
    plan.add(e);

    SimSession session(p, spec);
    RunRequest request;
    request.faults = &plan;
    RunResult r = session.run(request);
    ASSERT_EQ(r.status, RunStatus::kFaulted);
    EXPECT_NE(r.deadlock.render().find("kill-cell"), std::string::npos);
}

TEST(FaultInject, StallExpiresAndRunCompletes)
{
    Program p = ringStreams();
    MachineSpec spec = ringSpec();
    const Cycle baseline = baselineCycles(p, spec);

    FaultPlan plan;
    FaultEvent e;
    e.cycle = 5;
    e.kind = FaultKind::kStallLink;
    e.link = firstHopLink(spec);
    // Short stalls vanish into queue slack; this one is long enough
    // that the pipeline must visibly pay for it.
    e.arg = 24;
    plan.add(e);

    SimSession session(p, spec);
    RunRequest request;
    request.faults = &plan;
    RunResult r = session.run(request);
    // A brown-out is never a death sentence: the run must outlive the
    // stall window and finish, slower than the healthy baseline.
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    EXPECT_GT(r.cycles, baseline);
}

TEST(FaultInject, DegradedQueueSlowsButCompletes)
{
    Program p = ringStreams();
    MachineSpec spec = ringSpec();
    const Cycle baseline = baselineCycles(p, spec);
    const LinkIndex hop = firstHopLink(spec);

    FaultPlan plan;
    for (int q = 0; q < spec.queuesPerLink; ++q) {
        FaultEvent e;
        e.cycle = 3;
        e.kind = FaultKind::kDegradeQueue;
        e.link = hop;
        e.queue = q;
        e.arg = 1;
        plan.add(e);
    }

    SimSession session(p, spec);
    RunRequest request;
    request.faults = &plan;
    RunResult r = session.run(request);
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    EXPECT_GE(r.cycles, baseline);
}

// ---------------------------------------------------------------------
// bit-identity: kernels, reruns, pause/resume, checkpoints
// ---------------------------------------------------------------------

/** Plans of rising intensity over seeded draws; killCells on so every
 *  event kind is exercised. */
std::vector<FaultPlan>
planGrid(const MachineSpec& spec, Cycle max_cycle)
{
    std::vector<FaultPlan> plans;
    for (int intensity : {1, 2, 4, 8}) {
        for (std::uint64_t seed = 0; seed < 4; ++seed) {
            FaultPlanOptions fo;
            fo.seed = 100 * static_cast<std::uint64_t>(intensity) + seed;
            fo.numEvents = intensity;
            fo.maxCycle = max_cycle;
            fo.killCells = true;
            plans.push_back(sim::randomFaultPlan(spec.topo, spec, fo));
        }
    }
    return plans;
}

TEST(FaultInject, KernelsAndRerunsAgreeOnFaultedRuns)
{
    Program p = ringStreams();
    MachineSpec spec = ringSpec();
    const Cycle baseline = baselineCycles(p, spec);
    std::vector<FaultPlan> plans = planGrid(spec, baseline);

    SessionOptions eventOptions;
    eventOptions.kernel = KernelKind::kEventDriven;
    SessionOptions denseOptions;
    denseOptions.kernel = KernelKind::kReference;
    SimSession eventSession(p, spec, eventOptions);
    SimSession denseSession(p, spec, denseOptions);

    int faulted = 0;
    int completed = 0;
    for (std::size_t i = 0; i < plans.size(); ++i) {
        RunRequest request;
        request.faults = &plans[i];
        const std::string ctx = "plan " + std::to_string(i);
        RunResult event = eventSession.run(request);
        const std::uint64_t eventDigest = eventSession.machineDigest();
        RunResult dense = denseSession.run(request);
        expectSameRunResult(dense, event, ctx);
        EXPECT_EQ(denseSession.machineDigest(), eventDigest) << ctx;

        // Same session, same plan, again: bit-identical.
        RunResult rerun = eventSession.run(request);
        expectSameRunResult(rerun, event, ctx + " rerun");
        EXPECT_EQ(eventSession.machineDigest(), eventDigest) << ctx;

        faulted += event.status == RunStatus::kFaulted;
        completed += event.status == RunStatus::kCompleted;
    }
    // The grid must exercise both outcomes or the identity check
    // proves less than it claims.
    EXPECT_GT(faulted, 0);
    EXPECT_GT(completed, 0);
}

TEST(FaultInject, PauseResumeMidScheduleIsBitIdentical)
{
    Program p = ringStreams();
    MachineSpec spec = ringSpec();
    const Cycle baseline = baselineCycles(p, spec);
    std::vector<FaultPlan> plans = planGrid(spec, baseline);

    for (KernelKind kernel :
         {KernelKind::kEventDriven, KernelKind::kReference}) {
        SessionOptions options;
        options.kernel = kernel;
        SimSession oracle(p, spec, options);
        SimSession chopped(p, spec, options);
        for (std::size_t i = 0; i < plans.size(); ++i) {
            RunRequest request;
            request.faults = &plans[i];
            RunResult want = oracle.run(request);

            // Pause every few cycles so boundaries land between,
            // on, and after fault event cycles.
            RunRequest pausing = request;
            pausing.pauseAt = 3;
            RunResult got = chopped.run(pausing);
            while (got.status == RunStatus::kPaused)
                got = chopped.resume(got.cycles + 3);

            const std::string ctx = std::string(kernelKindName(kernel)) +
                                    " plan " + std::to_string(i);
            expectSameRunResult(got, want, ctx);
            EXPECT_EQ(chopped.machineDigest(), oracle.machineDigest())
                << ctx;
        }
    }
}

TEST(FaultInject, CheckpointRestoresMidScheduleAcrossKernels)
{
    Program p = ringStreams();
    MachineSpec spec = ringSpec();
    FaultPlan plan;
    {
        // One stall before the pause, one kill after it: the restore
        // must rebuild the applied prefix and still apply the rest.
        FaultEvent stall;
        stall.cycle = 4;
        stall.kind = FaultKind::kStallLink;
        stall.link = firstHopLink(spec);
        stall.arg = 6;
        plan.add(stall);
        FaultEvent kill;
        kill.cycle = 30;
        kill.kind = FaultKind::kKillLink;
        kill.link = firstHopLink(spec);
        plan.add(kill);
    }
    RunRequest request;
    request.faults = &plan;

    SimSession oracle(p, spec);
    RunResult want = oracle.run(request);
    ASSERT_EQ(want.status, RunStatus::kFaulted);

    SimSession donor(p, spec);
    RunRequest paused = request;
    paused.pauseAt = 8; // mid-stall: applied events + an active stall
    RunResult snap = donor.run(paused);
    ASSERT_EQ(snap.status, RunStatus::kPaused);
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(donor.saveCheckpoint(bytes));

    // The progress header carries the plan digest.
    sim::CheckpointInfo info;
    ASSERT_TRUE(
        sim::peekCheckpointInfo(bytes.data(), bytes.size(), info));
    EXPECT_EQ(info.faultPlanDigest, plan.digest());
    EXPECT_EQ(info.cycles, snap.cycles);

    for (KernelKind kernel :
         {KernelKind::kEventDriven, KernelKind::kReference}) {
        SessionOptions options;
        options.kernel = kernel;
        SimSession heir(p, spec, options);
        ASSERT_TRUE(heir.restoreCheckpoint(request, bytes))
            << kernelKindName(kernel);
        EXPECT_EQ(heir.machineDigest(), donor.machineDigest());
        RunResult got = heir.resume();
        expectSameRunResult(got, want,
                            std::string("restored finish on ") +
                                kernelKindName(kernel));
        EXPECT_EQ(heir.machineDigest(), oracle.machineDigest());
    }
}

TEST(FaultInject, CheckpointRejectsMissingOrMismatchedPlan)
{
    Program p = ringStreams();
    MachineSpec spec = ringSpec();
    FaultPlan plan;
    FaultEvent e;
    e.cycle = 30;
    e.kind = FaultKind::kKillLink;
    e.link = firstHopLink(spec);
    plan.add(e);
    RunRequest request;
    request.faults = &plan;

    SimSession donor(p, spec);
    RunRequest paused = request;
    paused.pauseAt = 8;
    ASSERT_EQ(donor.run(paused).status, RunStatus::kPaused);
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(donor.saveCheckpoint(bytes));

    SimSession heir(p, spec);
    // No plan on the restoring request: refused.
    RunRequest bare = request;
    bare.faults = nullptr;
    EXPECT_FALSE(heir.restoreCheckpoint(bare, bytes));
    // A different plan: refused.
    FaultPlan other = plan;
    FaultEvent extra = e;
    extra.cycle = 40;
    other.add(extra);
    RunRequest wrong = request;
    wrong.faults = &other;
    EXPECT_FALSE(heir.restoreCheckpoint(wrong, bytes));
    // The right plan still restores and finishes identically.
    ASSERT_TRUE(heir.restoreCheckpoint(request, bytes));
    SimSession oracle(p, spec);
    expectSameRunResult(heir.resume(), oracle.run(request),
                        "post-rejection restore");

    // And a healthy checkpoint refuses a faulted restore.
    SimSession healthy(p, spec);
    RunRequest healthyPaused;
    healthyPaused.pauseAt = 8;
    ASSERT_EQ(healthy.run(healthyPaused).status, RunStatus::kPaused);
    std::vector<std::uint8_t> healthyBytes;
    ASSERT_TRUE(healthy.saveCheckpoint(healthyBytes));
    SimSession mixed(p, spec);
    EXPECT_FALSE(mixed.restoreCheckpoint(request, healthyBytes));
}

} // namespace
} // namespace syscomm
