/**
 * @file
 * Unit tests for the simlint static analyzer (core/analyze.h): the
 * deadlock witness names exactly the wedged cycle, buffer-bound
 * inference finds the section 8.1 boundary, the Theorem 1 passes
 * mirror the SimSession labeling, and route/structure problems come
 * out as typed diagnostics instead of asserts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>

#include "core/analyze.h"
#include "core/program.h"
#include "core/topology.h"
#include "text/parser.h"

namespace syscomm {
namespace {

Program
parse(const std::string& source)
{
    const text::ParseResult result = text::parseProgram(source);
    EXPECT_TRUE(result.ok) << result.error;
    return result.program;
}

bool
hasRule(const AnalysisReport& report, LintRule rule)
{
    return std::any_of(report.diagnostics.begin(),
                       report.diagnostics.end(),
                       [rule](const Diagnostic& diag) {
                           return diag.rule == rule;
                       });
}

/** The mutual read-before-write cycle: deadlocked on every shape. */
const char* kReadCycle = "cells 2\n"
                         "message X 0 -> 1\n"
                         "message Y 1 -> 0\n"
                         "cell 0 { R(Y) W(X) }\n"
                         "cell 1 { R(X) W(Y) }\n";

/** Both cells write all @p words before reading any: deadlock-free
 *  iff the per-message buffering reaches @p words. */
std::string
boundaryText(int words)
{
    std::ostringstream out;
    out << "cells 2\nmessage X 0 -> 1\nmessage Y 1 -> 0\n";
    out << "cell 0 {";
    for (int w = 0; w < words; ++w)
        out << " W(X)";
    for (int w = 0; w < words; ++w)
        out << " R(Y)";
    out << " }\ncell 1 {";
    for (int w = 0; w < words; ++w)
        out << " W(Y)";
    for (int w = 0; w < words; ++w)
        out << " R(X)";
    out << " }\n";
    return out.str();
}

/** Fig. 7 of the paper (examples/analyze.cpp's demo program). */
const char* kFig7 = "cells 4\n"
                    "message A 1 -> 2\n"
                    "message B 2 -> 3\n"
                    "message C 0 -> 3\n"
                    "cell 0 { W(C) W(C) W(C) W(C) }\n"
                    "cell 1 { W(A) W(A) W(A) W(A) }\n"
                    "cell 2 { R(A) R(A) R(A) R(A)"
                    " W(B) W(B) W(B) W(B) }\n"
                    "cell 3 { R(C) R(C) R(C) R(C)"
                    " R(B) R(B) R(B) R(B) }\n";

TEST(Analyze, ReadCycleWitnessImplicatesBothCells)
{
    const Program program = parse(kReadCycle);
    const Topology topo = Topology::linearArray(2);
    const AnalysisReport report = analyzeProgram(program, topo);

    EXPECT_EQ(report.verdict, LintVerdict::kDeadlock);
    ASSERT_EQ(report.witness.cycle.size(), 2u);
    std::set<CellId> cells;
    for (const WitnessEntry& entry : report.witness.cycle) {
        cells.insert(entry.cell);
        EXPECT_FALSE(entry.isWrite); // both wedge on reads
        EXPECT_EQ(entry.op, 0);
    }
    EXPECT_EQ(cells, (std::set<CellId>{0, 1}));
    // The cycle is in wait-for order: each entry waits for the next.
    EXPECT_EQ(report.witness.cycle[0].waitsFor,
              report.witness.cycle[1].cell);
    EXPECT_EQ(report.witness.cycle[1].waitsFor,
              report.witness.cycle[0].cell);

    // A read cycle: no finite buffering helps.
    EXPECT_EQ(report.minUniformCapacity, -1);
    EXPECT_EQ(report.minUniformSkipBound, -1);
    EXPECT_TRUE(hasRule(report, LintRule::kDeadlockWitness));
    EXPECT_TRUE(hasRule(report, LintRule::kNoFiniteBuffer));
    EXPECT_TRUE(report.hasErrors());
    EXPECT_FALSE(report.render(program).empty());
    EXPECT_FALSE(report.witness.str(program).empty());
}

TEST(Analyze, BufferBoundBoundaryProgram)
{
    const int kWords = 3;
    const Program program = parse(boundaryText(kWords));
    const Topology topo = Topology::linearArray(2);

    // Default shape buffers 1 word per queue: statically deadlocked,
    // wedged on writes.
    const AnalysisReport tight = analyzeProgram(program, topo);
    EXPECT_EQ(tight.verdict, LintVerdict::kDeadlock);
    ASSERT_FALSE(tight.witness.empty());
    for (const WitnessEntry& entry : tight.witness.cycle)
        EXPECT_TRUE(entry.isWrite);
    // One hop per route, so capacity == skip bound == the write run.
    EXPECT_EQ(tight.minUniformCapacity, kWords);
    EXPECT_EQ(tight.minUniformSkipBound, kWords);
    EXPECT_FALSE(tight.basicDeadlockFree);

    // Exactly enough capacity: free, but only via lookahead, so the
    // verdict stays kUnknown (Theorem 1 as wired covers basic only)
    // and SL013 says why.
    AnalyzeOptions roomy;
    roomy.queueCapacity = kWords;
    const AnalysisReport atBound = analyzeProgram(program, topo, roomy);
    EXPECT_EQ(atBound.verdict, LintVerdict::kUnknown);
    EXPECT_TRUE(atBound.witness.empty());
    EXPECT_TRUE(hasRule(atBound, LintRule::kLookaheadOnly));
    EXPECT_TRUE(hasRule(atBound, LintRule::kBufferBound));
    EXPECT_EQ(atBound.minUniformCapacity, kWords);

    // The iWarp extension counts toward the bound (section 8).
    AnalyzeOptions extended;
    extended.queueCapacity = 1;
    extended.extensionCapacity = kWords - 1;
    EXPECT_EQ(analyzeProgram(program, topo, extended).verdict,
              LintVerdict::kUnknown);
}

TEST(Analyze, MultiHopBoundsDisagreeWithCapacity)
{
    // Two 2-hop routes through an empty middle cell: each word is
    // buffered once per hop, so per-queue capacity 1 already yields
    // an R2 skip bound of 2.
    const Program program =
        parse("cells 3\n"
              "message X 0 -> 2\n"
              "message Y 2 -> 0\n"
              "cell 0 { W(X) W(X) R(Y) R(Y) }\n"
              "cell 2 { W(Y) W(Y) R(X) R(X) }\n");
    const Topology topo = Topology::linearArray(3);
    const AnalysisReport report = analyzeProgram(program, topo);

    EXPECT_NE(report.verdict, LintVerdict::kDeadlock);
    EXPECT_EQ(report.minUniformCapacity, 1);
    EXPECT_EQ(report.minUniformSkipBound, 2);
}

TEST(Analyze, Fig7CertifiesOnDefaultShape)
{
    const Program program = parse(kFig7);
    const Topology topo = Topology::linearArray(4);
    const AnalysisReport report = analyzeProgram(program, topo);

    EXPECT_EQ(report.verdict, LintVerdict::kCertified);
    EXPECT_TRUE(report.basicDeadlockFree);
    EXPECT_FALSE(report.labelingFellBack);
    EXPECT_TRUE(report.labelsConsistent);
    EXPECT_TRUE(report.feasibleAtShape);
    EXPECT_EQ(report.minUniformCapacity, 0);
    EXPECT_EQ(report.minUniformSkipBound, 0);
    EXPECT_FALSE(report.hasErrors());
    EXPECT_TRUE(report.witness.empty());
}

TEST(Analyze, UnroutableMessageIsInvalidNotAnAssert)
{
    const Program program = parse("cells 2\n"
                                  "message X 0 -> 1\n"
                                  "cell 0 { W(X) }\n"
                                  "cell 1 { R(X) }\n");
    const Topology topo = Topology::custom(2, {});
    const AnalysisReport report = analyzeProgram(program, topo);

    EXPECT_EQ(report.verdict, LintVerdict::kInvalid);
    EXPECT_TRUE(hasRule(report, LintRule::kUnroutableMessage));
    ASSERT_FALSE(report.diagnostics.empty());
    const Diagnostic& diag = report.diagnostics.front();
    EXPECT_EQ(diag.rule, LintRule::kUnroutableMessage);
    EXPECT_EQ(diag.msg, 0);
    EXPECT_FALSE(diag.str(program).empty());
}

TEST(Analyze, TopologyMismatchIsInvalid)
{
    const Program program = parse("cells 3\n"
                                  "message X 0 -> 2\n"
                                  "cell 0 { W(X) }\n"
                                  "cell 2 { R(X) }\n");
    const AnalysisReport report =
        analyzeProgram(program, Topology::linearArray(2));
    EXPECT_EQ(report.verdict, LintVerdict::kInvalid);
    EXPECT_TRUE(hasRule(report, LintRule::kTopologyMismatch));
}

TEST(Analyze, StructurallyInvalidProgram)
{
    // Read count exceeds write count: validate() refuses it.
    const Program program = parse("cells 2\n"
                                  "message X 0 -> 1\n"
                                  "cell 0 { W(X) }\n"
                                  "cell 1 { R(X) R(X) }\n");
    const AnalysisReport report =
        analyzeProgram(program, Topology::linearArray(2));
    EXPECT_EQ(report.verdict, LintVerdict::kInvalid);
    EXPECT_TRUE(hasRule(report, LintRule::kInvalidProgram));
}

TEST(Analyze, ComputePinIsInfoOnly)
{
    const Program program = parse("cells 2\n"
                                  "message X 0 -> 1\n"
                                  "cell 0 { W(X) C }\n"
                                  "cell 1 { R(X) }\n");
    const AnalysisReport report =
        analyzeProgram(program, Topology::linearArray(2));
    EXPECT_EQ(report.verdict, LintVerdict::kCertified);
    EXPECT_TRUE(hasRule(report, LintRule::kComputePin));
    for (const Diagnostic& diag : report.diagnostics) {
        if (diag.rule == LintRule::kComputePin) {
            EXPECT_EQ(diag.severity, Severity::kInfo);
        }
    }
}

TEST(Analyze, RuleIdsAndNamesAreStable)
{
    EXPECT_STREQ(lintRuleId(LintRule::kDeadlockWitness), "SL010");
    EXPECT_STREQ(lintRuleId(LintRule::kInvalidProgram), "SL001");
    EXPECT_STREQ(lintVerdictName(LintVerdict::kCertified),
                 "certified");
    EXPECT_STREQ(lintVerdictName(LintVerdict::kDeadlock), "deadlock");
    EXPECT_STREQ(severityName(Severity::kError), "error");
}

} // namespace
} // namespace syscomm
