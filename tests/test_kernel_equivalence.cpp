/**
 * @file
 * The event-driven active-set kernel must be observationally identical
 * to the dense reference kernel: same RunStatus, same cycle counts,
 * same statistics (down to per-cell blocked counters and queue
 * occupancy integrals), same assignment/release event logs, same
 * delivered values, and same deadlock snapshots — across policies,
 * topologies, queue shapes, the memory extension, and the
 * memory-to-memory model. Runs well over 100 randomized program_gen
 * programs plus the paper's deadlock gallery.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>

#include "algos/paper_figures.h"
#include "core/program_gen.h"
#include "sim/batch.h"
#include "sim/machine.h"
#include "test_support.h"

namespace syscomm {
namespace {

using sim::Collect;
using sim::KernelKind;
using sim::PolicyKind;
using sim::RunRequest;
using sim::RunResult;
using sim::RunStatus;
using sim::SessionOptions;
using sim::SimOptions;
using sim::SimSession;
using sim::simulateProgram;

std::string
describe(const SimOptions& options, const MachineSpec& spec)
{
    std::ostringstream os;
    os << "policy=" << sim::policyKindName(options.policy)
       << " queues=" << spec.queuesPerLink
       << " cap=" << spec.queueCapacity << " ext=" << spec.extensionCapacity
       << " pen=" << spec.extensionPenalty << " seed=" << options.seed
       << " m2m=" << options.memoryToMemory;
    return os.str();
}

/** Run under both kernels and assert identical observable outcomes. */
void
expectKernelsAgree(const Program& program, const MachineSpec& spec,
                   SimOptions options)
{
    options.kernel = KernelKind::kReference;
    RunResult ref = simulateProgram(program, spec, options);
    options.kernel = KernelKind::kEventDriven;
    RunResult evt = simulateProgram(program, spec, options);

    std::string ctx = describe(options, spec);
    ASSERT_EQ(evt.status, ref.status)
        << ctx << " ref=" << ref.statusStr() << " evt=" << evt.statusStr();
    EXPECT_EQ(evt.cycles, ref.cycles) << ctx;
    EXPECT_EQ(evt.error, ref.error) << ctx;
    EXPECT_TRUE(evt.stats == ref.stats)
        << ctx << "\nref:\n"
        << ref.stats.summary() << "evt:\n"
        << evt.stats.summary() << "ref blocked=" << ref.stats.cellBlockedCycles
        << " evt blocked=" << evt.stats.cellBlockedCycles;
    EXPECT_EQ(evt.events, ref.events) << ctx;
    EXPECT_EQ(evt.releases, ref.releases) << ctx;
    EXPECT_EQ(evt.received, ref.received) << ctx;
    EXPECT_EQ(evt.msgTiming, ref.msgTiming) << ctx;
    EXPECT_EQ(evt.labelsUsed, ref.labelsUsed) << ctx;
    EXPECT_EQ(evt.deadlock.deadlocked, ref.deadlock.deadlocked) << ctx;
    EXPECT_EQ(evt.deadlock.render(), ref.deadlock.render()) << ctx;
    EXPECT_EQ(evt.audit.compatible, ref.audit.compatible) << ctx;
}

MachineSpec
spec(Topology topo, int queues, int capacity, int ext = 0, int penalty = 4)
{
    MachineSpec s;
    s.topo = std::move(topo);
    s.queuesPerLink = queues;
    s.queueCapacity = capacity;
    s.extensionCapacity = ext;
    s.extensionPenalty = penalty;
    return s;
}

TEST(KernelEquivalence, RandomizedLinearArrayAllPolicies)
{
    // 4 policies x 12 seeds = 48 randomized programs.
    const PolicyKind policies[] = {
        PolicyKind::kCompatible, PolicyKind::kCompatibleEager,
        PolicyKind::kFcfs, PolicyKind::kRandom};
    for (PolicyKind policy : policies) {
        for (std::uint64_t seed = 1; seed <= 12; ++seed) {
            Topology topo = Topology::linearArray(4 + seed % 5);
            GenOptions gen;
            gen.numMessages = 4 + static_cast<int>(seed % 7);
            gen.maxWords = 5;
            gen.seed = seed;
            gen.interleave = 0.25;
            Program p = randomDeadlockFreeProgram(topo, gen);
            SimOptions options;
            options.policy = policy;
            options.seed = seed;
            options.audit = true;
            expectKernelsAgree(p, spec(topo, 2 + seed % 2, 1 + seed % 3),
                               options);
        }
    }
}

TEST(KernelEquivalence, RandomizedMeshAndTorus)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Topology topo = seed % 2 ? Topology::mesh(3, 3) : Topology::torus(3, 3);
        GenOptions gen;
        gen.numMessages = 6 + static_cast<int>(seed % 5);
        gen.maxWords = 4;
        gen.seed = 100 + seed;
        gen.interleave = 0.4;
        Program p = randomDeadlockFreeProgram(topo, gen);
        SimOptions options;
        options.seed = seed;
        expectKernelsAgree(p, spec(topo, 3, 2), options);
    }
}

TEST(KernelEquivalence, PerturbedProgramsIncludingDeadlocks)
{
    // Perturbation breaks deadlock-freedom for many seeds, so this
    // sweep covers both completed and deadlocked runs under unsafe
    // policies: 3 policies x 16 seeds = 48 programs.
    const PolicyKind policies[] = {PolicyKind::kCompatible,
                                   PolicyKind::kFcfs, PolicyKind::kRandom};
    int deadlocked = 0;
    for (PolicyKind policy : policies) {
        for (std::uint64_t seed = 1; seed <= 16; ++seed) {
            Topology topo = Topology::linearArray(5);
            GenOptions gen;
            gen.numMessages = 6;
            gen.maxWords = 4;
            gen.seed = 200 + seed;
            gen.interleave = 0.5;
            Program p = randomDeadlockFreeProgram(topo, gen);
            Program mutated =
                perturbProgram(p, static_cast<int>(1 + seed % 4), seed);
            SimOptions options;
            options.policy = policy;
            options.seed = seed;
            options.maxCycles = 20'000;
            MachineSpec s = spec(topo, 1 + seed % 2, 1);
            expectKernelsAgree(mutated, s, options);
            options.kernel = KernelKind::kEventDriven;
            if (simulateProgram(mutated, s, options).status ==
                RunStatus::kDeadlocked)
                ++deadlocked;
        }
    }
    // The sweep must genuinely exercise the deadlock path.
    EXPECT_GT(deadlocked, 0);
}

TEST(KernelEquivalence, PaperFigureGallery)
{
    // Fig. 5's P1/P3 deadlock at capacity 1; P2 completes; Figs. 7-9
    // deadlock under FCFS at one queue per link but complete under
    // the compatible policy.
    for (int cap : {1, 2}) {
        for (Program p : {algos::fig5P1(), algos::fig5P2(), algos::fig5P3()}) {
            SimOptions options;
            expectKernelsAgree(p, spec(algos::fig5Topology(), 2, cap),
                               options);
        }
    }
    for (PolicyKind policy : {PolicyKind::kCompatible, PolicyKind::kFcfs}) {
        SimOptions options;
        options.policy = policy;
        options.audit = true;
        expectKernelsAgree(algos::fig7Program(), spec(algos::fig7Topology(), 1, 1),
                           options);
        expectKernelsAgree(algos::fig8Program(), spec(algos::fig8Topology(), 1, 1),
                           options);
        expectKernelsAgree(algos::fig9Program(), spec(algos::fig9Topology(), 1, 1),
                           options);
    }
    SimOptions options;
    expectKernelsAgree(algos::fig6CycleProgram(),
                       spec(algos::fig6Topology(), 2, 1), options);
    expectKernelsAgree(algos::fig2FirProgram(),
                       spec(algos::fig2Topology(), 2, 1), options);
}

TEST(KernelEquivalence, QueueExtensionAndPenalties)
{
    // The extension penalty exercises the timed-wake path and the
    // event kernel's bulk-advance over penalty stalls.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        Topology topo = Topology::linearArray(6);
        GenOptions gen;
        gen.numMessages = 5;
        gen.maxWords = 6;
        gen.seed = 300 + seed;
        gen.interleave = 0.3;
        Program p = randomDeadlockFreeProgram(topo, gen);
        SimOptions options;
        options.seed = seed;
        expectKernelsAgree(
            p, spec(topo, 2, 1, /*ext=*/2 + seed % 3, /*penalty=*/2 + seed % 5),
            options);
    }
}

TEST(KernelEquivalence, StaticPolicyAndMemoryToMemory)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        Topology topo = Topology::linearArray(4);
        GenOptions gen;
        gen.numMessages = 4;
        gen.maxWords = 4;
        gen.seed = 400 + seed;
        gen.interleave = 0.0; // few competing messages: static feasible
        Program p = randomDeadlockFreeProgram(topo, gen);
        SimOptions options;
        options.policy = PolicyKind::kStatic;
        options.seed = seed;
        expectKernelsAgree(p, spec(topo, 8, 2), options);

        SimOptions m2m;
        m2m.memoryToMemory = true;
        m2m.memAccessCost = 1 + static_cast<int>(seed % 2);
        m2m.seed = seed;
        expectKernelsAgree(p, spec(topo, 4, 2), m2m);
    }
}

TEST(KernelEquivalence, MaxCyclesBudgetExhaustion)
{
    Topology topo = Topology::linearArray(4);
    GenOptions gen;
    gen.numMessages = 8;
    gen.maxWords = 8;
    gen.seed = 7;
    Program p = randomDeadlockFreeProgram(topo, gen);
    SimOptions options;
    options.maxCycles = 25; // far too few
    expectKernelsAgree(p, spec(topo, 2, 1), options);
}

TEST(KernelEquivalence, SweepRunnerAgreesAcrossKernels)
{
    // The sweep driver as equivalence harness: the same request batch
    // (policies x seeds, full collection) through one SweepRunner per
    // kernel must agree run by run — and the threaded fan-out must
    // not perturb any result.
    Topology topo = Topology::linearArray(5);
    GenOptions gen;
    gen.numMessages = 6;
    gen.maxWords = 4;
    gen.seed = 501;
    gen.interleave = 0.5;
    Program p = randomDeadlockFreeProgram(topo, gen);
    Program mutated = perturbProgram(p, 2, 77);
    MachineSpec s = spec(topo, 2, 1);

    std::vector<sim::RunRequest> requests;
    for (PolicyKind policy : {PolicyKind::kCompatible, PolicyKind::kFcfs,
                              PolicyKind::kRandom}) {
        for (std::uint64_t seed = 1; seed <= 6; ++seed) {
            sim::RunRequest request;
            request.policy = policy;
            request.seed = seed;
            request.maxCycles = 20'000;
            request.collect = sim::Collect::kAll;
            requests.push_back(request);
        }
    }

    sim::SessionOptions ref;
    ref.kernel = KernelKind::kReference;
    sim::SessionOptions evt;
    evt.kernel = KernelKind::kEventDriven;
    sim::SweepOptions threads;
    threads.numWorkers = 3;
    sim::SweepSummary refSweep =
        sim::SweepRunner(mutated, s, ref, threads).run(requests);
    sim::SweepSummary evtSweep =
        sim::SweepRunner(mutated, s, evt, threads).run(requests);

    ASSERT_EQ(refSweep.results.size(), requests.size());
    ASSERT_EQ(evtSweep.results.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const RunResult& a = refSweep.results[i];
        const RunResult& b = evtSweep.results[i];
        std::string ctx = "request " + std::to_string(i);
        ASSERT_EQ(b.status, a.status) << ctx;
        EXPECT_EQ(b.cycles, a.cycles) << ctx;
        EXPECT_TRUE(b.stats == a.stats) << ctx;
        EXPECT_EQ(b.events, a.events) << ctx;
        EXPECT_EQ(b.releases, a.releases) << ctx;
        EXPECT_EQ(b.received, a.received) << ctx;
        EXPECT_EQ(b.msgTiming, a.msgTiming) << ctx;
        EXPECT_EQ(b.deadlock.render(), a.deadlock.render()) << ctx;
        EXPECT_EQ(b.audit.compatible, a.audit.compatible) << ctx;
    }
    for (int k = 0; k < sim::kNumRunStatuses; ++k)
        EXPECT_EQ(evtSweep.statusCounts[k], refSweep.statusCounts[k]);
    EXPECT_EQ(evtSweep.p50Cycles, refSweep.p50Cycles);
    EXPECT_EQ(evtSweep.p99Cycles, refSweep.p99Cycles);
}

TEST(KernelEquivalence, LargeArrayPhasesAt4kCells)
{
    // The bench_large_array workloads at the smallest "large" size:
    // 4096 cells is well past anything the rest of the suite touches
    // and exercises three summary levels of the active-set bitmaps,
    // the bucketed next-cycle wakes, and the queue-event heap at
    // scale — against the dense oracle.
    const int kCells = 4096;
    Topology topo = Topology::linearArray(kCells);
    for (ArrayPhase phase : {ArrayPhase::kSparse, ArrayPhase::kStreaming,
                             ArrayPhase::kDenseActive}) {
        LargeArrayOptions gen;
        gen.phase = phase;
        gen.messages = 8;
        gen.wordsPerMessage = phase == ArrayPhase::kDenseActive ? 6 : 16;
        gen.computeGap = 4;
        Program p = largeArrayProgram(kCells, gen);
        for (PolicyKind policy : {PolicyKind::kCompatible,
                                  PolicyKind::kRandom}) {
            SimOptions options;
            options.policy = policy;
            options.seed = 9 + static_cast<int>(phase);
            expectKernelsAgree(p, spec(topo, 2, 2), options);
        }
    }
}

TEST(KernelEquivalence, RandomPolicyMultiPendingFastForward)
{
    // The regime the per-link counted RNG exists for: several
    // messages hold >= 2 simultaneous pending requests on a shared
    // link under the random policy while extension penalties create
    // long idle stretches the event kernel fast-forwards over. The
    // old global-stream RNG forced the kernel to disable fast-forward
    // here (a skipped cycle skipped a shuffle and desynchronized the
    // stream); with counted per-link streams the kernels must stay
    // bit-identical with no special case. Depending on the seed these
    // programs complete or deadlock — both outcomes must agree.
    Topology topo = Topology::linearArray(8);
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        Program p(8);
        // Three messages from distinct senders funnel into cell 6
        // through the shared links (4,5) and (5,6); with one queue
        // per link, two of them are always pending behind the third.
        MessageId m0 = p.declareMessage("A", 0, 6);
        MessageId m1 = p.declareMessage("B", 1, 6);
        MessageId m2 = p.declareMessage("C", 2, 6);
        const int kWords = 4;
        for (MessageId m : {m0, m1, m2}) {
            const MessageDecl& decl = p.message(m);
            for (int w = 0; w < kWords; ++w)
                p.write(decl.sender, m);
        }
        for (MessageId m : {m0, m1, m2}) {
            for (int w = 0; w < kWords; ++w)
                p.read(6, m);
        }
        SimOptions options;
        options.policy = PolicyKind::kRandom;
        options.seed = seed;
        options.maxCycles = 50'000;
        // Queue capacity 1 with a deep, slow extension: every surfaced
        // word stalls the whole pipeline for 6 cycles, giving the
        // event kernel plenty of provably inert stretches to skip
        // while the two losing messages sit in kRequested.
        expectKernelsAgree(
            p, spec(topo, 1, 1, /*ext=*/3, /*penalty=*/6), options);
        // Same shape with room for simultaneous assignment churn.
        expectKernelsAgree(
            p, spec(topo, 2, 1, /*ext=*/2, /*penalty=*/4), options);
    }
}

// ---------------------------------------------------------------------
// Sampled oracle: dense-kernel bit-identity at sizes where a full
// dense run blows the test budget.
//
// The dense reference kernel costs O(machine) per cycle, which capped
// full-run equivalence coverage at ~16k cells. The sampled harness
// runs the *event* kernel end to end (cheap), pauses it at randomly
// sampled cycles, hands each checkpoint to a reference-kernel session
// via SimSession::adoptState, and replays only the sampled window
// under the dense oracle — so the dense cost is windows x window
// length, not the whole run, and 64k-100k cells fit the budget. At
// each window edge the two sessions must agree on the full result
// accumulated so far AND on the machine-state digest; afterwards the
// event run is driven to its end and must be bit-identical to an
// unpaused run (pausing may never perturb a run).
// ---------------------------------------------------------------------

struct OracleWindows
{
    int count = 3;
    Cycle length = 16;
    std::uint64_t seed = 1;
};

void
expectSampledOracleAgrees(const Program& program, const MachineSpec& s,
                          const RunRequest& base, OracleWindows w,
                          const std::string& ctx)
{
    SessionOptions evtOpt;
    evtOpt.kernel = KernelKind::kEventDriven;
    SessionOptions refOpt;
    refOpt.kernel = KernelKind::kReference;
    SimSession evt(program, s, evtOpt);
    SimSession ref(program, s, refOpt);
    ASSERT_TRUE(evt.valid()) << ctx << ": " << evt.error();

    // Full event run: the window sampler's cycle range, and the
    // result the windowed journey below must reproduce exactly.
    RunResult whole = evt.run(base);
    ASSERT_NE(whole.status, RunStatus::kConfigError) << ctx;
    const Cycle total = whole.cycles;
    if (total < 4)
        return; // too short to sample a window

    // Non-overlapping window starts, uniform over [1, total-1]: a
    // pause target at the terminal cycle would just terminate (the
    // tie goes to the terminal status), replaying nothing.
    std::mt19937_64 rng(w.seed);
    std::vector<Cycle> starts;
    for (int attempt = 0;
         attempt < 8 * w.count &&
         static_cast<int>(starts.size()) < w.count;
         ++attempt) {
        Cycle c = 1 + static_cast<Cycle>(
                          rng() % static_cast<std::uint64_t>(total - 1));
        bool clear = true;
        for (Cycle t : starts) {
            if (c < t + w.length + 2 && t < c + w.length + 2)
                clear = false;
        }
        if (clear)
            starts.push_back(c);
    }
    ASSERT_FALSE(starts.empty()) << ctx;
    std::sort(starts.begin(), starts.end());

    RunRequest untilFirst = base;
    untilFirst.pauseAt = starts.front();
    RunResult part = evt.run(untilFirst);
    int replayed = 0;
    for (std::size_t i = 0;
         i < starts.size() && part.status == RunStatus::kPaused; ++i) {
        ASSERT_TRUE(ref.adoptState(evt)) << ctx;
        EXPECT_EQ(ref.machineDigest(), evt.machineDigest())
            << ctx << " adopt at " << starts[i];
        Cycle end = starts[i] + w.length;
        RunResult evtWin = evt.resume(end);
        RunResult refWin = ref.resume(end);
        expectSameRunResult(evtWin, refWin,
                           ctx + " window " + std::to_string(starts[i]) +
                               ".." + std::to_string(end));
        EXPECT_EQ(ref.machineDigest(), evt.machineDigest())
            << ctx << " window end " << end;
        ++replayed;
        part = evtWin;
        if (part.status == RunStatus::kPaused && i + 1 < starts.size())
            part = evt.resume(starts[i + 1]);
    }
    EXPECT_GT(replayed, 0) << ctx;
    if (part.status == RunStatus::kPaused)
        part = evt.resume();
    expectSameRunResult(whole, part, ctx + " windowed journey vs whole");
}

TEST(SampledOracle, HarnessAgreesOnSmallRandomPrograms)
{
    // Shake the harness itself where full-run equivalence is already
    // proven: policies, deadlocks (perturbed programs), the extension
    // and many small windows. Any disagreement here is a checkpoint
    // bug, not a kernel bug.
    const PolicyKind policies[] = {PolicyKind::kCompatible,
                                   PolicyKind::kFcfs, PolicyKind::kRandom};
    for (PolicyKind policy : policies) {
        for (std::uint64_t seed = 1; seed <= 6; ++seed) {
            Topology topo = Topology::linearArray(6);
            GenOptions gen;
            gen.numMessages = 6;
            gen.maxWords = 5;
            gen.seed = 700 + seed;
            gen.interleave = 0.4;
            Program p = randomDeadlockFreeProgram(topo, gen);
            Program mutated =
                perturbProgram(p, static_cast<int>(seed % 3), seed);
            RunRequest base;
            base.policy = policy;
            base.seed = seed;
            base.maxCycles = 20'000;
            base.collect = Collect::kAll;
            OracleWindows w;
            w.count = 4;
            w.length = 5;
            w.seed = seed;
            expectSampledOracleAgrees(
                mutated, spec(topo, 2, 1, /*ext=*/seed % 3, /*penalty=*/3),
                base, w,
                "policy " + std::string(policyKindName(policy)) +
                    " seed " + std::to_string(seed));
        }
    }
}

TEST(SampledOracle, LargeArrayPhasesAt64kCells)
{
    // The satellite the harness exists for: dense-oracle bit-identity
    // at 65536 cells — 4x past the old full-run oracle cap — across
    // all three large-array phases. The dense kernel only ever runs
    // inside the sampled windows.
    const int kCells = 65536;
    Topology topo = Topology::linearArray(kCells);
    for (ArrayPhase phase : {ArrayPhase::kSparse, ArrayPhase::kStreaming,
                             ArrayPhase::kDenseActive}) {
        LargeArrayOptions gen;
        gen.phase = phase;
        gen.messages = 32;
        gen.wordsPerMessage = phase == ArrayPhase::kDenseActive ? 12 : 24;
        gen.computeGap = 4;
        Program p = largeArrayProgram(kCells, gen);
        RunRequest base;
        base.seed = 17 + static_cast<int>(phase);
        OracleWindows w;
        w.count = 3;
        w.length = phase == ArrayPhase::kDenseActive ? 8 : 16;
        w.seed = 90 + static_cast<std::uint64_t>(phase);
        expectSampledOracleAgrees(p, spec(topo, 2, 2), base, w,
                                  std::string("64k ") +
                                      arrayPhaseName(phase));
    }
}

TEST(SampledOracle, DenseActiveAt100kCells)
{
    // The headline scale: the full 100k-cell dense-active machine,
    // every cell live, checked against the dense oracle inside two
    // sampled windows plus the final-state digest.
    const int kCells = 100000;
    Topology topo = Topology::linearArray(kCells);
    LargeArrayOptions gen;
    gen.phase = ArrayPhase::kDenseActive;
    gen.wordsPerMessage = 10;
    Program p = largeArrayProgram(kCells, gen);
    RunRequest base;
    base.seed = 23;
    OracleWindows w;
    w.count = 2;
    w.length = 6;
    w.seed = 23;
    expectSampledOracleAgrees(p, spec(topo, 2, 2), base, w,
                              "100k dense-active");
}

TEST(KernelEquivalence, LongStreamSparseArray)
{
    // The streaming case the active-set kernel is built for: a few
    // long messages crossing a large, mostly idle array.
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        Topology topo = Topology::linearArray(48);
        Program p(48);
        for (int m = 0; m < 3; ++m) {
            CellId from = static_cast<CellId>((seed * 7 + m * 13) % 20);
            CellId to = static_cast<CellId>(47 - (seed * 3 + m * 5) % 20);
            MessageId id = p.declareMessage("S" + std::to_string(m),
                                            from, to);
            for (int w = 0; w < 24; ++w)
                p.write(from, id);
            for (int w = 0; w < 24; ++w)
                p.read(to, id);
        }
        SimOptions options;
        options.seed = seed;
        expectKernelsAgree(p, spec(topo, 2, 1 + seed % 4), options);
    }
}

} // namespace
} // namespace syscomm
