/**
 * @file
 * End-to-end compile pipeline (the section 9 summary as an API).
 */

#include <gtest/gtest.h>

#include "algos/fir.h"
#include "algos/paper_figures.h"
#include "core/compile.h"

namespace syscomm {
namespace {

MachineSpec
specFor(Topology topo, int queues, int capacity = 1)
{
    MachineSpec s;
    s.topo = std::move(topo);
    s.queuesPerLink = queues;
    s.queueCapacity = capacity;
    return s;
}

TEST(Compile, Fig2PlanIsOk)
{
    Program p = algos::fig2FirProgram();
    CompilePlan plan = compileProgram(p, specFor(algos::fig2Topology(), 2));
    EXPECT_TRUE(plan.ok) << plan.error;
    EXPECT_TRUE(plan.crossoff.deadlockFree);
    EXPECT_TRUE(plan.labeling.success);
    EXPECT_FALSE(plan.usedTrivialFallback);
    EXPECT_TRUE(plan.dynamicFeasibility.feasible);
    EXPECT_TRUE(plan.staticFeasibility.feasible);
    EXPECT_EQ(plan.normalizedLabels.size(),
              static_cast<std::size_t>(p.numMessages()));
}

TEST(Compile, DeadlockedProgramRejected)
{
    Program p = algos::fig5P1();
    CompilePlan plan = compileProgram(p, specFor(algos::fig5Topology(), 2));
    EXPECT_FALSE(plan.ok);
    EXPECT_FALSE(plan.crossoff.deadlockFree);
    EXPECT_NE(plan.error.find("deadlocked program"), std::string::npos);
}

TEST(Compile, LookaheadAcceptsP1WithBuffering)
{
    // P1 needs two words of buffering; with capacity-2 queues the
    // lookahead pipeline accepts it.
    Program p = algos::fig5P1();
    CompileOptions options;
    options.lookahead = true;
    CompilePlan plan =
        compileProgram(p, specFor(algos::fig5Topology(), 2, 2), options);
    EXPECT_TRUE(plan.ok) << plan.error;
    // Capacity 1 is not enough.
    CompilePlan plan1 =
        compileProgram(p, specFor(algos::fig5Topology(), 2, 1), options);
    EXPECT_FALSE(plan1.ok);
}

TEST(Compile, InfeasibleQueueCountReported)
{
    Program p = algos::fig8Program();
    CompilePlan plan = compileProgram(p, specFor(algos::fig8Topology(), 1));
    EXPECT_FALSE(plan.ok);
    EXPECT_FALSE(plan.dynamicFeasibility.feasible);
    EXPECT_NE(plan.error.find("no compatible queue assignment"),
              std::string::npos);
}

TEST(Compile, ValidationFailureShortCircuits)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    p.write(0, a); // missing read
    CompilePlan plan = compileProgram(p, specFor(Topology::linearArray(2), 2));
    EXPECT_FALSE(plan.ok);
    EXPECT_FALSE(plan.validationIssues.empty());
}

TEST(Compile, ReportMentionsLabels)
{
    Program p = algos::fig7Program();
    CompilePlan plan = compileProgram(p, specFor(algos::fig7Topology(), 2));
    ASSERT_TRUE(plan.ok);
    std::string report = plan.report(p);
    EXPECT_NE(report.find("deadlock-free: yes"), std::string::npos);
    EXPECT_NE(report.find("A=1"), std::string::npos);
    EXPECT_NE(report.find("B=3"), std::string::npos);
    EXPECT_NE(report.find("C=2"), std::string::npos);
}

TEST(Compile, AlternativeLabelSchemes)
{
    Program p = algos::fig7Program();
    MachineSpec machine = specFor(algos::fig7Topology(), 2);

    CompileOptions graph;
    graph.scheme = LabelScheme::kGraph;
    CompilePlan gp = compileProgram(p, machine, graph);
    ASSERT_TRUE(gp.ok) << gp.error;
    // The graph scheme reproduces the paper's Fig. 7 labels too.
    EXPECT_EQ(gp.labeling.labels[*p.messageByName("A")], Rational(1));
    EXPECT_EQ(gp.labeling.labels[*p.messageByName("C")], Rational(2));
    EXPECT_EQ(gp.labeling.labels[*p.messageByName("B")], Rational(3));

    CompileOptions trivial;
    trivial.scheme = LabelScheme::kTrivial;
    CompilePlan tp = compileProgram(p, machine, trivial);
    ASSERT_TRUE(tp.ok) << tp.error;
    // All-equal labels demand a queue per message on the busiest link.
    EXPECT_EQ(tp.dynamicFeasibility.requiredQueuesPerLink, 2);

    // And the trivial scheme becomes infeasible where section 6 fits.
    MachineSpec tight = specFor(algos::fig7Topology(), 1);
    EXPECT_TRUE(compileProgram(p, tight).ok);
    EXPECT_FALSE(compileProgram(p, tight, trivial).ok);
}

TEST(Compile, GeneratedFirPlansScale)
{
    for (int taps : {1, 2, 4, 8}) {
        algos::FirSpec spec = algos::FirSpec::random(taps, 6, 42);
        Program p = algos::makeFirProgram(spec);
        ASSERT_TRUE(p.valid());
        CompilePlan plan =
            compileProgram(p, specFor(algos::firTopology(taps), 2));
        EXPECT_TRUE(plan.ok) << "taps=" << taps << ": " << plan.error;
    }
}

} // namespace
} // namespace syscomm
