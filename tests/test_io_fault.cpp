/**
 * @file
 * serve/io.h contract tests: the op-counter semantics a fault
 * schedule indexes (write/sync/rename/truncate count, flush/open/
 * read/remove do not), each IoFaultKind's behavior (one-shot EIO,
 * sticky ENOSPC with clearFault, seeded torn writes, crash-then-dead),
 * and writeFileAtomicIo's all-or-nothing guarantee under every one of
 * them. The crash-point fuzz harness builds on exactly these
 * properties — if they drift, it hunts ghosts.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>

#include "serve/io.h"

namespace syscomm::serve {
namespace {

std::string
tempPath(const std::string& name)
{
    return testing::TempDir() + name + "_" +
           std::to_string(::getpid());
}

std::string
readBack(const std::string& path)
{
    std::string out;
    std::string error;
    if (!Io::system().readFile(path, out, error))
        return "<unreadable>";
    return out;
}

bool
exists(const std::string& path)
{
    std::string out;
    std::string error;
    return Io::system().readFile(path, out, error);
}

/** Write one buffer through @p io; returns io success. */
bool
writeOnce(Io& io, const std::string& path, const std::string& data,
          std::string& error)
{
    IoFile* file = io.openWrite(path, false, error);
    if (file == nullptr)
        return false;
    const bool ok = io.write(file, data.data(), data.size(), error) &&
                    io.flush(file, error);
    io.close(file);
    return ok;
}

TEST(Io, SystemRoundTripAndRename)
{
    const std::string path = tempPath("io_roundtrip");
    std::string error;
    ASSERT_TRUE(writeOnce(Io::system(), path, "hello bytes", error))
        << error;
    EXPECT_EQ(readBack(path), "hello bytes");

    const std::string moved = tempPath("io_roundtrip_moved");
    ASSERT_TRUE(Io::system().rename(path, moved, error)) << error;
    EXPECT_FALSE(exists(path));
    EXPECT_EQ(readBack(moved), "hello bytes");

    ASSERT_TRUE(Io::system().truncate(moved, 5, error)) << error;
    EXPECT_EQ(readBack(moved), "hello");
    EXPECT_TRUE(Io::system().remove(moved));
    EXPECT_FALSE(exists(moved));
    EXPECT_TRUE(Io::system().remove(moved)); // missing is not an error
}

TEST(Io, OpCounterCountsExactlyTheMutatingOps)
{
    FaultyIo io(IoFaultKind::kNone, 0, 1);
    const std::string path = tempPath("io_counter");
    std::string error;
    EXPECT_EQ(io.opCount(), 0u);

    IoFile* file = io.openWrite(path, false, error); // not counted
    ASSERT_NE(file, nullptr) << error;
    EXPECT_EQ(io.opCount(), 0u);
    ASSERT_TRUE(io.write(file, "ab", 2, error)); // op 1
    ASSERT_TRUE(io.flush(file, error));          // not counted
    ASSERT_TRUE(io.sync(file, error));           // op 2
    io.close(file);                              // not counted
    EXPECT_EQ(io.opCount(), 2u);

    const std::string moved = tempPath("io_counter_moved");
    ASSERT_TRUE(io.rename(path, moved, error)); // op 3
    ASSERT_TRUE(io.truncate(moved, 1, error));  // op 4
    std::string contents;
    ASSERT_TRUE(io.readFile(moved, contents, error)); // not counted
    EXPECT_TRUE(io.remove(moved));                    // not counted
    EXPECT_EQ(io.opCount(), 4u);
}

TEST(Io, EioFailsExactlyOnceAndRecovers)
{
    FaultyIo io(IoFaultKind::kEio, 2, 7);
    const std::string path = tempPath("io_eio");
    std::string error;
    IoFile* file = io.openWrite(path, false, error);
    ASSERT_NE(file, nullptr) << error;
    EXPECT_TRUE(io.write(file, "one", 3, error));  // op 1 passes
    EXPECT_FALSE(io.write(file, "two", 3, error)); // op 2 = EIO
    EXPECT_NE(error.find("EIO"), std::string::npos) << error;
    EXPECT_TRUE(io.write(file, "three", 5, error)); // op 3 passes
    ASSERT_TRUE(io.flush(file, error));
    io.close(file);
    // The failed op had no side effect: only ops 1 and 3 landed.
    EXPECT_EQ(readBack(path), "onethree");
}

TEST(Io, EnospcIsStickyUntilCleared)
{
    FaultyIo io(IoFaultKind::kEnospc, 2, 7);
    const std::string path = tempPath("io_enospc");
    std::string error;
    IoFile* file = io.openWrite(path, false, error);
    ASSERT_NE(file, nullptr) << error;
    EXPECT_TRUE(io.write(file, "a", 1, error));
    EXPECT_FALSE(io.write(file, "b", 1, error)); // fires
    EXPECT_FALSE(io.write(file, "c", 1, error)); // still failing
    EXPECT_FALSE(io.sync(file, error));
    const std::string other = tempPath("io_enospc_other");
    EXPECT_FALSE(io.rename(path, other, error));
    // Reads keep working — degraded daemons serve reads.
    std::string contents;
    EXPECT_TRUE(io.readFile(path, contents, error)) << error;

    io.clearFault(); // "space freed"
    EXPECT_TRUE(io.write(file, "d", 1, error)) << error;
    ASSERT_TRUE(io.flush(file, error));
    io.close(file);
    EXPECT_EQ(readBack(path), "ad");
}

TEST(Io, ShortWriteLeavesSeededPrefix)
{
    const std::string data = "0123456789abcdef";
    // The torn prefix length is mix64(seed ^ opIndex) % len:
    // deterministic per seed, so two runs agree byte for byte.
    for (std::uint64_t seed : {1ull, 2ull, 99ull}) {
        FaultyIo io(IoFaultKind::kShortWrite, 1, seed);
        const std::string path =
            tempPath("io_short_" + std::to_string(seed));
        std::string error;
        IoFile* file = io.openWrite(path, false, error);
        ASSERT_NE(file, nullptr) << error;
        EXPECT_FALSE(io.write(file, data.data(), data.size(), error));
        // One-shot: the next write goes through whole.
        EXPECT_TRUE(io.write(file, "tail", 4, error)) << error;
        ASSERT_TRUE(io.flush(file, error));
        io.close(file);

        const std::string got = readBack(path);
        ASSERT_GE(got.size(), 4u);
        const std::string prefix = got.substr(0, got.size() - 4);
        EXPECT_LT(prefix.size(), data.size());
        EXPECT_EQ(prefix, data.substr(0, prefix.size()));
        EXPECT_EQ(got.substr(got.size() - 4), "tail");

        FaultyIo replay(IoFaultKind::kShortWrite, 1, seed);
        const std::string path2 =
            tempPath("io_short2_" + std::to_string(seed));
        file = replay.openWrite(path2, false, error);
        ASSERT_NE(file, nullptr);
        EXPECT_FALSE(
            replay.write(file, data.data(), data.size(), error));
        ASSERT_TRUE(replay.flush(file, error));
        replay.close(file);
        EXPECT_EQ(readBack(path2), prefix) << "seed " << seed;
    }
}

TEST(Io, CrashTearsOneWriteThenEverythingIsDead)
{
    FaultyIo io(IoFaultKind::kCrash, 2, 5);
    const std::string path = tempPath("io_crash");
    std::string error;
    IoFile* file = io.openWrite(path, false, error);
    ASSERT_NE(file, nullptr) << error;
    ASSERT_TRUE(io.write(file, "intact|", 7, error));
    EXPECT_FALSE(io.write(file, "doomed-record", 13, error)); // crash
    EXPECT_TRUE(io.crashed());

    // Dead mode: every subsequent op fails with no side effects —
    // a crashed process cannot write, rename, or delete anything.
    EXPECT_FALSE(io.write(file, "x", 1, error));
    EXPECT_FALSE(io.flush(file, error));
    EXPECT_FALSE(io.sync(file, error));
    io.close(file);
    const std::string other = tempPath("io_crash_other");
    EXPECT_FALSE(io.rename(path, other, error));
    EXPECT_FALSE(io.truncate(path, 0, error));
    EXPECT_FALSE(io.remove(path));
    std::string contents;
    EXPECT_FALSE(io.readFile(path, contents, error));
    EXPECT_EQ(io.openWrite(path, true, error), nullptr);

    // What survives on disk: everything before the crash plus a
    // seeded prefix of the torn write.
    const std::string got = readBack(path);
    ASSERT_GE(got.size(), 7u);
    EXPECT_EQ(got.substr(0, 7), "intact|");
    EXPECT_LT(got.size(), 7u + 13u);
    EXPECT_EQ(got.substr(7),
              std::string("doomed-record").substr(0, got.size() - 7));
}

TEST(Io, WriteFileAtomicAllOrNothing)
{
    const std::string path = tempPath("io_atomic");
    std::string error;
    ASSERT_TRUE(writeFileAtomicIo(Io::system(), path, "version-1",
                                  FsyncPolicy::kNone, error))
        << error;
    EXPECT_EQ(readBack(path), "version-1");

    // Fail each op of the atomic chain in turn (write=1, rename=2
    // under kNone): the old contents must survive intact and no .tmp
    // may linger.
    for (std::uint64_t atOp : {1ull, 2ull}) {
        FaultyIo io(IoFaultKind::kEio, atOp, 3);
        EXPECT_FALSE(writeFileAtomicIo(io, path, "version-2",
                                       FsyncPolicy::kNone, error));
        EXPECT_EQ(readBack(path), "version-1") << "atOp " << atOp;
        EXPECT_FALSE(exists(path + ".tmp")) << "atOp " << atOp;
    }
    // With fsync policy the chain is write=1, sync=2, rename=3.
    for (std::uint64_t atOp : {1ull, 2ull, 3ull}) {
        FaultyIo io(IoFaultKind::kEio, atOp, 3);
        EXPECT_FALSE(writeFileAtomicIo(io, path, "version-2",
                                       FsyncPolicy::kMarkers, error));
        EXPECT_EQ(readBack(path), "version-1") << "atOp " << atOp;
        EXPECT_FALSE(exists(path + ".tmp")) << "atOp " << atOp;
    }
    // A crash can leave the .tmp (dead mode cannot remove) but must
    // never replace the target.
    {
        FaultyIo io(IoFaultKind::kCrash, 1, 3);
        EXPECT_FALSE(writeFileAtomicIo(io, path, "version-2",
                                       FsyncPolicy::kNone, error));
        EXPECT_EQ(readBack(path), "version-1");
    }
    Io::system().remove(path + ".tmp");

    // And the intact chain still replaces atomically afterwards.
    ASSERT_TRUE(writeFileAtomicIo(Io::system(), path, "version-2",
                                  FsyncPolicy::kAlways, error))
        << error;
    EXPECT_EQ(readBack(path), "version-2");
}

TEST(Io, FsyncPolicyNamesRoundTrip)
{
    for (FsyncPolicy policy :
         {FsyncPolicy::kNone, FsyncPolicy::kMarkers,
          FsyncPolicy::kAlways}) {
        FsyncPolicy parsed = FsyncPolicy::kAlways;
        EXPECT_TRUE(
            parseFsyncPolicy(fsyncPolicyName(policy), parsed));
        EXPECT_EQ(parsed, policy);
    }
    FsyncPolicy parsed;
    EXPECT_FALSE(parseFsyncPolicy("sometimes", parsed));
}

} // namespace
} // namespace syscomm::serve
