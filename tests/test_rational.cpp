/**
 * @file
 * Rational label arithmetic.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/rational.h"

namespace syscomm {
namespace {

TEST(Rational, DefaultIsZero)
{
    Rational r;
    EXPECT_EQ(r.num(), 0);
    EXPECT_EQ(r.den(), 1);
    EXPECT_TRUE(r.isInteger());
}

TEST(Rational, Reduction)
{
    Rational r(6, 4);
    EXPECT_EQ(r.num(), 3);
    EXPECT_EQ(r.den(), 2);
}

TEST(Rational, NegativeDenominatorNormalized)
{
    Rational r(1, -2);
    EXPECT_EQ(r.num(), -1);
    EXPECT_EQ(r.den(), 2);
}

TEST(Rational, ZeroNumeratorNormalizesDen)
{
    Rational r(0, 7);
    EXPECT_EQ(r.num(), 0);
    EXPECT_EQ(r.den(), 1);
}

TEST(Rational, Arithmetic)
{
    Rational a(1, 2), b(1, 3);
    EXPECT_EQ(a + b, Rational(5, 6));
    EXPECT_EQ(a - b, Rational(1, 6));
    EXPECT_EQ(a * b, Rational(1, 6));
    EXPECT_EQ(a / b, Rational(3, 2));
    EXPECT_EQ(-a, Rational(-1, 2));
}

TEST(Rational, Ordering)
{
    EXPECT_LT(Rational(1, 3), Rational(1, 2));
    EXPECT_LT(Rational(2), Rational(5, 2));
    EXPECT_GT(Rational(3), Rational(5, 2));
    EXPECT_EQ(Rational(2, 4), Rational(1, 2));
    EXPECT_LE(Rational(1), Rational(1));
    EXPECT_LT(Rational(-1), Rational(0));
}

TEST(Rational, Midpoint)
{
    EXPECT_EQ(Rational::midpoint(Rational(1), Rational(2)),
              Rational(3, 2));
    EXPECT_EQ(Rational::midpoint(Rational(1), Rational(3)), Rational(2));
    EXPECT_EQ(Rational::midpoint(Rational(3, 2), Rational(2)),
              Rational(7, 4));
    // Midpoint is strictly between distinct endpoints.
    Rational lo(5, 3), hi(7, 4);
    Rational mid = Rational::midpoint(lo, hi);
    EXPECT_LT(lo, mid);
    EXPECT_LT(mid, hi);
}

TEST(Rational, NextInteger)
{
    EXPECT_EQ(Rational(0).nextInteger(), 1);
    EXPECT_EQ(Rational(3).nextInteger(), 4);
    EXPECT_EQ(Rational(5, 2).nextInteger(), 3);
    EXPECT_EQ(Rational(-1, 2).nextInteger(), 0);
    EXPECT_EQ(Rational(-3).nextInteger(), -2);
}

TEST(Rational, Str)
{
    EXPECT_EQ(Rational(3).str(), "3");
    EXPECT_EQ(Rational(5, 2).str(), "5/2");
    std::ostringstream os;
    os << Rational(7, 3);
    EXPECT_EQ(os.str(), "7/3");
}

TEST(Rational, ToDouble)
{
    EXPECT_DOUBLE_EQ(Rational(1, 2).toDouble(), 0.5);
    EXPECT_DOUBLE_EQ(Rational(-3).toDouble(), -3.0);
}

TEST(Rational, RepeatedMidpointsStayExact)
{
    // Labels produced by rule 1b are nested midpoints; they must stay
    // exactly ordered.
    Rational lo(1), hi(2);
    for (int i = 0; i < 20; ++i) {
        Rational mid = Rational::midpoint(lo, hi);
        ASSERT_LT(lo, mid);
        ASSERT_LT(mid, hi);
        lo = mid;
    }
}

} // namespace
} // namespace syscomm
