/**
 * @file
 * Edge cases of the section 8.1 lookahead rules at their boundaries,
 * checked three ways against each other: the crossing-off procedure
 * with an explicit skip bound, the analyzer's inferred buffer bounds,
 * and real simulator runs at the matching queue shapes.
 *
 *  - R2 exactly at capacity: a write run of B words is free at skip
 *    bound B and wedged at B-1, and the machine behaves identically
 *    at per-queue capacity B vs B-1.
 *  - Zero bound: uniformSkipBound(0)/zeroSkipBound degenerate to the
 *    basic (lookahead-free) procedure on every program.
 *  - Per-message vs uniform bounds: a program whose two messages need
 *    different budgets — a uniform bound of 1 frees it while a
 *    per-message assignment with a *larger* maximum (but on the
 *    wrong message) stays wedged.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/analyze.h"
#include "core/crossoff.h"
#include "core/machine_spec.h"
#include "core/program.h"
#include "core/topology.h"
#include "sim/machine.h"
#include "text/parser.h"

namespace syscomm {
namespace {

Program
parse(const std::string& source)
{
    const text::ParseResult result = text::parseProgram(source);
    EXPECT_TRUE(result.ok) << result.error;
    return result.program;
}

std::string
boundaryText(int words)
{
    std::ostringstream out;
    out << "cells 2\nmessage X 0 -> 1\nmessage Y 1 -> 0\n";
    out << "cell 0 {";
    for (int w = 0; w < words; ++w)
        out << " W(X)";
    for (int w = 0; w < words; ++w)
        out << " R(Y)";
    out << " }\ncell 1 {";
    for (int w = 0; w < words; ++w)
        out << " W(Y)";
    for (int w = 0; w < words; ++w)
        out << " R(X)";
    out << " }\n";
    return out.str();
}

bool
freeWithBound(const Program& program, SkipBoundFn bound)
{
    CrossOffOptions options;
    options.lookahead = true;
    options.skip_bound = std::move(bound);
    return crossOff(program, options).deadlockFree;
}

sim::RunStatus
runAtCapacity(const Program& program, int capacity)
{
    MachineSpec spec;
    spec.topo = SharedTopology(Topology::linearArray(2));
    spec.queuesPerLink = 2;
    spec.queueCapacity = capacity;
    sim::SimOptions options;
    options.policy = sim::PolicyKind::kFcfs;
    options.maxCycles = 100'000;
    return sim::simulateProgram(program, spec, options).status;
}

TEST(LookaheadEdge, SkipBoundExactlyAtWriteRun)
{
    const int kWords = 3;
    const Program program = parse(boundaryText(kWords));

    // Crossing-off: free at bound B, wedged one below.
    EXPECT_TRUE(freeWithBound(program, uniformSkipBound(kWords)));
    EXPECT_FALSE(freeWithBound(program, uniformSkipBound(kWords - 1)));

    // Analyzer: same boundary, expressed as capacity (1-hop routes).
    const AnalysisReport report =
        analyzeProgram(program, Topology::linearArray(2));
    EXPECT_EQ(report.minUniformSkipBound, kWords);
    EXPECT_EQ(report.minUniformCapacity, kWords);

    // Machine: deadlocks strictly below the bound, completes at it.
    EXPECT_EQ(runAtCapacity(program, kWords - 1),
              sim::RunStatus::kDeadlocked);
    EXPECT_EQ(runAtCapacity(program, kWords),
              sim::RunStatus::kCompleted);
}

TEST(LookaheadEdge, ZeroBoundDegeneratesToBasicProcedure)
{
    const char* sources[] = {
        // Wedged without buffering.
        "cells 2\nmessage X 0 -> 1\nmessage Y 1 -> 0\n"
        "cell 0 { W(X) W(X) R(Y) R(Y) }\n"
        "cell 1 { W(Y) W(Y) R(X) R(X) }\n",
        // Free without buffering (word-interleaved ping-pong).
        "cells 2\nmessage X 0 -> 1\nmessage Y 1 -> 0\n"
        "cell 0 { W(X) R(Y) W(X) R(Y) }\n"
        "cell 1 { R(X) W(Y) R(X) W(Y) }\n",
        // A read cycle (wedged at any bound).
        "cells 2\nmessage X 0 -> 1\nmessage Y 1 -> 0\n"
        "cell 0 { R(Y) W(X) }\n"
        "cell 1 { R(X) W(Y) }\n",
    };
    for (const char* source : sources) {
        const Program program = parse(source);
        const bool basic = crossOff(program, {}).deadlockFree;
        EXPECT_EQ(freeWithBound(program, zeroSkipBound()), basic)
            << source;
        EXPECT_EQ(freeWithBound(program, uniformSkipBound(0)), basic)
            << source;
    }
}

TEST(LookaheadEdge, PerMessageAndUniformBoundsDisagree)
{
    // X carries a 3-word write run; Y needs only one word of slack.
    // Frees via EITHER skipping 1 write of Y (reach R(X)) or 3 writes
    // of X (reach R(Y)).
    const Program program =
        parse("cells 2\nmessage X 0 -> 1\nmessage Y 1 -> 0\n"
              "cell 0 { W(X) W(X) W(X) R(Y) }\n"
              "cell 1 { W(Y) R(X) R(X) R(X) }\n");
    const MessageId msgX = 0;
    const MessageId msgY = 1;

    // A uniform bound of 1 suffices (the Y path).
    EXPECT_TRUE(freeWithBound(program, uniformSkipBound(1)));
    EXPECT_FALSE(freeWithBound(program, uniformSkipBound(0)));

    // A per-message assignment with max budget 2 — larger than the
    // sufficient uniform bound, but placed on the wrong message —
    // stays wedged: X's run needs 3 and Y got nothing.
    auto wrongMessage = [msgX, msgY](MessageId msg) {
        if (msg == msgX)
            return 2;
        return msg == msgY ? 0 : 0;
    };
    EXPECT_FALSE(freeWithBound(program, wrongMessage));

    // The same shape of assignment frees it once X's budget covers
    // the full run.
    auto enoughForX = [msgX](MessageId msg) {
        return msg == msgX ? 3 : 0;
    };
    EXPECT_TRUE(freeWithBound(program, enoughForX));

    // The analyzer's uniform bound is the cheap sufficient one, and
    // the machine agrees: per-queue capacity 1 completes.
    const AnalysisReport report =
        analyzeProgram(program, Topology::linearArray(2));
    EXPECT_EQ(report.minUniformCapacity, 1);
    EXPECT_EQ(runAtCapacity(program, 1), sim::RunStatus::kCompleted);
}

TEST(LookaheadEdge, ExtensionCapacityCountsTowardTheBound)
{
    const int kWords = 4;
    const Program program = parse(boundaryText(kWords));
    const Topology topo = Topology::linearArray(2);

    AnalyzeOptions base;
    base.queueCapacity = 1;
    EXPECT_EQ(analyzeProgram(program, topo, base).verdict,
              LintVerdict::kDeadlock);

    // capacity 1 + extension 3 buffers 4 words: free (section 8).
    AnalyzeOptions extended = base;
    extended.extensionCapacity = kWords - 1;
    EXPECT_NE(analyzeProgram(program, topo, extended).verdict,
              LintVerdict::kDeadlock);

    // And the machine with the extension completes where the
    // unextended one wedges.
    MachineSpec spec;
    spec.topo = SharedTopology(Topology::linearArray(2));
    spec.queuesPerLink = 2;
    spec.queueCapacity = 1;
    spec.extensionCapacity = kWords - 1;
    sim::SimOptions options;
    options.policy = sim::PolicyKind::kFcfs;
    options.maxCycles = 100'000;
    EXPECT_EQ(sim::simulateProgram(program, spec, options).status,
              sim::RunStatus::kCompleted);
    EXPECT_EQ(runAtCapacity(program, 1),
              sim::RunStatus::kDeadlocked);
}

} // namespace
} // namespace syscomm
