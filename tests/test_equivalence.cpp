/**
 * @file
 * Classification/run-time equivalence: on a two-cell machine with a
 * dedicated capacity-c queue per message, the lookahead crossing-off
 * procedure with bound c accepts a program **iff** the simulator runs
 * it to completion. This is the tightest empirical statement of the
 * section 8 correspondence between rule R2 and physical buffering.
 */

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "core/crossoff.h"
#include "sim/machine.h"

namespace syscomm {
namespace {

/**
 * A random two-cell program: each message's words appear in order,
 * but the per-cell interleaving across messages is fully shuffled —
 * deadlocks are common.
 */
Program
randomTwoCellProgram(int num_messages, int max_words, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> words_dist(1, max_words);
    std::uniform_int_distribution<int> dir_dist(0, 1);

    Program p(2);
    std::vector<int> words;
    for (int m = 0; m < num_messages; ++m) {
        CellId sender = dir_dist(rng);
        p.declareMessage("M" + std::to_string(m), sender, 1 - sender);
        words.push_back(words_dist(rng));
    }
    // Shuffle each cell's op sequence independently.
    for (CellId cell = 0; cell < 2; ++cell) {
        std::vector<MessageId> tokens;
        for (MessageId m = 0; m < num_messages; ++m) {
            for (int w = 0; w < words[m]; ++w)
                tokens.push_back(m);
        }
        std::shuffle(tokens.begin(), tokens.end(), rng);
        for (MessageId m : tokens) {
            if (p.message(m).sender == cell)
                p.write(cell, m);
            else
                p.read(cell, m);
        }
    }
    return p;
}

class Equivalence : public ::testing::TestWithParam<int>
{};

TEST_P(Equivalence, LookaheadBoundMatchesQueueCapacity)
{
    int capacity = GetParam();
    int accepted = 0, rejected = 0;
    for (std::uint64_t seed = 0; seed < 120; ++seed) {
        Program p = randomTwoCellProgram(4, 3, seed * 11 + capacity);
        ASSERT_TRUE(p.valid());

        CrossOffOptions options;
        options.lookahead = true;
        options.skip_bound = uniformSkipBound(capacity);
        bool classified_free = crossOff(p, options).deadlockFree;

        MachineSpec spec;
        spec.topo = Topology::linearArray(2);
        spec.queuesPerLink = p.numMessages(); // dedicated queues
        spec.queueCapacity = capacity;
        sim::SimOptions sim_options;
        sim_options.policy = sim::PolicyKind::kStatic;
        sim::RunResult r = sim::simulateProgram(p, spec, sim_options);
        bool completed = r.status == sim::RunStatus::kCompleted;

        EXPECT_EQ(classified_free, completed)
            << "capacity " << capacity << " seed " << seed << "\n"
            << (completed ? "" : r.deadlock.render());
        (classified_free ? accepted : rejected)++;
    }
    // The sweep must exercise both verdicts to be meaningful.
    EXPECT_GT(accepted, 0);
    EXPECT_GT(rejected, 0);
}

INSTANTIATE_TEST_SUITE_P(Capacities, Equivalence,
                         ::testing::Values(1, 2, 3, 5),
                         [](const auto& info) {
                             return "cap" + std::to_string(info.param);
                         });

/**
 * Multi-hop variant: random programs over a 4-cell line with shuffled
 * per-cell interleavings; the R2 bound is hops * capacity per message
 * (routeCapacitySkipBound), queues are dedicated (static policy).
 */
Program
randomLineProgram(int cells, int num_messages, int max_words,
                  std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> words_dist(1, max_words);
    std::uniform_int_distribution<CellId> cell_dist(0, cells - 1);

    Program p(cells);
    std::vector<int> words;
    for (int m = 0; m < num_messages; ++m) {
        CellId sender = cell_dist(rng);
        CellId receiver = cell_dist(rng);
        while (receiver == sender)
            receiver = cell_dist(rng);
        p.declareMessage("M" + std::to_string(m), sender, receiver);
        words.push_back(words_dist(rng));
    }
    for (CellId cell = 0; cell < cells; ++cell) {
        std::vector<std::pair<MessageId, bool>> tokens;
        for (MessageId m = 0; m < num_messages; ++m) {
            if (p.message(m).sender == cell) {
                for (int w = 0; w < words[m]; ++w)
                    tokens.push_back({m, true});
            } else if (p.message(m).receiver == cell) {
                for (int w = 0; w < words[m]; ++w)
                    tokens.push_back({m, false});
            }
        }
        std::shuffle(tokens.begin(), tokens.end(), rng);
        for (auto [m, is_write] : tokens) {
            if (is_write)
                p.write(cell, m);
            else
                p.read(cell, m);
        }
    }
    return p;
}

TEST(Equivalence, MultiHopRouteCapacityBoundMatchesRuntime)
{
    Topology topo = Topology::linearArray(4);
    int agree_free = 0, agree_deadlocked = 0;
    for (std::uint64_t seed = 0; seed < 150; ++seed) {
        for (int capacity : {1, 2}) {
            Program p = randomLineProgram(4, 4, 3, seed * 13 + 1);

            CrossOffOptions options;
            options.lookahead = true;
            options.skip_bound =
                routeCapacitySkipBound(p, topo, capacity);
            bool classified_free = crossOff(p, options).deadlockFree;

            auto analysis = CompetingAnalysis::analyze(p, topo);
            MachineSpec spec;
            spec.topo = topo;
            spec.queuesPerLink = std::max(1, analysis.maxOnLink());
            spec.queueCapacity = capacity;
            sim::SimOptions sim_options;
            sim_options.policy = sim::PolicyKind::kStatic;
            sim::RunResult r = sim::simulateProgram(p, spec, sim_options);
            bool completed = r.status == sim::RunStatus::kCompleted;

            EXPECT_EQ(classified_free, completed)
                << "seed " << seed << " capacity " << capacity;
            (classified_free ? agree_free : agree_deadlocked)++;
        }
    }
    EXPECT_GT(agree_free, 0);
    EXPECT_GT(agree_deadlocked, 0);
}

TEST(Equivalence, BiggerBoundNeverRejectsMore)
{
    // Monotonicity of the lookahead classification in the bound.
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
        Program p = randomTwoCellProgram(4, 3, seed + 9000);
        bool prev = false;
        for (int bound : {0, 1, 2, 4, 8}) {
            CrossOffOptions options;
            options.lookahead = true;
            options.skip_bound = uniformSkipBound(bound);
            bool free = crossOff(p, options).deadlockFree;
            if (prev) {
                EXPECT_TRUE(free) << "seed " << seed << " bound " << bound;
            }
            prev = free;
        }
    }
}

TEST(Equivalence, BasicAcceptanceImpliesEveryCapacityCompletes)
{
    // A basically deadlock-free program completes at any capacity.
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        Program p = randomTwoCellProgram(4, 3, seed + 777);
        if (!isDeadlockFree(p))
            continue;
        MachineSpec spec;
        spec.topo = Topology::linearArray(2);
        spec.queuesPerLink = p.numMessages();
        spec.queueCapacity = 1;
        sim::SimOptions options;
        options.policy = sim::PolicyKind::kStatic;
        sim::RunResult r = sim::simulateProgram(p, spec, options);
        EXPECT_EQ(r.status, sim::RunStatus::kCompleted) << seed;
    }
}

} // namespace
} // namespace syscomm
