/**
 * @file
 * Daemon failure handling and client resilience, end to end over a
 * live Unix socket:
 *
 *  - ENOSPC on the spool rejects the submit explicitly BEFORE the ack
 *    (spool-before-ack), leaves no orphan spool files, flips the
 *    stats-visible degraded flag, keeps serving reads, and recovers
 *    via clearFault + SIGHUP-style reload;
 *  - a sweep whose journal dies mid-run still completes (journaling
 *    latches off) and flags the daemon degraded;
 *  - idempotency keys deduplicate resubmissions within one daemon
 *    life and across a restart (index rebuilt from the spool);
 *  - submitWithRetry / waitTerminalRetry carry a client through a
 *    daemon stop/restart without duplicating work, finishing with
 *    digests bit-identical to an uninterrupted reference;
 *  - the worker watchdog fails a run whose slice stalls past the
 *    deadline explicitly ("watchdog: ..." error), and never fires on
 *    healthy runs.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/io.h"
#include "serve/json.h"

namespace syscomm::serve {
namespace {

namespace fs = std::filesystem;

std::string
tempDir(const std::string& name)
{
    const std::string dir = testing::TempDir() + name + "_" +
                            std::to_string(::getpid());
    fs::remove_all(dir);
    return dir;
}

std::string
ringText(int cells, int words)
{
    std::ostringstream out;
    out << "cells " << cells << "\n";
    for (int c = 0; c < cells; ++c)
        out << "message m" << c << " " << c << " -> "
            << (c + 1) % cells << "\n";
    for (int c = 0; c < cells; ++c) {
        out << "cell " << c << " {";
        for (int w = 0; w < words; ++w)
            out << " W(m" << c << ") R(m" << (c + cells - 1) % cells
                << ")";
        out << " }\n";
    }
    return out.str();
}

JsonValue
ringTopology(int cells)
{
    return JsonValue::object()
        .set("kind", JsonValue::str("ring"))
        .set("cells", JsonValue::integer(cells));
}

JsonValue
shapeJson(const std::string& name, int queues, int capacity)
{
    return JsonValue::object()
        .set("name", JsonValue::str(name))
        .set("queues", JsonValue::integer(queues))
        .set("capacity", JsonValue::integer(capacity))
        .set("extension", JsonValue::integer(0))
        .set("penalty", JsonValue::integer(4));
}

JsonValue
runBody(int cells, int words)
{
    JsonValue body = JsonValue::object();
    body.set("kind", JsonValue::str("run"));
    body.set("program", JsonValue::str(ringText(cells, words)));
    body.set("topology", ringTopology(cells));
    body.set("shape", shapeJson("q2c2", 2, 2));
    return body;
}

JsonValue
sweepBody(int cells, int words, int numShapes, Cycle checkpointEvery)
{
    JsonValue body = JsonValue::object();
    body.set("kind", JsonValue::str("sweep"));
    body.set("program", JsonValue::str(ringText(cells, words)));
    body.set("topology", ringTopology(cells));
    JsonValue shapes = JsonValue::array();
    for (int k = 0; k < numShapes; ++k)
        shapes.push(shapeJson("s" + std::to_string(k), 1 + k % 3,
                              1 + (k / 3) % 3));
    body.set("shapes", std::move(shapes));
    JsonValue requests = JsonValue::array();
    requests.push(JsonValue::object()
                      .set("policy", JsonValue::str("compatible"))
                      .set("seed", JsonValue::integer(1)));
    body.set("requests", std::move(requests));
    body.set("checkpoint_every", JsonValue::integer(checkpointEvery));
    return body;
}

std::vector<std::string>
sweepDigests(const JsonValue& result)
{
    std::vector<std::string> digests;
    const JsonValue* rows = result.find("rows");
    if (rows == nullptr)
        return digests;
    for (const JsonValue& row : rows->items())
        digests.push_back(row.getString("name") + ":" +
                          row.getString("machine_digest"));
    return digests;
}

/** Daemon + connected client on a fresh socket/spool pair. */
struct Harness
{
    explicit Harness(const std::string& name, Io* io = nullptr,
                     std::int64_t watchdogMs = 0,
                     Cycle sliceCycles = 100'000)
        : socketPath(testing::TempDir() + name + "_" +
                     std::to_string(::getpid()) + ".sock"),
          spoolDir(tempDir(name + "_spool"))
    {
        DaemonOptions options;
        options.socketPath = socketPath;
        options.spoolDir = spoolDir;
        options.workers = 1;
        options.io = io;
        options.watchdogMs = watchdogMs;
        options.sliceCycles = sliceCycles;
        options.maxLineBytes = 64u << 20;
        daemon = std::make_unique<SyscommDaemon>(options);
        std::string error;
        started = daemon->start(error);
        EXPECT_TRUE(started) << error;
        if (started) {
            EXPECT_TRUE(client.connectUnix(socketPath, error))
                << error;
        }
    }

    std::string socketPath;
    std::string spoolDir;
    std::unique_ptr<SyscommDaemon> daemon;
    ServeClient client;
    bool started = false;
};

int
spoolFileCount(const std::string& dir, const std::string& suffix)
{
    int n = 0;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() >= suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0)
            ++n;
    }
    return n;
}

TEST(ServeResilience, EnospcRejectsBeforeAckAndRecovers)
{
    FaultyIo io(IoFaultKind::kEnospc, 1, 11);
    Harness h("enospc", &io);
    ASSERT_TRUE(h.started);

    // Spool-before-ack: the very first submission hits the full disk
    // and is answered "spool_error" — the client was never given an
    // id the daemon could forget.
    std::string id;
    std::string error;
    JsonValue response;
    ASSERT_TRUE(h.client.submit(runBody(4, 50), id, response, error))
        << error;
    EXPECT_FALSE(response.getBool("ok", true));
    EXPECT_EQ(response.getString("rejected"), "spool_error");
    // No orphan spool entries: nothing was acknowledged, nothing may
    // survive to be recovered.
    EXPECT_EQ(spoolFileCount(h.spoolDir, ".sub.json"), 0);
    EXPECT_EQ(spoolFileCount(h.spoolDir, ".tmp"), 0);

    // Degraded mode: new work is rejected with the explicit reason,
    // reads keep working, and stats carries the flag.
    ASSERT_TRUE(h.client.submit(runBody(4, 50), id, response, error));
    EXPECT_EQ(response.getString("rejected"), "degraded");
    ASSERT_TRUE(h.client.ping(response, error)) << error;
    EXPECT_TRUE(response.getBool("ok", false));
    ASSERT_TRUE(h.client.stats(response, error)) << error;
    EXPECT_TRUE(response.getBool("degraded", false));
    EXPECT_FALSE(response.getString("degraded_reason").empty());
    const JsonValue* queue = response.find("queue");
    ASSERT_NE(queue, nullptr);
    EXPECT_EQ(queue->getInt("rejected_degraded", 0), 1);

    // Space freed + reload (the SIGHUP path): admission resumes and
    // the next submission runs to completion, durably.
    io.clearFault();
    h.daemon->reload();
    ASSERT_TRUE(h.client.submit(runBody(4, 50), id, response, error))
        << error;
    ASSERT_TRUE(response.getBool("ok", false)) << writeJson(response);
    ASSERT_TRUE(h.client.waitTerminal(id, 30'000, response, error))
        << error;
    EXPECT_EQ(response.getString("state"), "completed");
    ASSERT_TRUE(h.client.stats(response, error)) << error;
    EXPECT_FALSE(response.getBool("degraded", true));
    EXPECT_EQ(spoolFileCount(h.spoolDir, ".sub.json"), 1);
    EXPECT_EQ(spoolFileCount(h.spoolDir, ".done.json"), 1);
}

TEST(ServeResilience, SweepSurvivesJournalDeathAndFlagsDegraded)
{
    // Let the spool write + rename pass (ops 1-2), then kill every
    // later mutating op: the sweep's journal dies mid-flight.
    FaultyIo io(IoFaultKind::kEnospc, 3, 11);
    Harness h("journal_death", &io);
    ASSERT_TRUE(h.started);

    std::string id;
    std::string error;
    JsonValue response;
    ASSERT_TRUE(h.client.submit(sweepBody(4, 60, 3, 50), id, response,
                                error))
        << error;
    ASSERT_TRUE(response.getBool("ok", false)) << writeJson(response);
    ASSERT_TRUE(h.client.waitTerminal(id, 30'000, response, error))
        << error;
    // Lost journaling must not lose compute: the sweep completes.
    EXPECT_EQ(response.getString("state"), "completed");
    ASSERT_TRUE(h.client.stats(response, error)) << error;
    EXPECT_TRUE(response.getBool("degraded", false));
    // Under sticky ENOSPC the done marker fails too and overwrites
    // the reason; either failure is an acceptable flag.
    const std::string reason = response.getString("degraded_reason");
    EXPECT_TRUE(reason.find("journal") != std::string::npos ||
                reason.find("done marker") != std::string::npos)
        << reason;
}

TEST(ServeResilience, IdempotencyKeyDeduplicates)
{
    Harness h("idem");
    ASSERT_TRUE(h.started);

    JsonValue body = runBody(4, 50);
    body.set("idempotency_key", JsonValue::str("job-42"));

    std::string id1;
    std::string id2;
    std::string error;
    JsonValue response;
    ASSERT_TRUE(h.client.submit(body, id1, response, error)) << error;
    ASSERT_TRUE(response.getBool("ok", false));
    ASSERT_TRUE(h.client.submit(body, id2, response, error)) << error;
    ASSERT_TRUE(response.getBool("ok", false));
    EXPECT_EQ(id1, id2);
    EXPECT_TRUE(response.getBool("deduplicated", false));

    // Still deduplicates after the work finished: the retry lands on
    // the terminal submission and can fetch its result.
    ASSERT_TRUE(h.client.waitTerminal(id1, 30'000, response, error))
        << error;
    ASSERT_TRUE(h.client.submit(body, id2, response, error)) << error;
    EXPECT_EQ(id2, id1);
    EXPECT_EQ(response.getString("state"), "completed");

    // A different key is different work.
    body.set("idempotency_key", JsonValue::str("job-43"));
    ASSERT_TRUE(h.client.submit(body, id2, response, error)) << error;
    EXPECT_NE(id2, id1);

    // Exactly two submissions exist.
    ASSERT_TRUE(h.client.stats(response, error)) << error;
    EXPECT_EQ(spoolFileCount(h.spoolDir, ".sub.json"), 2);
}

TEST(ServeResilience, ClientRetriesAcrossDaemonRestart)
{
    // Reference: the uninterrupted sweep's digests.
    std::vector<std::string> want;
    {
        Harness ref("restart_ref");
        ASSERT_TRUE(ref.started);
        std::string id;
        std::string error;
        JsonValue response;
        ASSERT_TRUE(ref.client.submit(sweepBody(4, 120, 4, 60), id,
                                      response, error))
            << error;
        ASSERT_TRUE(response.getBool("ok", false));
        ASSERT_TRUE(
            ref.client.waitTerminal(id, 60'000, response, error))
            << error;
        JsonValue result;
        ASSERT_TRUE(ref.client.result(id, result, error)) << error;
        want = sweepDigests(*result.find("result"));
        ASSERT_FALSE(want.empty());
    }

    const std::string socketPath = testing::TempDir() +
                                   "restart_sock_" +
                                   std::to_string(::getpid());
    const std::string spool = tempDir("restart_spool");
    DaemonOptions options;
    options.socketPath = socketPath;
    options.spoolDir = spool;
    options.workers = 1;

    JsonValue body = sweepBody(4, 120, 4, 60);
    body.set("idempotency_key", JsonValue::str("restart-sweep"));

    RetryOptions retry;
    retry.maxAttempts = 8;
    retry.baseDelayMs = 10;
    retry.maxDelayMs = 100;
    retry.jitterSeed = 7;

    ServeClient client;
    client.setTimeouts(2'000, 5'000);
    std::string id1;
    {
        auto daemon = std::make_unique<SyscommDaemon>(options);
        std::string error;
        ASSERT_TRUE(daemon->start(error)) << error;
        ASSERT_TRUE(client.connectUnix(socketPath, error)) << error;
        JsonValue response;
        ASSERT_TRUE(client.submitWithRetry(body, retry, id1, response,
                                           error))
            << error;
        ASSERT_FALSE(id1.empty());
        // Park the in-flight sweep and kill the daemon: the classic
        // lost-daemon scenario a client must survive.
        ASSERT_TRUE(client.drain(response, error)) << error;
        daemon->stop();
    }

    // Daemon gone: a blind resubmission fails over transport now but
    // succeeds once the replacement is up — and lands on the SAME
    // submission, courtesy of the spooled idempotency key.
    auto daemon2 = std::make_unique<SyscommDaemon>(options);
    std::string error;
    ASSERT_TRUE(daemon2->start(error)) << error;
    client.close(); // stale fd from the dead daemon
    std::string id2;
    JsonValue response;
    ASSERT_TRUE(
        client.submitWithRetry(body, retry, id2, response, error))
        << error;
    EXPECT_EQ(id2, id1);
    EXPECT_TRUE(response.getBool("deduplicated", false))
        << writeJson(response);

    ASSERT_TRUE(
        client.waitTerminalRetry(id1, 60'000, retry, response, error))
        << error;
    EXPECT_EQ(response.getString("state"), "completed");
    JsonValue resultResponse;
    ASSERT_TRUE(client.result(id1, resultResponse, error)) << error;
    const JsonValue* result = resultResponse.find("result");
    ASSERT_NE(result, nullptr);
    // Bit-identical to the uninterrupted reference, row for row.
    EXPECT_EQ(sweepDigests(*result), want);
    daemon2->stop();
}

TEST(ServeResilience, WatchdogFailsStuckRunExplicitly)
{
    // One slice spans the whole ~400k-cycle run (~100 ms of wall
    // time), with a 5 ms deadline: the watchdog must catch the slice
    // in flight and the daemon must answer an explicit error, not
    // hang and not park.
    Harness h("watchdog", nullptr, /*watchdogMs=*/5,
              /*sliceCycles=*/350'000);
    ASSERT_TRUE(h.started);

    std::string id;
    std::string error;
    JsonValue response;
    ASSERT_TRUE(h.client.submit(runBody(6, 200'000), id, response,
                                error))
        << error;
    ASSERT_TRUE(response.getBool("ok", false)) << writeJson(response);
    ASSERT_TRUE(h.client.waitTerminal(id, 60'000, response, error))
        << error;
    EXPECT_EQ(response.getString("state"), "error");
    JsonValue resultResponse;
    ASSERT_TRUE(h.client.result(id, resultResponse, error)) << error;
    const JsonValue* result = resultResponse.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->getString("error").rfind("watchdog", 0), 0u)
        << writeJson(*result);

    ASSERT_TRUE(h.client.stats(response, error)) << error;
    EXPECT_GE(response.getInt("watchdog_fired", 0), 1);
}

TEST(ServeResilience, WatchdogLeavesHealthyRunsAlone)
{
    // Small slices report progress every ~1 ms; a 2 s deadline never
    // comes close. The run must complete untouched.
    Harness h("watchdog_ok", nullptr, /*watchdogMs=*/2'000,
              /*sliceCycles=*/5'000);
    ASSERT_TRUE(h.started);

    std::string id;
    std::string error;
    JsonValue response;
    ASSERT_TRUE(
        h.client.submit(runBody(6, 4'000), id, response, error))
        << error;
    ASSERT_TRUE(response.getBool("ok", false));
    ASSERT_TRUE(h.client.waitTerminal(id, 60'000, response, error))
        << error;
    EXPECT_EQ(response.getString("state"), "completed");
    ASSERT_TRUE(h.client.stats(response, error)) << error;
    EXPECT_EQ(response.getInt("watchdog_fired", -1), 0);
}

} // namespace
} // namespace syscomm::serve
