/**
 * @file
 * Related-message analysis (paper section 6).
 */

#include <gtest/gtest.h>

#include "algos/paper_figures.h"
#include "core/related.h"

namespace syscomm {
namespace {

TEST(UnionFindT, Basics)
{
    UnionFind uf(5);
    EXPECT_FALSE(uf.same(0, 1));
    uf.unite(0, 1);
    EXPECT_TRUE(uf.same(0, 1));
    uf.unite(1, 2);
    EXPECT_TRUE(uf.same(0, 2));
    EXPECT_FALSE(uf.same(0, 3));
    EXPECT_EQ(uf.size(), 5);
}

TEST(Related, InterleavedReadsAreRelated)
{
    // Fig. 8: R(A) R(B) R(A) R(B) at C3.
    Program p = algos::fig8Program();
    EXPECT_TRUE(areRelated(p, *p.messageByName("A"),
                           *p.messageByName("B")));
}

TEST(Related, InterleavedWritesAreRelated)
{
    // Fig. 9: W(A) W(B) W(A) W(B) at C1.
    Program p = algos::fig9Program();
    EXPECT_TRUE(areRelated(p, *p.messageByName("A"),
                           *p.messageByName("B")));
}

TEST(Related, SequentialMessagesAreNotRelated)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 0, 1);
    for (MessageId m : {a, b}) {
        p.write(0, m);
        p.write(0, m);
        p.read(1, m);
        p.read(1, m);
    }
    EXPECT_FALSE(areRelated(p, a, b));
}

TEST(Related, MixedKindsBetweenSameKindPairDoNotRelate)
{
    // A read of B between a W(A) and an R(A) is NOT between two
    // same-kind ops of A.
    Program p(3);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 2, 0);
    p.write(0, a);
    p.read(0, b);
    p.write(2, b);
    p.read(1, a);
    EXPECT_FALSE(areRelated(p, a, b));
}

TEST(Related, SingleWordMessagesCannotTriggerRelation)
{
    // One op per message per cell: no pair of same-kind ops exists.
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 0, 1);
    p.write(0, a);
    p.write(0, b);
    p.read(1, a);
    p.read(1, b);
    EXPECT_FALSE(areRelated(p, a, b));
}

TEST(Related, TransitiveClosure)
{
    // A-B interleaved; B-C interleaved; so A related to C.
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 0, 1);
    MessageId c = p.declareMessage("C", 0, 1);
    // W(A) W(B) W(A) ... relates A and B.
    p.write(0, a);
    p.write(0, b);
    p.write(0, a);
    // ... W(C) W(B) W(C) relates B and C (B ops bracket nothing here,
    // C ops bracket B).
    p.write(0, c);
    p.write(0, b);
    p.write(0, c);
    // Reader consumes in the same order.
    p.read(1, a);
    p.read(1, b);
    p.read(1, a);
    p.read(1, c);
    p.read(1, b);
    p.read(1, c);
    EXPECT_TRUE(areRelated(p, a, b));
    EXPECT_TRUE(areRelated(p, b, c));
    EXPECT_TRUE(areRelated(p, a, c));
}

TEST(Related, GroupsArePartition)
{
    Program p = algos::fig7Program();
    auto groups = relatedGroups(p);
    // Fig. 7 has no interleaving: three singleton groups.
    ASSERT_EQ(groups.size(), 3u);
    for (const auto& g : groups)
        EXPECT_EQ(g.size(), 1u);
}

TEST(Related, Fig8Groups)
{
    Program p = algos::fig8Program();
    auto groups = relatedGroups(p);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].size(), 2u);
}

TEST(Related, ComputeOpsDoNotBlockRelation)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 0, 1);
    p.write(0, a);
    p.compute(0, ComputeFn{});
    p.write(0, b);
    p.compute(0, ComputeFn{});
    p.write(0, a);
    p.read(1, a);
    p.read(1, b);
    p.read(1, a);
    EXPECT_TRUE(areRelated(p, a, b));
}

} // namespace
} // namespace syscomm
