/**
 * @file
 * Property-based validation of Theorem 1: for any deadlock-free
 * program with a consistent labeling and a compatible queue
 * assignment (with enough queues for the same-label groups), execution
 * runs to completion — across random programs, topologies, queue
 * counts and buffer depths. The unsafe baselines (FCFS/random) are
 * allowed to deadlock but must never produce a wrong delivery count.
 */

#include <gtest/gtest.h>

#include "core/compile.h"
#include "core/label_verify.h"
#include "core/program_gen.h"
#include "sim/machine.h"

namespace syscomm {
namespace {

using sim::PolicyKind;
using sim::RunResult;
using sim::RunStatus;
using sim::SimOptions;

std::int64_t
totalWords(const Program& p)
{
    std::int64_t words = 0;
    for (MessageId m = 0; m < p.numMessages(); ++m)
        words += p.messageLength(m);
    return words;
}

struct Theorem1Case
{
    const char* topoName;
    int queues;
    int capacity;
};

class Theorem1 : public ::testing::TestWithParam<Theorem1Case>
{
  protected:
    Topology
    topo() const
    {
        std::string name = GetParam().topoName;
        if (name == "linear4")
            return Topology::linearArray(4);
        if (name == "linear7")
            return Topology::linearArray(7);
        if (name == "ring5")
            return Topology::ring(5);
        return Topology::mesh(3, 3);
    }
};

TEST_P(Theorem1, CompatibleAlwaysCompletes)
{
    const Theorem1Case& param = GetParam();
    Topology topology = topo();
    int completed = 0, skipped = 0;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        GenOptions gen;
        gen.numMessages = 10;
        gen.maxWords = 4;
        gen.seed = seed * 7 + 3;
        // Interleaving creates related (same-label) classes whose
        // simultaneous assignment needs wide queue pools; scale it to
        // the machine so the sweep mostly lands in feasible territory.
        gen.interleave =
            param.queues >= 3 ? 0.3 : (param.queues == 2 ? 0.1 : 0.0);
        Program p = randomDeadlockFreeProgram(topology, gen);

        MachineSpec machine;
        machine.topo = topology;
        machine.queuesPerLink = param.queues;
        machine.queueCapacity = param.capacity;

        CompilePlan plan = compileProgram(p, machine);
        ASSERT_TRUE(plan.crossoff.deadlockFree);
        ASSERT_TRUE(plan.labeling.success);
        ASSERT_TRUE(isConsistentLabeling(p, plan.labeling.labels));
        if (!plan.dynamicFeasibility.feasible) {
            // Assumption (ii) fails on this machine: Theorem 1 does
            // not apply. (Rare: section 6 labels are mostly distinct.)
            ++skipped;
            continue;
        }

        SimOptions options;
        options.labels = plan.normalizedLabels;
        options.audit = true;
        RunResult r = sim::simulateProgram(p, machine, options);
        ASSERT_EQ(r.status, RunStatus::kCompleted)
            << topology.name() << " queues=" << param.queues
            << " cap=" << param.capacity << " seed=" << seed << "\n"
            << r.deadlock.render();
        EXPECT_TRUE(r.audit.compatible) << r.audit.str(p);
        EXPECT_EQ(r.stats.wordsDelivered, totalWords(p));
        ++completed;
    }
    // The sweep must actually exercise the theorem.
    EXPECT_GT(completed, skipped);
}

INSTANTIATE_TEST_SUITE_P(
    Machines, Theorem1,
    ::testing::Values(Theorem1Case{"linear4", 2, 1},
                      Theorem1Case{"linear4", 1, 1},
                      Theorem1Case{"linear4", 2, 4},
                      Theorem1Case{"linear7", 2, 1},
                      Theorem1Case{"linear7", 3, 2},
                      Theorem1Case{"ring5", 2, 1},
                      Theorem1Case{"mesh3x3", 2, 1},
                      Theorem1Case{"mesh3x3", 3, 2}),
    [](const auto& info) {
        return std::string(info.param.topoName) + "_q" +
               std::to_string(info.param.queues) + "_c" +
               std::to_string(info.param.capacity);
    });

TEST(Theorem1Baselines, UnsafePoliciesNeverMisdeliver)
{
    // FCFS/random may deadlock, but whenever they do complete, the
    // delivery count must be exact.
    Topology topology = Topology::linearArray(5);
    int deadlocks = 0;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        GenOptions gen;
        gen.numMessages = 10;
        gen.maxWords = 4;
        gen.seed = seed;
        Program p = randomDeadlockFreeProgram(topology, gen);

        MachineSpec machine;
        machine.topo = topology;
        machine.queuesPerLink = 1; // scarce: provoke misassignment
        for (PolicyKind kind : {PolicyKind::kFcfs, PolicyKind::kRandom}) {
            SimOptions options;
            options.policy = kind;
            options.seed = seed;
            RunResult r = sim::simulateProgram(p, machine, options);
            ASSERT_NE(r.status, RunStatus::kConfigError);
            ASSERT_NE(r.status, RunStatus::kMaxCycles);
            if (r.status == RunStatus::kCompleted)
                EXPECT_EQ(r.stats.wordsDelivered, totalWords(p));
            else
                ++deadlocks;
        }
    }
    // With one queue per link, naive policies must hit some deadlocks.
    EXPECT_GT(deadlocks, 0);
}

TEST(Theorem1Baselines, EagerReservationAlsoSafe)
{
    Topology topology = Topology::linearArray(5);
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        GenOptions gen;
        gen.numMessages = 8;
        gen.maxWords = 3;
        gen.seed = seed + 11;
        Program p = randomDeadlockFreeProgram(topology, gen);
        MachineSpec machine;
        machine.topo = topology;
        machine.queuesPerLink = 2;

        CompilePlan plan = compileProgram(p, machine);
        if (!plan.ok)
            continue;
        SimOptions options;
        options.policy = PolicyKind::kCompatibleEager;
        options.labels = plan.normalizedLabels;
        RunResult r = sim::simulateProgram(p, machine, options);
        EXPECT_EQ(r.status, RunStatus::kCompleted) << "seed " << seed;
    }
}

TEST(Theorem1Baselines, StaticSafeWhenFeasible)
{
    Topology topology = Topology::linearArray(4);
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        GenOptions gen;
        gen.numMessages = 6;
        gen.maxWords = 3;
        gen.seed = seed + 41;
        Program p = randomDeadlockFreeProgram(topology, gen);

        MachineSpec machine;
        machine.topo = topology;
        machine.queuesPerLink = 6; // enough for a dedicated queue each
        SimOptions options;
        options.policy = PolicyKind::kStatic;
        RunResult r = sim::simulateProgram(p, machine, options);
        EXPECT_EQ(r.status, RunStatus::kCompleted) << "seed " << seed;
    }
}

} // namespace
} // namespace syscomm
