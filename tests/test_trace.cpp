/**
 * @file
 * Post-run tracing: queue timelines, message latencies, release
 * events, and the unlimited-resources baseline.
 */

#include <gtest/gtest.h>

#include "algos/fir.h"
#include "algos/paper_figures.h"
#include "sim/machine.h"
#include "sim/trace.h"

namespace syscomm {
namespace {

using sim::RunStatus;

MachineSpec
fig7Machine(int queues = 1)
{
    MachineSpec spec;
    spec.topo = algos::fig7Topology();
    spec.queuesPerLink = queues;
    return spec;
}

TEST(Trace, ReleasesMatchAssignments)
{
    Program p = algos::fig7Program();
    sim::RunResult r = sim::simulateProgram(p, fig7Machine());
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    // Every assignment is eventually released on completion.
    EXPECT_EQ(r.events.size(), r.releases.size());
    for (const auto& rel : r.releases)
        EXPECT_GE(rel.cycle, 0);
}

TEST(Trace, TimelineShowsMessagesAndFreeTime)
{
    Program p = algos::fig7Program();
    MachineSpec spec = fig7Machine();
    sim::RunResult r = sim::simulateProgram(p, spec);
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    std::string timeline = sim::renderQueueTimeline(r, p, spec);
    // All three links appear.
    EXPECT_NE(timeline.find("link 0-1 q0:"), std::string::npos);
    EXPECT_NE(timeline.find("link 2-3 q0:"), std::string::npos);
    // Messages show as letters; C and B both use the 2-3 link queue.
    std::string last_row =
        timeline.substr(timeline.find("link 2-3 q0:"));
    EXPECT_NE(last_row.find('C'), std::string::npos);
    EXPECT_NE(last_row.find('B'), std::string::npos);
}

TEST(Trace, TimelineWidthIsBounded)
{
    algos::FirSpec fir = algos::FirSpec::random(3, 64, 5);
    Program p = algos::makeFirProgram(fir);
    MachineSpec spec;
    spec.topo = algos::firTopology(3);
    spec.queuesPerLink = 2;
    sim::RunResult r = sim::simulateProgram(p, spec);
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    std::string timeline = sim::renderQueueTimeline(r, p, spec, 40);
    for (std::size_t pos = timeline.find('\n');
         pos != std::string::npos;) {
        std::size_t next = timeline.find('\n', pos + 1);
        if (next == std::string::npos)
            break;
        EXPECT_LE(next - pos, 60u); // row header + <= 40 columns
        pos = next;
    }
}

TEST(Trace, MessageLatenciesAreOrdered)
{
    Program p = algos::fig7Program();
    sim::RunResult r = sim::simulateProgram(p, fig7Machine());
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    for (MessageId m = 0; m < p.numMessages(); ++m) {
        auto [sent, received] = r.msgTiming[m];
        EXPECT_GE(sent, 0) << p.message(m).name;
        EXPECT_GE(received, sent) << p.message(m).name;
    }
    // A (C2->C3, consumed first) finishes before B (written after).
    auto a = *p.messageByName("A");
    auto b = *p.messageByName("B");
    EXPECT_LT(r.msgTiming[a].second, r.msgTiming[b].second);
    std::string table = sim::renderMessageLatencies(r, p);
    EXPECT_NE(table.find("A"), std::string::npos);
    EXPECT_NE(table.find("first-sent"), std::string::npos);
}

TEST(Trace, NeverSentMessagesReported)
{
    Program p = algos::fig7Program();
    sim::SimOptions options;
    options.policy = sim::PolicyKind::kFcfs;
    sim::RunResult r = sim::simulateProgram(p, fig7Machine(), options);
    ASSERT_EQ(r.status, RunStatus::kDeadlocked);
    // C never gets its last queue under FCFS; B's words never reach C4.
    auto b = *p.messageByName("B");
    EXPECT_EQ(r.msgTiming[b].second, -1);
    std::string table = sim::renderMessageLatencies(r, p);
    EXPECT_NE(table.find("\t"), std::string::npos);
}

TEST(Trace, IdealCyclesLowerBoundsConstrainedRuns)
{
    algos::FirSpec fir = algos::FirSpec::random(4, 16, 9);
    Program p = algos::makeFirProgram(fir);
    Topology topo = algos::firTopology(4);
    Cycle ideal = sim::idealCycles(p, topo);
    ASSERT_GT(ideal, 0);

    MachineSpec spec;
    spec.topo = topo;
    spec.queuesPerLink = 2;
    spec.queueCapacity = 1;
    sim::RunResult r = sim::simulateProgram(p, spec);
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    EXPECT_LE(ideal, r.cycles);
}

TEST(Trace, IdealCyclesOfDeadlockedProgramIsNegative)
{
    // P3 cannot complete even with unlimited queues.
    Cycle ideal =
        sim::idealCycles(algos::fig5P3(), algos::fig5Topology());
    EXPECT_EQ(ideal, -1);
}

} // namespace
} // namespace syscomm
