#pragma once

/**
 * @file
 * Shared test helpers. expectSameRunResult is THE field-by-field
 * RunResult comparator for every bit-identity suite (session reuse,
 * sweep==serial, kernel equivalence, the sampled oracle, arena
 * stress): one copy means a field added to RunResult gets compared
 * everywhere or nowhere — never silently skipped by one suite.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/session.h"

namespace syscomm {

/** Field-by-field equality of two results (bit-identical contract). */
inline void
expectSameRunResult(const sim::RunResult& a, const sim::RunResult& b,
                    const std::string& ctx)
{
    ASSERT_EQ(b.status, a.status)
        << ctx << " a=" << a.statusStr() << " b=" << b.statusStr();
    EXPECT_EQ(b.cycles, a.cycles) << ctx;
    EXPECT_EQ(b.error, a.error) << ctx;
    EXPECT_TRUE(b.stats == a.stats)
        << ctx << "\na:\n"
        << a.stats.summary() << "b:\n"
        << b.stats.summary();
    EXPECT_EQ(b.events, a.events) << ctx;
    EXPECT_EQ(b.releases, a.releases) << ctx;
    EXPECT_EQ(b.received, a.received) << ctx;
    EXPECT_EQ(b.msgTiming, a.msgTiming) << ctx;
    EXPECT_EQ(b.labelsUsed, a.labelsUsed) << ctx;
    EXPECT_EQ(b.deadlock.deadlocked, a.deadlock.deadlocked) << ctx;
    EXPECT_EQ(b.deadlock.render(), a.deadlock.render()) << ctx;
    EXPECT_EQ(b.audit.compatible, a.audit.compatible) << ctx;
    EXPECT_EQ(b.audit.violations.size(), a.audit.violations.size()) << ctx;
}

} // namespace syscomm
