/**
 * @file
 * serve/ protocol-layer tests: the JSON value type, the wire
 * vocabulary (verbs, submission states, parseSubmission validation),
 * the lifecycle control word, the compile cache (LRU + in-flight
 * dedup), and — against a live daemon on a Unix socket — the
 * robustness paths a hostile or broken client exercises: malformed,
 * truncated and oversized request lines, unknown verbs, raw-byte
 * abuse, and mid-write disconnects. A bad client must never take the
 * daemon down or wedge other clients.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.h"
#include "serve/client.h"
#include "serve/control.h"
#include "serve/daemon.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "text/parser.h"

namespace syscomm::serve {
namespace {

std::string
tempPath(const std::string& name)
{
    return testing::TempDir() + name;
}

// ---------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------

TEST(ServeJson, Int64RoundTripsExactly)
{
    // A double would already round 2^53+1; seeds and cycle counts
    // must survive the wire bit-exactly.
    const std::int64_t big = 9007199254740993LL;
    JsonValue v = JsonValue::object();
    v.set("seed", JsonValue::integer(big));
    v.set("neg", JsonValue::integer(-42));
    const std::string wire = writeJson(v);

    JsonValue back;
    std::string error;
    ASSERT_TRUE(parseJson(wire, back, error)) << error;
    EXPECT_TRUE(back.find("seed")->isIntegral());
    EXPECT_EQ(back.getInt("seed", 0), big);
    EXPECT_EQ(back.getInt("neg", 0), -42);
}

TEST(ServeJson, StringEscapesRoundTrip)
{
    const std::string nasty = "line\none\t\"quoted\" back\\slash\x01";
    JsonValue v = JsonValue::object();
    v.set("s", JsonValue::str(nasty));
    JsonValue back;
    std::string error;
    ASSERT_TRUE(parseJson(writeJson(v), back, error)) << error;
    EXPECT_EQ(back.getString("s"), nasty);
}

TEST(ServeJson, NestedStructuresRoundTrip)
{
    JsonValue inner = JsonValue::array();
    inner.push(JsonValue::integer(1));
    inner.push(JsonValue::boolean(true));
    inner.push(JsonValue());
    JsonValue v = JsonValue::object();
    v.set("list", std::move(inner));
    v.set("obj", JsonValue::object().set("x", JsonValue::number(1.5)));

    JsonValue back;
    std::string error;
    ASSERT_TRUE(parseJson(writeJson(v), back, error)) << error;
    ASSERT_TRUE(back.find("list")->isArray());
    EXPECT_EQ(back.find("list")->items().size(), 3u);
    EXPECT_TRUE(back.find("list")->items()[2].isNull());
    EXPECT_DOUBLE_EQ(back.find("obj")->getNumber("x", 0.0), 1.5);
}

TEST(ServeJson, ParseErrorsAreCleanNotFatal)
{
    JsonValue out;
    std::string error;
    // Truncated object, truncated string, bare garbage, trailing
    // garbage: each is an error string, never a crash or a partial
    // parse reported as success.
    EXPECT_FALSE(parseJson("{\"a\": 1", out, error));
    EXPECT_FALSE(parseJson("\"unterminated", out, error));
    EXPECT_FALSE(parseJson("nonsense", out, error));
    EXPECT_FALSE(parseJson("{} trailing", out, error));
    EXPECT_FALSE(parseJson("", out, error));
    EXPECT_NE(error.find("at byte"), std::string::npos) << error;
}

TEST(ServeJson, DepthLimitRejectsBombs)
{
    std::string deep;
    for (int i = 0; i < 64; ++i)
        deep += "[";
    JsonValue out;
    std::string error;
    EXPECT_FALSE(parseJson(deep, out, error));
    EXPECT_NE(error.find("deep"), std::string::npos) << error;

    // 31 levels is inside the default limit of 32.
    std::string ok;
    for (int i = 0; i < 31; ++i)
        ok += "[";
    for (int i = 0; i < 31; ++i)
        ok += "]";
    EXPECT_TRUE(parseJson(ok, out, error)) << error;
}

// ---------------------------------------------------------------------
// Vocabulary: verbs and the submission state machine
// ---------------------------------------------------------------------

TEST(ServeProtocol, VerbNamesRoundTrip)
{
    const Verb verbs[] = {Verb::kPing,   Verb::kSubmit, Verb::kStatus,
                          Verb::kResult, Verb::kCancel, Verb::kDrain,
                          Verb::kStats};
    for (Verb verb : verbs) {
        Verb back = Verb::kPing;
        ASSERT_TRUE(parseVerb(verbName(verb), back)) << verbName(verb);
        EXPECT_EQ(back, verb);
    }
    Verb out;
    EXPECT_FALSE(parseVerb("frobnicate", out));
    EXPECT_FALSE(parseVerb("", out));
}

TEST(ServeProtocol, SubmissionStateMachineIsComplete)
{
    for (int i = 0; i < kNumSubmissionStates; ++i) {
        const auto state = static_cast<SubmissionState>(i);
        SubmissionState back = SubmissionState::kError;
        ASSERT_TRUE(parseSubmissionState(submissionStateName(state),
                                         back))
            << submissionStateName(state);
        EXPECT_EQ(back, state);
        // Every state has a human description for the status verb.
        EXPECT_GT(std::string(submissionStateDescription(state)).size(),
                  10u);
    }
    // Exactly waiting/compiling/running are non-terminal.
    EXPECT_FALSE(submissionStateTerminal(SubmissionState::kWaiting));
    EXPECT_FALSE(submissionStateTerminal(SubmissionState::kCompiling));
    EXPECT_FALSE(submissionStateTerminal(SubmissionState::kRunning));
    EXPECT_TRUE(submissionStateTerminal(SubmissionState::kCompleted));
    EXPECT_TRUE(submissionStateTerminal(SubmissionState::kDeadlocked));
    EXPECT_TRUE(submissionStateTerminal(SubmissionState::kFaulted));
    EXPECT_TRUE(submissionStateTerminal(SubmissionState::kBudget));
    EXPECT_TRUE(submissionStateTerminal(SubmissionState::kRejected));
    EXPECT_TRUE(submissionStateTerminal(SubmissionState::kCancelled));
    EXPECT_TRUE(submissionStateTerminal(SubmissionState::kError));
}

TEST(ServeProtocol, RunStatusMapsOntoTerminalStates)
{
    EXPECT_EQ(submissionStateForRun(sim::RunStatus::kCompleted),
              SubmissionState::kCompleted);
    EXPECT_EQ(submissionStateForRun(sim::RunStatus::kDeadlocked),
              SubmissionState::kDeadlocked);
    EXPECT_EQ(submissionStateForRun(sim::RunStatus::kFaulted),
              SubmissionState::kFaulted);
    EXPECT_EQ(submissionStateForRun(sim::RunStatus::kMaxCycles),
              SubmissionState::kBudget);
    EXPECT_EQ(submissionStateForRun(sim::RunStatus::kConfigError),
              SubmissionState::kError);
}

// ---------------------------------------------------------------------
// parseSubmission validation
// ---------------------------------------------------------------------

const char kTinyProgram[] =
    "cells 2\n"
    "message a 0 -> 1\n"
    "cell 0 { W(a) W(a) }\n"
    "cell 1 { R(a) R(a) }\n";

JsonValue
runBody()
{
    JsonValue body = JsonValue::object();
    body.set("verb", JsonValue::str("submit"));
    body.set("kind", JsonValue::str("run"));
    body.set("program", JsonValue::str(kTinyProgram));
    body.set("topology",
             JsonValue::object()
                 .set("kind", JsonValue::str("linear"))
                 .set("cells", JsonValue::integer(2)));
    return body;
}

TEST(ServeProtocol, ParseSubmissionAcceptsMinimalRun)
{
    Submission sub;
    std::string error;
    ASSERT_TRUE(parseSubmission(runBody(), sub, error)) << error;
    EXPECT_FALSE(sub.isSweep);
    ASSERT_EQ(sub.shapes.size(), 1u);
    ASSERT_EQ(sub.requests.size(), 1u);
    EXPECT_EQ(sub.program.numCells(), 2);
    EXPECT_EQ(sub.topo.numCells(), 2);
}

TEST(ServeProtocol, ParseSubmissionRejectsBadPayloads)
{
    Submission sub;
    std::string error;

    JsonValue noProgram = runBody();
    noProgram.set("program", JsonValue());
    EXPECT_FALSE(parseSubmission(noProgram, sub, error));
    EXPECT_NE(error.find("program"), std::string::npos) << error;

    JsonValue badText = runBody();
    badText.set("program", JsonValue::str("cells two\n"));
    EXPECT_FALSE(parseSubmission(badText, sub, error));

    JsonValue badTopoKind = runBody();
    badTopoKind.set("topology",
                    JsonValue::object()
                        .set("kind", JsonValue::str("hypercube"))
                        .set("cells", JsonValue::integer(2)));
    EXPECT_FALSE(parseSubmission(badTopoKind, sub, error));
    EXPECT_NE(error.find("topology"), std::string::npos) << error;

    // Program says 2 cells, topology says 4: must not reach compile.
    JsonValue mismatch = runBody();
    mismatch.set("topology",
                 JsonValue::object()
                     .set("kind", JsonValue::str("linear"))
                     .set("cells", JsonValue::integer(4)));
    EXPECT_FALSE(parseSubmission(mismatch, sub, error));

    JsonValue badPolicy = runBody();
    JsonValue requests = JsonValue::array();
    requests.push(JsonValue::object().set(
        "policy", JsonValue::str("clairvoyant")));
    badPolicy.set("requests", std::move(requests));
    EXPECT_FALSE(parseSubmission(badPolicy, sub, error));
    EXPECT_NE(error.find("policy"), std::string::npos) << error;

    JsonValue negBudget = runBody();
    negBudget.set("cycle_budget", JsonValue::integer(-5));
    EXPECT_FALSE(parseSubmission(negBudget, sub, error));

    JsonValue sweepNoShapes = runBody();
    sweepNoShapes.set("kind", JsonValue::str("sweep"));
    sweepNoShapes.set("shapes", JsonValue::array());
    EXPECT_FALSE(parseSubmission(sweepNoShapes, sub, error));
}

// ---------------------------------------------------------------------
// Control word
// ---------------------------------------------------------------------

TEST(ServeControl, AdvanceIsCompareAndSwap)
{
    ServiceControl control;
    EXPECT_EQ(control.get(), ServiceWant::kWait);
    control.set(ServiceWant::kServe);
    EXPECT_STREQ(control.status(), "serving");

    // advance() only fires from the expected state: a late SIGTERM
    // (serve -> drain) must not resurrect an already-stopped daemon.
    EXPECT_TRUE(control.advance(ServiceWant::kServe,
                                ServiceWant::kDrain));
    EXPECT_STREQ(control.status(), "draining");
    EXPECT_FALSE(control.advance(ServiceWant::kServe,
                                 ServiceWant::kStop));
    EXPECT_EQ(control.get(), ServiceWant::kDrain);
    control.set(ServiceWant::kStop);
    EXPECT_FALSE(control.advance(ServiceWant::kDrain,
                                 ServiceWant::kServe));
    EXPECT_STREQ(control.status(), "stopped");
}

// ---------------------------------------------------------------------
// Compile cache
// ---------------------------------------------------------------------

Program
tinyProgram()
{
    text::ParseResult parsed = text::parseProgram(kTinyProgram);
    EXPECT_TRUE(parsed.ok) << parsed.error;
    return parsed.program;
}

TEST(ServeCache, KeysSeparateProgramTopologyAndVersion)
{
    const Program p = tinyProgram();
    const Topology line = Topology::linearArray(2);
    const Topology ring = Topology::ring(3);
    const std::uint64_t base = CompileCache::keyFor(p, line, "");
    EXPECT_EQ(CompileCache::keyFor(p, line, ""), base);
    EXPECT_NE(CompileCache::keyFor(p, ring, ""), base);
    EXPECT_NE(CompileCache::keyFor(p, line, "v2"), base);

    Program longer = p;
    longer.write(0, 0);
    longer.read(1, 0);
    EXPECT_NE(CompileCache::keyFor(longer, line, ""), base);
}

TEST(ServeCache, HitsMissesAndLruEviction)
{
    CompileCache cache(2);
    const Topology topo = Topology::linearArray(2);
    const std::uint64_t k1 = CompileCache::keyFor(tinyProgram(), topo, "a");
    const std::uint64_t k2 = CompileCache::keyFor(tinyProgram(), topo, "b");
    const std::uint64_t k3 = CompileCache::keyFor(tinyProgram(), topo, "c");

    bool hit = true;
    CachedProgram e1 =
        cache.get(k1, tinyProgram(), SharedTopology(Topology(topo)), &hit);
    ASSERT_TRUE(e1.valid());
    EXPECT_TRUE(e1.compiled->valid());
    EXPECT_FALSE(hit);
    cache.get(k1, tinyProgram(), SharedTopology(Topology(topo)), &hit);
    EXPECT_TRUE(hit);

    cache.get(k2, tinyProgram(), SharedTopology(Topology(topo)), &hit);
    EXPECT_FALSE(hit);
    // k1 was most-recently used just above, so inserting k3 into the
    // 2-entry cache must evict k2, not k1.
    cache.get(k1, tinyProgram(), SharedTopology(Topology(topo)), &hit);
    EXPECT_TRUE(hit);
    cache.get(k3, tinyProgram(), SharedTopology(Topology(topo)), &hit);
    EXPECT_FALSE(hit);
    EXPECT_TRUE(cache.peek(k1).valid());
    EXPECT_FALSE(cache.peek(k2).valid());
    EXPECT_TRUE(cache.peek(k3).valid());

    const CompileCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.capacity, 2u);
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.misses, 3u);
    EXPECT_EQ(stats.evictions, 1u);

    // The evicted entry's CompiledProgram stays alive while someone
    // holds it (shared ownership — that is the whole point).
    EXPECT_TRUE(e1.compiled->valid());
}

TEST(ServeCache, ConcurrentSameKeyBuildsExactlyOnce)
{
    CompileCache cache(8);
    const Topology topo = Topology::ring(4);
    text::ParseResult parsed = text::parseProgram(
        "cells 4\n"
        "message m0 0 -> 1\nmessage m1 1 -> 2\n"
        "message m2 2 -> 3\nmessage m3 3 -> 0\n"
        "cell 0 { W(m0) R(m3) }\ncell 1 { W(m1) R(m0) }\n"
        "cell 2 { W(m2) R(m1) }\ncell 3 { W(m3) R(m2) }\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const std::uint64_t key =
        CompileCache::keyFor(parsed.program, topo, "");

    const std::int64_t before = sim::CompiledProgram::buildCount();
    constexpr int kThreads = 8;
    std::atomic<int> hits{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i] {
            bool wasHit = false;
            Program copy = parsed.program;
            CachedProgram entry =
                cache.get(key, std::move(copy),
                          SharedTopology(Topology(topo)), &wasHit);
            ASSERT_TRUE(entry.valid()) << "thread " << i;
            EXPECT_TRUE(entry.compiled->valid());
            if (wasHit)
                hits.fetch_add(1);
        });
    }
    for (std::thread& t : threads)
        t.join();

    // The acceptance criterion: N concurrent identical submissions,
    // exactly one program-side analysis pass.
    EXPECT_EQ(sim::CompiledProgram::buildCount() - before, 1);
    EXPECT_EQ(hits.load(), kThreads - 1);
    const CompileCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, std::uint64_t(kThreads - 1));
}

TEST(ServeCache, InvalidProgramsAreCachedToo)
{
    CompileCache cache(4);
    const Topology topo = Topology::linearArray(2);
    // Unrouteable message (self-loop) fails validation
    // deterministically; re-compiling per client would buy nothing.
    text::ParseResult parsed = text::parseProgram(
        "cells 2\nmessage a 0 -> 0\ncell 0 { W(a) R(a) }\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const std::uint64_t key =
        CompileCache::keyFor(parsed.program, topo, "");

    bool hit = true;
    Program copy = parsed.program;
    CachedProgram entry = cache.get(
        key, std::move(copy), SharedTopology(Topology(topo)), &hit);
    ASSERT_TRUE(entry.valid());
    EXPECT_FALSE(entry.compiled->valid());
    EXPECT_FALSE(hit);
    Program copy2 = parsed.program;
    entry = cache.get(key, std::move(copy2),
                      SharedTopology(Topology(topo)), &hit);
    EXPECT_TRUE(hit);
    EXPECT_FALSE(entry.compiled->valid());
}

// ---------------------------------------------------------------------
// Live-daemon robustness: a bad client never takes the daemon down
// ---------------------------------------------------------------------

class ServeRobustness : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        DaemonOptions options;
        options.socketPath =
            tempPath("serve_robust_" +
                     std::to_string(::getpid()) + ".sock");
        options.workers = 1;
        options.maxLineBytes = 4096; // small so the tests can hit it
        daemon_ = std::make_unique<SyscommDaemon>(options);
        socketPath_ = options.socketPath;
        std::string error;
        ASSERT_TRUE(daemon_->start(error)) << error;
    }

    void TearDown() override { daemon_->stop(); }

    void connect(ServeClient& client)
    {
        std::string error;
        ASSERT_TRUE(client.connectUnix(socketPath_, error)) << error;
    }

    /** The daemon still answers a well-formed ping on a fresh
     *  connection — the health probe after every abuse. */
    void expectStillServing()
    {
        ServeClient probe;
        connect(probe);
        JsonValue response;
        std::string error;
        ASSERT_TRUE(probe.ping(response, error)) << error;
        EXPECT_TRUE(response.getBool("ok", false));
    }

    std::string socketPath_;
    std::unique_ptr<SyscommDaemon> daemon_;
};

TEST_F(ServeRobustness, MalformedLinesGetErrorsNotDisconnects)
{
    ServeClient client;
    connect(client);
    std::string response;
    std::string error;

    // Raw garbage, truncated JSON, a non-object document and an
    // unknown verb: each answers one error line on the SAME
    // connection — the session survives all four.
    const char* bad[] = {
        "this is not json",
        "{\"verb\": \"submit\", \"kind\":",
        "[1, 2, 3]",
        "{\"verb\": \"frobnicate\"}",
        "{\"nothing\": true}",
    };
    for (const char* line : bad) {
        ASSERT_TRUE(client.roundTrip(line, response, error))
            << line << ": " << error;
        JsonValue parsed;
        ASSERT_TRUE(parseJson(response, parsed, error)) << response;
        EXPECT_FALSE(parsed.getBool("ok", true)) << line;
        EXPECT_FALSE(parsed.getString("error").empty()) << line;
    }
    // And the connection still works for real traffic.
    ASSERT_TRUE(client.roundTrip("{\"verb\":\"ping\"}", response,
                                 error))
        << error;
    JsonValue parsed;
    ASSERT_TRUE(parseJson(response, parsed, error));
    EXPECT_TRUE(parsed.getBool("ok", false));
}

TEST_F(ServeRobustness, TagIsEchoedEvenOnErrors)
{
    ServeClient client;
    connect(client);
    JsonValue request = JsonValue::object();
    request.set("verb", JsonValue::str("status"));
    request.set("id", JsonValue::str("s-999999"));
    request.set("tag", JsonValue::integer(77));
    JsonValue response;
    std::string error;
    ASSERT_TRUE(client.request(request, response, error)) << error;
    EXPECT_FALSE(response.getBool("ok", true));
    EXPECT_EQ(response.getInt("tag", 0), 77);
}

TEST_F(ServeRobustness, OversizedLineAnswersOnceAndCloses)
{
    ServeClient client;
    connect(client);
    // One line beyond maxLineBytes (4096 here), sent in raw chunks
    // with no newline until the end.
    std::string huge(8192, 'x');
    huge = "{\"verb\":\"ping\",\"pad\":\"" + huge + "\"}\n";
    ASSERT_TRUE(client.sendBytes(huge));

    std::string response;
    std::string error;
    // The daemon answers a single "too long" error...
    ASSERT_TRUE(client.roundTrip("", response, error)) << error;
    JsonValue parsed;
    ASSERT_TRUE(parseJson(response, parsed, error)) << response;
    EXPECT_FALSE(parsed.getBool("ok", true));
    EXPECT_NE(parsed.getString("error").find("too long"),
              std::string::npos);
    // ...then hangs up: the next round trip fails.
    EXPECT_FALSE(client.roundTrip("{\"verb\":\"ping\"}", response,
                                  error));
    expectStillServing();
}

TEST_F(ServeRobustness, MidWriteDisconnectIsHarmless)
{
    {
        ServeClient client;
    connect(client);
        // Half a request line, no newline, then slam the connection.
        ASSERT_TRUE(client.sendBytes("{\"verb\":\"submit\", \"kind"));
        client.close();
    }
    {
        // Disconnect with a complete but unanswered pipeline too.
        ServeClient client;
    connect(client);
        ASSERT_TRUE(client.sendBytes(
            "{\"verb\":\"ping\"}\n{\"verb\":\"stats\"}\n"));
        client.close();
    }
    expectStillServing();
}

TEST_F(ServeRobustness, CrlfAndBlankLinesAreTolerated)
{
    ServeClient client;
    connect(client);
    ASSERT_TRUE(client.sendBytes("\n\r\n{\"verb\":\"ping\"}\r\n"));
    std::string response;
    std::string error;
    ASSERT_TRUE(client.roundTrip("", response, error)) << error;
    JsonValue parsed;
    ASSERT_TRUE(parseJson(response, parsed, error)) << response;
    EXPECT_TRUE(parsed.getBool("ok", false));
}

TEST_F(ServeRobustness, ManyAbusiveClientsConcurrently)
{
    // Hammer the daemon from several threads mixing valid pings with
    // garbage; TSan runs this suite too. Every thread must see the
    // daemon answer its valid traffic.
    constexpr int kClients = 6;
    std::atomic<int> served{0};
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            ServeClient client;
            std::string error;
            ASSERT_TRUE(client.connectUnix(socketPath_, error))
                << error;
            std::string response;
            for (int round = 0; round < 20; ++round) {
                if ((round + i) % 3 == 0)
                    client.roundTrip("garbage #" + std::to_string(i),
                                     response, error);
                ASSERT_TRUE(client.roundTrip("{\"verb\":\"ping\"}",
                                             response, error))
                    << error;
            }
            served.fetch_add(1);
        });
    }
    for (std::thread& t : threads)
        t.join();
    EXPECT_EQ(served.load(), kClients);
    expectStillServing();
}

} // namespace
} // namespace syscomm::serve
