/**
 * @file
 * Crash-point fuzz harness for the daemon's durability chain.
 *
 * One trial = one life-and-death cycle of the service:
 *
 *   1. A daemon on a fresh spool runs a fixed client scenario (one
 *      run + one journaled sweep, both with idempotency keys) through
 *      a FaultyIo whose schedule kills/faults mutating file op #k —
 *      torn-write-then-dead (kCrash), one-shot EIO, or a seeded torn
 *      short write.
 *   2. A recovery daemon opens the SAME spool with the real Io. It
 *      must start, sweep orphan temp files, and — when the client
 *      blindly resubmits both requests — drive every submission to
 *      "completed" with machine digests bit-identical to a golden
 *      uninterrupted run. A submission the faulted daemon rejected
 *      must have left no spool residue; one it admitted must resume
 *      (dedup onto the spooled id). Silent corruption is the only
 *      losing outcome, and it has nowhere to hide: a torn journal
 *      frame, checkpoint, spool entry, or done marker that survived
 *      parsing would change a digest or wedge recovery.
 *
 * A profiling pass with a pass-through FaultyIo learns the chain
 * length T (the scenario is single-worker and serialized, so the op
 * sequence is deterministic), then the matrix covers every k in 1..T
 * for each fault kind, with enough seed rounds to exceed 200 trials.
 * That span includes the spool tmp write/fsync/rename, the journal
 * header, every journal row/checkpoint frame, and the done-marker
 * chain for both submissions.
 *
 * On failure the trial's spool directory is preserved (under
 * $CRASH_FUZZ_DIR when set — CI uploads it as an artifact) and its
 * path printed.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/io.h"
#include "serve/json.h"

namespace syscomm::serve {
namespace {

namespace fs = std::filesystem;

std::string
ringText(int cells, int words)
{
    std::ostringstream out;
    out << "cells " << cells << "\n";
    for (int c = 0; c < cells; ++c)
        out << "message m" << c << " " << c << " -> "
            << (c + 1) % cells << "\n";
    for (int c = 0; c < cells; ++c) {
        out << "cell " << c << " {";
        for (int w = 0; w < words; ++w)
            out << " W(m" << c << ") R(m" << (c + cells - 1) % cells
                << ")";
        out << " }\n";
    }
    return out.str();
}

JsonValue
shapeJson(const std::string& name, int queues, int capacity)
{
    return JsonValue::object()
        .set("name", JsonValue::str(name))
        .set("queues", JsonValue::integer(queues))
        .set("capacity", JsonValue::integer(capacity))
        .set("extension", JsonValue::integer(0))
        .set("penalty", JsonValue::integer(4));
}

JsonValue
ringTopology(int cells)
{
    return JsonValue::object()
        .set("kind", JsonValue::str("ring"))
        .set("cells", JsonValue::integer(cells));
}

/** The fixed scenario: one run + one 8-shape journaled sweep. */
JsonValue
scenarioRunBody()
{
    JsonValue body = JsonValue::object();
    body.set("kind", JsonValue::str("run"));
    body.set("program", JsonValue::str(ringText(4, 50)));
    body.set("topology", ringTopology(4));
    body.set("shape", shapeJson("q2c2", 2, 2));
    body.set("idempotency_key", JsonValue::str("fuzz-run"));
    return body;
}

JsonValue
scenarioSweepBody()
{
    JsonValue body = JsonValue::object();
    body.set("kind", JsonValue::str("sweep"));
    body.set("program", JsonValue::str(ringText(4, 60)));
    body.set("topology", ringTopology(4));
    JsonValue shapes = JsonValue::array();
    for (int k = 0; k < 8; ++k)
        shapes.push(shapeJson("s" + std::to_string(k), 1 + k % 3,
                              1 + (k / 3) % 3));
    body.set("shapes", std::move(shapes));
    JsonValue requests = JsonValue::array();
    requests.push(JsonValue::object()
                      .set("policy", JsonValue::str("compatible"))
                      .set("seed", JsonValue::integer(1)));
    body.set("requests", std::move(requests));
    body.set("checkpoint_every", JsonValue::integer(40));
    body.set("idempotency_key", JsonValue::str("fuzz-sweep"));
    return body;
}

struct Golden
{
    std::string runDigest;
    std::vector<std::string> sweepRows;
};

std::vector<std::string>
sweepDigests(const JsonValue& result)
{
    std::vector<std::string> digests;
    const JsonValue* rows = result.find("rows");
    if (rows == nullptr)
        return digests;
    for (const JsonValue& row : rows->items())
        digests.push_back(row.getString("name") + ":" +
                          row.getString("machine_digest"));
    return digests;
}

/**
 * Phase 1: run the scenario against a daemon whose disk is @p io.
 * Rejections and in-memory failures are expected under fault; the
 * phase only fails on things that must hold even then (daemon start,
 * socket transport). When @p golden is non-null the faults are off
 * and both submissions must complete — their digests are recorded.
 */
bool
driveFaultedLife(Io& io, const std::string& socketPath,
                 const std::string& spoolDir, Golden* golden,
                 std::string& detail)
{
    DaemonOptions options;
    options.socketPath = socketPath;
    options.spoolDir = spoolDir;
    options.workers = 1;
    options.io = &io;
    options.fsyncPolicy = FsyncPolicy::kAlways;
    SyscommDaemon daemon(options);
    std::string error;
    if (!daemon.start(error)) {
        detail = "phase1 start: " + error;
        return false;
    }
    ServeClient client;
    if (!client.connectUnix(socketPath, error)) {
        detail = "phase1 connect: " + error;
        return false;
    }
    for (const bool isSweep : {false, true}) {
        const JsonValue body =
            isSweep ? scenarioSweepBody() : scenarioRunBody();
        std::string id;
        JsonValue response;
        if (!client.submit(body, id, response, error)) {
            detail = "phase1 submit transport: " + error;
            return false;
        }
        if (!response.getBool("ok", false)) {
            if (golden != nullptr) {
                detail = "golden submit rejected: " +
                         writeJson(response);
                return false;
            }
            continue; // explicit rejection is a legal fault outcome
        }
        if (!client.waitTerminal(id, 60'000, response, error)) {
            detail = "phase1 wait transport: " + error;
            return false;
        }
        if (golden == nullptr)
            continue;
        if (response.getString("state") != "completed") {
            detail = "golden state: " + writeJson(response);
            return false;
        }
        JsonValue resultResponse;
        if (!client.result(id, resultResponse, error)) {
            detail = "golden result: " + error;
            return false;
        }
        const JsonValue* result = resultResponse.find("result");
        if (result == nullptr) {
            detail = "golden result missing";
            return false;
        }
        if (isSweep)
            golden->sweepRows = sweepDigests(*result);
        else
            golden->runDigest = result->getString("machine_digest");
    }
    daemon.stop();
    return true;
}

/**
 * Phase 2: recovery daemon on the surviving spool with the real Io.
 * The client blindly resubmits both requests; each must complete
 * with golden digests — resumed or re-executed, never corrupted.
 */
bool
recoverAndVerify(const std::string& socketPath,
                 const std::string& spoolDir, const Golden& golden,
                 std::string& detail)
{
    DaemonOptions options;
    options.socketPath = socketPath;
    options.spoolDir = spoolDir;
    options.workers = 1;
    SyscommDaemon daemon(options);
    std::string error;
    if (!daemon.start(error)) {
        detail = "recovery start: " + error;
        return false;
    }
    // Startup must have swept every torn temp file.
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(spoolDir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() >= 4 &&
            name.compare(name.size() - 4, 4, ".tmp") == 0) {
            detail = "orphan temp survived recovery: " + name;
            return false;
        }
    }
    ServeClient client;
    if (!client.connectUnix(socketPath, error)) {
        detail = "recovery connect: " + error;
        return false;
    }
    for (const bool isSweep : {false, true}) {
        const JsonValue body =
            isSweep ? scenarioSweepBody() : scenarioRunBody();
        std::string id;
        JsonValue response;
        if (!client.submit(body, id, response, error)) {
            detail = "recovery submit transport: " + error;
            return false;
        }
        if (!response.getBool("ok", false)) {
            detail = "recovery submit rejected: " +
                     writeJson(response);
            return false;
        }
        if (!client.waitTerminal(id, 60'000, response, error)) {
            detail = "recovery wait: " + error;
            return false;
        }
        if (response.getString("state") != "completed") {
            detail = "recovery state: " + writeJson(response);
            return false;
        }
        JsonValue resultResponse;
        if (!client.result(id, resultResponse, error)) {
            detail = "recovery result: " + error;
            return false;
        }
        const JsonValue* result = resultResponse.find("result");
        if (result == nullptr) {
            detail = "recovery result missing";
            return false;
        }
        if (isSweep) {
            if (sweepDigests(*result) != golden.sweepRows) {
                detail = "sweep digests diverged: " +
                         writeJson(*result);
                return false;
            }
        } else if (result->getString("machine_digest") !=
                   golden.runDigest) {
            detail = "run digest diverged: " + writeJson(*result);
            return false;
        }
    }
    daemon.stop();
    return true;
}

const char*
faultKindName(IoFaultKind kind)
{
    switch (kind) {
        case IoFaultKind::kCrash: return "crash";
        case IoFaultKind::kEio: return "eio";
        case IoFaultKind::kShortWrite: return "short_write";
        case IoFaultKind::kEnospc: return "enospc";
        case IoFaultKind::kNone: break;
    }
    return "none";
}

TEST(CrashFuzz, EveryFaultPointRecoversBitIdenticalOrRejectsCleanly)
{
    const char* envRoot = std::getenv("CRASH_FUZZ_DIR");
    const std::string root =
        envRoot != nullptr && envRoot[0] != '\0'
            ? std::string(envRoot)
            : testing::TempDir() + "crash_fuzz_" +
                  std::to_string(::getpid());
    fs::remove_all(root);
    fs::create_directories(root);

    // Profiling pass: pass-through fault io learns the chain length T
    // and doubles as the golden uninterrupted reference.
    Golden golden;
    std::string detail;
    FaultyIo profiler(IoFaultKind::kNone, 0, 1);
    ASSERT_TRUE(driveFaultedLife(profiler, root + "/golden.sock",
                                 root + "/golden", &golden, detail))
        << detail;
    const std::uint64_t chainOps = profiler.opCount();
    ASSERT_FALSE(golden.runDigest.empty());
    ASSERT_EQ(golden.sweepRows.size(), 8u);
    // The chain must span spool write + journal header + row and
    // checkpoint frames + done markers; a short chain means the
    // scenario shrank and the matrix no longer covers the paper
    // trail.
    ASSERT_GE(chainOps, 30u) << "durability chain unexpectedly short";

    const IoFaultKind kinds[] = {IoFaultKind::kCrash,
                                 IoFaultKind::kEio,
                                 IoFaultKind::kShortWrite};
    // Enough seed rounds that kinds x rounds x chainOps >= 200.
    const std::uint64_t rounds =
        (200 + 3 * chainOps - 1) / (3 * chainOps);
    std::uint64_t trials = 0;
    std::uint64_t failures = 0;
    for (const IoFaultKind kind : kinds) {
        for (std::uint64_t round = 0; round < rounds; ++round) {
            const std::uint64_t seed =
                0x9e3779b97f4a7c15ull * (round + 1) +
                static_cast<std::uint64_t>(kind);
            for (std::uint64_t atOp = 1; atOp <= chainOps; ++atOp) {
                const std::string tag =
                    std::string(faultKindName(kind)) + "_r" +
                    std::to_string(round) + "_op" +
                    std::to_string(atOp);
                const std::string spool = root + "/" + tag;
                ++trials;
                FaultyIo io(kind, atOp, seed);
                bool ok = driveFaultedLife(io, spool + ".s1", spool,
                                           nullptr, detail);
                if (ok)
                    ok = recoverAndVerify(spool + ".s2", spool,
                                          golden, detail);
                if (ok) {
                    fs::remove_all(spool);
                    continue;
                }
                ++failures;
                ADD_FAILURE()
                    << "trial " << tag << " seed " << seed << ": "
                    << detail << "\n  spool preserved at " << spool;
                if (failures >= 10) {
                    GTEST_FAIL() << "stopping after " << failures
                                 << " failing trials ("
                                 << trials << " attempted)";
                    return;
                }
            }
        }
    }
    EXPECT_GE(trials, 200u)
        << "fault matrix shrank below the acceptance floor";
    std::printf("crash fuzz: %llu trials over %llu-op chain, "
                "%llu failures\n",
                static_cast<unsigned long long>(trials),
                static_cast<unsigned long long>(chainOps),
                static_cast<unsigned long long>(failures));
    if (failures == 0)
        fs::remove_all(root);
}

} // namespace
} // namespace syscomm::serve
