/**
 * @file
 * Convolution, matrix-vector, sorting, and stream generators: each
 * workload validates, passes the deadlock analyses, and computes the
 * right values on the simulator.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "algos/convolution.h"
#include "algos/matvec.h"
#include "algos/sort.h"
#include "algos/streams.h"
#include "core/compile.h"
#include "core/crossoff.h"
#include "sim/machine.h"

namespace syscomm {
namespace {

using sim::RunStatus;

MachineSpec
machineFor(Topology topo, int queues = 2)
{
    MachineSpec s;
    s.topo = std::move(topo);
    s.queuesPerLink = queues;
    return s;
}

// ---------------------------------------------------------------------
// Convolution
// ---------------------------------------------------------------------

class ConvSweep : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(ConvSweep, MatchesReference)
{
    auto [kernel, outputs] = GetParam();
    algos::ConvSpec spec =
        algos::ConvSpec::random(kernel, outputs, kernel * 71 + outputs);
    Program p = algos::makeConvolutionProgram(spec);
    ASSERT_TRUE(p.valid());
    EXPECT_TRUE(isDeadlockFree(p));

    MachineSpec machine = machineFor(algos::convTopology(spec));
    CompilePlan plan = compileProgram(p, machine);
    ASSERT_TRUE(plan.ok) << plan.error;

    sim::RunResult r = sim::simulateProgram(p, machine);
    ASSERT_EQ(r.status, RunStatus::kCompleted) << r.statusStr();
    std::vector<double> expected = algos::convReference(spec);
    for (int i = 1; i <= outputs; ++i) {
        auto id = *p.messageByName("R" + std::to_string(i));
        ASSERT_EQ(r.received[id].size(), 1u);
        EXPECT_NEAR(r.received[id][0], expected[i - 1], 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    KernelByOutputs, ConvSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values(1, 2, 4, 6)),
    [](const auto& info) {
        return "k" + std::to_string(std::get<0>(info.param)) + "_n" +
               std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Matrix-vector
// ---------------------------------------------------------------------

class MatVecSweep : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(MatVecSweep, MatchesReference)
{
    auto [rows, cols] = GetParam();
    algos::MatVecSpec spec =
        algos::MatVecSpec::random(rows, cols, rows * 13 + cols);
    Program p = algos::makeMatVecProgram(spec);
    ASSERT_TRUE(p.valid());
    EXPECT_TRUE(isDeadlockFree(p));

    MachineSpec machine = machineFor(algos::matvecTopology(spec));
    sim::RunResult r = sim::simulateProgram(p, machine);
    ASSERT_EQ(r.status, RunStatus::kCompleted) << r.statusStr();

    std::vector<double> expected = algos::matvecReference(spec);
    auto pn = *p.messageByName("P" + std::to_string(cols));
    ASSERT_EQ(r.received[pn].size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_NEAR(r.received[pn][i], expected[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RowsByCols, MatVecSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 5),
                       ::testing::Values(1, 2, 3, 6)),
    [](const auto& info) {
        return "m" + std::to_string(std::get<0>(info.param)) + "_n" +
               std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Odd-even transposition sort
// ---------------------------------------------------------------------

class SortSweep : public ::testing::TestWithParam<int>
{};

TEST_P(SortSweep, SortsRandomInputs)
{
    int n = GetParam();
    algos::SortSpec spec = algos::SortSpec::random(n, n * 7 + 1);
    Program p = algos::makeSortProgram(spec);
    ASSERT_TRUE(p.valid());
    EXPECT_TRUE(isDeadlockFree(p));

    MachineSpec machine = machineFor(algos::sortTopology(spec));
    sim::RunResult r = sim::simulateProgram(p, machine);
    ASSERT_EQ(r.status, RunStatus::kCompleted) << r.statusStr();

    std::vector<double> got = algos::extractSorted(p, r.received, n);
    std::vector<double> expected = spec.values;
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_DOUBLE_EQ(got[i], expected[i]) << "slot " << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortSweep,
                         ::testing::Values(2, 3, 4, 5, 8, 12));

TEST(Sort, AlreadySortedAndReversed)
{
    for (bool reversed : {false, true}) {
        algos::SortSpec spec;
        for (int i = 0; i < 6; ++i)
            spec.values.push_back(reversed ? 6.0 - i : 1.0 + i);
        Program p = algos::makeSortProgram(spec);
        sim::RunResult r = sim::simulateProgram(
            p, machineFor(algos::sortTopology(spec)));
        ASSERT_EQ(r.status, RunStatus::kCompleted);
        std::vector<double> got = algos::extractSorted(p, r.received, 6);
        for (int i = 0; i < 6; ++i)
            EXPECT_DOUBLE_EQ(got[i], 1.0 + i);
    }
}

// ---------------------------------------------------------------------
// Stream generators
// ---------------------------------------------------------------------

TEST(Streams, AllPatternsAreDeadlockFree)
{
    for (auto pattern :
         {algos::StreamPattern::kSequential,
          algos::StreamPattern::kInterleaved,
          algos::StreamPattern::kFanIn, algos::StreamPattern::kFanOut}) {
        algos::StreamSpec spec;
        spec.numCells = 5;
        spec.numStreams = 3;
        spec.wordsPerStream = 4;
        spec.pattern = pattern;
        Program p = algos::makeStreamsProgram(spec);
        EXPECT_TRUE(p.valid()) << algos::streamPatternName(pattern);
        EXPECT_TRUE(isDeadlockFree(p))
            << algos::streamPatternName(pattern);
    }
}

TEST(Streams, InterleavedNeedsAQueuePerStream)
{
    algos::StreamSpec spec;
    spec.numCells = 3;
    spec.numStreams = 3;
    spec.wordsPerStream = 3;
    spec.pattern = algos::StreamPattern::kInterleaved;
    Program p = algos::makeStreamsProgram(spec);

    // With numStreams queues: completes.
    sim::RunResult ok = sim::simulateProgram(
        p, machineFor(algos::streamsTopology(spec), 3));
    EXPECT_EQ(ok.status, RunStatus::kCompleted);
    // With fewer, the same-label group cannot be placed.
    sim::RunResult bad = sim::simulateProgram(
        p, machineFor(algos::streamsTopology(spec), 2));
    EXPECT_EQ(bad.status, RunStatus::kDeadlocked);
}

TEST(Streams, SequentialRunsWithOneQueue)
{
    algos::StreamSpec spec;
    spec.numCells = 4;
    spec.numStreams = 4;
    spec.wordsPerStream = 3;
    spec.pattern = algos::StreamPattern::kSequential;
    Program p = algos::makeStreamsProgram(spec);
    sim::RunResult r = sim::simulateProgram(
        p, machineFor(algos::streamsTopology(spec), 1));
    EXPECT_EQ(r.status, RunStatus::kCompleted) << r.statusStr();
}

TEST(Streams, FanPatternsCompleteWithEnoughQueues)
{
    for (auto pattern :
         {algos::StreamPattern::kFanIn, algos::StreamPattern::kFanOut}) {
        algos::StreamSpec spec;
        spec.numCells = 4;
        spec.numStreams = 3;
        spec.wordsPerStream = 3;
        spec.pattern = pattern;
        Program p = algos::makeStreamsProgram(spec);
        sim::RunResult r = sim::simulateProgram(
            p, machineFor(algos::streamsTopology(spec), 3));
        EXPECT_EQ(r.status, RunStatus::kCompleted)
            << algos::streamPatternName(pattern) << ": " << r.statusStr();
    }
}

} // namespace
} // namespace syscomm
