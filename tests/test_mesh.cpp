/**
 * @file
 * 2-D mesh support: the paper's machinery applied to a higher
 * dimensionality (mesh matmul with XY routing).
 */

#include <gtest/gtest.h>

#include "algos/mesh_matmul.h"
#include "core/compile.h"
#include "core/crossoff.h"
#include "core/label_verify.h"
#include "core/program_gen.h"
#include "sim/machine.h"

namespace syscomm {
namespace {

using sim::RunStatus;

class MatMulSweep : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(MatMulSweep, MatchesReference)
{
    auto [n, k] = GetParam();
    algos::MatMulSpec spec = algos::MatMulSpec::random(n, k, n * 37 + k);
    Program p = algos::makeMatMulProgram(spec);
    ASSERT_TRUE(p.valid());
    EXPECT_TRUE(isDeadlockFree(p));

    MachineSpec machine;
    machine.topo = algos::matmulTopology(spec);
    machine.queuesPerLink = 4;
    CompilePlan plan = compileProgram(p, machine);
    ASSERT_TRUE(plan.ok) << plan.error;

    sim::SimOptions options;
    options.labels = plan.normalizedLabels;
    sim::RunResult r = sim::simulateProgram(p, machine, options);
    ASSERT_EQ(r.status, RunStatus::kCompleted) << r.statusStr();

    std::vector<double> got =
        algos::extractMatMulResult(p, r.received, spec);
    std::vector<double> expected = algos::matmulReference(spec);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_NEAR(got[i], expected[i], 1e-9) << "entry " << i;
}

INSTANTIATE_TEST_SUITE_P(
    NByK, MatMulSweep,
    ::testing::Combine(::testing::Values(2, 3, 4),
                       ::testing::Values(1, 2, 5)),
    [](const auto& info) {
        return "n" + std::to_string(std::get<0>(info.param)) + "_k" +
               std::to_string(std::get<1>(info.param));
    });

TEST(Mesh, MatMulLabelingIsConsistent)
{
    algos::MatMulSpec spec = algos::MatMulSpec::random(3, 2, 5);
    Program p = algos::makeMatMulProgram(spec);
    Labeling labeling = labelMessages(p);
    ASSERT_TRUE(labeling.success) << labeling.error;
    EXPECT_TRUE(isConsistentLabeling(p, labeling.labels));
}

TEST(Mesh, StreamsShareOneLabelClass)
{
    // Interleaved A/B handling inside each cell makes the whole
    // A/B-stream family one related class.
    algos::MatMulSpec spec = algos::MatMulSpec::random(2, 3, 9);
    Program p = algos::makeMatMulProgram(spec);
    auto a01 = p.messageByName("A0_1");
    auto b10 = p.messageByName("B1_0");
    ASSERT_TRUE(a01 && b10);
    Labeling labeling = labelMessages(p);
    ASSERT_TRUE(labeling.success);
    EXPECT_EQ(labeling.labels[*a01], labeling.labels[*b10]);
}

TEST(Mesh, RandomProgramsOnMeshComplete)
{
    // End-to-end Theorem 1 exercise on a mesh topology.
    Topology topo = Topology::mesh(3, 3);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        GenOptions gen;
        gen.numMessages = 8;
        gen.maxWords = 4;
        gen.seed = seed + 100;
        Program p = randomDeadlockFreeProgram(topo, gen);

        MachineSpec machine;
        machine.topo = topo;
        machine.queuesPerLink = gen.numMessages; // generous
        sim::RunResult r = sim::simulateProgram(p, machine);
        EXPECT_EQ(r.status, RunStatus::kCompleted)
            << "seed " << seed << ": " << r.statusStr();
    }
}

} // namespace
} // namespace syscomm
