/**
 * @file
 * Competing-message analysis and queue feasibility (sections 2.3, 7).
 */

#include <gtest/gtest.h>

#include "algos/paper_figures.h"
#include "core/competing.h"
#include "core/labeling.h"

namespace syscomm {
namespace {

MachineSpec
specFor(Topology topo, int queues)
{
    MachineSpec s;
    s.topo = std::move(topo);
    s.queuesPerLink = queues;
    return s;
}

TEST(Competing, Fig7Structure)
{
    Program p = algos::fig7Program();
    Topology topo = algos::fig7Topology();
    auto analysis = CompetingAnalysis::analyze(p, topo);

    MessageId a = *p.messageByName("A");
    MessageId b = *p.messageByName("B");
    MessageId c = *p.messageByName("C");

    // Link 1-2 carries A and C, both forward: they compete.
    LinkIndex l12 = *topo.linkBetween(1, 2);
    EXPECT_EQ(analysis.onLinkDir(l12, LinkDir::kForward),
              (std::vector<MessageId>{a, c}));
    // Link 2-3 carries B and C forward.
    LinkIndex l23 = *topo.linkBetween(2, 3);
    EXPECT_EQ(analysis.onLinkDir(l23, LinkDir::kForward),
              (std::vector<MessageId>{b, c}));
    // Link 0-1 carries only C.
    LinkIndex l01 = *topo.linkBetween(0, 1);
    EXPECT_EQ(analysis.onLink(l01), (std::vector<MessageId>{c}));

    EXPECT_EQ(analysis.maxCompeting(), 2);
    EXPECT_EQ(analysis.maxOnLink(), 2);
    EXPECT_EQ(analysis.route(c).numHops(), 3);
}

TEST(Competing, OppositeDirectionsDoNotCompete)
{
    Program p = algos::fig2FirProgram();
    Topology topo = algos::fig2Topology();
    auto analysis = CompetingAnalysis::analyze(p, topo);
    LinkIndex l01 = *topo.linkBetween(0, 1);
    // XA forward, YA backward: one message per direction.
    EXPECT_EQ(analysis.onLinkDir(l01, LinkDir::kForward).size(), 1u);
    EXPECT_EQ(analysis.onLinkDir(l01, LinkDir::kBackward).size(), 1u);
    EXPECT_EQ(analysis.onLink(l01).size(), 2u);
    EXPECT_EQ(analysis.maxCompeting(), 1);
}

TEST(Feasibility, StaticNeedsAQueuePerMessage)
{
    Program p = algos::fig7Program();
    Topology topo = algos::fig7Topology();
    auto analysis = CompetingAnalysis::analyze(p, topo);

    Feasibility f1 = checkStaticFeasibility(analysis, specFor(topo, 1));
    EXPECT_FALSE(f1.feasible);
    EXPECT_EQ(f1.requiredQueuesPerLink, 2);

    Feasibility f2 = checkStaticFeasibility(analysis, specFor(topo, 2));
    EXPECT_TRUE(f2.feasible);
}

TEST(Feasibility, DynamicDependsOnLabelGroups)
{
    // Fig. 8: A and B share a label, so the dynamic scheme needs two
    // queues on the shared link; distinct labels would need only one.
    Program p = algos::fig8Program();
    Topology topo = algos::fig8Topology();
    auto analysis = CompetingAnalysis::analyze(p, topo);
    Labeling labeling = labelMessages(p);
    ASSERT_TRUE(labeling.success);

    Feasibility f1 =
        checkDynamicFeasibility(analysis, labeling.labels, specFor(topo, 1));
    EXPECT_FALSE(f1.feasible);
    EXPECT_EQ(f1.requiredQueuesPerLink, 2);
    EXPECT_NE(f1.reason.find("same-label"), std::string::npos);

    Feasibility f2 =
        checkDynamicFeasibility(analysis, labeling.labels, specFor(topo, 2));
    EXPECT_TRUE(f2.feasible);
}

TEST(Feasibility, DistinctLabelsNeedOneQueue)
{
    Program p = algos::fig7Program();
    Topology topo = algos::fig7Topology();
    auto analysis = CompetingAnalysis::analyze(p, topo);
    Labeling labeling = labelMessages(p);
    ASSERT_TRUE(labeling.success);
    Feasibility f =
        checkDynamicFeasibility(analysis, labeling.labels, specFor(topo, 1));
    EXPECT_TRUE(f.feasible);
    EXPECT_EQ(f.requiredQueuesPerLink, 1);
}

TEST(Feasibility, TrivialLabelingIsExpensive)
{
    // Section 5: the all-equal labeling "will not likely yield an
    // efficient use of queues" — it demands a queue per message.
    Program p = algos::fig7Program();
    Topology topo = algos::fig7Topology();
    auto analysis = CompetingAnalysis::analyze(p, topo);
    Labeling trivial = trivialLabeling(p);
    Feasibility f =
        checkDynamicFeasibility(analysis, trivial.labels, specFor(topo, 1));
    EXPECT_FALSE(f.feasible);
    EXPECT_EQ(f.requiredQueuesPerLink, 2);
}

TEST(Competing, MeshRoutesFollowXy)
{
    Program p(9);
    MessageId m = p.declareMessage("M", 0, 8);
    p.write(0, m);
    p.read(8, m);
    Topology topo = Topology::mesh(3, 3);
    auto analysis = CompetingAnalysis::analyze(p, topo);
    EXPECT_EQ(analysis.route(m).numHops(), 4);
    EXPECT_EQ(analysis.route(m).cells,
              (std::vector<CellId>{0, 1, 2, 5, 8}));
}

} // namespace
} // namespace syscomm
