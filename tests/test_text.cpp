/**
 * @file
 * Textual program format: parsing, printing, round-trips, errors.
 */

#include <random>

#include <gtest/gtest.h>

#include "core/crossoff.h"
#include "core/program_gen.h"
#include "text/parser.h"
#include "text/printer.h"

namespace syscomm {
namespace {

using text::parseProgram;
using text::printProgram;
using text::renderColumns;

const char* kFig5P1 = R"(
# Fig. 5, program P1
cells 2
message A 0 -> 1
message B 0 -> 1
cell 0 { W(A) W(A) W(B) }
cell 1 { R(B) R(A) R(A) }
)";

TEST(TextParser, ParsesP1)
{
    auto result = parseProgram(kFig5P1);
    ASSERT_TRUE(result.ok) << result.error;
    const Program& p = result.program;
    EXPECT_EQ(p.numCells(), 2);
    EXPECT_EQ(p.numMessages(), 2);
    EXPECT_EQ(p.messageLength(*p.messageByName("A")), 2);
    EXPECT_TRUE(p.valid());
    EXPECT_FALSE(isDeadlockFree(p));
}

TEST(TextParser, ComputeToken)
{
    auto result = parseProgram("cells 2\n"
                               "message A 0 -> 1\n"
                               "cell 0 { C W(A) }\n"
                               "cell 1 { R(A) C }\n");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.program.totalOps(), 4);
    EXPECT_EQ(result.program.totalTransferOps(), 2);
}

TEST(TextParser, MultiLineCellBlock)
{
    auto result = parseProgram("cells 2\n"
                               "message A 0 -> 1\n"
                               "cell 0 {\n  W(A)\n  W(A)\n}\n"
                               "cell 1 { R(A) R(A) }\n");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.program.messageLength(0), 2);
}

TEST(TextParser, RepeatedCellBlocksAppend)
{
    auto result = parseProgram("cells 2\n"
                               "message A 0 -> 1\n"
                               "cell 0 { W(A) }\n"
                               "cell 0 { W(A) }\n"
                               "cell 1 { R(A) R(A) }\n");
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.program.cellOps(0).size(), 2u);
}

TEST(TextParser, ErrorsCarryLineNumbers)
{
    auto result = parseProgram("cells 2\nmessage A 0 -> 9\n");
    ASSERT_FALSE(result.ok);
    EXPECT_NE(result.error.find("line 2"), std::string::npos);
    EXPECT_NE(result.error.find("out of range"), std::string::npos);
}

TEST(TextParser, RejectsUnknownMessage)
{
    auto result = parseProgram("cells 2\ncell 0 { W(Z) }\n");
    ASSERT_FALSE(result.ok);
    EXPECT_NE(result.error.find("unknown message"), std::string::npos);
}

TEST(TextParser, RejectsMissingCellsDirective)
{
    auto result = parseProgram("message A 0 -> 1\n");
    EXPECT_FALSE(result.ok);
}

TEST(TextParser, RejectsDuplicateMessages)
{
    auto result = parseProgram("cells 2\n"
                               "message A 0 -> 1\n"
                               "message A 1 -> 0\n");
    ASSERT_FALSE(result.ok);
    EXPECT_NE(result.error.find("duplicate"), std::string::npos);
}

TEST(TextParser, RejectsUnterminatedBlock)
{
    auto result = parseProgram("cells 2\nmessage A 0 -> 1\ncell 0 { W(A)");
    ASSERT_FALSE(result.ok);
    EXPECT_NE(result.error.find("unterminated"), std::string::npos);
}

TEST(TextParser, RejectsBadToken)
{
    auto result = parseProgram("cells 2\nbogus\n");
    ASSERT_FALSE(result.ok);
    EXPECT_NE(result.error.find("unexpected token"), std::string::npos);
}

TEST(TextPrinter, RoundTrip)
{
    auto first = parseProgram(kFig5P1);
    ASSERT_TRUE(first.ok);
    std::string printed = printProgram(first.program);
    auto second = parseProgram(printed);
    ASSERT_TRUE(second.ok) << second.error << "\n" << printed;
    EXPECT_EQ(printProgram(second.program), printed);
    EXPECT_EQ(second.program.numMessages(), first.program.numMessages());
    EXPECT_EQ(second.program.totalOps(), first.program.totalOps());
}

TEST(TextPrinter, ColumnsContainEveryOp)
{
    auto result = parseProgram(kFig5P1);
    ASSERT_TRUE(result.ok);
    std::string cols = renderColumns(result.program);
    EXPECT_NE(cols.find("cell 0"), std::string::npos);
    EXPECT_NE(cols.find("cell 1"), std::string::npos);
    EXPECT_NE(cols.find("W(A)"), std::string::npos);
    EXPECT_NE(cols.find("R(B)"), std::string::npos);
}

TEST(TextParser, RandomGarbageNeverCrashes)
{
    // Pseudo-random token soup: the parser must fail cleanly.
    std::mt19937_64 rng(12345);
    const char* tokens[] = {"cells", "message", "cell",  "{",   "}",
                            "W(A)",  "R(A)",    "->",    "A",   "0",
                            "1",     "-3",      "C",     "#x",  "(",
                            "W()",   "R",       "cells", "99"};
    for (int trial = 0; trial < 200; ++trial) {
        std::string src;
        std::uniform_int_distribution<std::size_t> pick(
            0, std::size(tokens) - 1);
        std::uniform_int_distribution<int> len(0, 30);
        int n = len(rng);
        for (int i = 0; i < n; ++i) {
            src += tokens[pick(rng)];
            src += (i % 7 == 6) ? "\n" : " ";
        }
        auto result = parseProgram(src);
        if (!result.ok) {
            EXPECT_FALSE(result.error.empty());
        }
    }
}

TEST(TextParser, GeneratedProgramsRoundTrip)
{
    Topology topo = Topology::linearArray(4);
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        GenOptions gen;
        gen.numMessages = 6;
        gen.seed = seed;
        Program p = randomDeadlockFreeProgram(topo, gen);
        auto reparsed = parseProgram(printProgram(p));
        ASSERT_TRUE(reparsed.ok) << reparsed.error;
        EXPECT_EQ(reparsed.program.totalOps(), p.totalOps());
        EXPECT_EQ(isDeadlockFree(reparsed.program), isDeadlockFree(p));
    }
}

TEST(TextPrinter, ColumnsWithLabels)
{
    auto result = parseProgram(kFig5P1);
    ASSERT_TRUE(result.ok);
    std::string out = text::renderColumnsWithLabels(
        result.program, {Rational(1), Rational(2)});
    EXPECT_NE(out.find("A(0->1)=1"), std::string::npos);
    EXPECT_NE(out.find("B(0->1)=2"), std::string::npos);
}

} // namespace
} // namespace syscomm
