/**
 * @file
 * Deadlock repair (the section 3.3 strategy as a compiler pass).
 */

#include <gtest/gtest.h>

#include "algos/paper_figures.h"
#include "core/compile.h"
#include "core/crossoff.h"
#include "core/program_gen.h"
#include "core/repair.h"
#include "sim/machine.h"
#include "test_support.h"

namespace syscomm {
namespace {

TEST(Repair, FixesFig5Programs)
{
    for (Program p : {algos::fig5P1(), algos::fig5P2(), algos::fig5P3()}) {
        ASSERT_FALSE(isDeadlockFree(p));
        RepairResult r = repairProgram(p);
        ASSERT_TRUE(r.success) << r.error;
        EXPECT_TRUE(isDeadlockFree(r.program));
        EXPECT_TRUE(isReorderingOf(p, r.program));
        EXPECT_GT(r.movedOps, 0);
    }
}

TEST(Repair, RepairedP1RunsToCompletion)
{
    Program p = algos::fig5P1();
    RepairResult r = repairProgram(p);
    ASSERT_TRUE(r.success);
    MachineSpec spec;
    spec.topo = algos::fig5Topology();
    spec.queuesPerLink = 2;
    sim::RunResult run = sim::simulateProgram(r.program, spec);
    EXPECT_EQ(run.status, sim::RunStatus::kCompleted);
}

TEST(Repair, AlreadySafeProgramsBarelyChange)
{
    // A safe pipeline: the repair keeps the schedule intact.
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 0, 1);
    p.write(0, a);
    p.write(0, b);
    p.write(0, a);
    p.read(1, a);
    p.read(1, b);
    p.read(1, a);
    ASSERT_TRUE(isDeadlockFree(p));
    RepairResult r = repairProgram(p);
    ASSERT_TRUE(r.success);
    EXPECT_TRUE(isDeadlockFree(r.program));
    EXPECT_TRUE(isReorderingOf(p, r.program));
}

TEST(Repair, RefusesComputePrograms)
{
    Program p = algos::fig2FirProgram();
    RepairResult r = repairProgram(p);
    EXPECT_FALSE(r.success);
    EXPECT_NE(r.error.find("compute"), std::string::npos);
}

TEST(Repair, RefusesInvalidPrograms)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    p.write(0, a); // no read
    RepairResult r = repairProgram(p);
    EXPECT_FALSE(r.success);
}

TEST(Repair, PerturbedRandomProgramsAlwaysFixable)
{
    Topology topo = Topology::linearArray(5);
    int repaired_deadlocks = 0;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        GenOptions gen;
        gen.numMessages = 8;
        gen.maxWords = 4;
        gen.seed = seed;
        Program original = randomDeadlockFreeProgram(topo, gen);
        Program broken = perturbProgram(original, 40, seed + 1);
        if (!isDeadlockFree(broken))
            ++repaired_deadlocks;
        RepairResult r = repairProgram(broken);
        ASSERT_TRUE(r.success) << "seed " << seed;
        EXPECT_TRUE(isDeadlockFree(r.program)) << "seed " << seed;
        EXPECT_TRUE(isReorderingOf(broken, r.program)) << "seed " << seed;
    }
    EXPECT_GT(repaired_deadlocks, 0);
}

TEST(Repair, RepairedRandomProgramsCompleteOnBothKernels)
{
    // The full property, machine included: any perturbed random
    // transfer program repairs into a reordering that not only passes
    // the crossing-off check but actually runs to completion — on
    // both kernels, bit-identically. Feasibility-gated like the
    // Theorem 1 suite: when the repaired program's same-label groups
    // outsize the queue pools the theorem does not apply.
    Topology topo = Topology::linearArray(5);
    MachineSpec machine;
    machine.topo = topo;
    // Repair serializes aggressively, which merges labels into large
    // related classes: one queue per message keeps nearly every
    // repaired schedule inside the theorem's feasibility assumption.
    machine.queuesPerLink = 8;
    machine.queueCapacity = 2;

    int ran = 0;
    int skipped = 0;
    int brokenCount = 0;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        GenOptions gen;
        gen.numMessages = 8;
        gen.maxWords = 4;
        gen.seed = 900 + seed;
        gen.interleave = 0.3;
        Program original = randomDeadlockFreeProgram(topo, gen);
        Program broken = perturbProgram(original, 60, seed + 1);
        brokenCount += !isDeadlockFree(broken);
        RepairResult r = repairProgram(broken);
        ASSERT_TRUE(r.success) << "seed " << seed << ": " << r.error;
        ASSERT_TRUE(isDeadlockFree(r.program)) << "seed " << seed;
        ASSERT_TRUE(isReorderingOf(broken, r.program)) << "seed " << seed;

        CompilePlan plan = compileProgram(r.program, machine);
        ASSERT_TRUE(plan.labeling.success) << "seed " << seed;
        if (!plan.dynamicFeasibility.feasible) {
            ++skipped;
            continue;
        }
        sim::RunRequest request;
        request.labels = plan.normalizedLabels;

        sim::SessionOptions eventKernel;
        eventKernel.kernel = sim::KernelKind::kEventDriven;
        sim::SimSession event(r.program, machine, eventKernel);
        sim::RunResult eventRun = event.run(request);
        ASSERT_EQ(eventRun.status, sim::RunStatus::kCompleted)
            << "seed " << seed << "\n"
            << eventRun.deadlock.render();

        sim::SessionOptions denseKernel;
        denseKernel.kernel = sim::KernelKind::kReference;
        sim::SimSession dense(r.program, machine, denseKernel);
        expectSameRunResult(dense.run(request), eventRun,
                            "seed " + std::to_string(seed));
        EXPECT_EQ(dense.machineDigest(), event.machineDigest())
            << "seed " << seed;
        ++ran;
    }
    // The sweep must exercise real repairs on real machines.
    EXPECT_GT(brokenCount, 0);
    EXPECT_GT(ran, skipped);
}

TEST(Repair, ReorderingCheckerRejectsMismatches)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    p.write(0, a);
    p.read(1, a);

    Program q(2);
    MessageId qa = q.declareMessage("A", 0, 1);
    q.write(0, qa);
    q.write(0, qa);
    q.read(1, qa);
    q.read(1, qa);
    EXPECT_FALSE(isReorderingOf(p, q)); // different op counts

    Program r(2);
    r.declareMessage("B", 0, 1); // different name
    r.write(0, 0);
    r.read(1, 0);
    EXPECT_FALSE(isReorderingOf(p, r));

    Program s(2);
    MessageId sa = s.declareMessage("A", 0, 1);
    s.write(0, sa);
    s.read(1, sa);
    EXPECT_TRUE(isReorderingOf(p, s));
}

} // namespace
} // namespace syscomm
