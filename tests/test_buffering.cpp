/**
 * @file
 * Queue buffering and the iWarp queue extension (paper section 8):
 * capacity widens the deadlock-free class, run-time behavior matches
 * the lookahead classification, and the extension trades capacity for
 * access latency.
 */

#include <gtest/gtest.h>

#include "algos/paper_figures.h"
#include "core/compile.h"
#include "core/crossoff.h"
#include "sim/machine.h"

namespace syscomm {
namespace {

using sim::RunStatus;

/** Sender front-loads k words of A before B; receiver wants B first. */
Program
frontLoaded(int k)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 0, 1);
    for (int i = 0; i < k; ++i)
        p.write(0, a);
    p.write(0, b);
    p.read(1, b);
    for (int i = 0; i < k; ++i)
        p.read(1, a);
    return p;
}

MachineSpec
machine(int queues, int capacity, int ext = 0, int penalty = 0)
{
    MachineSpec s;
    s.topo = Topology::linearArray(2);
    s.queuesPerLink = queues;
    s.queueCapacity = capacity;
    s.extensionCapacity = ext;
    s.extensionPenalty = penalty;
    return s;
}

class BufferSweep : public ::testing::TestWithParam<int>
{};

TEST_P(BufferSweep, RuntimeMatchesLookaheadClassification)
{
    // For the front-loaded program with k skipped writes, lookahead
    // under bound c accepts iff c >= k, and the simulator with
    // capacity-c queues completes iff c >= k.
    int k = GetParam();
    Program p = frontLoaded(k);
    for (int capacity : {1, k - 1, k, k + 2}) {
        if (capacity < 1)
            continue;
        bool accepted =
            isDeadlockFreeWithLookahead(p, uniformSkipBound(capacity));
        sim::SimOptions options;
        sim::RunResult r =
            sim::simulateProgram(p, machine(2, capacity), options);
        bool completed = r.status == RunStatus::kCompleted;
        EXPECT_EQ(accepted, capacity >= k);
        EXPECT_EQ(completed, accepted)
            << "k=" << k << " capacity=" << capacity;
    }
}

INSTANTIATE_TEST_SUITE_P(FrontLoads, BufferSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(Buffering, ExtensionCapacityCountsTowardBound)
{
    // capacity 1 + extension 2 behaves like capacity 3 for
    // classification and completion.
    Program p = frontLoaded(3);
    EXPECT_EQ(
        sim::simulateProgram(p, machine(2, 1)).status,
        RunStatus::kDeadlocked);
    sim::RunResult r = sim::simulateProgram(p, machine(2, 1, 2, 4));
    EXPECT_EQ(r.status, RunStatus::kCompleted) << r.statusStr();
    EXPECT_GT(r.stats.extendedWords, 0);
}

TEST(Buffering, ExtensionPenaltySlowsCompletion)
{
    Program p = frontLoaded(4);
    sim::RunResult cheap = sim::simulateProgram(p, machine(2, 1, 3, 0));
    sim::RunResult costly = sim::simulateProgram(p, machine(2, 1, 3, 8));
    ASSERT_EQ(cheap.status, RunStatus::kCompleted);
    ASSERT_EQ(costly.status, RunStatus::kCompleted);
    EXPECT_GT(costly.cycles, cheap.cycles);
}

TEST(Buffering, PureHardwareBeatsExtensionAtEqualCapacity)
{
    Program p = frontLoaded(4);
    sim::RunResult hw = sim::simulateProgram(p, machine(2, 4, 0, 0));
    sim::RunResult ext = sim::simulateProgram(p, machine(2, 1, 3, 6));
    ASSERT_EQ(hw.status, RunStatus::kCompleted);
    ASSERT_EQ(ext.status, RunStatus::kCompleted);
    EXPECT_LE(hw.cycles, ext.cycles);
}

TEST(Buffering, CompileLookaheadUsesTotalCapacity)
{
    Program p = algos::fig5P1(); // needs 2 words of buffering
    CompileOptions options;
    options.lookahead = true;

    MachineSpec m1 = machine(2, 1, 0);
    m1.topo = algos::fig5Topology();
    EXPECT_FALSE(compileProgram(p, m1, options).ok);

    MachineSpec m2 = machine(2, 1, 1);
    m2.topo = algos::fig5Topology();
    EXPECT_TRUE(compileProgram(p, m2, options).ok);
}

TEST(Buffering, DeeperQueuesNeverBreakCompletion)
{
    // Monotonicity: anything that completes at capacity c completes at
    // capacity c' > c.
    Program p = algos::fig7Program();
    MachineSpec m = machine(1, 1);
    m.topo = algos::fig7Topology();
    Cycle prev_cycles = 0;
    for (int capacity : {1, 2, 4, 8}) {
        m.queueCapacity = capacity;
        sim::RunResult r = sim::simulateProgram(p, m);
        ASSERT_EQ(r.status, RunStatus::kCompleted) << capacity;
        if (prev_cycles) {
            EXPECT_LE(r.cycles, prev_cycles) << capacity;
        }
        prev_cycles = r.cycles;
    }
}

} // namespace
} // namespace syscomm
