/**
 * @file
 * Label-consistency verification (paper section 5).
 */

#include <gtest/gtest.h>

#include "core/label_verify.h"

namespace syscomm {
namespace {

Program
twoMessageProgram()
{
    Program p(3);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 1, 2);
    p.write(0, a);
    p.read(1, a);
    p.write(1, b);
    p.read(2, b);
    return p;
}

TEST(LabelVerify, AscendingLabelsAreConsistent)
{
    Program p = twoMessageProgram();
    EXPECT_TRUE(isConsistentLabeling(p, {Rational(1), Rational(2)}));
}

TEST(LabelVerify, EqualLabelsAreConsistent)
{
    Program p = twoMessageProgram();
    EXPECT_TRUE(isConsistentLabeling(p, {Rational(1), Rational(1)}));
}

TEST(LabelVerify, DescendingLabelsAreInconsistent)
{
    // Cell 1 reads A then writes B; label(B) < label(A) breaks the
    // non-decreasing requirement.
    Program p = twoMessageProgram();
    auto issues = checkLabelConsistency(p, {Rational(2), Rational(1)});
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_EQ(issues[0].cell, 1);
    EXPECT_EQ(issues[0].prevMsg, 0);
    EXPECT_EQ(issues[0].curMsg, 1);
    EXPECT_NE(issues[0].str(p).find("below preceding"), std::string::npos);
}

TEST(LabelVerify, FractionalLabelsCompareExactly)
{
    Program p = twoMessageProgram();
    EXPECT_TRUE(
        isConsistentLabeling(p, {Rational(3, 2), Rational(3, 2)}));
    EXPECT_FALSE(
        isConsistentLabeling(p, {Rational(3, 2), Rational(4, 3)}));
}

TEST(LabelVerify, ComputeOpsAreIgnored)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 0, 1);
    p.write(0, a);
    p.compute(0, ComputeFn{});
    p.write(0, b);
    p.read(1, a);
    p.read(1, b);
    (void)a;
    (void)b;
    EXPECT_TRUE(isConsistentLabeling(p, {Rational(1), Rational(2)}));
}

TEST(LabelVerify, MultipleViolationsAllReported)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 0, 1);
    // W(A) W(B) W(A) W(B): with label(A) > label(B) the two
    // B-after-A ... A-after-B alternations give two decreases on each
    // side (sender and receiver).
    p.write(0, a);
    p.write(0, b);
    p.write(0, a);
    p.write(0, b);
    p.read(1, a);
    p.read(1, b);
    p.read(1, a);
    p.read(1, b);
    auto issues = checkLabelConsistency(p, {Rational(2), Rational(1)});
    EXPECT_EQ(issues.size(), 4u);
}

} // namespace
} // namespace syscomm
