/**
 * @file
 * ShapeSweep / CompiledProgram / checkpoint-persistence coverage.
 *
 * The contracts under test, in order of importance:
 *  - a shared-compile shape sweep is bit-identical to N independent
 *    SimSession builds, across policies and seeds, while running the
 *    program-side analyses exactly once (asserted via
 *    CompiledProgram::buildCount);
 *  - a sweep killed mid-flight (journal record budget) and resumed
 *    from its journal reproduces the uninterrupted sweep's results
 *    bit-identically — finished rows replay, checkpointed rows
 *    continue from their serialized machine state;
 *  - saveCheckpoint/restoreCheckpoint round-trips a paused run across
 *    sessions and across kernels.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/program_gen.h"
#include "sim/fault.h"
#include "sim/shape_sweep.h"
#include "test_support.h"

namespace syscomm {
namespace {

using sim::Collect;
using sim::CompiledProgram;
using sim::KernelKind;
using sim::PolicyKind;
using sim::RunRequest;
using sim::RunResult;
using sim::RunStatus;
using sim::SessionOptions;
using sim::ShapeSpec;
using sim::ShapeSweep;
using sim::ShapeSweepOptions;
using sim::ShapeSweepResult;
using sim::SimSession;

/** Seed-sensitive workload mixing completions and deadlocks. */
Program
perturbedProgram(std::uint64_t seed)
{
    Topology topo = Topology::linearArray(6);
    GenOptions gen;
    gen.numMessages = 8;
    gen.maxWords = 4;
    gen.seed = 300 + seed;
    gen.interleave = 0.5;
    Program p = randomDeadlockFreeProgram(topo, gen);
    return perturbProgram(p, static_cast<int>(1 + seed % 3), seed);
}

/**
 * One long slow stream (compute gaps between words): a run of a few
 * hundred cycles, so checkpoint intervals land mid-flight.
 */
Program
longRunProgram()
{
    Program p(4);
    MessageId id = p.declareMessage("S", 0, 3);
    for (int w = 0; w < 30; ++w) {
        for (int g = 0; g < 6; ++g) {
            p.compute(0,
                      [](CellContext& ctx) { ctx.local(0) += 1.0; });
        }
        p.write(0, id);
    }
    for (int w = 0; w < 30; ++w)
        p.read(3, id);
    return p;
}

/** The acceptance-criteria ladder: 4 queue counts x 4 capacities. */
std::vector<ShapeSpec>
ladder16()
{
    std::vector<ShapeSpec> shapes;
    for (int queues : {1, 2, 3, 4}) {
        for (int capacity : {1, 2, 4, 8}) {
            ShapeSpec shape;
            shape.name = "q=" + std::to_string(queues) +
                         "/cap=" + std::to_string(capacity);
            shape.queuesPerLink = queues;
            shape.queueCapacity = capacity;
            shapes.push_back(std::move(shape));
        }
    }
    return shapes;
}

MachineSpec
specFor(const Topology& topo, const ShapeSpec& shape)
{
    MachineSpec spec;
    spec.topo = topo;
    spec.queuesPerLink = shape.queuesPerLink;
    spec.queueCapacity = shape.queueCapacity;
    spec.extensionCapacity = shape.extensionCapacity;
    spec.extensionPenalty = shape.extensionPenalty;
    return spec;
}

std::string
tempPath(const std::string& name)
{
    return testing::TempDir() + name;
}

// ---------------------------------------------------------------------
// (a) shared compile == independent sessions, one analysis pass
// ---------------------------------------------------------------------

TEST(ShapeSweep, GoldenMatchesIndependentSessionsAndCompilesOnce)
{
    Program p = perturbedProgram(1);
    Topology topo = Topology::linearArray(6);
    std::vector<ShapeSpec> shapes = ladder16();

    std::vector<RunRequest> requests;
    for (PolicyKind policy :
         {PolicyKind::kCompatible, PolicyKind::kFcfs,
          PolicyKind::kRandom}) {
        for (std::uint64_t seed : {1ull, 7ull}) {
            RunRequest request;
            request.policy = policy;
            request.seed = seed;
            requests.push_back(request);
        }
    }

    ShapeSweepOptions options;
    options.numWorkers = 3;
    ShapeSweep sweep(p, topo, shapes, options);
    const std::int64_t before = CompiledProgram::buildCount();
    ShapeSweepResult result = sweep.run(requests);
    // >= 16 shapes, exactly one program-side analysis pass.
    EXPECT_EQ(CompiledProgram::buildCount() - before, 1);
    ASSERT_TRUE(result.complete);
    ASSERT_EQ(result.rows.size(), shapes.size() * requests.size());

    bool sawDeadlock = false;
    bool sawCompleted = false;
    for (std::size_t s = 0; s < shapes.size(); ++s) {
        // The spec must outlive the session (it is held by
        // reference).
        MachineSpec freshSpec = specFor(topo, shapes[s]);
        SimSession fresh(p, freshSpec);
        for (std::size_t r = 0; r < requests.size(); ++r) {
            RunResult want = fresh.run(requests[r]);
            const std::string ctx = "shape=" + shapes[s].name +
                                    " request=" + std::to_string(r);
            expectSameRunResult(result.row(s, r).result, want, ctx);
            EXPECT_EQ(result.row(s, r).machineDigest,
                      fresh.machineDigest())
                << ctx;
            sawDeadlock |= want.status == RunStatus::kDeadlocked;
            sawCompleted |= want.status == RunStatus::kCompleted;
        }
    }
    // The workload must exercise both outcomes or the golden check
    // proves less than it claims.
    EXPECT_TRUE(sawDeadlock);
    EXPECT_TRUE(sawCompleted);

    // A second batch on the same sweep reuses sessions and compile.
    const std::int64_t again = CompiledProgram::buildCount();
    ShapeSweepResult rerun = sweep.run(requests);
    EXPECT_EQ(CompiledProgram::buildCount(), again);
    for (std::size_t i = 0; i < result.rows.size(); ++i) {
        expectSameRunResult(rerun.rows[i].result, result.rows[i].result,
                            "rerun row " + std::to_string(i));
        EXPECT_EQ(rerun.rows[i].machineDigest,
                  result.rows[i].machineDigest);
    }
}

TEST(ShapeSweep, LadderSharesOneTopology)
{
    Program p = perturbedProgram(1);
    Topology topo = Topology::linearArray(6);
    ShapeSweep sweep(p, topo, ladder16());
    sweep.run({RunRequest{}});

    // One graph serves the whole ladder: every per-shape spec and the
    // shared CompiledProgram alias the same Topology node instead of
    // holding copies (the by-value layout kept N+2 alive).
    const Topology* shared = sweep.spec(0).topo.ptr().get();
    for (std::size_t s = 1; s < sweep.shapes().size(); ++s)
        EXPECT_EQ(sweep.spec(s).topo.ptr().get(), shared);
    EXPECT_EQ(&sweep.compiled()->topo(), shared);

    // Copying a spec shares rather than copies.
    MachineSpec copy = sweep.spec(0);
    EXPECT_EQ(copy.topo.ptr().get(), shared);
    // Assigning a fresh Topology makes a fresh node.
    copy.topo = Topology::linearArray(6);
    EXPECT_NE(copy.topo.ptr().get(), shared);
}

TEST(ShapeSweep, WorkerCountDoesNotChangeResults)
{
    Program p = perturbedProgram(2);
    Topology topo = Topology::linearArray(6);
    std::vector<ShapeSpec> shapes = ladder16();
    std::vector<RunRequest> requests(2);
    requests[1].policy = PolicyKind::kFcfs;

    ShapeSweepOptions serial;
    serial.numWorkers = 1;
    ShapeSweep sweepSerial(p, topo, shapes, serial);
    ShapeSweepResult golden = sweepSerial.run(requests);

    ShapeSweepOptions threaded;
    threaded.numWorkers = 4;
    ShapeSweep sweepThreaded(p, topo, shapes, threaded);
    ShapeSweepResult result = sweepThreaded.run(requests);

    ASSERT_EQ(result.rows.size(), golden.rows.size());
    for (std::size_t i = 0; i < golden.rows.size(); ++i) {
        expectSameRunResult(result.rows[i].result, golden.rows[i].result,
                            "row " + std::to_string(i));
        EXPECT_EQ(result.rows[i].machineDigest,
                  golden.rows[i].machineDigest);
    }
}

TEST(SimSession, CompiledTopologyMismatchIsConfigError)
{
    Program p = perturbedProgram(3);
    Topology topo = Topology::linearArray(6);
    auto compiled = CompiledProgram::compile(p, topo);
    ASSERT_TRUE(compiled->valid());

    MachineSpec other;
    other.topo = Topology::linearArray(8);
    SimSession session(compiled, other);
    EXPECT_FALSE(session.valid());
    RunResult r = session.run({});
    EXPECT_EQ(r.status, RunStatus::kConfigError);
    EXPECT_NE(r.error.find("topology"), std::string::npos);
}

// ---------------------------------------------------------------------
// (b) checkpoint save/restore across sessions and kernels
// ---------------------------------------------------------------------

TEST(SimSession, CheckpointRestoresAcrossSessionsAndKernels)
{
    Program p = longRunProgram();
    MachineSpec spec;
    spec.topo = Topology::linearArray(4);
    spec.queuesPerLink = 2;

    for (PolicyKind policy : {PolicyKind::kCompatible, PolicyKind::kRandom,
                              PolicyKind::kFcfs}) {
        RunRequest request;
        request.policy = policy;
        request.seed = 11;

        SimSession oracle(p, spec);
        RunResult want = oracle.run(request);
        ASSERT_EQ(want.status, RunStatus::kCompleted);
        ASSERT_GT(want.cycles, 60);

        SimSession donor(p, spec);
        RunRequest paused = request;
        paused.pauseAt = want.cycles / 2;
        RunResult snap = donor.run(paused);
        ASSERT_EQ(snap.status, RunStatus::kPaused);
        std::vector<std::uint8_t> bytes;
        ASSERT_TRUE(donor.saveCheckpoint(bytes));
        ASSERT_FALSE(bytes.empty());

        for (KernelKind kernel :
             {KernelKind::kEventDriven, KernelKind::kReference}) {
            SessionOptions options;
            options.kernel = kernel;
            SimSession heir(p, spec, options);
            ASSERT_TRUE(heir.restoreCheckpoint(request, bytes))
                << sim::kernelKindName(kernel);
            EXPECT_TRUE(heir.paused());
            EXPECT_EQ(heir.machineDigest(), donor.machineDigest());
            RunResult got = heir.resume();
            expectSameRunResult(
                got, want,
                std::string("restored finish on ") +
                    sim::kernelKindName(kernel) + " policy " +
                    sim::policyKindName(policy));
            EXPECT_EQ(heir.machineDigest(), oracle.machineDigest());
        }
    }
}

TEST(SimSession, CheckpointRejectsMisuseAndCorruption)
{
    Program p = longRunProgram();
    MachineSpec spec;
    spec.topo = Topology::linearArray(4);
    spec.queuesPerLink = 2;

    SimSession session(p, spec);
    std::vector<std::uint8_t> bytes;
    // Not paused: nothing to save.
    EXPECT_FALSE(session.saveCheckpoint(bytes));

    RunRequest paused;
    paused.pauseAt = 40;
    ASSERT_EQ(session.run(paused).status, RunStatus::kPaused);
    ASSERT_TRUE(session.saveCheckpoint(bytes));

    // A collecting run cannot be checkpointed (vectors are not
    // serialized) …
    SimSession collector(p, spec);
    RunRequest collecting = paused;
    collecting.collect = Collect::kEvents;
    ASSERT_EQ(collector.run(collecting).status, RunStatus::kPaused);
    std::vector<std::uint8_t> unused;
    EXPECT_FALSE(collector.saveCheckpoint(unused));
    // … nor restored into one.
    SimSession heir(p, spec);
    RunRequest collectingRestore;
    collectingRestore.collect = Collect::kEvents;
    EXPECT_FALSE(heir.restoreCheckpoint(collectingRestore, bytes));

    // Truncated and bit-flipped streams are rejected.
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.end() - bytes.size() / 3);
    EXPECT_FALSE(heir.restoreCheckpoint({}, truncated));
    // Flip a bit of the recorded machine digest (bytes 8..15 after
    // the magic and version): the end-to-end digest check must
    // refuse the stream.
    std::vector<std::uint8_t> flipped = bytes;
    flipped[12] ^= 0x40;
    EXPECT_FALSE(heir.restoreCheckpoint({}, flipped));

    // A machine of a different shape refuses the stream.
    MachineSpec other = spec;
    other.queuesPerLink = 3;
    SimSession mismatched(p, other);
    EXPECT_FALSE(mismatched.restoreCheckpoint({}, bytes));

    // And the intact stream still restores fine afterwards.
    ASSERT_TRUE(heir.restoreCheckpoint({}, bytes));
    RunResult got = heir.resume();
    SimSession oracle(p, spec);
    expectSameRunResult(got, oracle.run({}), "post-rejection restore");
}

// ---------------------------------------------------------------------
// (c) kill-mid-sweep -> resume -> bit-identical sweep
// ---------------------------------------------------------------------

/** Drive a journaled sweep to completion across simulated crashes. */
ShapeSweepResult
runWithCrashes(const Program& p, const Topology& topo,
               const std::vector<ShapeSpec>& shapes,
               const std::vector<RunRequest>& requests,
               ShapeSweepOptions options, int maxInvocations,
               std::size_t* totalReplayed = nullptr,
               std::size_t* totalRestored = nullptr)
{
    for (int attempt = 0; attempt < maxInvocations; ++attempt) {
        ShapeSweep sweep(p, topo, shapes, options);
        ShapeSweepResult result = sweep.run(requests);
        if (totalReplayed != nullptr)
            *totalReplayed += result.rowsFromJournal;
        if (totalRestored != nullptr)
            *totalRestored += result.checkpointsRestored;
        if (result.complete)
            return result;
    }
    ADD_FAILURE() << "sweep did not complete in " << maxInvocations
                  << " invocations";
    return {};
}

TEST(ShapeSweep, KillAndResumeReproducesUninterruptedSweep)
{
    Program p = perturbedProgram(4);
    Topology topo = Topology::linearArray(6);
    std::vector<ShapeSpec> shapes;
    for (int queues : {1, 2, 3, 4}) {
        ShapeSpec shape;
        shape.name = "q=" + std::to_string(queues);
        shape.queuesPerLink = queues;
        shapes.push_back(std::move(shape));
    }
    std::vector<RunRequest> requests(3);
    requests[1].policy = PolicyKind::kFcfs;
    requests[2].policy = PolicyKind::kRandom;
    requests[2].seed = 5;

    ShapeSweepOptions plain;
    plain.numWorkers = 1;
    ShapeSweep goldenSweep(p, topo, shapes, plain);
    ShapeSweepResult golden = goldenSweep.run(requests);
    ASSERT_TRUE(golden.complete);

    const std::string journal =
        tempPath("shape_sweep_kill_resume.journal");
    std::remove(journal.c_str());
    ShapeSweepOptions crashy = plain;
    crashy.journalPath = journal;
    crashy.checkpointEvery = 7;
    crashy.stopAfterJournalRecords = 2; // "crash" every two records
    std::size_t replayed = 0;
    ShapeSweepResult resumed = runWithCrashes(
        p, topo, shapes, requests, crashy, 200, &replayed);

    ASSERT_EQ(resumed.rows.size(), golden.rows.size());
    EXPECT_GT(replayed, 0u);
    for (std::size_t i = 0; i < golden.rows.size(); ++i) {
        expectSameRunResult(resumed.rows[i].result,
                            golden.rows[i].result,
                            "resumed row " + std::to_string(i));
        EXPECT_EQ(resumed.rows[i].machineDigest,
                  golden.rows[i].machineDigest);
    }
    std::remove(journal.c_str());
}

TEST(ShapeSweep, CheckpointedRowContinuesInsteadOfRestarting)
{
    Program p = longRunProgram();
    Topology topo = Topology::linearArray(4);
    std::vector<ShapeSpec> shapes(1);
    shapes[0].name = "q=2";
    std::vector<RunRequest> requests(1);

    ShapeSweepOptions plain;
    plain.numWorkers = 1;
    ShapeSweep goldenSweep(p, topo, shapes, plain);
    ShapeSweepResult golden = goldenSweep.run(requests);
    ASSERT_EQ(golden.row(0, 0).result.status, RunStatus::kCompleted);
    ASSERT_GT(golden.row(0, 0).result.cycles, 60);

    const std::string journal = tempPath("shape_sweep_checkpoint.journal");
    std::remove(journal.c_str());
    ShapeSweepOptions crashy = plain;
    crashy.journalPath = journal;
    crashy.checkpointEvery = 20;
    crashy.stopAfterJournalRecords = 2;

    // First invocation: two mid-run checkpoints, then the simulated
    // crash — the row must be left unfinished but checkpointed.
    ShapeSweep first(p, topo, shapes, crashy);
    ShapeSweepResult partial = first.run(requests);
    EXPECT_FALSE(partial.complete);
    EXPECT_FALSE(partial.row(0, 0).finished);

    // Resumption must pick the run up mid-flight (a restored
    // checkpoint, not a restart) and finish bit-identically.
    std::size_t restored = 0;
    ShapeSweepResult resumed = runWithCrashes(
        p, topo, shapes, requests, crashy, 100, nullptr, &restored);
    EXPECT_GT(restored, 0u);
    expectSameRunResult(resumed.row(0, 0).result, golden.row(0, 0).result,
                        "checkpointed row");
    EXPECT_EQ(resumed.row(0, 0).machineDigest,
              golden.row(0, 0).machineDigest);
    std::remove(journal.c_str());
}

TEST(ShapeSweep, JournalReplayAndTornTailAreHandled)
{
    Program p = perturbedProgram(5);
    Topology topo = Topology::linearArray(6);
    std::vector<ShapeSpec> shapes;
    for (int queues : {1, 2}) {
        ShapeSpec shape;
        shape.name = "q=" + std::to_string(queues);
        shape.queuesPerLink = queues;
        shapes.push_back(std::move(shape));
    }
    std::vector<RunRequest> requests(2);
    requests[1].policy = PolicyKind::kFcfs;

    ShapeSweepOptions plain;
    plain.numWorkers = 1;
    ShapeSweep goldenSweep(p, topo, shapes, plain);
    ShapeSweepResult golden = goldenSweep.run(requests);

    const std::string journal = tempPath("shape_sweep_replay.journal");
    std::remove(journal.c_str());
    ShapeSweepOptions journaled = plain;
    journaled.journalPath = journal;
    {
        ShapeSweep sweep(p, topo, shapes, journaled);
        ShapeSweepResult result = sweep.run(requests);
        ASSERT_TRUE(result.complete);
        EXPECT_EQ(result.rowsFromJournal, 0u);
    }

    // Corrupt the tail the way a mid-write kill would.
    {
        std::FILE* f = std::fopen(journal.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        const std::uint8_t torn[] = {1, 0xff, 0xff, 0x03};
        std::fwrite(torn, 1, sizeof torn, f);
        std::fclose(f);
    }

    // Replay: every row comes from the journal, bit-identical, and
    // the torn tail is ignored.
    ShapeSweep replay(p, topo, shapes, journaled);
    ShapeSweepResult replayed = replay.run(requests);
    ASSERT_TRUE(replayed.complete);
    EXPECT_EQ(replayed.rowsFromJournal, golden.rows.size());
    for (std::size_t i = 0; i < golden.rows.size(); ++i) {
        EXPECT_TRUE(replayed.rows[i].fromJournal);
        expectSameRunResult(replayed.rows[i].result,
                            golden.rows[i].result,
                            "replayed row " + std::to_string(i));
        EXPECT_EQ(replayed.rows[i].machineDigest,
                  golden.rows[i].machineDigest);
    }

    // A different request batch must not resume a stale journal …
    std::vector<RunRequest> other(1);
    other[0].seed = 99;
    ShapeSweep fresh(p, topo, shapes, journaled);
    ShapeSweepResult refreshed = fresh.run(other);
    ASSERT_TRUE(refreshed.complete);
    EXPECT_EQ(refreshed.rowsFromJournal, 0u);

    // … and neither may a sweep whose session options change the
    // results (the memory-to-memory model here): same program,
    // shapes and requests, different machine semantics.
    ShapeSweepOptions memModel = journaled;
    memModel.session.memoryToMemory = true;
    ShapeSweep differentModel(p, topo, shapes, memModel);
    ShapeSweepResult recomputed = differentModel.run(other);
    ASSERT_TRUE(recomputed.complete);
    EXPECT_EQ(recomputed.rowsFromJournal, 0u);
    std::remove(journal.c_str());
}

// ---------------------------------------------------------------------
// (d) journal gating on programVersion and fault-plan digests
// ---------------------------------------------------------------------

TEST(ShapeSweep, ProgramVersionGatesJournalReuse)
{
    Program p = perturbedProgram(6);
    Topology topo = Topology::linearArray(6);
    std::vector<ShapeSpec> shapes(2);
    shapes[0].name = "q=1";
    shapes[0].queuesPerLink = 1;
    shapes[1].name = "q=2";
    shapes[1].queuesPerLink = 2;
    std::vector<RunRequest> requests(2);
    requests[1].policy = PolicyKind::kFcfs;

    const std::string journal = tempPath("shape_sweep_progver.journal");
    std::remove(journal.c_str());
    ShapeSweepOptions v1;
    v1.numWorkers = 1;
    v1.journalPath = journal;
    v1.programVersion = "ops-v1";
    {
        ShapeSweep sweep(p, topo, shapes, v1);
        ShapeSweepResult result = sweep.run(requests);
        ASSERT_TRUE(result.complete);
        EXPECT_EQ(result.rowsFromJournal, 0u);
    }
    {
        // The same declared version replays everything.
        ShapeSweep sweep(p, topo, shapes, v1);
        ShapeSweepResult result = sweep.run(requests);
        ASSERT_TRUE(result.complete);
        EXPECT_EQ(result.rowsFromJournal,
                  shapes.size() * requests.size());
    }
    {
        // A bumped version (the op bodies allegedly changed) must
        // refuse the stale journal and recompute from scratch.
        ShapeSweepOptions v2 = v1;
        v2.programVersion = "ops-v2";
        ShapeSweep sweep(p, topo, shapes, v2);
        ShapeSweepResult result = sweep.run(requests);
        ASSERT_TRUE(result.complete);
        EXPECT_EQ(result.rowsFromJournal, 0u);
    }
    std::remove(journal.c_str());
}

/** Two opposed lock-step streams spanning a linear array (each cell
 *  alternates write/read, so buffering needs stay bounded): killing a
 *  middle link is guaranteed to freeze both. */
Program
opposedStreams()
{
    Program p(6);
    MessageId a = p.declareMessage("A", 0, 5);
    MessageId b = p.declareMessage("B", 5, 0);
    for (int w = 0; w < 20; ++w) {
        p.write(0, a);
        p.read(0, b);
        p.write(5, b);
        p.read(5, a);
    }
    return p;
}

TEST(ShapeSweep, FaultAxisKillAndResumeReproducesUninterruptedSweep)
{
    Program p = opposedStreams();
    Topology topo = Topology::linearArray(6);
    std::vector<ShapeSpec> shapes(1);
    shapes[0].name = "q=2";
    shapes[0].queuesPerLink = 2;

    // The fault-plan request axis: healthy, transient, degraded, and
    // fatally killed rows in one sweep. Plans must outlive the sweep.
    const LinkIndex middle = *topo.linkBetween(2, 3);
    std::vector<sim::FaultPlan> plans(3);
    {
        sim::FaultEvent stall;
        stall.cycle = 5;
        stall.kind = sim::FaultKind::kStallLink;
        stall.link = middle;
        stall.arg = 10;
        plans[0].add(stall);
        sim::FaultEvent degrade;
        degrade.cycle = 3;
        degrade.kind = sim::FaultKind::kDegradeQueue;
        degrade.link = middle;
        degrade.queue = 0;
        degrade.arg = 1;
        plans[1].add(degrade);
        sim::FaultEvent kill;
        kill.cycle = 8;
        kill.kind = sim::FaultKind::kKillLink;
        kill.link = middle;
        plans[2].add(kill);
    }
    std::vector<RunRequest> requests(4);
    for (std::size_t i = 0; i < plans.size(); ++i)
        requests[i + 1].faults = &plans[i];

    ShapeSweepOptions plain;
    plain.numWorkers = 1;
    ShapeSweep goldenSweep(p, topo, shapes, plain);
    ShapeSweepResult golden = goldenSweep.run(requests);
    ASSERT_TRUE(golden.complete);
    EXPECT_EQ(golden.row(0, 0).result.status, RunStatus::kCompleted);
    EXPECT_EQ(golden.row(0, 1).result.status, RunStatus::kCompleted);
    EXPECT_EQ(golden.row(0, 2).result.status, RunStatus::kCompleted);
    EXPECT_EQ(golden.row(0, 3).result.status, RunStatus::kFaulted);

    // Crash-resume over the faulted axis: mid-run checkpoints land
    // inside fault schedules, and resumed rows must reproduce the
    // uninterrupted sweep bit-identically.
    const std::string journal = tempPath("shape_sweep_fault.journal");
    std::remove(journal.c_str());
    ShapeSweepOptions crashy = plain;
    crashy.journalPath = journal;
    crashy.checkpointEvery = 6;
    crashy.stopAfterJournalRecords = 1;
    std::size_t replayed = 0;
    std::size_t restored = 0;
    ShapeSweepResult resumed = runWithCrashes(
        p, topo, shapes, requests, crashy, 200, &replayed, &restored);
    ASSERT_EQ(resumed.rows.size(), golden.rows.size());
    EXPECT_GT(replayed, 0u);
    EXPECT_GT(restored, 0u);
    for (std::size_t i = 0; i < golden.rows.size(); ++i) {
        expectSameRunResult(resumed.rows[i].result,
                            golden.rows[i].result,
                            "fault row " + std::to_string(i));
        EXPECT_EQ(resumed.rows[i].machineDigest,
                  golden.rows[i].machineDigest);
    }

    // Editing one plan invalidates the journal: the config digest
    // folds every request's plan digest.
    sim::FaultEvent extra;
    extra.cycle = 9;
    extra.kind = sim::FaultKind::kStallLink;
    extra.link = middle;
    extra.arg = 2;
    plans[2].add(extra);
    ShapeSweepOptions journaled = plain;
    journaled.journalPath = journal;
    ShapeSweep edited(p, topo, shapes, journaled);
    ShapeSweepResult recomputed = edited.run(requests);
    ASSERT_TRUE(recomputed.complete);
    EXPECT_EQ(recomputed.rowsFromJournal, 0u);
    std::remove(journal.c_str());
}

} // namespace
} // namespace syscomm
