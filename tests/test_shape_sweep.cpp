/**
 * @file
 * ShapeSweep / CompiledProgram / checkpoint-persistence coverage.
 *
 * The contracts under test, in order of importance:
 *  - a shared-compile shape sweep is bit-identical to N independent
 *    SimSession builds, across policies and seeds, while running the
 *    program-side analyses exactly once (asserted via
 *    CompiledProgram::buildCount);
 *  - a sweep killed mid-flight (journal record budget) and resumed
 *    from its journal reproduces the uninterrupted sweep's results
 *    bit-identically — finished rows replay, checkpointed rows
 *    continue from their serialized machine state;
 *  - saveCheckpoint/restoreCheckpoint round-trips a paused run across
 *    sessions and across kernels.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/program_gen.h"
#include "sim/fault.h"
#include "sim/fnv.h"
#include "sim/shape_sweep.h"
#include "test_support.h"

namespace syscomm {
namespace {

using sim::Collect;
using sim::CompiledProgram;
using sim::KernelKind;
using sim::PolicyKind;
using sim::RunRequest;
using sim::RunResult;
using sim::RunStatus;
using sim::SessionOptions;
using sim::ShapeSpec;
using sim::ShapeSweep;
using sim::ShapeSweepOptions;
using sim::ShapeSweepResult;
using sim::SimSession;

/** Seed-sensitive workload mixing completions and deadlocks. */
Program
perturbedProgram(std::uint64_t seed)
{
    Topology topo = Topology::linearArray(6);
    GenOptions gen;
    gen.numMessages = 8;
    gen.maxWords = 4;
    gen.seed = 300 + seed;
    gen.interleave = 0.5;
    Program p = randomDeadlockFreeProgram(topo, gen);
    return perturbProgram(p, static_cast<int>(1 + seed % 3), seed);
}

/**
 * One long slow stream (compute gaps between words): a run of a few
 * hundred cycles, so checkpoint intervals land mid-flight.
 */
Program
longRunProgram()
{
    Program p(4);
    MessageId id = p.declareMessage("S", 0, 3);
    for (int w = 0; w < 30; ++w) {
        for (int g = 0; g < 6; ++g) {
            p.compute(0,
                      [](CellContext& ctx) { ctx.local(0) += 1.0; });
        }
        p.write(0, id);
    }
    for (int w = 0; w < 30; ++w)
        p.read(3, id);
    return p;
}

/** The acceptance-criteria ladder: 4 queue counts x 4 capacities. */
std::vector<ShapeSpec>
ladder16()
{
    std::vector<ShapeSpec> shapes;
    for (int queues : {1, 2, 3, 4}) {
        for (int capacity : {1, 2, 4, 8}) {
            ShapeSpec shape;
            shape.name = "q=" + std::to_string(queues) +
                         "/cap=" + std::to_string(capacity);
            shape.queuesPerLink = queues;
            shape.queueCapacity = capacity;
            shapes.push_back(std::move(shape));
        }
    }
    return shapes;
}

MachineSpec
specFor(const Topology& topo, const ShapeSpec& shape)
{
    MachineSpec spec;
    spec.topo = topo;
    spec.queuesPerLink = shape.queuesPerLink;
    spec.queueCapacity = shape.queueCapacity;
    spec.extensionCapacity = shape.extensionCapacity;
    spec.extensionPenalty = shape.extensionPenalty;
    return spec;
}

std::string
tempPath(const std::string& name)
{
    return testing::TempDir() + name;
}

// ---------------------------------------------------------------------
// (a) shared compile == independent sessions, one analysis pass
// ---------------------------------------------------------------------

TEST(ShapeSweep, GoldenMatchesIndependentSessionsAndCompilesOnce)
{
    Program p = perturbedProgram(1);
    Topology topo = Topology::linearArray(6);
    std::vector<ShapeSpec> shapes = ladder16();

    std::vector<RunRequest> requests;
    for (PolicyKind policy :
         {PolicyKind::kCompatible, PolicyKind::kFcfs,
          PolicyKind::kRandom}) {
        for (std::uint64_t seed : {1ull, 7ull}) {
            RunRequest request;
            request.policy = policy;
            request.seed = seed;
            requests.push_back(request);
        }
    }

    ShapeSweepOptions options;
    options.numWorkers = 3;
    ShapeSweep sweep(p, topo, shapes, options);
    const std::int64_t before = CompiledProgram::buildCount();
    ShapeSweepResult result = sweep.run(requests);
    // >= 16 shapes, exactly one program-side analysis pass.
    EXPECT_EQ(CompiledProgram::buildCount() - before, 1);
    ASSERT_TRUE(result.complete);
    ASSERT_EQ(result.rows.size(), shapes.size() * requests.size());

    bool sawDeadlock = false;
    bool sawCompleted = false;
    for (std::size_t s = 0; s < shapes.size(); ++s) {
        // The spec must outlive the session (it is held by
        // reference).
        MachineSpec freshSpec = specFor(topo, shapes[s]);
        SimSession fresh(p, freshSpec);
        for (std::size_t r = 0; r < requests.size(); ++r) {
            RunResult want = fresh.run(requests[r]);
            const std::string ctx = "shape=" + shapes[s].name +
                                    " request=" + std::to_string(r);
            expectSameRunResult(result.row(s, r).result, want, ctx);
            EXPECT_EQ(result.row(s, r).machineDigest,
                      fresh.machineDigest())
                << ctx;
            sawDeadlock |= want.status == RunStatus::kDeadlocked;
            sawCompleted |= want.status == RunStatus::kCompleted;
        }
    }
    // The workload must exercise both outcomes or the golden check
    // proves less than it claims.
    EXPECT_TRUE(sawDeadlock);
    EXPECT_TRUE(sawCompleted);

    // A second batch on the same sweep reuses sessions and compile.
    const std::int64_t again = CompiledProgram::buildCount();
    ShapeSweepResult rerun = sweep.run(requests);
    EXPECT_EQ(CompiledProgram::buildCount(), again);
    for (std::size_t i = 0; i < result.rows.size(); ++i) {
        expectSameRunResult(rerun.rows[i].result, result.rows[i].result,
                            "rerun row " + std::to_string(i));
        EXPECT_EQ(rerun.rows[i].machineDigest,
                  result.rows[i].machineDigest);
    }
}

TEST(ShapeSweep, LadderSharesOneTopology)
{
    Program p = perturbedProgram(1);
    Topology topo = Topology::linearArray(6);
    ShapeSweep sweep(p, topo, ladder16());
    sweep.run({RunRequest{}});

    // One graph serves the whole ladder: every per-shape spec and the
    // shared CompiledProgram alias the same Topology node instead of
    // holding copies (the by-value layout kept N+2 alive).
    const Topology* shared = sweep.spec(0).topo.ptr().get();
    for (std::size_t s = 1; s < sweep.shapes().size(); ++s)
        EXPECT_EQ(sweep.spec(s).topo.ptr().get(), shared);
    EXPECT_EQ(&sweep.compiled()->topo(), shared);

    // Copying a spec shares rather than copies.
    MachineSpec copy = sweep.spec(0);
    EXPECT_EQ(copy.topo.ptr().get(), shared);
    // Assigning a fresh Topology makes a fresh node.
    copy.topo = Topology::linearArray(6);
    EXPECT_NE(copy.topo.ptr().get(), shared);
}

TEST(ShapeSweep, WorkerCountDoesNotChangeResults)
{
    Program p = perturbedProgram(2);
    Topology topo = Topology::linearArray(6);
    std::vector<ShapeSpec> shapes = ladder16();
    std::vector<RunRequest> requests(2);
    requests[1].policy = PolicyKind::kFcfs;

    ShapeSweepOptions serial;
    serial.numWorkers = 1;
    ShapeSweep sweepSerial(p, topo, shapes, serial);
    ShapeSweepResult golden = sweepSerial.run(requests);

    ShapeSweepOptions threaded;
    threaded.numWorkers = 4;
    ShapeSweep sweepThreaded(p, topo, shapes, threaded);
    ShapeSweepResult result = sweepThreaded.run(requests);

    ASSERT_EQ(result.rows.size(), golden.rows.size());
    for (std::size_t i = 0; i < golden.rows.size(); ++i) {
        expectSameRunResult(result.rows[i].result, golden.rows[i].result,
                            "row " + std::to_string(i));
        EXPECT_EQ(result.rows[i].machineDigest,
                  golden.rows[i].machineDigest);
    }
}

TEST(SimSession, CompiledTopologyMismatchIsConfigError)
{
    Program p = perturbedProgram(3);
    Topology topo = Topology::linearArray(6);
    auto compiled = CompiledProgram::compile(p, topo);
    ASSERT_TRUE(compiled->valid());

    MachineSpec other;
    other.topo = Topology::linearArray(8);
    SimSession session(compiled, other);
    EXPECT_FALSE(session.valid());
    RunResult r = session.run({});
    EXPECT_EQ(r.status, RunStatus::kConfigError);
    EXPECT_NE(r.error.find("topology"), std::string::npos);
}

// ---------------------------------------------------------------------
// (b) checkpoint save/restore across sessions and kernels
// ---------------------------------------------------------------------

TEST(SimSession, CheckpointRestoresAcrossSessionsAndKernels)
{
    Program p = longRunProgram();
    MachineSpec spec;
    spec.topo = Topology::linearArray(4);
    spec.queuesPerLink = 2;

    for (PolicyKind policy : {PolicyKind::kCompatible, PolicyKind::kRandom,
                              PolicyKind::kFcfs}) {
        RunRequest request;
        request.policy = policy;
        request.seed = 11;

        SimSession oracle(p, spec);
        RunResult want = oracle.run(request);
        ASSERT_EQ(want.status, RunStatus::kCompleted);
        ASSERT_GT(want.cycles, 60);

        SimSession donor(p, spec);
        RunRequest paused = request;
        paused.pauseAt = want.cycles / 2;
        RunResult snap = donor.run(paused);
        ASSERT_EQ(snap.status, RunStatus::kPaused);
        std::vector<std::uint8_t> bytes;
        ASSERT_TRUE(donor.saveCheckpoint(bytes));
        ASSERT_FALSE(bytes.empty());

        for (KernelKind kernel :
             {KernelKind::kEventDriven, KernelKind::kReference}) {
            SessionOptions options;
            options.kernel = kernel;
            SimSession heir(p, spec, options);
            ASSERT_TRUE(heir.restoreCheckpoint(request, bytes))
                << sim::kernelKindName(kernel);
            EXPECT_TRUE(heir.paused());
            EXPECT_EQ(heir.machineDigest(), donor.machineDigest());
            RunResult got = heir.resume();
            expectSameRunResult(
                got, want,
                std::string("restored finish on ") +
                    sim::kernelKindName(kernel) + " policy " +
                    sim::policyKindName(policy));
            EXPECT_EQ(heir.machineDigest(), oracle.machineDigest());
        }
    }
}

TEST(SimSession, CheckpointRejectsMisuseAndCorruption)
{
    Program p = longRunProgram();
    MachineSpec spec;
    spec.topo = Topology::linearArray(4);
    spec.queuesPerLink = 2;

    SimSession session(p, spec);
    std::vector<std::uint8_t> bytes;
    // Not paused: nothing to save.
    EXPECT_FALSE(session.saveCheckpoint(bytes));

    RunRequest paused;
    paused.pauseAt = 40;
    ASSERT_EQ(session.run(paused).status, RunStatus::kPaused);
    ASSERT_TRUE(session.saveCheckpoint(bytes));

    // A collecting run cannot be checkpointed (vectors are not
    // serialized) …
    SimSession collector(p, spec);
    RunRequest collecting = paused;
    collecting.collect = Collect::kEvents;
    ASSERT_EQ(collector.run(collecting).status, RunStatus::kPaused);
    std::vector<std::uint8_t> unused;
    EXPECT_FALSE(collector.saveCheckpoint(unused));
    // … nor restored into one.
    SimSession heir(p, spec);
    RunRequest collectingRestore;
    collectingRestore.collect = Collect::kEvents;
    EXPECT_FALSE(heir.restoreCheckpoint(collectingRestore, bytes));

    // Truncated and bit-flipped streams are rejected.
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.end() - bytes.size() / 3);
    EXPECT_FALSE(heir.restoreCheckpoint({}, truncated));
    // Flip a bit of the recorded machine digest (bytes 8..15 after
    // the magic and version): the end-to-end digest check must
    // refuse the stream.
    std::vector<std::uint8_t> flipped = bytes;
    flipped[12] ^= 0x40;
    EXPECT_FALSE(heir.restoreCheckpoint({}, flipped));

    // A machine of a different shape refuses the stream.
    MachineSpec other = spec;
    other.queuesPerLink = 3;
    SimSession mismatched(p, other);
    EXPECT_FALSE(mismatched.restoreCheckpoint({}, bytes));

    // And the intact stream still restores fine afterwards.
    ASSERT_TRUE(heir.restoreCheckpoint({}, bytes));
    RunResult got = heir.resume();
    SimSession oracle(p, spec);
    expectSameRunResult(got, oracle.run({}), "post-rejection restore");
}

// ---------------------------------------------------------------------
// (c) kill-mid-sweep -> resume -> bit-identical sweep
// ---------------------------------------------------------------------

/** Drive a journaled sweep to completion across simulated crashes. */
ShapeSweepResult
runWithCrashes(const Program& p, const Topology& topo,
               const std::vector<ShapeSpec>& shapes,
               const std::vector<RunRequest>& requests,
               ShapeSweepOptions options, int maxInvocations,
               std::size_t* totalReplayed = nullptr,
               std::size_t* totalRestored = nullptr)
{
    for (int attempt = 0; attempt < maxInvocations; ++attempt) {
        ShapeSweep sweep(p, topo, shapes, options);
        ShapeSweepResult result = sweep.run(requests);
        if (totalReplayed != nullptr)
            *totalReplayed += result.rowsFromJournal;
        if (totalRestored != nullptr)
            *totalRestored += result.checkpointsRestored;
        if (result.complete)
            return result;
    }
    ADD_FAILURE() << "sweep did not complete in " << maxInvocations
                  << " invocations";
    return {};
}

TEST(ShapeSweep, KillAndResumeReproducesUninterruptedSweep)
{
    Program p = perturbedProgram(4);
    Topology topo = Topology::linearArray(6);
    std::vector<ShapeSpec> shapes;
    for (int queues : {1, 2, 3, 4}) {
        ShapeSpec shape;
        shape.name = "q=" + std::to_string(queues);
        shape.queuesPerLink = queues;
        shapes.push_back(std::move(shape));
    }
    std::vector<RunRequest> requests(3);
    requests[1].policy = PolicyKind::kFcfs;
    requests[2].policy = PolicyKind::kRandom;
    requests[2].seed = 5;

    ShapeSweepOptions plain;
    plain.numWorkers = 1;
    ShapeSweep goldenSweep(p, topo, shapes, plain);
    ShapeSweepResult golden = goldenSweep.run(requests);
    ASSERT_TRUE(golden.complete);

    const std::string journal =
        tempPath("shape_sweep_kill_resume.journal");
    std::remove(journal.c_str());
    ShapeSweepOptions crashy = plain;
    crashy.journalPath = journal;
    crashy.checkpointEvery = 7;
    crashy.stopAfterJournalRecords = 2; // "crash" every two records
    std::size_t replayed = 0;
    ShapeSweepResult resumed = runWithCrashes(
        p, topo, shapes, requests, crashy, 200, &replayed);

    ASSERT_EQ(resumed.rows.size(), golden.rows.size());
    EXPECT_GT(replayed, 0u);
    for (std::size_t i = 0; i < golden.rows.size(); ++i) {
        expectSameRunResult(resumed.rows[i].result,
                            golden.rows[i].result,
                            "resumed row " + std::to_string(i));
        EXPECT_EQ(resumed.rows[i].machineDigest,
                  golden.rows[i].machineDigest);
    }
    std::remove(journal.c_str());
}

TEST(ShapeSweep, CheckpointedRowContinuesInsteadOfRestarting)
{
    Program p = longRunProgram();
    Topology topo = Topology::linearArray(4);
    std::vector<ShapeSpec> shapes(1);
    shapes[0].name = "q=2";
    std::vector<RunRequest> requests(1);

    ShapeSweepOptions plain;
    plain.numWorkers = 1;
    ShapeSweep goldenSweep(p, topo, shapes, plain);
    ShapeSweepResult golden = goldenSweep.run(requests);
    ASSERT_EQ(golden.row(0, 0).result.status, RunStatus::kCompleted);
    ASSERT_GT(golden.row(0, 0).result.cycles, 60);

    const std::string journal = tempPath("shape_sweep_checkpoint.journal");
    std::remove(journal.c_str());
    ShapeSweepOptions crashy = plain;
    crashy.journalPath = journal;
    crashy.checkpointEvery = 20;
    crashy.stopAfterJournalRecords = 2;

    // First invocation: two mid-run checkpoints, then the simulated
    // crash — the row must be left unfinished but checkpointed.
    ShapeSweep first(p, topo, shapes, crashy);
    ShapeSweepResult partial = first.run(requests);
    EXPECT_FALSE(partial.complete);
    EXPECT_FALSE(partial.row(0, 0).finished);

    // Resumption must pick the run up mid-flight (a restored
    // checkpoint, not a restart) and finish bit-identically.
    std::size_t restored = 0;
    ShapeSweepResult resumed = runWithCrashes(
        p, topo, shapes, requests, crashy, 100, nullptr, &restored);
    EXPECT_GT(restored, 0u);
    expectSameRunResult(resumed.row(0, 0).result, golden.row(0, 0).result,
                        "checkpointed row");
    EXPECT_EQ(resumed.row(0, 0).machineDigest,
              golden.row(0, 0).machineDigest);
    std::remove(journal.c_str());
}

TEST(ShapeSweep, JournalReplayAndTornTailAreHandled)
{
    Program p = perturbedProgram(5);
    Topology topo = Topology::linearArray(6);
    std::vector<ShapeSpec> shapes;
    for (int queues : {1, 2}) {
        ShapeSpec shape;
        shape.name = "q=" + std::to_string(queues);
        shape.queuesPerLink = queues;
        shapes.push_back(std::move(shape));
    }
    std::vector<RunRequest> requests(2);
    requests[1].policy = PolicyKind::kFcfs;

    ShapeSweepOptions plain;
    plain.numWorkers = 1;
    ShapeSweep goldenSweep(p, topo, shapes, plain);
    ShapeSweepResult golden = goldenSweep.run(requests);

    const std::string journal = tempPath("shape_sweep_replay.journal");
    std::remove(journal.c_str());
    ShapeSweepOptions journaled = plain;
    journaled.journalPath = journal;
    {
        ShapeSweep sweep(p, topo, shapes, journaled);
        ShapeSweepResult result = sweep.run(requests);
        ASSERT_TRUE(result.complete);
        EXPECT_EQ(result.rowsFromJournal, 0u);
    }

    // Corrupt the tail the way a mid-write kill would.
    {
        std::FILE* f = std::fopen(journal.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        const std::uint8_t torn[] = {1, 0xff, 0xff, 0x03};
        std::fwrite(torn, 1, sizeof torn, f);
        std::fclose(f);
    }

    // Replay: every row comes from the journal, bit-identical, and
    // the torn tail is ignored.
    ShapeSweep replay(p, topo, shapes, journaled);
    ShapeSweepResult replayed = replay.run(requests);
    ASSERT_TRUE(replayed.complete);
    EXPECT_EQ(replayed.rowsFromJournal, golden.rows.size());
    for (std::size_t i = 0; i < golden.rows.size(); ++i) {
        EXPECT_TRUE(replayed.rows[i].fromJournal);
        expectSameRunResult(replayed.rows[i].result,
                            golden.rows[i].result,
                            "replayed row " + std::to_string(i));
        EXPECT_EQ(replayed.rows[i].machineDigest,
                  golden.rows[i].machineDigest);
    }

    // A different request batch must not resume a stale journal …
    std::vector<RunRequest> other(1);
    other[0].seed = 99;
    ShapeSweep fresh(p, topo, shapes, journaled);
    ShapeSweepResult refreshed = fresh.run(other);
    ASSERT_TRUE(refreshed.complete);
    EXPECT_EQ(refreshed.rowsFromJournal, 0u);

    // … and neither may a sweep whose session options change the
    // results (the memory-to-memory model here): same program,
    // shapes and requests, different machine semantics.
    ShapeSweepOptions memModel = journaled;
    memModel.session.memoryToMemory = true;
    ShapeSweep differentModel(p, topo, shapes, memModel);
    ShapeSweepResult recomputed = differentModel.run(other);
    ASSERT_TRUE(recomputed.complete);
    EXPECT_EQ(recomputed.rowsFromJournal, 0u);
    std::remove(journal.c_str());
}

// ---------------------------------------------------------------------
// (d) journal gating on programVersion and fault-plan digests
// ---------------------------------------------------------------------

TEST(ShapeSweep, ProgramVersionGatesJournalReuse)
{
    Program p = perturbedProgram(6);
    Topology topo = Topology::linearArray(6);
    std::vector<ShapeSpec> shapes(2);
    shapes[0].name = "q=1";
    shapes[0].queuesPerLink = 1;
    shapes[1].name = "q=2";
    shapes[1].queuesPerLink = 2;
    std::vector<RunRequest> requests(2);
    requests[1].policy = PolicyKind::kFcfs;

    const std::string journal = tempPath("shape_sweep_progver.journal");
    std::remove(journal.c_str());
    ShapeSweepOptions v1;
    v1.numWorkers = 1;
    v1.journalPath = journal;
    v1.programVersion = "ops-v1";
    {
        ShapeSweep sweep(p, topo, shapes, v1);
        ShapeSweepResult result = sweep.run(requests);
        ASSERT_TRUE(result.complete);
        EXPECT_EQ(result.rowsFromJournal, 0u);
    }
    {
        // The same declared version replays everything.
        ShapeSweep sweep(p, topo, shapes, v1);
        ShapeSweepResult result = sweep.run(requests);
        ASSERT_TRUE(result.complete);
        EXPECT_EQ(result.rowsFromJournal,
                  shapes.size() * requests.size());
    }
    {
        // A bumped version (the op bodies allegedly changed) must
        // refuse the stale journal and recompute from scratch.
        ShapeSweepOptions v2 = v1;
        v2.programVersion = "ops-v2";
        ShapeSweep sweep(p, topo, shapes, v2);
        ShapeSweepResult result = sweep.run(requests);
        ASSERT_TRUE(result.complete);
        EXPECT_EQ(result.rowsFromJournal, 0u);
    }
    std::remove(journal.c_str());
}

/** Two opposed lock-step streams spanning a linear array (each cell
 *  alternates write/read, so buffering needs stay bounded): killing a
 *  middle link is guaranteed to freeze both. */
Program
opposedStreams()
{
    Program p(6);
    MessageId a = p.declareMessage("A", 0, 5);
    MessageId b = p.declareMessage("B", 5, 0);
    for (int w = 0; w < 20; ++w) {
        p.write(0, a);
        p.read(0, b);
        p.write(5, b);
        p.read(5, a);
    }
    return p;
}

TEST(ShapeSweep, FaultAxisKillAndResumeReproducesUninterruptedSweep)
{
    Program p = opposedStreams();
    Topology topo = Topology::linearArray(6);
    std::vector<ShapeSpec> shapes(1);
    shapes[0].name = "q=2";
    shapes[0].queuesPerLink = 2;

    // The fault-plan request axis: healthy, transient, degraded, and
    // fatally killed rows in one sweep. Plans must outlive the sweep.
    const LinkIndex middle = *topo.linkBetween(2, 3);
    std::vector<sim::FaultPlan> plans(3);
    {
        sim::FaultEvent stall;
        stall.cycle = 5;
        stall.kind = sim::FaultKind::kStallLink;
        stall.link = middle;
        stall.arg = 10;
        plans[0].add(stall);
        sim::FaultEvent degrade;
        degrade.cycle = 3;
        degrade.kind = sim::FaultKind::kDegradeQueue;
        degrade.link = middle;
        degrade.queue = 0;
        degrade.arg = 1;
        plans[1].add(degrade);
        sim::FaultEvent kill;
        kill.cycle = 8;
        kill.kind = sim::FaultKind::kKillLink;
        kill.link = middle;
        plans[2].add(kill);
    }
    std::vector<RunRequest> requests(4);
    for (std::size_t i = 0; i < plans.size(); ++i)
        requests[i + 1].faults = &plans[i];

    ShapeSweepOptions plain;
    plain.numWorkers = 1;
    ShapeSweep goldenSweep(p, topo, shapes, plain);
    ShapeSweepResult golden = goldenSweep.run(requests);
    ASSERT_TRUE(golden.complete);
    EXPECT_EQ(golden.row(0, 0).result.status, RunStatus::kCompleted);
    EXPECT_EQ(golden.row(0, 1).result.status, RunStatus::kCompleted);
    EXPECT_EQ(golden.row(0, 2).result.status, RunStatus::kCompleted);
    EXPECT_EQ(golden.row(0, 3).result.status, RunStatus::kFaulted);

    // Crash-resume over the faulted axis: mid-run checkpoints land
    // inside fault schedules, and resumed rows must reproduce the
    // uninterrupted sweep bit-identically.
    const std::string journal = tempPath("shape_sweep_fault.journal");
    std::remove(journal.c_str());
    ShapeSweepOptions crashy = plain;
    crashy.journalPath = journal;
    crashy.checkpointEvery = 6;
    crashy.stopAfterJournalRecords = 1;
    std::size_t replayed = 0;
    std::size_t restored = 0;
    ShapeSweepResult resumed = runWithCrashes(
        p, topo, shapes, requests, crashy, 200, &replayed, &restored);
    ASSERT_EQ(resumed.rows.size(), golden.rows.size());
    EXPECT_GT(replayed, 0u);
    EXPECT_GT(restored, 0u);
    for (std::size_t i = 0; i < golden.rows.size(); ++i) {
        expectSameRunResult(resumed.rows[i].result,
                            golden.rows[i].result,
                            "fault row " + std::to_string(i));
        EXPECT_EQ(resumed.rows[i].machineDigest,
                  golden.rows[i].machineDigest);
    }

    // Editing one plan invalidates the journal: the config digest
    // folds every request's plan digest.
    sim::FaultEvent extra;
    extra.cycle = 9;
    extra.kind = sim::FaultKind::kStallLink;
    extra.link = middle;
    extra.arg = 2;
    plans[2].add(extra);
    ShapeSweepOptions journaled = plain;
    journaled.journalPath = journal;
    ShapeSweep edited(p, topo, shapes, journaled);
    ShapeSweepResult recomputed = edited.run(requests);
    ASSERT_TRUE(recomputed.complete);
    EXPECT_EQ(recomputed.rowsFromJournal, 0u);
    std::remove(journal.c_str());
}

// ---------------------------------------------------------------------
// (e) cell-granular scheduler: bit-identity on a skewed ladder,
//     session-pool bounds, crash-resume mid-steal, worker sizing
// ---------------------------------------------------------------------

/**
 * Disjoint writer->reader burst pairs on a linear array: transfer
 * only (journal-coverable) and shape-sensitive — with capacity 1 +
 * extension >= words, every buffered word pays the extension penalty
 * when it surfaces, so the run stretches to ~words * penalty cycles,
 * while a capacity >= words shape finishes in ~2 * words.
 */
Program
burstPairs(int pairs, int words)
{
    Program p(2 * pairs);
    for (int i = 0; i < pairs; ++i) {
        const CellId from = static_cast<CellId>(2 * i);
        const CellId to = static_cast<CellId>(2 * i + 1);
        const MessageId id =
            p.declareMessage("B" + std::to_string(i), from, to);
        for (int w = 0; w < words; ++w)
            p.write(from, id);
        for (int w = 0; w < words; ++w)
            p.read(to, id);
    }
    return p;
}

/** One giant rung (extension-penalty bound) + @p tiny fast ones: the
 *  ladder shape that inverted the old whole-shape scaling curve. */
std::vector<ShapeSpec>
skewedLadder(int words, int penalty, int tiny)
{
    std::vector<ShapeSpec> shapes;
    ShapeSpec giant;
    giant.name = "giant";
    giant.queueCapacity = 1;
    giant.extensionCapacity = words;
    giant.extensionPenalty = penalty;
    shapes.push_back(std::move(giant));
    for (int k = 0; k < tiny; ++k) {
        ShapeSpec shape;
        shape.name = "tiny-" + std::to_string(k);
        shape.queueCapacity = words + k;
        shapes.push_back(std::move(shape));
    }
    return shapes;
}

void
expectSameRows(const ShapeSweepResult& got,
               const ShapeSweepResult& want, const std::string& what)
{
    ASSERT_EQ(got.rows.size(), want.rows.size()) << what;
    for (std::size_t i = 0; i < want.rows.size(); ++i) {
        expectSameRunResult(got.rows[i].result, want.rows[i].result,
                            what + " row " + std::to_string(i));
        EXPECT_EQ(got.rows[i].machineDigest,
                  want.rows[i].machineDigest)
            << what << " row " << i;
    }
}

TEST(ShapeSweep, SkewedLadderBitIdenticalAcrossSchedulers)
{
    // One 2k-cycle rung + fifteen ~64-cycle rungs: the miniature of
    // the bench's 64k/256 skew, small enough for a unit test.
    Program p = burstPairs(2, 32);
    Topology topo = Topology::linearArray(4);
    std::vector<ShapeSpec> shapes = skewedLadder(32, 64, 15);

    std::vector<RunRequest> requests(4);
    for (std::size_t r = 0; r < requests.size(); ++r)
        requests[r].seed = 1 + r;
    requests[3].policy = PolicyKind::kFcfs;

    ShapeSweepOptions serial;
    serial.numWorkers = 1;
    ShapeSweep serialSweep(p, topo, shapes, serial);
    ShapeSweepResult golden = serialSweep.run(requests);
    ASSERT_TRUE(golden.complete);
    // The skew is real: the giant rung runs ~words*penalty cycles.
    EXPECT_GT(golden.row(0, 0).result.cycles, 1000);
    EXPECT_LT(golden.row(1, 0).result.cycles, 200);

    ShapeSweepOptions cells;
    cells.numWorkers = 4;
    ShapeSweep cellSweep(p, topo, shapes, cells);
    ShapeSweepResult cellResult = cellSweep.run(requests);
    ASSERT_TRUE(cellResult.complete);
    expectSameRows(cellResult, golden, "cell-granular");

    ShapeSweepOptions legacy;
    legacy.numWorkers = 4;
    legacy.shapeGranularDispatch = true;
    ShapeSweep legacySweep(p, topo, shapes, legacy);
    ShapeSweepResult legacyResult = legacySweep.run(requests);
    ASSERT_TRUE(legacyResult.complete);
    expectSameRows(legacyResult, golden, "shape-granular");
}

TEST(ShapeSweep, BoundedSessionPoolBlocksAndStaysBitIdentical)
{
    // 4 workers contending for a single pooled session per shape:
    // the checkout path must block (not clone past the bound) and
    // results must not depend on which worker won.
    Program p = burstPairs(2, 16);
    Topology topo = Topology::linearArray(4);
    std::vector<ShapeSpec> shapes = skewedLadder(16, 16, 3);
    std::vector<RunRequest> requests(6);
    for (std::size_t r = 0; r < requests.size(); ++r)
        requests[r].seed = 1 + r;

    ShapeSweepOptions serial;
    serial.numWorkers = 1;
    ShapeSweep serialSweep(p, topo, shapes, serial);
    ShapeSweepResult golden = serialSweep.run(requests);
    ASSERT_TRUE(golden.complete);

    ShapeSweepOptions bounded;
    bounded.numWorkers = 4;
    bounded.maxSessionsPerShape = 1;
    ShapeSweep boundedSweep(p, topo, shapes, bounded);
    ShapeSweepResult result = boundedSweep.run(requests);
    ASSERT_TRUE(result.complete);
    expectSameRows(result, golden, "bounded-pool");
}

TEST(ShapeSweep, CrashResumeMidStealReproducesMultiWorkerSweep)
{
    // The new failure surface: a crash while several workers hold
    // cells of the *same* shape. Kill every few records at 4 workers
    // and resume until done; the final grid must equal an
    // uninterrupted serial sweep bit-for-bit.
    Program p = burstPairs(2, 24);
    Topology topo = Topology::linearArray(4);
    std::vector<ShapeSpec> shapes = skewedLadder(24, 32, 5);
    std::vector<RunRequest> requests(4);
    for (std::size_t r = 0; r < requests.size(); ++r)
        requests[r].seed = 1 + r;

    ShapeSweepOptions plain;
    plain.numWorkers = 1;
    ShapeSweep goldenSweep(p, topo, shapes, plain);
    ShapeSweepResult golden = goldenSweep.run(requests);
    ASSERT_TRUE(golden.complete);

    const std::string journal =
        tempPath("shape_sweep_mid_steal.journal");
    std::remove(journal.c_str());
    ShapeSweepOptions crashy;
    crashy.numWorkers = 4;
    crashy.journalPath = journal;
    crashy.checkpointEvery = 100;
    crashy.stopAfterJournalRecords = 3;
    std::size_t replayed = 0;
    std::size_t restored = 0;
    ShapeSweepResult resumed = runWithCrashes(
        p, topo, shapes, requests, crashy, 200, &replayed, &restored);
    EXPECT_GT(replayed, 0u);
    EXPECT_GT(restored, 0u);
    expectSameRows(resumed, golden, "mid-steal resume");
    std::remove(journal.c_str());
}

TEST(ShapeSweep, SingleWorkerSweepStaysInline)
{
    // The batch.h promise: one worker means no pool threads at all.
    Program p = burstPairs(1, 8);
    Topology topo = Topology::linearArray(2);
    std::vector<ShapeSpec> shapes = skewedLadder(8, 4, 2);
    std::vector<RunRequest> requests(2);
    requests[1].seed = 2;

    ShapeSweepOptions options;
    options.numWorkers = 1;
    ShapeSweep sweep(p, topo, shapes, options);
    ShapeSweepResult result = sweep.run(requests);
    ASSERT_TRUE(result.complete);
    EXPECT_EQ(result.workersUsed, 1);
    EXPECT_EQ(sweep.pooledWorkers(), 0);
}

TEST(WorkerSizing, ClampWorkersNeverReturnsZero)
{
    // hardware_concurrency() may return 0 ("not computable"); the
    // shared sizing policy must degrade to serial, never to zero.
    EXPECT_GE(sim::clampWorkers(0, 5), 1);
    EXPECT_GE(sim::clampWorkers(-3, 5), 1);
    EXPECT_EQ(sim::clampWorkers(8, 3), 3);
    EXPECT_EQ(sim::clampWorkers(8, 0), 1);
    EXPECT_EQ(sim::clampWorkers(0, 0), 1);
    EXPECT_EQ(sim::clampWorkers(2, 100), 2);
}

// ---------------------------------------------------------------------
// (f) multi-process sharding: shard journals, resume gating, merge
// ---------------------------------------------------------------------

TEST(ShapeSweep, FourWayShardMergeMatchesUnshardedSweep)
{
    Program p = perturbedProgram(2);
    Topology topo = Topology::linearArray(6);
    std::vector<ShapeSpec> shapes = ladder16();
    std::vector<RunRequest> requests(3);
    requests[1].policy = PolicyKind::kFcfs;
    requests[2].policy = PolicyKind::kRandom;
    requests[2].seed = 9;

    ShapeSweepOptions plain;
    plain.numWorkers = 2;
    ShapeSweep goldenSweep(p, topo, shapes, plain);
    ShapeSweepResult golden = goldenSweep.run(requests);
    ASSERT_TRUE(golden.complete);
    EXPECT_FALSE(golden.sharded);

    // Split the 48-cell grid across 4 "processes", one journal each.
    const std::size_t cellsTotal = shapes.size() * requests.size();
    std::vector<std::string> journals;
    for (int shard = 0; shard < 4; ++shard) {
        const std::string path = tempPath(
            "shape_sweep_shard_" + std::to_string(shard) + ".journal");
        std::remove(path.c_str());
        journals.push_back(path);

        ShapeSweepOptions options;
        options.numWorkers = 2;
        options.journalPath = path;
        options.checkpointEvery = 50;
        options.shardBegin = cellsTotal * shard / 4;
        options.shardEnd = cellsTotal * (shard + 1) / 4;
        ShapeSweep sweep(p, topo, shapes, options);
        ShapeSweepResult result = sweep.run(requests);
        ASSERT_TRUE(result.complete) << "shard " << shard;
        EXPECT_TRUE(result.sharded);
        EXPECT_EQ(result.shardBegin, options.shardBegin);
        EXPECT_EQ(result.shardEnd, options.shardEnd);
        // In-shard cells ran; out-of-shard cells were not touched.
        for (std::size_t idx = 0; idx < cellsTotal; ++idx) {
            EXPECT_EQ(result.rows[idx].finished,
                      idx >= options.shardBegin &&
                          idx < options.shardEnd)
                << "shard " << shard << " cell " << idx;
        }

        // The shard journal reports itself.
        sim::SweepJournalInfo info;
        ASSERT_TRUE(sim::inspectSweepJournal(path, info));
        EXPECT_TRUE(info.sharded);
        EXPECT_EQ(info.numShapes, shapes.size());
        EXPECT_EQ(info.numRequests, requests.size());
        EXPECT_EQ(info.shardBegin, options.shardBegin);
        EXPECT_EQ(info.shardEnd, options.shardEnd);
        EXPECT_EQ(info.rowsDone,
                  options.shardEnd - options.shardBegin);

        // Resuming the same shard replays everything.
        ShapeSweep resumeSweep(p, topo, shapes, options);
        ShapeSweepResult resumed = resumeSweep.run(requests);
        ASSERT_TRUE(resumed.complete);
        EXPECT_EQ(resumed.rowsFromJournal,
                  options.shardEnd - options.shardBegin);
    }

    sim::SweepMergeResult merged;
    std::string error;
    ASSERT_TRUE(sim::mergeSweepJournals(journals, merged, error))
        << error;
    EXPECT_TRUE(merged.complete);
    EXPECT_EQ(merged.numShapes, shapes.size());
    EXPECT_EQ(merged.numRequests, requests.size());
    EXPECT_EQ(merged.duplicateRows, 0u);
    ASSERT_EQ(merged.rows.size(), golden.rows.size());
    for (std::size_t i = 0; i < golden.rows.size(); ++i) {
        EXPECT_EQ(merged.rows[i].shape, golden.rows[i].shape);
        EXPECT_EQ(merged.rows[i].request, golden.rows[i].request);
        EXPECT_EQ(merged.rows[i].machineDigest,
                  golden.rows[i].machineDigest)
            << "merged row " << i;
        expectSameRunResult(merged.rows[i].result,
                            golden.rows[i].result,
                            "merged row " + std::to_string(i));
    }
    // The per-rung cross-check digests equal the same fold over the
    // unsharded rows.
    ASSERT_EQ(merged.shapeDigests.size(), shapes.size());
    for (std::size_t s = 0; s < shapes.size(); ++s) {
        std::uint64_t want = sim::kFnvOffsetBasis;
        for (std::size_t r = 0; r < requests.size(); ++r)
            want = sim::fnv(want, golden.row(s, r).machineDigest);
        EXPECT_EQ(merged.shapeDigests[s], want) << "shape " << s;
    }

    // Overlapping shards merge too — duplicates are cross-checked,
    // not dropped or doubled.
    std::vector<std::string> overlapping = journals;
    overlapping.push_back(journals[0]);
    sim::SweepMergeResult overlapMerged;
    ASSERT_TRUE(
        sim::mergeSweepJournals(overlapping, overlapMerged, error))
        << error;
    EXPECT_TRUE(overlapMerged.complete);
    EXPECT_EQ(overlapMerged.rows.size(), golden.rows.size());
    EXPECT_EQ(overlapMerged.duplicateRows, cellsTotal / 4);

    // Shard gating: an unsharded run on a shard journal restarts the
    // file instead of resuming it.
    ShapeSweepOptions unsharded;
    unsharded.numWorkers = 1;
    unsharded.journalPath = journals[3];
    ShapeSweep unshardedSweep(p, topo, shapes, unsharded);
    ShapeSweepResult unshardedResult = unshardedSweep.run(requests);
    ASSERT_TRUE(unshardedResult.complete);
    EXPECT_EQ(unshardedResult.rowsFromJournal, 0u);

    for (const std::string& path : journals)
        std::remove(path.c_str());
}

TEST(ShapeSweep, ShardResumeGatingRejectsForeignShards)
{
    Program p = burstPairs(2, 12);
    Topology topo = Topology::linearArray(4);
    std::vector<ShapeSpec> shapes = skewedLadder(12, 8, 3);
    std::vector<RunRequest> requests(4);
    for (std::size_t r = 0; r < requests.size(); ++r)
        requests[r].seed = 1 + r;
    const std::size_t cellsTotal = shapes.size() * requests.size();

    const std::string path = tempPath("shape_sweep_gating.journal");
    std::remove(path.c_str());

    // Run the first half as a shard.
    ShapeSweepOptions first;
    first.numWorkers = 2;
    first.journalPath = path;
    first.shardBegin = 0;
    first.shardEnd = cellsTotal / 2;
    {
        ShapeSweep sweep(p, topo, shapes, first);
        ASSERT_TRUE(sweep.run(requests).complete);
    }

    // A *different* shard range must restart the journal, not adopt
    // the other shard's rows.
    ShapeSweepOptions second = first;
    second.shardBegin = cellsTotal / 2;
    second.shardEnd = cellsTotal;
    {
        ShapeSweep sweep(p, topo, shapes, second);
        ShapeSweepResult result = sweep.run(requests);
        ASSERT_TRUE(result.complete);
        EXPECT_EQ(result.rowsFromJournal, 0u);
    }

    // And a sharded run must not resume an unsharded journal.
    ShapeSweepOptions unsharded;
    unsharded.numWorkers = 1;
    unsharded.journalPath = path;
    {
        ShapeSweep sweep(p, topo, shapes, unsharded);
        ShapeSweepResult result = sweep.run(requests);
        ASSERT_TRUE(result.complete);
        // (the file held shard 2's rows — an unsharded run restarts)
        EXPECT_EQ(result.rowsFromJournal, 0u);
    }
    {
        ShapeSweep sweep(p, topo, shapes, first);
        ShapeSweepResult result = sweep.run(requests);
        ASSERT_TRUE(result.complete);
        // The unsharded run rewrote the file; shard 1 restarts too.
        EXPECT_EQ(result.rowsFromJournal, 0u);
    }
    std::remove(path.c_str());
}

TEST(ShapeSweep, MergeRejectsMismatchedSweeps)
{
    Program p = burstPairs(1, 8);
    Topology topo = Topology::linearArray(2);
    std::vector<ShapeSpec> shapes = skewedLadder(8, 4, 1);
    std::vector<RunRequest> requests(2);
    requests[1].seed = 2;

    const std::string a = tempPath("merge_mismatch_a.journal");
    const std::string b = tempPath("merge_mismatch_b.journal");
    std::remove(a.c_str());
    std::remove(b.c_str());

    ShapeSweepOptions optionsA;
    optionsA.numWorkers = 1;
    optionsA.journalPath = a;
    {
        ShapeSweep sweep(p, topo, shapes, optionsA);
        ASSERT_TRUE(sweep.run(requests).complete);
    }
    // A different request batch => different config digest.
    ShapeSweepOptions optionsB = optionsA;
    optionsB.journalPath = b;
    std::vector<RunRequest> otherRequests(2);
    otherRequests[1].seed = 7;
    {
        ShapeSweep sweep(p, topo, shapes, optionsB);
        ASSERT_TRUE(sweep.run(otherRequests).complete);
    }

    sim::SweepMergeResult merged;
    std::string error;
    EXPECT_FALSE(sim::mergeSweepJournals({a, b}, merged, error));
    EXPECT_NE(error.find("config digest"), std::string::npos);

    EXPECT_FALSE(sim::mergeSweepJournals({}, merged, error));
    EXPECT_FALSE(
        sim::mergeSweepJournals({a, "/no/such/file"}, merged, error));

    std::remove(a.c_str());
    std::remove(b.c_str());
}

} // namespace
} // namespace syscomm
