/**
 * @file
 * Section 6 consistent labeling: the Fig. 7 worked example, rules
 * 1a-1d, and consistency on generated programs.
 */

#include <gtest/gtest.h>

#include "algos/paper_figures.h"
#include "core/label_verify.h"
#include "core/labeling.h"
#include "core/program_gen.h"

namespace syscomm {
namespace {

TEST(Labeling, Fig7LabelsMatchPaper)
{
    // "messages A, B, and C will receive labels 1, 3, and 2".
    Program p = algos::fig7Program();
    Labeling labeling = labelMessages(p);
    ASSERT_TRUE(labeling.success) << labeling.error;
    EXPECT_EQ(labeling.labels[*p.messageByName("A")], Rational(1));
    EXPECT_EQ(labeling.labels[*p.messageByName("B")], Rational(3));
    EXPECT_EQ(labeling.labels[*p.messageByName("C")], Rational(2));
    EXPECT_TRUE(isConsistentLabeling(p, labeling.labels));
}

TEST(Labeling, Fig7NormalizedPreservesOrder)
{
    Program p = algos::fig7Program();
    Labeling labeling = labelMessages(p);
    ASSERT_TRUE(labeling.success);
    auto norm = labeling.normalized();
    EXPECT_EQ(norm[*p.messageByName("A")], 1);
    EXPECT_EQ(norm[*p.messageByName("C")], 2);
    EXPECT_EQ(norm[*p.messageByName("B")], 3);
}

TEST(Labeling, Fig2LabelsAreConsistent)
{
    Program p = algos::fig2FirProgram();
    Labeling labeling = labelMessages(p);
    ASSERT_TRUE(labeling.success) << labeling.error;
    EXPECT_TRUE(isConsistentLabeling(p, labeling.labels))
        << labeling.str(p);
}

TEST(Labeling, Fig6CycleLabelsAreConsistent)
{
    Program p = algos::fig6CycleProgram();
    Labeling labeling = labelMessages(p);
    ASSERT_TRUE(labeling.success);
    EXPECT_TRUE(isConsistentLabeling(p, labeling.labels));
}

TEST(Labeling, RelatedMessagesShareALabel)
{
    // Fig. 8: interleaved reads make A and B related.
    Program p = algos::fig8Program();
    Labeling labeling = labelMessages(p);
    ASSERT_TRUE(labeling.success);
    EXPECT_EQ(labeling.labels[*p.messageByName("A")],
              labeling.labels[*p.messageByName("B")]);
    EXPECT_TRUE(isConsistentLabeling(p, labeling.labels));
}

TEST(Labeling, Fig9InterleavedWritesShareALabel)
{
    Program p = algos::fig9Program();
    Labeling labeling = labelMessages(p);
    ASSERT_TRUE(labeling.success);
    EXPECT_EQ(labeling.labels[*p.messageByName("A")],
              labeling.labels[*p.messageByName("B")]);
}

TEST(Labeling, DeadlockedProgramFails)
{
    Program p = algos::fig5P1();
    Labeling labeling = labelMessages(p);
    EXPECT_FALSE(labeling.success);
    EXPECT_NE(labeling.error.find("not deadlock-free"), std::string::npos);
}

TEST(Labeling, TrivialLabelingIsAlwaysConsistent)
{
    for (Program p : {algos::fig2FirProgram(), algos::fig7Program(),
                      algos::fig8Program(), algos::fig5P1()}) {
        Labeling labeling = trivialLabeling(p);
        ASSERT_TRUE(labeling.success);
        EXPECT_TRUE(isConsistentLabeling(p, labeling.labels));
    }
}

TEST(Labeling, LookaheadGivesSkippedMessagesSameLabel)
{
    // P1 under lookahead: B's pair skips A's writes, so rule 1d gives
    // A the label of B.
    Program p = algos::fig5P1();
    LabelingOptions options;
    options.lookahead = true;
    options.skip_bound = uniformSkipBound(2);
    Labeling labeling = labelMessages(p, options);
    ASSERT_TRUE(labeling.success) << labeling.error;
    EXPECT_EQ(labeling.labels[*p.messageByName("A")],
              labeling.labels[*p.messageByName("B")]);
    EXPECT_TRUE(isConsistentLabeling(p, labeling.labels));
}

TEST(Labeling, LogNarratesRules)
{
    Program p = algos::fig7Program();
    LabelingOptions options;
    options.record_log = true;
    Labeling labeling = labelMessages(p, options);
    ASSERT_TRUE(labeling.success);
    ASSERT_FALSE(labeling.log.empty());
    EXPECT_NE(labeling.log[0].find("rule 1a"), std::string::npos);
}

TEST(Labeling, PickPoliciesStillConsistent)
{
    Program p = algos::fig2FirProgram();
    for (auto pick : {LabelingOptions::Pick::kDeclarationOrder,
                      LabelingOptions::Pick::kReverseDeclaration,
                      LabelingOptions::Pick::kLabeledFirst}) {
        LabelingOptions options;
        options.pick = pick;
        Labeling labeling = labelMessages(p, options);
        ASSERT_TRUE(labeling.success) << labeling.error;
        EXPECT_TRUE(isConsistentLabeling(p, labeling.labels));
    }
}

TEST(Labeling, SequentialStreamsGetAscendingLabels)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 0, 1);
    MessageId c = p.declareMessage("C", 0, 1);
    for (MessageId m : {a, b, c}) {
        p.write(0, m);
        p.write(0, m);
        p.read(1, m);
        p.read(1, m);
    }
    Labeling labeling = labelMessages(p);
    ASSERT_TRUE(labeling.success);
    EXPECT_LT(labeling.labels[a], labeling.labels[b]);
    EXPECT_LT(labeling.labels[b], labeling.labels[c]);
}

TEST(GraphLabeling, Fig7MatchesPaperOrder)
{
    // Constraints: A <= B (C3) and C <= B (C4); declaration-order
    // Kahn emission gives the paper's exact labels.
    Program p = algos::fig7Program();
    Labeling labeling = graphLabeling(p);
    ASSERT_TRUE(labeling.success);
    EXPECT_TRUE(isConsistentLabeling(p, labeling.labels));
    EXPECT_EQ(labeling.labels[*p.messageByName("A")], Rational(1));
    EXPECT_EQ(labeling.labels[*p.messageByName("C")], Rational(2));
    EXPECT_EQ(labeling.labels[*p.messageByName("B")], Rational(3));
}

TEST(GraphLabeling, SharesOnlyWhenForced)
{
    // Fig. 8's interleaving forms an SCC: A and B must share.
    Program p8 = algos::fig8Program();
    Labeling l8 = graphLabeling(p8);
    ASSERT_TRUE(l8.success);
    EXPECT_EQ(l8.labels[*p8.messageByName("A")],
              l8.labels[*p8.messageByName("B")]);

    // Sequential streams stay distinct.
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 0, 1);
    for (MessageId m : {a, b}) {
        p.write(0, m);
        p.read(1, m);
    }
    Labeling l = graphLabeling(p);
    ASSERT_TRUE(l.success);
    EXPECT_NE(l.labels[a], l.labels[b]);
}

TEST(GraphLabeling, WorksEvenOnDeadlockedPrograms)
{
    // Consistency is a property of the program text; the graph scheme
    // does not need crossing-off and labels P1-P3 consistently.
    for (Program p : {algos::fig5P1(), algos::fig5P2(), algos::fig5P3()}) {
        Labeling labeling = graphLabeling(p);
        ASSERT_TRUE(labeling.success);
        EXPECT_TRUE(isConsistentLabeling(p, labeling.labels));
    }
}

TEST(GraphLabeling, ConsistentOnEveryWorkload)
{
    for (Program p :
         {algos::fig2FirProgram(), algos::fig6CycleProgram(),
          algos::fig9Program()}) {
        Labeling labeling = graphLabeling(p);
        ASSERT_TRUE(labeling.success);
        EXPECT_TRUE(isConsistentLabeling(p, labeling.labels));
    }
}

TEST(GraphLabeling, ConsistentOnRandomAndScrambledPrograms)
{
    Topology topo = Topology::linearArray(5);
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
        GenOptions gen;
        gen.numMessages = 10;
        gen.maxWords = 4;
        gen.seed = seed;
        Program p = randomDeadlockFreeProgram(topo, gen);
        Program q = perturbProgram(p, 25, seed + 5);
        for (const Program* prog : {&p, &q}) {
            Labeling labeling = graphLabeling(*prog);
            ASSERT_TRUE(labeling.success);
            EXPECT_TRUE(isConsistentLabeling(*prog, labeling.labels))
                << "seed " << seed;
        }
    }
}

TEST(Labeling, RandomProgramsAlwaysConsistent)
{
    // The section 6 scheme must produce a consistent labeling for any
    // deadlock-free program.
    Topology topo = Topology::linearArray(5);
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        GenOptions gen;
        gen.numMessages = 10;
        gen.maxWords = 5;
        gen.seed = seed;
        Program p = randomDeadlockFreeProgram(topo, gen);
        Labeling labeling = labelMessages(p);
        ASSERT_TRUE(labeling.success)
            << "seed " << seed << ": " << labeling.error;
        EXPECT_TRUE(isConsistentLabeling(p, labeling.labels))
            << "seed " << seed << ": " << labeling.str(p);
    }
}

} // namespace
} // namespace syscomm
