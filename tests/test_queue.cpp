/**
 * @file
 * Hardware queue semantics: assignment lifecycle, one push/pop per
 * cycle, next-cycle visibility, and the memory extension penalty.
 */

#include <gtest/gtest.h>

#include "sim/arena.h"
#include "sim/link_state.h"
#include "sim/queue.h"

namespace syscomm::sim {
namespace {

Word
word(MessageId msg, int seq)
{
    Word w;
    w.msg = msg;
    w.seq = seq;
    w.value = seq * 1.0;
    return w;
}

/**
 * Arena-backed free-standing queue/link: HwQueue and LinkState are
 * views over SimArena pools, so each test carries its own arena.
 */
struct TestQueue
{
    SimArena arena;
    HwQueue& q;
    TestQueue(int capacity, int ext_capacity, int ext_penalty)
        : q(arena.buildSingleQueue(capacity, ext_capacity, ext_penalty))
    {}
};

struct TestLink
{
    SimArena arena;
    LinkState& link;
    TestLink(int queues, int capacity)
        : link(arena.buildSingleLink(queues, capacity, 0, 0))
    {}
};

TEST(HwQueue, AssignmentLifecycle)
{
    TestQueue tq(1, 0, 0);
    HwQueue& q = tq.q;
    EXPECT_TRUE(q.isFree());
    q.assign(3, LinkDir::kForward, 2, 0);
    EXPECT_FALSE(q.isFree());
    EXPECT_EQ(q.assignedMsg(), 3);
    EXPECT_EQ(q.wordsRemaining(), 2);
    EXPECT_FALSE(q.canRelease());

    q.beginCycle(1);
    q.push(word(3, 0), 1);
    q.beginCycle(2);
    (void)q.pop(2);
    EXPECT_FALSE(q.canRelease()); // one word still to pass
    q.beginCycle(3);
    q.push(word(3, 1), 3);
    q.beginCycle(4);
    (void)q.pop(4);
    EXPECT_TRUE(q.canRelease());
    q.release(4);
    EXPECT_TRUE(q.isFree());
    EXPECT_EQ(q.assignmentsServed(), 1);
}

TEST(HwQueue, WordNotVisibleSameCycle)
{
    TestQueue tq(2, 0, 0);
    HwQueue& q = tq.q;
    q.assign(1, LinkDir::kForward, 1, 0);
    q.beginCycle(1);
    q.push(word(1, 0), 1);
    EXPECT_FALSE(q.canPop(1)); // pushed this cycle
    q.beginCycle(2);
    EXPECT_TRUE(q.canPop(2));
}

TEST(HwQueue, OnePushOnePopPerCycle)
{
    TestQueue tq(4, 0, 0);
    HwQueue& q = tq.q;
    q.assign(1, LinkDir::kForward, 4, 0);
    q.beginCycle(1);
    q.push(word(1, 0), 1);
    EXPECT_FALSE(q.canPush()); // already pushed this cycle
    q.beginCycle(2);
    q.push(word(1, 1), 2);
    q.beginCycle(3);
    (void)q.pop(3);
    EXPECT_FALSE(q.canPop(3)); // already popped this cycle
}

TEST(HwQueue, CapacityIncludesExtension)
{
    TestQueue tq(1, 2, 0);
    HwQueue& q = tq.q;
    q.assign(1, LinkDir::kForward, 3, 0);
    EXPECT_EQ(q.totalCapacity(), 3);
    q.beginCycle(1);
    q.push(word(1, 0), 1);
    q.beginCycle(2);
    q.push(word(1, 1), 2); // spills into extension
    q.beginCycle(3);
    q.push(word(1, 2), 3);
    EXPECT_TRUE(q.isFull());
    EXPECT_EQ(q.extendedWords(), 2);
}

TEST(HwQueue, ExtensionPenaltyDelaysFront)
{
    TestQueue tq(1, 1, 3);
    HwQueue& q = tq.q;
    q.assign(1, LinkDir::kForward, 2, 0);
    q.beginCycle(1);
    q.push(word(1, 0), 1); // hardware slot
    q.beginCycle(2);
    q.push(word(1, 1), 2); // extension slot
    q.beginCycle(3);
    (void)q.pop(3); // word 0 pops normally
    // Word 1 surfaced at cycle 3 having been extended: ready at 3 + 3.
    q.beginCycle(4);
    EXPECT_FALSE(q.canPop(4));
    q.beginCycle(5);
    EXPECT_FALSE(q.canPop(5));
    q.beginCycle(6);
    EXPECT_TRUE(q.canPop(6));
    EXPECT_EQ(q.pop(6).seq, 1);
}

TEST(HwQueue, StatsAccumulate)
{
    TestQueue tq(2, 0, 0);
    HwQueue& q = tq.q;
    q.beginCycle(1); // free: no busy cycle
    q.assign(1, LinkDir::kForward, 1, 1);
    q.beginCycle(2);
    q.push(word(1, 0), 2);
    q.beginCycle(3);
    EXPECT_EQ(q.busyCycles(), 2);
    EXPECT_EQ(q.occupancySum(), 1); // one word during cycle 3
    EXPECT_EQ(q.wordsPushed(), 1);
}

TEST(LinkStateT, RequestAssignFinish)
{
    TestLink tl(2, 1);
    LinkState& link = tl.link;
    link.addCrossing(5, LinkDir::kForward, 0, 1);
    EXPECT_TRUE(link.hasCrossing(5));
    EXPECT_FALSE(link.hasCrossing(6));
    EXPECT_EQ(link.numFreeQueues(), 2);

    link.request(5, 3);
    EXPECT_EQ(link.crossing(5).phase, CrossingPhase::kRequested);
    EXPECT_EQ(link.crossing(5).requestedAt, 3);

    link.assignMsg(5, 0, 4);
    EXPECT_EQ(link.crossing(5).phase, CrossingPhase::kAssigned);
    EXPECT_EQ(link.numFreeQueues(), 1);
    EXPECT_EQ(link.queue(0).assignedMsg(), 5);

    link.beginCycle(5);
    link.queue(0).push(word(5, 0), 5);
    link.beginCycle(6);
    (void)link.queue(0).pop(6);
    link.finishMsg(5, 6);
    EXPECT_EQ(link.crossing(5).phase, CrossingPhase::kDone);
    EXPECT_EQ(link.numFreeQueues(), 2);
}

TEST(LinkStateT, FindFreeQueuePrefersLowestId)
{
    TestLink tl(3, 1);
    LinkState& link = tl.link;
    link.addCrossing(1, LinkDir::kForward, 0, 1);
    EXPECT_EQ(link.findFreeQueue(), 0);
    link.assignMsg(1, 0, 0);
    EXPECT_EQ(link.findFreeQueue(), 1);
}

} // namespace
} // namespace syscomm::sim
