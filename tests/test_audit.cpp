/**
 * @file
 * Run-time compatibility audit (Theorem 1, condition (iii)).
 */

#include <gtest/gtest.h>

#include "algos/paper_figures.h"
#include "core/competing.h"
#include "sim/audit.h"

namespace syscomm::sim {
namespace {

struct Fixture
{
    Program program = algos::fig7Program();
    Topology topo = algos::fig7Topology();
    CompetingAnalysis competing =
        CompetingAnalysis::analyze(program, topo);
    MessageId a = *program.messageByName("A");
    MessageId b = *program.messageByName("B");
    MessageId c = *program.messageByName("C");
    std::vector<std::int64_t> labels{1, 3, 2}; // A, B, C

    AssignmentEvent
    event(Cycle cycle, LinkIndex link, MessageId msg)
    {
        AssignmentEvent ev;
        ev.cycle = cycle;
        ev.link = link;
        ev.msg = msg;
        return ev;
    }
};

TEST(Audit, OrderedTraceIsCompatible)
{
    Fixture f;
    LinkIndex l12 = *f.topo.linkBetween(1, 2);
    LinkIndex l23 = *f.topo.linkBetween(2, 3);
    LinkIndex l01 = *f.topo.linkBetween(0, 1);
    std::vector<AssignmentEvent> events = {
        f.event(1, l01, f.c),
        f.event(1, l12, f.a),
        f.event(9, l12, f.c),  // after A
        f.event(12, l23, f.c),
        f.event(20, l23, f.b), // after C
    };
    AuditReport report =
        auditAssignments(f.program, f.competing, f.labels, events);
    EXPECT_TRUE(report.compatible) << report.str(f.program);
}

TEST(Audit, OutOfOrderAssignmentFlagged)
{
    // B (label 3) grabbing the C3-C4 queue before C (label 2) is the
    // Fig. 7 deadlock; the audit must flag it.
    Fixture f;
    LinkIndex l23 = *f.topo.linkBetween(2, 3);
    std::vector<AssignmentEvent> events = {
        f.event(5, l23, f.b), // B before C
    };
    AuditReport report =
        auditAssignments(f.program, f.competing, f.labels, events);
    ASSERT_FALSE(report.compatible);
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_EQ(report.violations[0].second, f.b);
    EXPECT_EQ(report.violations[0].first, f.c);
    EXPECT_NE(report.violations[0].detail.find("never assigned"),
              std::string::npos);
}

TEST(Audit, LaterSmallerLabelFlagged)
{
    Fixture f;
    LinkIndex l23 = *f.topo.linkBetween(2, 3);
    std::vector<AssignmentEvent> events = {
        f.event(5, l23, f.b),
        f.event(9, l23, f.c), // C after B: still a violation
    };
    AuditReport report =
        auditAssignments(f.program, f.competing, f.labels, events);
    ASSERT_FALSE(report.compatible);
    EXPECT_EQ(report.violations.size(), 1u);
}

TEST(Audit, SameLabelMustBeSimultaneous)
{
    Program p = algos::fig8Program();
    Topology topo = algos::fig8Topology();
    auto competing = CompetingAnalysis::analyze(p, topo);
    MessageId a = *p.messageByName("A");
    MessageId b = *p.messageByName("B");
    std::vector<std::int64_t> labels{1, 1};
    LinkIndex l12 = *topo.linkBetween(1, 2);
    LinkIndex l01 = *topo.linkBetween(0, 1);

    std::vector<AssignmentEvent> staggered;
    AssignmentEvent e1;
    e1.cycle = 1;
    e1.link = l12;
    e1.msg = a;
    AssignmentEvent e2;
    e2.cycle = 4;
    e2.link = l12;
    e2.msg = b;
    AssignmentEvent e3;
    e3.cycle = 1;
    e3.link = l01;
    e3.msg = b;
    staggered = {e1, e2, e3};
    AuditReport bad = auditAssignments(p, competing, labels, staggered);
    EXPECT_FALSE(bad.compatible);

    e2.cycle = 1; // simultaneous now
    std::vector<AssignmentEvent> together = {e1, e2, e3};
    AuditReport good = auditAssignments(p, competing, labels, together);
    EXPECT_TRUE(good.compatible) << good.str(p);
}

TEST(Audit, EmptyTraceIsCompatible)
{
    Fixture f;
    AuditReport report =
        auditAssignments(f.program, f.competing, f.labels, {});
    EXPECT_TRUE(report.compatible);
}

TEST(Audit, ReportStringNamesMessages)
{
    Fixture f;
    LinkIndex l23 = *f.topo.linkBetween(2, 3);
    AuditReport report = auditAssignments(f.program, f.competing, f.labels,
                                          {f.event(5, l23, f.b)});
    std::string s = report.str(f.program);
    EXPECT_NE(s.find("B"), std::string::npos);
    EXPECT_NE(s.find("C"), std::string::npos);
}

} // namespace
} // namespace syscomm::sim
