/**
 * @file
 * Checkpoint-based fault recovery (sim/recovery.h).
 *
 * The contracts under test:
 *  - a run killed by a routed-link fault on a ring recovers: the
 *    residual words re-deliver over the surviving detour, at-least-once
 *    from the adopted checkpoint;
 *  - unrecoverable losses are refused honestly (dead endpoint cell,
 *    partitioned route, compute ops) with a specific error;
 *  - queue degrades survive into the recovery machine as a cycle-0
 *    plan; checkpointEvery=0 restarts the whole workload;
 *  - the entire pipeline is deterministic and kernel-independent
 *    (same options => same digests on both kernels).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/recovery.h"

namespace syscomm {
namespace {

using sim::FaultEvent;
using sim::FaultKind;
using sim::FaultPlan;
using sim::KernelKind;
using sim::RecoveryDriver;
using sim::RecoveryOptions;
using sim::RecoveryReport;
using sim::RunStatus;

constexpr int kCells = 8;
constexpr int kStreams = 4;
constexpr int kWords = 16;

/** Ring transfer streams (i -> i+3): one dead link leaves a detour. */
Program
ringStreams()
{
    Program p(kCells);
    for (int s = 0; s < kStreams; ++s) {
        CellId from = static_cast<CellId>((s * kCells) / kStreams);
        CellId to = static_cast<CellId>((from + 3) % kCells);
        MessageId id = p.declareMessage("S" + std::to_string(s), from, to);
        for (int w = 0; w < kWords; ++w)
            p.write(from, id);
        for (int w = 0; w < kWords; ++w)
            p.read(to, id);
    }
    return p;
}

MachineSpec
ringSpec()
{
    MachineSpec spec;
    spec.topo = Topology::ring(kCells);
    spec.queuesPerLink = 2;
    spec.queueCapacity = 2;
    return spec;
}

/** Kill S0's first hop (0--1) mid-run: freezes the run, survivable. */
FaultPlan
killFirstHop(const MachineSpec& spec, Cycle cycle)
{
    FaultPlan plan;
    FaultEvent e;
    e.cycle = cycle;
    e.kind = FaultKind::kKillLink;
    e.link = *spec.topo.linkBetween(0, 1);
    plan.add(e);
    return plan;
}

TEST(Recovery, RingRerouteRecoversResidualWords)
{
    Program p = ringStreams();
    MachineSpec spec = ringSpec();
    FaultPlan plan = killFirstHop(spec, 10);

    RecoveryDriver driver(p, spec);
    RecoveryOptions ro;
    ro.faults = &plan;
    ro.checkpointEvery = 8;
    RecoveryReport rep = driver.run(ro);

    ASSERT_EQ(rep.primary.status, RunStatus::kFaulted);
    EXPECT_TRUE(rep.faulted);
    ASSERT_TRUE(rep.recoverable) << rep.error;
    ASSERT_TRUE(rep.recovered) << rep.error;
    EXPECT_TRUE(rep.completedWorkload());
    EXPECT_EQ(rep.error, "");

    // The driver adopts the LAST checkpoint — the surviving streams
    // keep draining after the cycle-10 kill, so it lands well past
    // the fault, maximizing adopted progress.
    EXPECT_GT(rep.checkpointCycle, 0);
    EXPECT_EQ(rep.checkpointCycle % 8, 0);
    // The degraded machine lost exactly the killed link.
    EXPECT_EQ(rep.deadLinks, 1);
    EXPECT_EQ(rep.deadCells, 0);
    EXPECT_EQ(rep.degradedTopo.numLinks(), spec.topo.numLinks() - 1);
    // S0's residual words re-deliver the long way around.
    EXPECT_FALSE(rep.degradedTopo.routePath(0, 3).empty());
    EXPECT_GT(rep.residualMessages, 0);
    EXPECT_GT(rep.residualWords, 0);
    EXPECT_LE(rep.residualWords, kStreams * kWords);
    EXPECT_EQ(rep.recovery.status, RunStatus::kCompleted);
    EXPECT_NE(rep.recoveryMachineDigest, 0u);
}

TEST(Recovery, PipelineIsDeterministicAcrossRunsAndKernels)
{
    Program p = ringStreams();
    MachineSpec spec = ringSpec();
    FaultPlan plan = killFirstHop(spec, 10);
    RecoveryDriver driver(p, spec);

    RecoveryReport want;
    bool first = true;
    for (KernelKind kernel :
         {KernelKind::kEventDriven, KernelKind::kEventDriven,
          KernelKind::kReference}) {
        RecoveryOptions ro;
        ro.faults = &plan;
        ro.checkpointEvery = 8;
        ro.session.kernel = kernel;
        RecoveryReport rep = driver.run(ro);
        ASSERT_TRUE(rep.recovered) << rep.error;
        if (first) {
            want = rep;
            first = false;
            continue;
        }
        const std::string ctx = kernelKindName(kernel);
        EXPECT_EQ(rep.primary.cycles, want.primary.cycles) << ctx;
        EXPECT_EQ(rep.checkpointCycle, want.checkpointCycle) << ctx;
        EXPECT_EQ(rep.residualWords, want.residualWords) << ctx;
        EXPECT_EQ(rep.recovery.cycles, want.recovery.cycles) << ctx;
        EXPECT_EQ(rep.recoveryMachineDigest, want.recoveryMachineDigest)
            << ctx;
    }
}

TEST(Recovery, DeadEndpointCellIsRefusedHonestly)
{
    Program p = ringStreams();
    MachineSpec spec = ringSpec();
    FaultPlan plan;
    FaultEvent e;
    e.cycle = 10;
    e.kind = FaultKind::kKillCell;
    e.cell = 3; // S0's receiver
    plan.add(e);

    RecoveryDriver driver(p, spec);
    RecoveryOptions ro;
    ro.faults = &plan;
    RecoveryReport rep = driver.run(ro);
    ASSERT_TRUE(rep.faulted);
    EXPECT_FALSE(rep.recoverable);
    EXPECT_FALSE(rep.recovered);
    EXPECT_FALSE(rep.completedWorkload());
    EXPECT_NE(rep.error.find("cell is dead"), std::string::npos)
        << rep.error;
    EXPECT_EQ(rep.deadCells, 1);
}

TEST(Recovery, PartitionedLinearArrayIsRefusedHonestly)
{
    // A linear array has no detours: killing a middle link cuts the
    // only route.
    Program p(4);
    MessageId id = p.declareMessage("S", 0, 3);
    for (int w = 0; w < kWords; ++w)
        p.write(0, id);
    for (int w = 0; w < kWords; ++w)
        p.read(3, id);
    MachineSpec spec;
    spec.topo = Topology::linearArray(4);
    spec.queuesPerLink = 2;
    spec.queueCapacity = 2;

    FaultPlan plan;
    FaultEvent e;
    e.cycle = 5;
    e.kind = FaultKind::kKillLink;
    e.link = *spec.topo.linkBetween(1, 2);
    plan.add(e);

    RecoveryDriver driver(p, spec);
    RecoveryOptions ro;
    ro.faults = &plan;
    RecoveryReport rep = driver.run(ro);
    ASSERT_TRUE(rep.faulted);
    EXPECT_FALSE(rep.recoverable);
    EXPECT_NE(rep.error.find("no surviving route"), std::string::npos)
        << rep.error;
}

TEST(Recovery, QueueDegradesCarryIntoRecoveryMachine)
{
    Program p = ringStreams();
    MachineSpec spec = ringSpec();
    FaultPlan plan = killFirstHop(spec, 10);
    // Degrade a queue on a link that survives the kill (2--3 is on
    // S0's detour and on S1's route).
    FaultEvent degrade;
    degrade.cycle = 3;
    degrade.kind = FaultKind::kDegradeQueue;
    degrade.link = *spec.topo.linkBetween(2, 3);
    degrade.queue = 0;
    degrade.arg = 1;
    plan.add(degrade);

    RecoveryDriver driver(p, spec);
    RecoveryOptions ro;
    ro.faults = &plan;
    ro.checkpointEvery = 8;
    RecoveryReport rep = driver.run(ro);
    ASSERT_TRUE(rep.faulted);
    ASSERT_TRUE(rep.recovered) << rep.error;
    // The clamp is permanent damage: it rides into the recovery run
    // as a cycle-0 event on the remapped link.
    EXPECT_EQ(rep.carriedDegrades, 1);
    ASSERT_EQ(rep.recoveryPlan.size(), 1u);
    EXPECT_EQ(rep.recoveryPlan.events()[0].cycle, 0);
    EXPECT_EQ(rep.recoveryPlan.events()[0].kind,
              FaultKind::kDegradeQueue);
    EXPECT_EQ(rep.recoveryPlan.events()[0].arg, 1);
}

TEST(Recovery, NoCheckpointRestartsWholeWorkload)
{
    Program p = ringStreams();
    MachineSpec spec = ringSpec();
    FaultPlan plan = killFirstHop(spec, 10);

    RecoveryDriver driver(p, spec);
    RecoveryOptions ro;
    ro.faults = &plan;
    ro.checkpointEvery = 0;
    RecoveryReport rep = driver.run(ro);
    ASSERT_TRUE(rep.faulted);
    ASSERT_TRUE(rep.recovered) << rep.error;
    EXPECT_EQ(rep.checkpointCycle, -1);
    // With no adopted progress, every word of every message is
    // residual.
    EXPECT_EQ(rep.residualMessages, kStreams);
    EXPECT_EQ(rep.residualWords, kStreams * kWords);
}

TEST(Recovery, ComputeProgramsAreRefused)
{
    // A transfer stream with compute ops mixed in: the fault freezes
    // it, but compute state cannot be replayed from a progress header.
    Program p(4);
    MessageId id = p.declareMessage("S", 0, 3);
    for (int w = 0; w < kWords; ++w) {
        p.compute(0, [](CellContext& ctx) { ctx.local(0) += 1.0; });
        p.write(0, id);
    }
    for (int w = 0; w < kWords; ++w)
        p.read(3, id);
    MachineSpec spec;
    spec.topo = Topology::ring(4);
    spec.queuesPerLink = 2;
    spec.queueCapacity = 2;

    FaultPlan plan;
    FaultEvent e;
    e.cycle = 8;
    e.kind = FaultKind::kKillLink;
    e.link = *spec.topo.linkBetween(0, 3); // the stream's (only) hop
    plan.add(e);

    RecoveryDriver driver(p, spec);
    RecoveryOptions ro;
    ro.faults = &plan;
    RecoveryReport rep = driver.run(ro);
    ASSERT_TRUE(rep.faulted);
    EXPECT_FALSE(rep.recoverable);
    EXPECT_NE(rep.error.find("compute"), std::string::npos) << rep.error;
}

TEST(Recovery, HealthyRunNeverTriggersRecovery)
{
    Program p = ringStreams();
    MachineSpec spec = ringSpec();
    // A transient stall is not a death: the primary absorbs it.
    FaultPlan plan;
    FaultEvent e;
    e.cycle = 5;
    e.kind = FaultKind::kStallLink;
    e.link = *spec.topo.linkBetween(0, 1);
    e.arg = 24;
    plan.add(e);

    RecoveryDriver driver(p, spec);
    RecoveryOptions ro;
    ro.faults = &plan;
    RecoveryReport rep = driver.run(ro);
    EXPECT_EQ(rep.primary.status, RunStatus::kCompleted);
    EXPECT_FALSE(rep.faulted);
    EXPECT_TRUE(rep.completedWorkload());
    EXPECT_EQ(rep.residualWords, 0);
}

} // namespace
} // namespace syscomm
