/**
 * @file
 * The arena/SoA hot-state layout under stress.
 *
 * SimArena owns every per-run-mutable simulation object in contiguous
 * pools, and LinkState/HwQueue/CellRuntime are views over it. The
 * properties that must hold:
 *
 *  - results are bit-identical to a freshly built session no matter
 *    how many build/run/reset cycles an arena-backed session has been
 *    through (randomized sequences of seeds, policies, collect masks
 *    and kernels against a fresh-session oracle),
 *  - no pool ever moves after build (the reset-in-place guarantee the
 *    kernels' cached spans rely on),
 *  - pause/resume never perturbs a run, and adoptState transplants a
 *    mid-run machine bit-exactly across sessions and across kernels
 *    (machineDigest agreement plus full result agreement),
 *  - the opt-in result vectors keep their high-water reserve behavior
 *    across collecting and non-collecting runs.
 */

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/program_gen.h"
#include "sim/arena.h"
#include "sim/batch.h"
#include "sim/session.h"
#include "test_support.h"

namespace syscomm {
namespace {

using sim::Collect;
using sim::HwQueue;
using sim::KernelKind;
using sim::LinkState;
using sim::PolicyKind;
using sim::RunRequest;
using sim::RunResult;
using sim::RunStatus;
using sim::SessionOptions;
using sim::SimArena;
using sim::SimSession;
using sim::Word;

MachineSpec
spec(Topology topo, int queues, int capacity, int ext = 0, int penalty = 4)
{
    MachineSpec s;
    s.topo = std::move(topo);
    s.queuesPerLink = queues;
    s.queueCapacity = capacity;
    s.extensionCapacity = ext;
    s.extensionPenalty = penalty;
    return s;
}

// expectSameRunResult (test_support.h) is the shared comparator.

// ---------------------------------------------------------------------
// Pool-level properties
// ---------------------------------------------------------------------

TEST(SimArena, PoolsNeverMoveAfterBuild)
{
    SimArena arena;
    LinkState& link = arena.buildSingleLink(/*num_queues=*/2,
                                            /*capacity=*/2,
                                            /*ext_capacity=*/3,
                                            /*ext_penalty=*/2,
                                            /*max_crossings=*/4);
    const Word* words = arena.wordPool();
    const HwQueue* queues = arena.queuePool();
    const auto* crossings = arena.crossingPool();
    const HwQueue* q0 = &link.queue(0);

    for (MessageId m = 0; m < 4; ++m)
        link.addCrossing(m, LinkDir::kForward, 0, 3);
    for (int round = 0; round < 5; ++round) {
        link.assignMsg(0, 0, 1);
        Word w;
        w.msg = 0;
        for (int i = 0; i < 3; ++i)
            link.queue(0).push(w, 2 + i);
        link.resetRun();
        EXPECT_EQ(arena.wordPool(), words);
        EXPECT_EQ(arena.queuePool(), queues);
        EXPECT_EQ(arena.crossingPool(), crossings);
        EXPECT_EQ(&link.queue(0), q0);
    }
    EXPECT_GT(arena.bytesReserved(), 0u);
}

TEST(SimArena, DigestTracksMachineStateAndCopyRestoresIt)
{
    auto build = [](SimArena& arena) -> LinkState& {
        LinkState& link = arena.buildSingleLink(2, 2, 0, 0, 2);
        link.addCrossing(0, LinkDir::kForward, 0, 2);
        link.addCrossing(1, LinkDir::kBackward, 0, 1);
        return link;
    };
    SimArena a, b;
    LinkState& la = build(a);
    LinkState& lb = build(b);
    EXPECT_EQ(a.machineDigest(), b.machineDigest());

    // Same history -> same digest.
    la.request(0, 1);
    lb.request(0, 1);
    la.assignMsg(0, 1, 2);
    lb.assignMsg(0, 1, 2);
    Word w;
    w.msg = 0;
    la.queue(1).push(w, 3);
    lb.queue(1).push(w, 3);
    EXPECT_EQ(a.machineDigest(), b.machineDigest());

    // Divergence -> different digest; copy -> equal again.
    lb.request(1, 4);
    EXPECT_NE(a.machineDigest(), b.machineDigest());
    a.copyMachineStateFrom(b);
    EXPECT_EQ(a.machineDigest(), b.machineDigest());
    EXPECT_EQ(la.crossing(1).phase, sim::CrossingPhase::kRequested);
    EXPECT_EQ(la.crossing(1).requestedAt, 4);
}

// ---------------------------------------------------------------------
// Session-level stress: arena reuse vs fresh-build oracle
// ---------------------------------------------------------------------

/**
 * Randomized build/run/reset sequences: one arena-backed session per
 * (kernel, program) endures a shuffled stream of requests — seeds,
 * policies, collect masks interleaved — and every result must be
 * bit-identical to a session built fresh for that one request (the
 * heap-layout-equivalent oracle: a first run on a fresh build never
 * touches the reset or reserve paths).
 */
TEST(ArenaStress, RandomizedRunResetSequencesMatchFreshBuilds)
{
    std::mt19937_64 rng(20260728);
    const PolicyKind policies[] = {PolicyKind::kCompatible,
                                   PolicyKind::kCompatibleEager,
                                   PolicyKind::kFcfs, PolicyKind::kRandom};
    const Collect collects[] = {Collect::kNone, Collect::kAll,
                                Collect::kEvents | Collect::kMsgTiming,
                                Collect::kReceived | Collect::kAudit};

    for (int shape = 0; shape < 3; ++shape) {
        Topology topo = shape == 0 ? Topology::linearArray(6)
                                   : shape == 1 ? Topology::mesh(3, 3)
                                                : Topology::torus(3, 3);
        GenOptions gen;
        gen.numMessages = 7;
        gen.maxWords = 5;
        gen.seed = 900 + static_cast<std::uint64_t>(shape);
        gen.interleave = 0.4;
        Program program = randomDeadlockFreeProgram(topo, gen);
        MachineSpec s =
            spec(topo, 2, 1 + shape % 3, /*ext=*/shape, /*penalty=*/3);

        for (KernelKind kernel :
             {KernelKind::kEventDriven, KernelKind::kReference}) {
            SessionOptions options;
            options.kernel = kernel;
            SimSession reused(program, s, options);
            ASSERT_TRUE(reused.valid());

            for (int step = 0; step < 10; ++step) {
                RunRequest request;
                request.policy = policies[rng() % 4];
                request.seed = 1 + rng() % 5;
                request.maxCycles = 20'000;
                request.collect = collects[rng() % 4];

                RunResult r = reused.run(request);
                SimSession fresh(program, s, options);
                RunResult f = fresh.run(request);
                expectSameRunResult(f, r,
                                 "shape " + std::to_string(shape) +
                                     " kernel " +
                                     std::string(kernelKindName(kernel)) +
                                     " step " + std::to_string(step));
            }
        }
    }
}

/**
 * High-water reserve behavior: a collecting run, a stats-only run and
 * another collecting run through one session must reproduce the fresh
 * session's vectors exactly — the reused (reserved) vectors must not
 * leak stale entries or change sizes.
 */
TEST(ArenaStress, HighWaterReservesStayInvisible)
{
    Topology topo = Topology::linearArray(5);
    GenOptions gen;
    gen.numMessages = 6;
    gen.maxWords = 5;
    gen.seed = 41;
    gen.interleave = 0.2; // modest label groups: completes at 2 queues
    Program program = randomDeadlockFreeProgram(topo, gen);
    MachineSpec s = spec(topo, 2, 2);

    SimSession session(program, s);
    RunRequest collecting;
    collecting.collect = Collect::kAll;
    RunRequest statsOnly;

    RunResult first = session.run(collecting);
    ASSERT_EQ(first.status, RunStatus::kCompleted);
    EXPECT_FALSE(first.events.empty());
    RunResult lean = session.run(statsOnly);
    EXPECT_TRUE(lean.events.empty());
    EXPECT_TRUE(lean.received.empty());
    RunResult again = session.run(collecting);
    expectSameRunResult(first, again, "collect after stats-only reuse");

    SimSession fresh(program, s);
    expectSameRunResult(fresh.run(collecting), first, "fresh oracle");
}

// ---------------------------------------------------------------------
// Pause / resume / adoptState (the checkpoint machinery the sampled
// oracle is built on)
// ---------------------------------------------------------------------

TEST(ArenaCheckpoint, PauseResumeNeverPerturbsARun)
{
    Topology topo = Topology::linearArray(6);
    GenOptions gen;
    gen.numMessages = 6;
    gen.maxWords = 6;
    gen.seed = 7;
    gen.interleave = 0.4;
    Program program = randomDeadlockFreeProgram(topo, gen);
    MachineSpec s = spec(topo, 2, 1, /*ext=*/2, /*penalty=*/3);

    for (KernelKind kernel :
         {KernelKind::kEventDriven, KernelKind::kReference}) {
        SessionOptions options;
        options.kernel = kernel;
        SimSession plain(program, s, options);
        RunRequest request;
        request.collect = Collect::kAll;
        RunResult whole = plain.run(request);
        ASSERT_EQ(whole.status, RunStatus::kCompleted);

        // Chop the same run into pause windows at every stride.
        for (Cycle stride : {1, 3, 7}) {
            SimSession chopped(program, s, options);
            RunRequest paused = request;
            paused.pauseAt = stride;
            RunResult part = chopped.run(paused);
            int guard = 0;
            while (part.status == RunStatus::kPaused) {
                ASSERT_TRUE(chopped.paused());
                part = chopped.resume(part.cycles + stride);
                ASSERT_LT(++guard, 10'000);
            }
            EXPECT_FALSE(chopped.paused());
            expectSameRunResult(whole, part,
                             "stride " + std::to_string(stride) +
                                 " kernel " + kernelKindName(kernel));
        }
    }
}

TEST(ArenaCheckpoint, PausedSnapshotMatchesFreshRunOfSameLength)
{
    // A pause snapshot must report exactly what a fresh run with
    // maxCycles-sized visibility would: compare its stats against the
    // dense kernel's snapshot at the same cycle via adoptState.
    Topology topo = Topology::linearArray(6);
    GenOptions gen;
    gen.numMessages = 6;
    gen.maxWords = 5;
    gen.seed = 11;
    gen.interleave = 0.3;
    Program program = randomDeadlockFreeProgram(topo, gen);
    MachineSpec s = spec(topo, 2, 1);

    SessionOptions evtOptions;
    evtOptions.kernel = KernelKind::kEventDriven;
    SessionOptions refOptions;
    refOptions.kernel = KernelKind::kReference;

    SimSession evt(program, s, evtOptions);
    SimSession ref(program, s, refOptions);

    RunRequest request;
    request.collect = Collect::kAll;
    RunResult full = evt.run(request);
    ASSERT_EQ(full.status, RunStatus::kCompleted);

    for (Cycle at = 2; at + 2 < full.cycles; at += 3) {
        RunRequest untilAt = request;
        untilAt.pauseAt = at;
        RunResult evtSnap = evt.run(untilAt);
        ASSERT_EQ(evtSnap.status, RunStatus::kPaused);
        ASSERT_EQ(evtSnap.cycles, at);

        ASSERT_TRUE(ref.adoptState(evt));
        EXPECT_EQ(ref.machineDigest(), evt.machineDigest())
            << "digest after adopt at " << at;

        // Both continue one window; snapshots and digests must agree.
        RunResult evtNext = evt.resume(at + 2);
        RunResult refNext = ref.resume(at + 2);
        expectSameRunResult(evtNext, refNext,
                         "window from " + std::to_string(at));
        EXPECT_EQ(ref.machineDigest(), evt.machineDigest())
            << "digest after window from " << at;
    }
}

TEST(ArenaCheckpoint, AdoptStateRejectsIncompatibleSessions)
{
    Topology topo = Topology::linearArray(4);
    GenOptions gen;
    gen.numMessages = 4;
    gen.maxWords = 3;
    gen.seed = 3;
    Program a = randomDeadlockFreeProgram(topo, gen);
    gen.seed = 4;
    Program b = randomDeadlockFreeProgram(topo, gen);
    MachineSpec s = spec(topo, 2, 1);

    SimSession donor(a, s);
    SimSession twin(a, s);
    SimSession stranger(b, s);

    // Not paused yet: nothing to adopt.
    EXPECT_FALSE(twin.adoptState(donor));

    RunRequest request;
    request.pauseAt = 3;
    RunResult r = donor.run(request);
    ASSERT_EQ(r.status, RunStatus::kPaused);
    EXPECT_FALSE(stranger.adoptState(donor)); // different program
    EXPECT_TRUE(twin.adoptState(donor));
    EXPECT_TRUE(twin.paused());

    // Both finish identically from the shared checkpoint.
    RunResult fromDonor = donor.resume();
    RunResult fromTwin = twin.resume();
    expectSameRunResult(fromDonor, fromTwin, "donor vs twin");
}

TEST(ArenaCheckpoint, RandomPolicyStateTravelsWithAdopt)
{
    // The counted-stream random policy's per-link decision counters
    // are run state: an adopted session must reproduce the donor's
    // future shuffles exactly. Deadlocking programs included.
    Topology topo = Topology::linearArray(5);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        GenOptions gen;
        gen.numMessages = 6;
        gen.maxWords = 4;
        gen.seed = 600 + seed;
        gen.interleave = 0.5;
        Program program = perturbProgram(
            randomDeadlockFreeProgram(topo, gen), 2, seed);
        MachineSpec s = spec(topo, 1 + seed % 2, 1);

        SessionOptions options; // event kernel
        SimSession donor(program, s, options);
        SimSession twin(program, s, options);
        RunRequest request;
        request.policy = PolicyKind::kRandom;
        request.seed = seed;
        request.maxCycles = 20'000;
        request.collect = Collect::kEvents | Collect::kReleases;
        request.pauseAt = 5;

        RunResult r = donor.run(request);
        if (r.status != RunStatus::kPaused)
            continue; // run ended before the checkpoint; nothing to test
        ASSERT_TRUE(twin.adoptState(donor));
        expectSameRunResult(donor.resume(), twin.resume(),
                         "random policy seed " + std::to_string(seed));
    }
}

TEST(ArenaCheckpoint, SweepWorkersUnaffectedByPausedRequests)
{
    // A pauseAt request in a sweep just yields a truncated result;
    // the pooled worker session must reset cleanly for whoever gets
    // it next.
    Topology topo = Topology::linearArray(5);
    GenOptions gen;
    gen.numMessages = 5;
    gen.maxWords = 4;
    gen.seed = 13;
    Program program = randomDeadlockFreeProgram(topo, gen);
    MachineSpec s = spec(topo, 2, 1);

    std::vector<RunRequest> requests;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        RunRequest request;
        request.seed = seed;
        if (seed % 3 == 0)
            request.pauseAt = 4;
        requests.push_back(request);
    }
    sim::SweepOptions threads;
    threads.numWorkers = 2;
    sim::SweepSummary sweep =
        sim::SweepRunner(program, s, {}, threads).run(requests);

    SimSession serial(program, s);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        RunResult expected = serial.run(requests[i]);
        expectSameRunResult(expected, sweep.results[i],
                         "request " + std::to_string(i));
    }
    EXPECT_EQ(sweep.statusCounts[static_cast<int>(RunStatus::kPaused)], 2);
}

} // namespace
} // namespace syscomm
