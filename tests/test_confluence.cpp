/**
 * @file
 * Determinism and confluence properties: the crossing-off verdict is
 * independent of pick order (crossing one executable pair never
 * disables another), and the simulator is fully deterministic.
 */

#include <random>

#include <gtest/gtest.h>

#include "core/crossoff.h"
#include "core/program_gen.h"
#include "sim/machine.h"

namespace syscomm {
namespace {

/** Run the engine to exhaustion picking pairs with an RNG. */
bool
randomOrderVerdict(const Program& p, const CrossOffOptions& options,
                   std::uint64_t seed)
{
    CrossOffEngine engine(p, options);
    std::mt19937_64 rng(seed);
    while (!engine.done()) {
        auto pairs = engine.executablePairs();
        if (pairs.empty())
            return false;
        std::uniform_int_distribution<std::size_t> pick(0,
                                                        pairs.size() - 1);
        engine.crossOffPair(pairs[pick(rng)]);
    }
    return true;
}

TEST(Confluence, VerdictIndependentOfPickOrderBasic)
{
    Topology topo = Topology::linearArray(5);
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        GenOptions gen;
        gen.numMessages = 8;
        gen.maxWords = 4;
        gen.seed = seed;
        Program base = randomDeadlockFreeProgram(topo, gen);
        Program p = perturbProgram(base, 20, seed * 3 + 1);
        bool greedy = crossOff(p).deadlockFree;
        for (std::uint64_t order = 0; order < 5; ++order) {
            EXPECT_EQ(randomOrderVerdict(p, {}, order), greedy)
                << "seed " << seed << " order " << order;
        }
    }
}

TEST(Confluence, VerdictIndependentOfPickOrderLookahead)
{
    Topology topo = Topology::linearArray(4);
    CrossOffOptions options;
    options.lookahead = true;
    options.skip_bound = uniformSkipBound(2);
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        GenOptions gen;
        gen.numMessages = 6;
        gen.maxWords = 3;
        gen.seed = seed + 500;
        Program base = randomDeadlockFreeProgram(topo, gen);
        Program p = perturbProgram(base, 15, seed * 7 + 2);
        bool greedy = crossOff(p, options).deadlockFree;
        for (std::uint64_t order = 0; order < 5; ++order) {
            EXPECT_EQ(randomOrderVerdict(p, options, order), greedy)
                << "seed " << seed << " order " << order;
        }
    }
}

TEST(Confluence, PairCountIsInvariant)
{
    // Deadlock-free runs always cross exactly one pair per word.
    Topology topo = Topology::linearArray(4);
    GenOptions gen;
    gen.numMessages = 8;
    gen.seed = 77;
    Program p = randomDeadlockFreeProgram(topo, gen);
    CrossOffResult r = crossOff(p);
    ASSERT_TRUE(r.deadlockFree);
    std::int64_t words = 0;
    for (MessageId m = 0; m < p.numMessages(); ++m)
        words += p.messageLength(m);
    EXPECT_EQ(static_cast<std::int64_t>(r.sequence.size()), words);
}

TEST(Determinism, IdenticalRunsProduceIdenticalResults)
{
    Topology topo = Topology::linearArray(5);
    GenOptions gen;
    gen.numMessages = 10;
    gen.maxWords = 4;
    gen.seed = 4242;
    Program p = randomDeadlockFreeProgram(topo, gen);
    MachineSpec spec;
    spec.topo = topo;
    spec.queuesPerLink = 2;

    sim::RunResult a = sim::simulateProgram(p, spec);
    sim::RunResult b = sim::simulateProgram(p, spec);
    ASSERT_EQ(a.status, b.status);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stats.wordsForwarded, b.stats.wordsForwarded);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].cycle, b.events[i].cycle);
        EXPECT_EQ(a.events[i].msg, b.events[i].msg);
        EXPECT_EQ(a.events[i].queueId, b.events[i].queueId);
    }
}

TEST(Determinism, RandomPolicyDeterministicUnderSeed)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 0, 1);
    for (int i = 0; i < 4; ++i) {
        p.write(0, a);
        p.write(0, b);
        p.read(1, a);
        p.read(1, b);
    }
    MachineSpec spec;
    spec.topo = Topology::linearArray(2);
    spec.queuesPerLink = 2;
    sim::SimOptions options;
    options.policy = sim::PolicyKind::kRandom;
    options.seed = 99;
    sim::RunResult r1 = sim::simulateProgram(p, spec, options);
    sim::RunResult r2 = sim::simulateProgram(p, spec, options);
    EXPECT_EQ(r1.status, r2.status);
    EXPECT_EQ(r1.cycles, r2.cycles);
}

} // namespace
} // namespace syscomm
