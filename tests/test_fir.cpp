/**
 * @file
 * Generated FIR programs (Fig. 2 generalized): parameterized sweep
 * over taps and outputs, checking deadlock-freedom, labeling,
 * simulation, and numerics against the direct reference.
 */

#include <gtest/gtest.h>

#include "algos/fir.h"
#include "core/compile.h"
#include "core/crossoff.h"
#include "sim/machine.h"

namespace syscomm {
namespace {

using algos::FirSpec;
using algos::firReference;
using algos::firTopology;
using algos::makeFirProgram;
using sim::RunStatus;

class FirSweep : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(FirSweep, EndToEnd)
{
    auto [taps, outputs] = GetParam();
    FirSpec spec = FirSpec::random(taps, outputs,
                                   1000 + taps * 31 + outputs);
    Program p = makeFirProgram(spec);
    ASSERT_TRUE(p.valid());
    EXPECT_TRUE(isDeadlockFree(p));

    MachineSpec machine;
    machine.topo = firTopology(taps);
    machine.queuesPerLink = 2;
    CompilePlan plan = compileProgram(p, machine);
    ASSERT_TRUE(plan.ok) << plan.error;
    EXPECT_FALSE(plan.usedTrivialFallback);

    sim::SimOptions options;
    options.labels = plan.normalizedLabels;
    options.audit = true;
    sim::RunResult r = sim::simulateProgram(p, machine, options);
    ASSERT_EQ(r.status, RunStatus::kCompleted) << r.statusStr();
    EXPECT_TRUE(r.audit.compatible);

    auto y = *p.messageByName(algos::firHostOutputMessage());
    std::vector<double> expected = firReference(spec);
    ASSERT_EQ(r.received[y].size(), expected.size());
    for (std::size_t j = 0; j < expected.size(); ++j)
        EXPECT_NEAR(r.received[y][j], expected[j], 1e-9) << "y" << j;
}

INSTANTIATE_TEST_SUITE_P(
    TapsByOutputs, FirSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6, 8),
                       ::testing::Values(1, 2, 4, 7)),
    [](const auto& info) {
        return "taps" + std::to_string(std::get<0>(info.param)) +
               "_out" + std::to_string(std::get<1>(info.param));
    });

TEST(Fir, PaperExampleMatchesHandComputation)
{
    FirSpec spec = FirSpec::paperExample();
    std::vector<double> y = firReference(spec);
    ASSERT_EQ(y.size(), 2u);
    EXPECT_DOUBLE_EQ(y[0], 3 * 1 + 5 * 2 + 7 * 3.0);
    EXPECT_DOUBLE_EQ(y[1], 3 * 2 + 5 * 3 + 7 * 4.0);
}

TEST(Fir, GeneratedProgramHasPaperMessageStructure)
{
    FirSpec spec = FirSpec::paperExample();
    Program p = makeFirProgram(spec);
    // X1 has outputs + taps - 1 words, shrinking by one per cell; the
    // Y streams all carry `outputs` words.
    EXPECT_EQ(p.messageLength(*p.messageByName("X1")), 4);
    EXPECT_EQ(p.messageLength(*p.messageByName("X2")), 3);
    EXPECT_EQ(p.messageLength(*p.messageByName("X3")), 2);
    for (const char* y : {"Y1", "Y2", "Y3"})
        EXPECT_EQ(p.messageLength(*p.messageByName(y)), 2) << y;
}

TEST(Fir, HigherBufferDoesNotChangeResults)
{
    FirSpec spec = FirSpec::random(4, 5, 99);
    Program p = makeFirProgram(spec);
    MachineSpec machine;
    machine.topo = firTopology(4);
    machine.queuesPerLink = 2;
    std::vector<double> expected = firReference(spec);
    for (int capacity : {1, 2, 8}) {
        machine.queueCapacity = capacity;
        sim::RunResult r = sim::simulateProgram(p, machine);
        ASSERT_EQ(r.status, RunStatus::kCompleted) << capacity;
        auto y = *p.messageByName("Y1");
        for (std::size_t j = 0; j < expected.size(); ++j)
            EXPECT_NEAR(r.received[y][j], expected[j], 1e-9);
    }
}

TEST(Fir, DeeperBuffersNeverSlowItDown)
{
    FirSpec spec = FirSpec::random(4, 8, 7);
    Program p = makeFirProgram(spec);
    MachineSpec machine;
    machine.topo = firTopology(4);
    machine.queuesPerLink = 2;
    machine.queueCapacity = 1;
    Cycle shallow = sim::simulateProgram(p, machine).cycles;
    machine.queueCapacity = 4;
    Cycle deep = sim::simulateProgram(p, machine).cycles;
    EXPECT_LE(deep, shallow);
}

} // namespace
} // namespace syscomm
