/**
 * @file
 * Run-time reproduction of the paper's queue-induced deadlock examples
 * (Figs. 7, 8, 9): the naive FCFS policy deadlocks exactly as the
 * figures describe, and the paper's avoidance procedure completes.
 */

#include <gtest/gtest.h>

#include "algos/paper_figures.h"
#include "core/labeling.h"
#include "sim/machine.h"

namespace syscomm {
namespace {

using sim::PolicyKind;
using sim::RunResult;
using sim::RunStatus;
using sim::SimOptions;
using sim::simulateProgram;

MachineSpec
spec(Topology topo, int queues, int capacity = 1)
{
    MachineSpec s;
    s.topo = std::move(topo);
    s.queuesPerLink = queues;
    s.queueCapacity = capacity;
    return s;
}

SimOptions
withPolicy(PolicyKind kind)
{
    SimOptions options;
    options.policy = kind;
    options.maxCycles = 100000;
    return options;
}

// ---------------------------------------------------------------------
// Fig. 7
// ---------------------------------------------------------------------

TEST(Fig7, FcfsDeadlocksWithOneQueue)
{
    Program p = algos::fig7Program();
    RunResult r = simulateProgram(p, spec(algos::fig7Topology(), 1),
                                  withPolicy(PolicyKind::kFcfs));
    EXPECT_EQ(r.status, RunStatus::kDeadlocked) << r.statusStr();
    // C4 is stuck reading C while B holds the C3-C4 queue.
    std::string render = r.deadlock.render();
    EXPECT_NE(render.find("R(C)"), std::string::npos) << render;
}

TEST(Fig7, CompatibleCompletesWithOneQueue)
{
    Program p = algos::fig7Program();
    RunResult r = simulateProgram(p, spec(algos::fig7Topology(), 1),
                                  withPolicy(PolicyKind::kCompatible));
    EXPECT_EQ(r.status, RunStatus::kCompleted) << r.statusStr();
}

TEST(Fig7, CompatibleTraceIsAuditClean)
{
    Program p = algos::fig7Program();
    SimOptions options = withPolicy(PolicyKind::kCompatible);
    options.audit = true;
    RunResult r =
        simulateProgram(p, spec(algos::fig7Topology(), 1), options);
    ASSERT_EQ(r.status, RunStatus::kCompleted);
    EXPECT_TRUE(r.audit.compatible) << r.audit.str(p);
}

TEST(Fig7, FcfsTraceViolatesCompatibility)
{
    Program p = algos::fig7Program();
    SimOptions options = withPolicy(PolicyKind::kFcfs);
    options.audit = true;
    RunResult r =
        simulateProgram(p, spec(algos::fig7Topology(), 1), options);
    ASSERT_EQ(r.status, RunStatus::kDeadlocked);
    EXPECT_FALSE(r.audit.compatible);
}

TEST(Fig7, GraphLabelingAlsoAvoidsTheDeadlock)
{
    // Theorem 1 only needs *some* consistent labeling; the direct
    // constraint-graph scheme works as well as section 6's.
    Program p = algos::fig7Program();
    Labeling labeling = graphLabeling(p);
    ASSERT_TRUE(labeling.success);
    SimOptions options = withPolicy(PolicyKind::kCompatible);
    options.labels = labeling.normalized();
    options.audit = true;
    RunResult r =
        simulateProgram(p, spec(algos::fig7Topology(), 1), options);
    EXPECT_EQ(r.status, RunStatus::kCompleted) << r.statusStr();
    EXPECT_TRUE(r.audit.compatible);
}

TEST(Fig7, StaticNeedsThreeQueuesOnMiddleLinks)
{
    Program p = algos::fig7Program();
    // Static assignment fails with 1 queue (A and C share C2-C3)...
    RunResult r1 = simulateProgram(p, spec(algos::fig7Topology(), 1),
                                   withPolicy(PolicyKind::kStatic));
    EXPECT_EQ(r1.status, RunStatus::kConfigError);
    // ...and succeeds with 2 (max two messages per link).
    RunResult r2 = simulateProgram(p, spec(algos::fig7Topology(), 2),
                                   withPolicy(PolicyKind::kStatic));
    EXPECT_EQ(r2.status, RunStatus::kCompleted) << r2.error;
}

// ---------------------------------------------------------------------
// Fig. 8 — interleaved reads need separate queues.
// ---------------------------------------------------------------------

TEST(Fig8, FcfsDeadlocksWithOneQueue)
{
    Program p = algos::fig8Program();
    RunResult r = simulateProgram(p, spec(algos::fig8Topology(), 1),
                                  withPolicy(PolicyKind::kFcfs));
    EXPECT_EQ(r.status, RunStatus::kDeadlocked);
}

TEST(Fig8, CompatibleCompletesWithTwoQueues)
{
    // "No deadlock if # queues greater than 1."
    Program p = algos::fig8Program();
    RunResult r = simulateProgram(p, spec(algos::fig8Topology(), 2),
                                  withPolicy(PolicyKind::kCompatible));
    EXPECT_EQ(r.status, RunStatus::kCompleted) << r.statusStr();
}

TEST(Fig8, CompatibleWithOneQueueCannotProceed)
{
    // A and B share a label (related), so the simultaneous-assignment
    // rule needs two queues; with one, assumption (ii) of Theorem 1
    // fails and the run cannot complete.
    Program p = algos::fig8Program();
    RunResult r = simulateProgram(p, spec(algos::fig8Topology(), 1),
                                  withPolicy(PolicyKind::kCompatible));
    EXPECT_EQ(r.status, RunStatus::kDeadlocked);
}

TEST(Fig8, LargerInstancesBehaveTheSame)
{
    for (int words : {2, 4, 8}) {
        Program p = algos::fig8Program(words);
        EXPECT_EQ(simulateProgram(p, spec(algos::fig8Topology(), 1),
                                  withPolicy(PolicyKind::kFcfs))
                      .status,
                  RunStatus::kDeadlocked)
            << words;
        EXPECT_EQ(simulateProgram(p, spec(algos::fig8Topology(), 2),
                                  withPolicy(PolicyKind::kCompatible))
                      .status,
                  RunStatus::kCompleted)
            << words;
    }
}

// ---------------------------------------------------------------------
// Fig. 9 — interleaved writes, symmetric case.
// ---------------------------------------------------------------------

TEST(Fig9, FcfsDeadlocksWithOneQueue)
{
    Program p = algos::fig9Program();
    RunResult r = simulateProgram(p, spec(algos::fig9Topology(), 1),
                                  withPolicy(PolicyKind::kFcfs));
    EXPECT_EQ(r.status, RunStatus::kDeadlocked);
}

TEST(Fig9, CompatibleCompletesWithTwoQueues)
{
    Program p = algos::fig9Program();
    RunResult r = simulateProgram(p, spec(algos::fig9Topology(), 2),
                                  withPolicy(PolicyKind::kCompatible));
    EXPECT_EQ(r.status, RunStatus::kCompleted) << r.statusStr();
}

TEST(Fig9, StaticWithTwoQueuesCompletes)
{
    // Section 7's static example: "If there are two queues between Cl
    // and C2, then messages A and B can each be assigned to a separate
    // queue statically, and no deadlock will occur."
    Program p = algos::fig9Program();
    RunResult r = simulateProgram(p, spec(algos::fig9Topology(), 2),
                                  withPolicy(PolicyKind::kStatic));
    EXPECT_EQ(r.status, RunStatus::kCompleted) << r.error;
}

// ---------------------------------------------------------------------
// Fig. 2 — the FIR program runs and produces the right numbers.
// ---------------------------------------------------------------------

TEST(Fig2, ProducesPaperOutputs)
{
    Program p = algos::fig2FirProgram();
    RunResult r = simulateProgram(p, spec(algos::fig2Topology(), 2),
                                  withPolicy(PolicyKind::kCompatible));
    ASSERT_EQ(r.status, RunStatus::kCompleted) << r.statusStr();
    // y1 = 3*1 + 5*2 + 7*3 = 34; y2 = 3*2 + 5*3 + 7*4 = 49.
    auto ya = *p.messageByName("YA");
    ASSERT_EQ(r.received[ya].size(), 2u);
    EXPECT_DOUBLE_EQ(r.received[ya][0], 34.0);
    EXPECT_DOUBLE_EQ(r.received[ya][1], 49.0);
}

TEST(Fig2, RunsEvenWithOneQueuePerLink)
{
    // The FIR schedule never needs two queues at once in the same
    // direction group under the section 6 labels.
    Program p = algos::fig2FirProgram();
    RunResult r = simulateProgram(p, spec(algos::fig2Topology(), 2, 1),
                                  withPolicy(PolicyKind::kCompatible));
    EXPECT_EQ(r.status, RunStatus::kCompleted);
}

// ---------------------------------------------------------------------
// Fig. 6 — the ring cycle completes under every safe policy.
// ---------------------------------------------------------------------

TEST(Fig6, RingCycleCompletes)
{
    Program p = algos::fig6CycleProgram();
    for (PolicyKind kind : {PolicyKind::kCompatible, PolicyKind::kStatic,
                            PolicyKind::kFcfs}) {
        RunResult r = simulateProgram(p, spec(algos::fig6Topology(), 1),
                                      withPolicy(kind));
        EXPECT_EQ(r.status, RunStatus::kCompleted)
            << sim::policyKindName(kind);
    }
}

} // namespace
} // namespace syscomm
