/**
 * @file
 * LCS on a linear systolic array (the paper's P-NAC reference [8]):
 * parameterized sweep against the direct DP, plus analysis checks.
 */

#include <gtest/gtest.h>

#include "algos/align.h"
#include "core/compile.h"
#include "core/crossoff.h"
#include "core/related.h"
#include "sim/machine.h"

namespace syscomm {
namespace {

using sim::RunStatus;

int
runLcs(const algos::AlignSpec& spec)
{
    Program p = algos::makeLcsProgram(spec);
    if (!p.valid())
        return -2;
    MachineSpec machine;
    machine.topo = algos::alignTopology(spec);
    machine.queuesPerLink = 2;
    sim::RunResult r = sim::simulateProgram(p, machine);
    if (r.status != RunStatus::kCompleted)
        return -1;
    auto res = *p.messageByName("RES");
    return static_cast<int>(r.received[res][0]);
}

class LcsSweep : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(LcsSweep, MatchesDpReference)
{
    auto [la, lb] = GetParam();
    algos::AlignSpec spec = algos::AlignSpec::random(la, lb, la * 17 + lb);
    EXPECT_EQ(runLcs(spec), algos::lcsReference(spec));
}

INSTANTIATE_TEST_SUITE_P(
    Lengths, LcsSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 6, 9),
                       ::testing::Values(1, 3, 5, 8)),
    [](const auto& info) {
        return "a" + std::to_string(std::get<0>(info.param)) + "_b" +
               std::to_string(std::get<1>(info.param));
    });

TEST(Lcs, KnownCases)
{
    EXPECT_EQ(runLcs({"ACGT", "ACGT"}), 4);
    EXPECT_EQ(runLcs({"AAAA", "TTTT"}), 0);
    EXPECT_EQ(runLcs({"ACGT", "TGCA"}), 1);
    EXPECT_EQ(runLcs({"AGCAT", "GAC"}), 2);
    EXPECT_EQ(runLcs({"A", "A"}), 1);
}

TEST(Lcs, ProgramIsDeadlockFree)
{
    algos::AlignSpec spec = algos::AlignSpec::random(6, 7, 3);
    Program p = algos::makeLcsProgram(spec);
    EXPECT_TRUE(isDeadlockFree(p));
}

TEST(Lcs, CharAndRowStreamsAreRelated)
{
    // Each cell interleaves R(B_i) with R(ROW_i): one label class per
    // link, so the dynamic scheme needs two queues.
    algos::AlignSpec spec = algos::AlignSpec::random(4, 5, 8);
    Program p = algos::makeLcsProgram(spec);
    EXPECT_TRUE(areRelated(p, *p.messageByName("B1"),
                           *p.messageByName("ROW1")));

    MachineSpec machine;
    machine.topo = algos::alignTopology(spec);
    machine.queuesPerLink = 2;
    CompilePlan plan = compileProgram(p, machine);
    ASSERT_TRUE(plan.ok) << plan.error;
    EXPECT_EQ(plan.dynamicFeasibility.requiredQueuesPerLink, 2);

    machine.queuesPerLink = 1;
    EXPECT_FALSE(compileProgram(p, machine).ok);
}

TEST(Lcs, LongerSequencesStillExact)
{
    algos::AlignSpec spec = algos::AlignSpec::random(12, 20, 99);
    EXPECT_EQ(runLcs(spec), algos::lcsReference(spec));
}

} // namespace
} // namespace syscomm
