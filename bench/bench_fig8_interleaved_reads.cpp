/**
 * @file
 * Experiment F8 (paper Fig. 8): interleaved reads from multiple
 * messages. Assigning one message the queue first cannot help: A and B
 * are related, share a label, and need separate queues on the C2-C3
 * link ("no deadlock if # queues greater than 1").
 */

#include <cstdio>

#include "algos/paper_figures.h"
#include "bench_util.h"
#include "core/compile.h"
#include "core/related.h"
#include "sim/machine.h"
#include "text/printer.h"

using namespace syscomm;
using namespace syscomm::bench;

int
main()
{
    banner("F8", "queue-induced deadlock 2: interleaved reads (Fig. 8)");

    Program p = algos::fig8Program();
    std::printf("\n%s\n", text::renderColumns(p).c_str());
    std::printf("A and B related: %s (C3 reads them interleaved)\n",
                areRelated(p, *p.messageByName("A"), *p.messageByName("B"))
                    ? "yes"
                    : "no");

    MachineSpec two;
    two.topo = algos::fig8Topology();
    two.queuesPerLink = 2;
    CompilePlan plan = compileProgram(p, two);
    std::printf("labels: %s (shared, by rule 1c)\n",
                plan.labeling.str(p).c_str());
    std::printf("dynamic scheme needs %d queues/link\n\n",
                plan.dynamicFeasibility.requiredQueuesPerLink);

    row({"policy", "queues", "status", "cycles"});
    rule(4);
    for (int queues : {1, 2, 3}) {
        for (sim::PolicyKind kind :
             {sim::PolicyKind::kFcfs, sim::PolicyKind::kCompatible}) {
            MachineSpec s = two;
            s.queuesPerLink = queues;
            sim::SimOptions options;
            options.policy = kind;
            sim::RunResult r = sim::simulateProgram(p, s, options);
            row({sim::policyKindName(kind), std::to_string(queues),
                 r.statusStr(), std::to_string(r.cycles)});
        }
    }

    std::printf("\nwords-per-message sweep (compatible, 2 queues)\n\n");
    row({"words", "status", "cycles"});
    rule(3);
    for (int words : {2, 4, 8, 32}) {
        Program pw = algos::fig8Program(words);
        sim::RunResult r = sim::simulateProgram(pw, two);
        row({std::to_string(words), r.statusStr(),
             std::to_string(r.cycles)});
    }
    return 0;
}
