/**
 * @file
 * Experiment F1 (paper Fig. 1 + section 1): systolic vs
 * memory-to-memory communication.
 *
 * The paper's claim: the memory-to-memory model needs "a total of at
 * least four local memory accesses ... for a cell to update a data
 * item flowing through the array", while the systolic model needs
 * none, so systolic communication is much more efficient. We run a
 * relay pipeline (each interior cell reads and re-emits every word)
 * under both models and report cycles, memory accesses and speedup.
 */

#include <cstdio>

#include "algos/streams.h"
#include "bench_util.h"
#include "sim/memmodel.h"

using namespace syscomm;
using namespace syscomm::bench;

int
main()
{
    banner("F1", "systolic vs memory-to-memory communication (Fig. 1)");

    std::printf("\nrelay pipeline, memory access cost = 1 cycle\n\n");
    row({"cells", "words", "systolic", "mem-to-mem", "mem-acc", "acc/word",
         "speedup"});
    rule(7);
    for (int cells : {3, 5, 9}) {
        for (int words : {16, 64, 256}) {
            Program p = algos::makeRelayPipeline(cells, words);
            MachineSpec spec;
            spec.topo = Topology::linearArray(cells);
            spec.queuesPerLink = 2;
            sim::ModelComparison cmp = sim::compareModels(p, spec);
            row({std::to_string(cells), std::to_string(words),
                 std::to_string(cmp.systolic.cycles),
                 std::to_string(cmp.memToMem.cycles),
                 std::to_string(cmp.memToMem.stats.memAccesses),
                 fmt(cmp.accessesPerWord()), fmt(cmp.speedup())});
        }
    }

    std::printf("\nsweep of the memory access cost (5 cells, 128 words)\n\n");
    row({"mem-cost", "systolic", "mem-to-mem", "speedup"});
    rule(4);
    Program p = algos::makeRelayPipeline(5, 128);
    MachineSpec spec;
    spec.topo = Topology::linearArray(5);
    spec.queuesPerLink = 2;
    for (int cost : {0, 1, 2, 4, 8}) {
        sim::SimOptions options;
        options.memAccessCost = cost;
        sim::ModelComparison cmp = sim::compareModels(p, spec, options);
        row({std::to_string(cost), std::to_string(cmp.systolic.cycles),
             std::to_string(cmp.memToMem.cycles), fmt(cmp.speedup())});
    }

    std::printf("\nshape check: systolic uses 0 memory accesses; the\n"
                "memory-to-memory model pays 4 accesses per word at each\n"
                "relaying cell and slows down accordingly.\n");
    return 0;
}
