/**
 * @file
 * Experiment A4 (paper section 8): the iWarp queue-extension
 * mechanism — spilling a queue into the receiving cell's local memory
 * implements "very long queues at the expense of larger queue access
 * time". The extension buys completions that plain hardware capacity
 * cannot, and the penalty shows up as extra cycles.
 */

#include <cstdio>

#include "algos/streams.h"
#include "bench_util.h"
#include "sim/machine.h"

using namespace syscomm;
using namespace syscomm::bench;

namespace {

Program
frontLoaded(int k)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 0, 1);
    for (int i = 0; i < k; ++i)
        p.write(0, a);
    p.write(0, b);
    p.read(1, b);
    for (int i = 0; i < k; ++i)
        p.read(1, a);
    return p;
}

} // namespace

int
main()
{
    banner("A4", "queue extension ablation (section 8, iWarp)");

    std::printf("\nfront-loaded program, hardware capacity 1\n\n");
    row({"k", "ext=0", "ext=k-1 pen=0", "pen=2", "pen=8"});
    rule(5);
    for (int k : {2, 4, 8, 16}) {
        Program p = frontLoaded(k);
        std::vector<std::string> cells{std::to_string(k)};
        for (auto [ext, pen] :
             {std::pair<int, int>{0, 0}, {k - 1, 0}, {k - 1, 2},
              {k - 1, 8}}) {
            MachineSpec spec;
            spec.topo = Topology::linearArray(2);
            spec.queuesPerLink = 2;
            spec.queueCapacity = 1;
            spec.extensionCapacity = ext;
            spec.extensionPenalty = pen;
            sim::RunResult r = sim::simulateProgram(p, spec);
            cells.push_back(r.status == sim::RunStatus::kCompleted
                                ? std::to_string(r.cycles)
                                : r.statusStr());
        }
        row(cells);
    }

    std::printf("\nhardware capacity vs extension at equal total capacity\n"
                "(k=8, total capacity 8)\n\n");
    row({"hw-cap", "ext", "penalty", "status", "cycles", "ext-words"});
    rule(6);
    Program p = frontLoaded(8);
    for (auto [hw, ext] : {std::pair<int, int>{8, 0}, {4, 4}, {1, 7}}) {
        for (int pen : {0, 4}) {
            MachineSpec spec;
            spec.topo = Topology::linearArray(2);
            spec.queuesPerLink = 2;
            spec.queueCapacity = hw;
            spec.extensionCapacity = ext;
            spec.extensionPenalty = pen;
            sim::RunResult r = sim::simulateProgram(p, spec);
            row({std::to_string(hw), std::to_string(ext),
                 std::to_string(pen), r.statusStr(),
                 std::to_string(r.cycles),
                 std::to_string(r.stats.extendedWords)});
        }
    }

    std::printf("\nshape check: the extension converts deadlocks into\n"
                "completions; its penalty costs cycles, so hardware\n"
                "capacity dominates at equal total size.\n");
    return 0;
}
