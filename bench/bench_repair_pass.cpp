/**
 * @file
 * Experiment W2: the section 3.3 strategy as a compiler pass. Random
 * programs are scrambled until most are deadlocked, then repaired by
 * reordering (per-message word order preserved). Reports deadlock
 * rates before/after and the cost in moved ops and cycles.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/crossoff.h"
#include "core/program_gen.h"
#include "core/repair.h"
#include "sim/machine.h"

using namespace syscomm;
using namespace syscomm::bench;

int
main()
{
    banner("W2", "deadlock repair via the section 3.3 strategy");

    constexpr int kTrials = 200;
    Topology topo = Topology::linearArray(5);

    std::printf("\n%d random programs per row, scrambled by k adjacent "
                "swaps\n\n",
                kTrials);
    row({"swaps", "deadlocked", "repaired", "still-bad", "avg-moved",
         "avg-cycles"},
        12);
    rule(6, 12);

    for (int swaps : {0, 5, 20, 80}) {
        int deadlocked = 0, repaired_ok = 0, still_bad = 0;
        long moved = 0;
        long long cycles = 0;
        int completed_runs = 0;
        for (int trial = 0; trial < kTrials; ++trial) {
            GenOptions gen;
            gen.numMessages = 8;
            gen.maxWords = 4;
            gen.seed = trial + 1;
            Program p = randomDeadlockFreeProgram(topo, gen);
            Program broken = perturbProgram(p, swaps, trial * 5 + 3);
            bool was_deadlocked = !isDeadlockFree(broken);
            if (was_deadlocked)
                ++deadlocked;

            RepairResult r = repairProgram(broken);
            if (!r.success || !isDeadlockFree(r.program)) {
                ++still_bad;
                continue;
            }
            if (was_deadlocked)
                ++repaired_ok;
            moved += r.movedOps;

            MachineSpec spec;
            spec.topo = topo;
            spec.queuesPerLink = 3;
            sim::RunResult run = sim::simulateProgram(r.program, spec);
            if (run.status == sim::RunStatus::kCompleted) {
                cycles += run.cycles;
                ++completed_runs;
            }
        }
        row({std::to_string(swaps), std::to_string(deadlocked),
             std::to_string(repaired_ok), std::to_string(still_bad),
             fmt(kTrials ? static_cast<double>(moved) / kTrials : 0),
             fmt(completed_runs
                     ? static_cast<double>(cycles) / completed_runs
                     : 0)},
            12);
    }

    std::printf("\nshape check: the repair pass fixes every scrambled\n"
                "program ('still-bad' stays 0) — the section 3.3 strategy\n"
                "is complete for transfer-only programs.\n");
    return 0;
}
