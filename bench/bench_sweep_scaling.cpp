/**
 * @file
 * The inverted-curve regression gate: thread scaling of ShapeSweep on
 * a deliberately skewed ladder.
 *
 * The workload is the scheduler's worst case before cell-granular
 * dispatch: one *giant* rung (queueCapacity 1 + a large iWarp-style
 * extension + a large extension penalty, so every buffered word pays
 * the penalty when it surfaces and the run stretches to roughly
 * words × penalty cycles) next to a pile of *tiny* rungs (capacity
 * large enough that the burst never extends). Under whole-shape
 * dispatch the worker that claimed the giant rung serialized the
 * sweep — 4 workers measured *slower* than 1 in BENCH_session.json —
 * while cell-granular stealing with per-shape session pools lets
 * every worker chew on the giant rung's request cells.
 *
 * The reference kernel is used on purpose: its dense per-cycle scan
 * makes wall clock track simulated cycles, so the rung skew in
 * cycles is a rung skew in seconds — the shape of ladder the paper's
 * own figure sweeps produce when one shape deadlocks its buffering
 * into the extension and the rest sail through.
 *
 * Emits skewed_sweep_seconds / skewed_sweep_speedup per worker count
 * into BENCH_shape_sweep.json, asserts row digests are bit-identical
 * across all worker counts, and with --gate exits nonzero when the
 * highest worker count is slower than 1 worker (the CI scaling-smoke
 * job's pass/fail line; no python needed).
 *
 *   bench_sweep_scaling [--quick] [--gate] [--pairs N] [--words W]
 *                       [--penalty P] [--tiny K] [--seeds R] [--reps M]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/topology.h"
#include "sim/shape_sweep.h"

using namespace syscomm;
using namespace syscomm::sim;

namespace {

/**
 * A burst program: @p pairs disjoint (writer -> neighbor) streams on
 * a linear array, each writer bursting @p words words before the
 * reader drains them. Transfer-only, so sweeps over it are fully
 * covered by the journal's structural digest; deadlock-free whenever
 * capacity + extension >= words (the writer never blocks).
 */
Program
burstProgram(int pairs, int words)
{
    Program p(2 * pairs);
    for (int i = 0; i < pairs; ++i) {
        const CellId from = static_cast<CellId>(2 * i);
        const CellId to = static_cast<CellId>(2 * i + 1);
        const MessageId id =
            p.declareMessage("B" + std::to_string(i), from, to);
        for (int w = 0; w < words; ++w)
            p.write(from, id);
        for (int w = 0; w < words; ++w)
            p.read(to, id);
    }
    return p;
}

/** One giant rung + @p tiny small ones: the skew that broke whole-
 *  shape dispatch. */
std::vector<ShapeSpec>
skewedLadder(int words, int penalty, int tiny)
{
    std::vector<ShapeSpec> shapes;
    ShapeSpec giant;
    giant.name = "giant-ext";
    giant.queueCapacity = 1;
    giant.extensionCapacity = words;
    giant.extensionPenalty = penalty;
    shapes.push_back(std::move(giant));
    for (int k = 0; k < tiny; ++k) {
        ShapeSpec shape;
        shape.name = "tiny-" + std::to_string(k);
        // Capacity swallows the whole burst: nothing extends, the
        // run finishes in ~2*words cycles.
        shape.queueCapacity = words + k;
        shapes.push_back(std::move(shape));
    }
    return shapes;
}

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    bool gate = false;
    long long pairs = 32, words = 256, penalty = 1024;
    long long tiny = 15, seeds = 8, reps = 2;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
        auto num = [&](long long& out) {
            if (value == nullptr)
                return false;
            char* end = nullptr;
            out = std::strtoll(value, &end, 10);
            ++i;
            return end != value && *end == '\0' && out > 0;
        };
        if (arg == "--quick")
            quick = true;
        else if (arg == "--gate")
            gate = true;
        else if (arg == "--pairs" && num(pairs)) {
        } else if (arg == "--words" && num(words)) {
        } else if (arg == "--penalty" && num(penalty)) {
        } else if (arg == "--tiny" && num(tiny)) {
        } else if (arg == "--seeds" && num(seeds)) {
        } else if (arg == "--reps" && num(reps)) {
        } else {
            std::fprintf(stderr,
                         "usage: bench_sweep_scaling [--quick] "
                         "[--gate] [--pairs N] [--words W] "
                         "[--penalty P] [--tiny K] [--seeds R] "
                         "[--reps M]\n");
            return 2;
        }
    }
    if (quick) {
        pairs = std::min<long long>(pairs, 8);
        penalty = std::min<long long>(penalty, 256);
        seeds = std::min<long long>(seeds, 4);
        reps = 1;
    }

    bench::banner("SCALE-1",
                  "skewed-ladder thread scaling (1 giant + " +
                      std::to_string(tiny) + " tiny rungs, " +
                      std::to_string(seeds) + " requests each)");

    const Program program =
        burstProgram(static_cast<int>(pairs), static_cast<int>(words));
    Topology topo = Topology::linearArray(2 * static_cast<int>(pairs));
    const std::vector<ShapeSpec> shapes =
        skewedLadder(static_cast<int>(words), static_cast<int>(penalty),
                     static_cast<int>(tiny));

    std::vector<RunRequest> requests;
    for (long long r = 0; r < seeds; ++r) {
        RunRequest request;
        request.policy = PolicyKind::kCompatible;
        request.seed = static_cast<std::uint64_t>(1 + r);
        requests.push_back(request);
    }

    ShapeSweepOptions base;
    // Wall clock must track simulated cycles for the skew to be a
    // skew in seconds (see the file comment).
    base.session.kernel = KernelKind::kReference;

    // Compile once, share across every worker-count sweep — this
    // bench measures the scheduler, not the compiler.
    std::shared_ptr<const CompiledProgram> compiled =
        CompiledProgram::compile(program, topo, base.session.labels,
                                 base.session.precomputeLabels);

    const std::vector<int> ladder =
        quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};

    bench::JsonWriter json("sweep_scaling", "BENCH_shape_sweep.json");
    bench::row({"workers", "seconds", "speedup", "rows"});
    bench::rule(4);

    std::vector<std::uint64_t> digests1;
    double seconds1 = 0.0;
    double secondsLast = 0.0;
    int lastWorkers = 1;
    for (int workers : ladder) {
        ShapeSweepOptions options = base;
        options.numWorkers = workers;
        ShapeSweep sweep(compiled, shapes, options);
        double best = 0.0;
        ShapeSweepResult result;
        for (long long rep = 0; rep < reps; ++rep) {
            ShapeSweepResult r = sweep.run(requests);
            if (rep == 0 || r.wallSeconds < best)
                best = r.wallSeconds;
            result = std::move(r);
        }

        std::vector<std::uint64_t> digests;
        digests.reserve(result.rows.size());
        for (const ShapeSweepRow& row : result.rows)
            digests.push_back(row.machineDigest);
        if (workers == 1) {
            digests1 = digests;
            seconds1 = best;
        } else if (digests != digests1) {
            std::fprintf(stderr,
                         "bench_sweep_scaling: %d-worker digests "
                         "differ from 1-worker — determinism "
                         "violation\n",
                         workers);
            return 1;
        }

        const double speedup = best > 0.0 ? seconds1 / best : 0.0;
        bench::row({std::to_string(workers), bench::fmt(best),
                    bench::fmt(speedup),
                    std::to_string(result.rows.size())});
        json.record("skewed_sweep_seconds", best,
                    {{"workers", std::to_string(workers)},
                     {"shapes", std::to_string(shapes.size())},
                     {"requests", std::to_string(requests.size())},
                     {"pairs", std::to_string(pairs)},
                     {"penalty", std::to_string(penalty)}});
        json.record("skewed_sweep_speedup", speedup,
                    {{"workers", std::to_string(workers)}});
        secondsLast = best;
        lastWorkers = workers;
    }

    if (gate && lastWorkers > 1 && secondsLast > seconds1) {
        std::fprintf(stderr,
                     "bench_sweep_scaling: INVERTED CURVE — %d "
                     "workers (%.3fs) slower than 1 worker (%.3fs)\n",
                     lastWorkers, secondsLast, seconds1);
        return 1;
    }
    return 0;
}
