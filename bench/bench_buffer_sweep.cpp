/**
 * @file
 * Experiment A2 (paper section 8): queue buffering. Deeper queues
 * (a) enlarge the class of deadlock-free programs under lookahead and
 * (b) monotonically reduce completion time by decoupling producer and
 * consumer. Appends machine-readable lines to BENCH_buffer.json.
 */

#include <cstdio>

#include "algos/fir.h"
#include "algos/streams.h"
#include "bench_util.h"
#include "core/crossoff.h"
#include "sim/shape_sweep.h"

using namespace syscomm;
using namespace syscomm::bench;

namespace {

/** Sender front-loads k words of A before B; receiver wants B first. */
Program
frontLoaded(int k)
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 0, 1);
    for (int i = 0; i < k; ++i)
        p.write(0, a);
    p.write(0, b);
    p.read(1, b);
    for (int i = 0; i < k; ++i)
        p.read(1, a);
    return p;
}

} // namespace

int
main()
{
    banner("A2", "queue buffering sweep (section 8)");
    JsonWriter json("buffer_sweep", "BENCH_buffer.json");

    std::printf("\n(a) lookahead acceptance of front-loaded programs\n"
                "    (k writes buffered before the consumer catches up)\n\n");
    row({"k", "cap=1", "cap=2", "cap=4", "cap=8"});
    rule(5);
    for (int k : {1, 2, 4, 8}) {
        Program p = frontLoaded(k);
        std::vector<std::string> cells{std::to_string(k)};
        for (int capacity : {1, 2, 4, 8}) {
            bool free = isDeadlockFreeWithLookahead(
                p, uniformSkipBound(capacity));
            cells.push_back(free ? "free" : "deadlocked");
            json.record("lookahead_free", free ? 1.0 : 0.0,
                        {{"k", std::to_string(k)},
                         {"capacity", std::to_string(capacity)}});
        }
        row(cells);
    }

    std::printf("\n(b) completion cycles vs capacity\n\n");
    row({"workload", "cap=1", "cap=2", "cap=4", "cap=8", "cap=16"});
    rule(6);

    auto sweep = [&](const std::string& name, const Program& p,
                     Topology topo, int queues) {
        // The capacity ladder is a machine-shape sweep: compile the
        // program once (ShapeSweep) and vary only the hardware. The
        // default stats-only request is all the sweep wants — cycles,
        // not event logs.
        std::vector<sim::ShapeSpec> shapes;
        for (int capacity : {1, 2, 4, 8, 16}) {
            sim::ShapeSpec shape;
            shape.name = "cap=" + std::to_string(capacity);
            shape.queuesPerLink = queues;
            shape.queueCapacity = capacity;
            shapes.push_back(std::move(shape));
        }
        sim::ShapeSweep shapeSweep(p, topo, shapes);
        sim::ShapeSweepResult result =
            shapeSweep.run(std::vector<sim::RunRequest>(1));

        std::vector<std::string> cells{name};
        for (std::size_t s = 0; s < shapes.size(); ++s) {
            const sim::RunResult& r = result.row(s, 0).result;
            cells.push_back(r.completed() ? std::to_string(r.cycles)
                                          : r.statusStr());
            json.record("completion_cycles",
                        r.completed() ? static_cast<double>(r.cycles)
                                      : -1.0,
                        {{"workload", name},
                         {"capacity",
                          std::to_string(shapes[s].queueCapacity)},
                         {"queues", std::to_string(queues)},
                         {"status", r.statusStr()}});
        }
        row(cells);
    };

    {
        algos::FirSpec fir = algos::FirSpec::random(4, 32, 11);
        sweep("fir(4,32)", algos::makeFirProgram(fir),
              algos::firTopology(4), 2);
    }
    {
        algos::StreamSpec s;
        s.numCells = 6;
        s.numStreams = 4;
        s.wordsPerStream = 16;
        s.pattern = algos::StreamPattern::kSequential;
        sweep("streams-seq", algos::makeStreamsProgram(s),
              algos::streamsTopology(s), 2);
    }
    {
        algos::StreamSpec s;
        s.numCells = 6;
        s.numStreams = 3;
        s.wordsPerStream = 16;
        s.pattern = algos::StreamPattern::kInterleaved;
        sweep("streams-int", algos::makeStreamsProgram(s),
              algos::streamsTopology(s), 3);
    }

    std::printf("\nshape check: cycles are non-increasing in capacity,\n"
                "with diminishing returns once the pipeline skew fits.\n");
    return 0;
}
