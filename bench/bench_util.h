#pragma once

/**
 * @file
 * Small table/formatting helpers shared by the figure-reproduction
 * benchmark binaries, plus machine-readable JSON-lines emission so
 * sweeps can be consumed by scripts (see README "Architecture &
 * performance": one object per line, written to BENCH_<name>.json).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/program.h"

namespace syscomm::bench {

/**
 * Sparse/streaming benchmark workload shared by bench_kernel_compare
 * and bench_scaling's P2 experiment: @p messages long word streams,
 * each spanning a bounded stretch of a @p cells-cell linear array,
 * placed without wraparound so senders stay distinct and, on large
 * arrays, spans are disjoint. Senders compute @p compute_gap cycles
 * per produced word (systolic cells do real work between I/O,
 * Fig. 2), so only a couple of words per stream are in flight at any
 * cycle — most links and cells stay idle for the whole run.
 */
inline Program
streamingProgram(int cells, int messages = 4, int words = 128,
                 int compute_gap = 16)
{
    Program p(cells);
    int span = std::max(2, std::min(16, cells / messages));
    for (int m = 0; m < messages; ++m) {
        CellId from = static_cast<CellId>((m * (cells - span)) / messages);
        CellId to = static_cast<CellId>(from + span);
        MessageId id = p.declareMessage("S" + std::to_string(m), from, to);
        for (int w = 0; w < words; ++w) {
            for (int g = 0; g < compute_gap; ++g)
                p.compute(from,
                          [](CellContext& ctx) { ctx.local(0) += 1.0; });
            p.write(from, id);
        }
        for (int w = 0; w < words; ++w)
            p.read(to, id);
    }
    return p;
}

/** Print a banner naming the experiment. */
inline void
banner(const std::string& id, const std::string& title)
{
    std::string line(72, '=');
    std::printf("%s\n%s — %s\n%s\n", line.c_str(), id.c_str(),
                title.c_str(), line.c_str());
}

/** Print one row of fixed-width columns. */
inline void
row(const std::vector<std::string>& cells, int width = 14)
{
    for (const std::string& cell : cells)
        std::printf("%-*s", width, cell.c_str());
    std::printf("\n");
}

/** Horizontal rule matching row() width. */
inline void
rule(std::size_t columns, int width = 14)
{
    std::printf("%s\n",
                std::string(columns * static_cast<std::size_t>(width), '-')
                    .c_str());
}

inline std::string
fmt(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return buf;
}

// ----------------------------------------------------------------------
// Machine-readable results: JSON lines
// ----------------------------------------------------------------------

/**
 * Appends one JSON object per record to a BENCH_*.json file (and
 * mirrors it to stdout). Every record carries the bench id, a metric
 * name, a numeric value, and optional extra key/value dimensions:
 *
 *   {"bench": "kernel_compare", "metric": "cycles_per_sec",
 *    "value": 1.25e+07, "kernel": "event-driven", "cells": 256}
 */
class JsonWriter
{
  public:
    /** Opens @p path for append; pass "" to mirror to stdout only. */
    JsonWriter(std::string bench, const std::string& path)
        : bench_(std::move(bench)),
          file_(path.empty() ? nullptr : std::fopen(path.c_str(), "a"))
    {}

    ~JsonWriter()
    {
        if (file_ != nullptr)
            std::fclose(file_);
    }

    JsonWriter(const JsonWriter&) = delete;
    JsonWriter& operator=(const JsonWriter&) = delete;

    /** Extra dimensions: values that look numeric are emitted bare. */
    using Extras = std::vector<std::pair<std::string, std::string>>;

    void
    record(const std::string& metric, double value,
           const Extras& extras = {})
    {
        std::string line = "{\"bench\": \"" + escaped(bench_) +
                           "\", \"metric\": \"" + escaped(metric) +
                           "\", \"value\": " + numStr(value);
        for (const auto& [key, raw] : extras) {
            line += ", \"" + escaped(key) + "\": ";
            line += looksNumeric(raw) ? raw : "\"" + escaped(raw) + "\"";
        }
        line += "}\n";
        std::fputs(line.c_str(), stdout);
        if (file_ != nullptr) {
            std::fputs(line.c_str(), file_);
            std::fflush(file_);
        }
    }

  private:
    /**
     * Strict JSON number grammar,
     * -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?: forms strtod
     * accepts but JSON forbids ('+5', '.5', '5.', 'inf', hex,
     * padding) must be emitted as strings instead.
     */
    static bool
    looksNumeric(const std::string& s)
    {
        std::size_t i = 0;
        const std::size_t n = s.size();
        auto digits = [&] {
            std::size_t start = i;
            while (i < n && s[i] >= '0' && s[i] <= '9')
                ++i;
            return i > start;
        };
        if (i < n && s[i] == '-')
            ++i;
        if (i < n && s[i] == '0')
            ++i;
        else if (!digits())
            return false;
        if (i < n && s[i] == '.') {
            ++i;
            if (!digits())
                return false;
        }
        if (i < n && (s[i] == 'e' || s[i] == 'E')) {
            ++i;
            if (i < n && (s[i] == '+' || s[i] == '-'))
                ++i;
            if (!digits())
                return false;
        }
        return i == n;
    }

    static std::string
    escaped(const std::string& s)
    {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
        return out;
    }

    /**
     * JSON has no Inf/NaN literals; map them to null. Exactly the
     * non-finite values and nothing else — the old range test
     * (|v| < 1e308) also nulled finite values up to DBL_MAX, and a
     * sloppier check here is how raw nan/inf tokens end up breaking
     * every consumer of a BENCH_*.json file.
     * tests/test_bench_json.cpp parses every emitted line.
     */
    static std::string
    numStr(double v)
    {
        if (!std::isfinite(v))
            return "null";
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        return buf;
    }

    std::string bench_;
    std::FILE* file_;
};

} // namespace syscomm::bench
