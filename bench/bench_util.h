#pragma once

/**
 * @file
 * Small table/formatting helpers shared by the figure-reproduction
 * benchmark binaries.
 */

#include <cstdio>
#include <string>
#include <vector>

namespace syscomm::bench {

/** Print a banner naming the experiment. */
inline void
banner(const std::string& id, const std::string& title)
{
    std::string line(72, '=');
    std::printf("%s\n%s — %s\n%s\n", line.c_str(), id.c_str(),
                title.c_str(), line.c_str());
}

/** Print one row of fixed-width columns. */
inline void
row(const std::vector<std::string>& cells, int width = 14)
{
    for (const std::string& cell : cells)
        std::printf("%-*s", width, cell.c_str());
    std::printf("\n");
}

/** Horizontal rule matching row() width. */
inline void
rule(std::size_t columns, int width = 14)
{
    std::printf("%s\n",
                std::string(columns * static_cast<std::size_t>(width), '-')
                    .c_str());
}

inline std::string
fmt(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return buf;
}

} // namespace syscomm::bench
