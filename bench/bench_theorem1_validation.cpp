/**
 * @file
 * Experiment T1 (paper Theorem 1): Monte-Carlo validation. Random
 * deadlock-free programs (section 3.3 strategy) are run under the full
 * avoidance procedure and under the unsafe baselines, over several
 * topologies and queue budgets. The procedure must complete 100% of
 * feasible runs with audit-clean traces; the baselines deadlock at a
 * substantial rate when queues are scarce.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/compile.h"
#include "core/program_gen.h"
#include "sim/machine.h"

using namespace syscomm;
using namespace syscomm::bench;

struct Tally
{
    int completed = 0;
    int deadlocked = 0;
    int infeasible = 0;
    int auditViolations = 0;
};

int
main()
{
    banner("T1", "Monte-Carlo validation of Theorem 1");

    constexpr int kTrials = 200;

    struct TopoCase
    {
        const char* name;
        Topology topo;
    };
    TopoCase topos[] = {{"linear(5)", Topology::linearArray(5)},
                        {"ring(6)", Topology::ring(6)},
                        {"mesh(3x3)", Topology::mesh(3, 3)}};

    std::printf("\n%d random deadlock-free programs per row "
                "(10 messages, <=4 words)\n\n",
                kTrials);
    row({"topology", "queues", "policy", "done", "deadlock", "infeasible",
         "audit-bad"},
        12);
    rule(7, 12);

    for (const TopoCase& tc : topos) {
        for (int queues : {1, 2, 3}) {
            for (sim::PolicyKind kind :
                 {sim::PolicyKind::kCompatible, sim::PolicyKind::kFcfs,
                  sim::PolicyKind::kRandom}) {
                Tally tally;
                for (int trial = 0; trial < kTrials; ++trial) {
                    GenOptions gen;
                    gen.numMessages = 10;
                    gen.maxWords = 4;
                    gen.seed = trial * 31 + queues;
                    gen.interleave = queues >= 3 ? 0.3
                                   : queues == 2 ? 0.1
                                                 : 0.0;
                    Program p = randomDeadlockFreeProgram(tc.topo, gen);

                    MachineSpec spec;
                    spec.topo = tc.topo;
                    spec.queuesPerLink = queues;
                    CompilePlan plan = compileProgram(p, spec);
                    if (!plan.dynamicFeasibility.feasible) {
                        // Assumption (ii) fails: Theorem 1 is silent.
                        ++tally.infeasible;
                        continue;
                    }

                    sim::SimOptions options;
                    options.policy = kind;
                    options.labels = plan.normalizedLabels;
                    options.audit = true;
                    options.seed = trial;
                    sim::RunResult r =
                        sim::simulateProgram(p, spec, options);
                    if (r.status == sim::RunStatus::kCompleted)
                        ++tally.completed;
                    else
                        ++tally.deadlocked;
                    if (!r.audit.compatible)
                        ++tally.auditViolations;
                }
                row({tc.name, std::to_string(queues),
                     sim::policyKindName(kind),
                     std::to_string(tally.completed),
                     std::to_string(tally.deadlocked),
                     std::to_string(tally.infeasible),
                     std::to_string(tally.auditViolations)},
                    12);
            }
        }
    }

    std::printf("\nshape check: 'compatible' rows never deadlock and have\n"
                "no audit violations; fcfs/random deadlock on a large\n"
                "fraction of the scarce-queue rows.\n");
    return 0;
}
