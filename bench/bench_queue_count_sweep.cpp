/**
 * @file
 * Experiment A3 (paper section 7): queues per link vs behavior, for
 * static and dynamic assignment. Static assignment needs a dedicated
 * queue per message; the dynamic compatible scheme runs with as few as
 * the largest same-label group and converts extra queues into speed.
 *
 * One SimSession per machine shape serves every policy (the policy is
 * a per-run knob) — static assignment failing on a scarce machine is
 * just a config-error run, and the session carries on. Appends
 * machine-readable lines to BENCH_queue_count.json.
 */

#include <cstdio>
#include <map>

#include "algos/convolution.h"
#include "algos/matvec.h"
#include "algos/streams.h"
#include "bench_util.h"
#include "core/compile.h"
#include "sim/session.h"

using namespace syscomm;
using namespace syscomm::bench;

namespace {

const int kQueueCounts[] = {1, 2, 3, 4, 8};
const sim::PolicyKind kPolicies[] = {sim::PolicyKind::kCompatible,
                                     sim::PolicyKind::kStatic,
                                     sim::PolicyKind::kFcfs};

void
sweepWorkload(JsonWriter& json, const std::string& name, const Program& p,
              const Topology& topo)
{
    std::map<sim::PolicyKind, std::vector<std::string>> rows;
    for (sim::PolicyKind kind : kPolicies)
        rows[kind] = {name, sim::policyKindName(kind)};

    for (int queues : kQueueCounts) {
        MachineSpec spec;
        spec.topo = topo;
        spec.queuesPerLink = queues;
        // Compile once per machine shape; the policy is per-run.
        sim::SimSession session(p, spec);
        for (sim::PolicyKind kind : kPolicies) {
            sim::RunRequest request;
            request.policy = kind;
            sim::RunResult r = session.run(request);
            rows[kind].push_back(r.completed() ? std::to_string(r.cycles)
                                               : r.statusStr());
            json.record("completion_cycles",
                        r.completed() ? static_cast<double>(r.cycles)
                                      : -1.0,
                        {{"workload", name},
                         {"policy", sim::policyKindName(kind)},
                         {"queues", std::to_string(queues)},
                         {"status", r.statusStr()}});
        }
    }
    for (sim::PolicyKind kind : kPolicies)
        row(rows[kind], 13);
}

} // namespace

int
main()
{
    banner("A3", "queue count sweep (section 7 assignment schemes)");
    JsonWriter json("queue_count_sweep", "BENCH_queue_count.json");

    std::printf("\ncompletion cycles (or failure mode) by queues/link\n\n");
    row({"workload", "policy", "q=1", "q=2", "q=3", "q=4", "q=8"}, 13);
    rule(7, 13);

    {
        algos::ConvSpec conv = algos::ConvSpec::random(4, 8, 21);
        Program p = algos::makeConvolutionProgram(conv);
        sweepWorkload(json, "conv(4,8)", p, algos::convTopology(conv));
    }
    {
        algos::MatVecSpec mv = algos::MatVecSpec::random(5, 5, 2);
        Program p = algos::makeMatVecProgram(mv);
        sweepWorkload(json, "matvec(5x5)", p, algos::matvecTopology(mv));
    }
    {
        algos::StreamSpec s;
        s.numCells = 5;
        s.numStreams = 4;
        s.wordsPerStream = 12;
        s.pattern = algos::StreamPattern::kFanIn;
        Program p = algos::makeStreamsProgram(s);
        sweepWorkload(json, "fan-in(4)", p, algos::streamsTopology(s));
    }

    std::printf("\nshape check: compatible completes from the feasibility\n"
                "threshold upward; static needs the full per-message queue\n"
                "count (config-error below it); fcfs deadlocks on scarce\n"
                "queues and matches compatible when queues are plentiful.\n");
    return 0;
}
