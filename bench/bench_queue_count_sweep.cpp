/**
 * @file
 * Experiment A3 (paper section 7): queues per link vs behavior, for
 * static and dynamic assignment. Static assignment needs a dedicated
 * queue per message; the dynamic compatible scheme runs with as few as
 * the largest same-label group and converts extra queues into speed.
 *
 * The queue-count ladder is a sweep over machine *shapes*, so it runs
 * on ShapeSweep: the program compiles once (validation, competing
 * analysis, labeling) and every rung shares the result; the policy is
 * a per-run knob — static assignment failing on a scarce machine is
 * just a config-error row. Appends machine-readable lines to
 * BENCH_queue_count.json.
 *
 * S2 quantifies what the sharing buys end to end: a 16-shape
 * queue/capacity ladder over a compile-heavy workload, ShapeSweep vs
 * one fresh SimSession per shape, into BENCH_shape_sweep.json — along
 * with each rung's terminal machineDigest, which CI runs twice and
 * diffs for the cheap cross-host determinism check.
 */

#include <chrono>
#include <cstdio>
#include <map>

#include "algos/convolution.h"
#include "algos/matvec.h"
#include "algos/streams.h"
#include "bench_util.h"
#include "core/compile.h"
#include "sim/shape_sweep.h"

using namespace syscomm;
using namespace syscomm::bench;

namespace {

const int kQueueCounts[] = {1, 2, 3, 4, 8};
const sim::PolicyKind kPolicies[] = {sim::PolicyKind::kCompatible,
                                     sim::PolicyKind::kStatic,
                                     sim::PolicyKind::kFcfs};

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

std::string
hexDigest(std::uint64_t digest)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(digest));
    return buf;
}

void
sweepWorkload(JsonWriter& json, const std::string& name, const Program& p,
              const Topology& topo)
{
    // One shape per queue count; the program compiles exactly once
    // for the whole ladder (ShapeSweep shares the CompiledProgram).
    std::vector<sim::ShapeSpec> shapes;
    for (int queues : kQueueCounts) {
        sim::ShapeSpec shape;
        shape.name = "q=" + std::to_string(queues);
        shape.queuesPerLink = queues;
        shapes.push_back(std::move(shape));
    }
    std::vector<sim::RunRequest> requests;
    for (sim::PolicyKind kind : kPolicies) {
        sim::RunRequest request;
        request.policy = kind;
        requests.push_back(request);
    }

    sim::ShapeSweep sweep(p, topo, shapes);
    sim::ShapeSweepResult result = sweep.run(requests);

    std::map<sim::PolicyKind, std::vector<std::string>> rows;
    for (sim::PolicyKind kind : kPolicies)
        rows[kind] = {name, sim::policyKindName(kind)};
    for (std::size_t s = 0; s < shapes.size(); ++s) {
        for (std::size_t q = 0; q < requests.size(); ++q) {
            const sim::RunResult& r = result.row(s, q).result;
            rows[requests[q].policy].push_back(
                r.completed() ? std::to_string(r.cycles) : r.statusStr());
            json.record("completion_cycles",
                        r.completed() ? static_cast<double>(r.cycles)
                                      : -1.0,
                        {{"workload", name},
                         {"policy",
                          sim::policyKindName(requests[q].policy)},
                         {"queues",
                          std::to_string(shapes[s].queuesPerLink)},
                         {"status", r.statusStr()}});
        }
    }
    for (sim::PolicyKind kind : kPolicies)
        row(rows[kind], 13);
}

/**
 * A wide array of disjoint adjacent-pair channels: @p pairs messages,
 * two words each, every one crossing its own link. The whole machine
 * completes in a handful of cycles regardless of width while the
 * program-side analyses still process every message — the regime
 * where sharing the compile across a shape ladder pays the most.
 */
Program
widePairsProgram(int pairs)
{
    Program p(2 * pairs);
    for (int i = 0; i < pairs; ++i) {
        CellId from = static_cast<CellId>(2 * i);
        CellId to = static_cast<CellId>(2 * i + 1);
        MessageId id =
            p.declareMessage("M" + std::to_string(i), from, to);
        for (int w = 0; w < 2; ++w)
            p.write(from, id);
        for (int w = 0; w < 2; ++w)
            p.read(to, id);
    }
    return p;
}

/**
 * S2: shared-compile speedup + per-rung determinism digests. The
 * workload is deliberately compile-heavy (a wide array of short
 * disjoint streams: the program-side analyses dwarf the run), the
 * ladder is the acceptance-criteria 16 shapes.
 */
void
sharedCompileLadder()
{
    JsonWriter json("shape_sweep", "BENCH_shape_sweep.json");

    const int kPairs = 1000;
    Program p = widePairsProgram(kPairs);
    Topology topo = Topology::linearArray(2 * kPairs);

    std::vector<sim::ShapeSpec> shapes;
    for (int queues : {1, 2, 3, 4}) {
        for (int capacity : {1, 2, 4, 8}) {
            sim::ShapeSpec shape;
            shape.name = "q=" + std::to_string(queues) +
                         "/cap=" + std::to_string(capacity);
            shape.queuesPerLink = queues;
            shape.queueCapacity = capacity;
            shapes.push_back(std::move(shape));
        }
    }
    std::vector<sim::RunRequest> requests(1);

    // A: shared compile (ShapeSweep, single worker for a fair serial
    // comparison).
    std::int64_t builds0 = sim::CompiledProgram::buildCount();
    sim::ShapeSweepOptions options;
    options.numWorkers = 1;
    auto t0 = std::chrono::steady_clock::now();
    sim::ShapeSweep sweep(p, topo, shapes, options);
    sim::ShapeSweepResult shared = sweep.run(requests);
    double sharedSec = seconds(t0);
    std::int64_t sharedBuilds = sim::CompiledProgram::buildCount() - builds0;

    // B: the pre-ShapeSweep pattern — a fresh SimSession per shape.
    builds0 = sim::CompiledProgram::buildCount();
    t0 = std::chrono::steady_clock::now();
    std::vector<sim::RunResult> perShape;
    for (const sim::ShapeSpec& shape : shapes) {
        MachineSpec spec;
        spec.topo = topo;
        spec.queuesPerLink = shape.queuesPerLink;
        spec.queueCapacity = shape.queueCapacity;
        sim::SimSession session(p, spec);
        perShape.push_back(session.run(requests[0]));
    }
    double perShapeSec = seconds(t0);
    std::int64_t perShapeBuilds =
        sim::CompiledProgram::buildCount() - builds0;

    std::printf("\nS2: shared-compile ladder (%zu shapes, %d pair "
                "streams)\n\n",
                shapes.size(), kPairs);
    row({"mode", "seconds", "analysis-passes"});
    rule(3);
    row({"shape-sweep", fmt(sharedSec), std::to_string(sharedBuilds)});
    row({"per-shape", fmt(perShapeSec), std::to_string(perShapeBuilds)});
    double speedup = sharedSec > 0 ? perShapeSec / sharedSec : 0.0;
    std::printf("\nend-to-end speedup: %.2fx\n", speedup);

    json.record("sweep_seconds", sharedSec,
                {{"mode", "shared-compile"},
                 {"shapes", std::to_string(shapes.size())},
                 {"analysis_passes", std::to_string(sharedBuilds)}});
    json.record("sweep_seconds", perShapeSec,
                {{"mode", "per-shape"},
                 {"shapes", std::to_string(shapes.size())},
                 {"analysis_passes", std::to_string(perShapeBuilds)}});
    json.record("shared_compile_speedup", speedup,
                {{"shapes", std::to_string(shapes.size())}});

    // Per-rung terminal digests: identical runs must produce
    // identical rows, on any host, either kernel, any worker count.
    for (std::size_t i = 0; i < shapes.size(); ++i) {
        const sim::ShapeSweepRow& ladderRow = shared.row(i, 0);
        json.record("completion_cycles",
                    static_cast<double>(ladderRow.result.cycles),
                    {{"shape", shapes[i].name},
                     {"status", ladderRow.result.statusStr()},
                     {"machine_digest",
                      hexDigest(ladderRow.machineDigest)}});
    }
}

} // namespace

int
main()
{
    banner("A3", "queue count sweep (section 7 assignment schemes)");
    JsonWriter json("queue_count_sweep", "BENCH_queue_count.json");

    std::printf("\ncompletion cycles (or failure mode) by queues/link\n\n");
    row({"workload", "policy", "q=1", "q=2", "q=3", "q=4", "q=8"}, 13);
    rule(7, 13);

    {
        algos::ConvSpec conv = algos::ConvSpec::random(4, 8, 21);
        Program p = algos::makeConvolutionProgram(conv);
        sweepWorkload(json, "conv(4,8)", p, algos::convTopology(conv));
    }
    {
        algos::MatVecSpec mv = algos::MatVecSpec::random(5, 5, 2);
        Program p = algos::makeMatVecProgram(mv);
        sweepWorkload(json, "matvec(5x5)", p, algos::matvecTopology(mv));
    }
    {
        algos::StreamSpec s;
        s.numCells = 5;
        s.numStreams = 4;
        s.wordsPerStream = 12;
        s.pattern = algos::StreamPattern::kFanIn;
        Program p = algos::makeStreamsProgram(s);
        sweepWorkload(json, "fan-in(4)", p, algos::streamsTopology(s));
    }

    std::printf("\nshape check: compatible completes from the feasibility\n"
                "threshold upward; static needs the full per-message queue\n"
                "count (config-error below it); fcfs deadlocks on scarce\n"
                "queues and matches compatible when queues are plentiful.\n");

    sharedCompileLadder();
    return 0;
}
