/**
 * @file
 * Experiment A3 (paper section 7): queues per link vs behavior, for
 * static and dynamic assignment. Static assignment needs a dedicated
 * queue per message; the dynamic compatible scheme runs with as few as
 * the largest same-label group and converts extra queues into speed.
 */

#include <cstdio>

#include "algos/convolution.h"
#include "algos/matvec.h"
#include "algos/streams.h"
#include "bench_util.h"
#include "core/compile.h"
#include "sim/machine.h"

using namespace syscomm;
using namespace syscomm::bench;

namespace {

void
sweep(const std::string& name, const Program& p, const Topology& topo,
      sim::PolicyKind kind)
{
    std::vector<std::string> cells{
        name, sim::policyKindName(kind)};
    for (int queues : {1, 2, 3, 4, 8}) {
        MachineSpec spec;
        spec.topo = topo;
        spec.queuesPerLink = queues;
        sim::SimOptions options;
        options.policy = kind;
        sim::RunResult r = sim::simulateProgram(p, spec, options);
        cells.push_back(r.status == sim::RunStatus::kCompleted
                            ? std::to_string(r.cycles)
                            : r.statusStr());
    }
    row(cells, 13);
}

} // namespace

int
main()
{
    banner("A3", "queue count sweep (section 7 assignment schemes)");

    std::printf("\ncompletion cycles (or failure mode) by queues/link\n\n");
    row({"workload", "policy", "q=1", "q=2", "q=3", "q=4", "q=8"}, 13);
    rule(7, 13);

    {
        algos::ConvSpec conv = algos::ConvSpec::random(4, 8, 21);
        Program p = algos::makeConvolutionProgram(conv);
        Topology topo = algos::convTopology(conv);
        sweep("conv(4,8)", p, topo, sim::PolicyKind::kCompatible);
        sweep("conv(4,8)", p, topo, sim::PolicyKind::kStatic);
        sweep("conv(4,8)", p, topo, sim::PolicyKind::kFcfs);
    }
    {
        algos::MatVecSpec mv = algos::MatVecSpec::random(5, 5, 2);
        Program p = algos::makeMatVecProgram(mv);
        Topology topo = algos::matvecTopology(mv);
        sweep("matvec(5x5)", p, topo, sim::PolicyKind::kCompatible);
        sweep("matvec(5x5)", p, topo, sim::PolicyKind::kStatic);
        sweep("matvec(5x5)", p, topo, sim::PolicyKind::kFcfs);
    }
    {
        algos::StreamSpec s;
        s.numCells = 5;
        s.numStreams = 4;
        s.wordsPerStream = 12;
        s.pattern = algos::StreamPattern::kFanIn;
        Program p = algos::makeStreamsProgram(s);
        Topology topo = algos::streamsTopology(s);
        sweep("fan-in(4)", p, topo, sim::PolicyKind::kCompatible);
        sweep("fan-in(4)", p, topo, sim::PolicyKind::kStatic);
        sweep("fan-in(4)", p, topo, sim::PolicyKind::kFcfs);
    }

    std::printf("\nshape check: compatible completes from the feasibility\n"
                "threshold upward; static needs the full per-message queue\n"
                "count (config-error below it); fcfs deadlocks on scarce\n"
                "queues and matches compatible when queues are plentiful.\n");
    return 0;
}
