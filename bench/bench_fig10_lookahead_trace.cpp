/**
 * @file
 * Experiment F10 (paper Fig. 10): lookahead crossing-off on program P1.
 * With two words of buffering per queue, P1 is classified
 * deadlock-free; the first executable pair is W(B)/R(B), located by
 * skipping two writes to A (rules R1 and R2 both hold).
 */

#include <cstdio>

#include "algos/paper_figures.h"
#include "bench_util.h"
#include "core/crossoff.h"
#include "core/labeling.h"
#include "sim/machine.h"
#include "text/printer.h"

using namespace syscomm;
using namespace syscomm::bench;

int
main()
{
    banner("F10", "lookahead crossing-off on P1 (Fig. 10)");

    Program p = algos::fig5P1();
    std::printf("\n%s\n", text::renderColumns(p).c_str());

    CrossOffOptions options;
    options.lookahead = true;
    options.skip_bound = uniformSkipBound(2);
    CrossOffResult result = crossOff(p, options);
    std::printf("lookahead (bound 2) verdict: %s\n",
                result.deadlockFree ? "deadlock-free" : "deadlocked");
    std::printf("trace (skipped writes shown per pair):\n%s\n",
                result.traceStr(p).c_str());

    LabelingOptions lo;
    lo.lookahead = true;
    lo.skip_bound = uniformSkipBound(2);
    Labeling labeling = labelMessages(p, lo);
    std::printf("section 8.2 labels: %s (rule 1d: skipped message A "
                "shares B's label)\n\n",
                labeling.str(p).c_str());

    std::printf("bound sweep\n\n");
    row({"bound", "verdict", "sim cap=bound"});
    rule(3);
    for (int bound : {1, 2, 3}) {
        CrossOffOptions o;
        o.lookahead = true;
        o.skip_bound = uniformSkipBound(bound);
        bool free = crossOff(p, o).deadlockFree;
        MachineSpec spec;
        spec.topo = algos::fig5Topology();
        spec.queuesPerLink = 2;
        spec.queueCapacity = bound;
        sim::RunResult r = sim::simulateProgram(p, spec);
        row({std::to_string(bound), free ? "free" : "deadlocked",
             r.statusStr()});
    }
    std::printf("\nshape check: classification flips at bound 2, and the\n"
                "simulator agrees at the matching queue capacity.\n");
    return 0;
}
