/**
 * @file
 * Experiment SV1: what the serving layer costs and what its compile
 * cache buys. Drives an in-process syscommd over a Unix socket with
 * the client library and measures end-to-end submission throughput
 * (submit -> terminal status -> result) in three regimes:
 *
 *   cold      every submission is a structurally distinct program
 *             (forced via program_version), so each pays a compile;
 *   cached    identical submissions, compile served from the LRU;
 *   shared    several client threads submitting the same program
 *             concurrently — in-flight dedup keeps it at one build.
 *
 * Reports submissions/sec per regime, the cache hit rate, and the
 * CompiledProgram::buildCount() delta (the compile-sharing receipt).
 * A final restart regime measures the durability story end to end: a
 * daemon is killed mid-sweep on a warm spool and the time from
 * replacement start to the first served (journal-resumed) result is
 * the recovery cost. Appends machine-readable lines to
 * BENCH_serve.json.
 *
 * Usage: bench_serve [--quick]
 *   --quick  CI smoke: fewer submissions per regime.
 */

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/json.h"
#include "sim/session.h"

namespace {

using namespace syscomm;
using serve::JsonValue;
using serve::ServeClient;
using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** The gen-ring-sweep workload at bench scale (see syscomm-cli). */
std::string
ringText(int cells, int words)
{
    std::ostringstream out;
    out << "cells " << cells << "\n";
    for (int c = 0; c < cells; ++c)
        out << "message m" << c << " " << c << " -> "
            << (c + 1) % cells << "\n";
    for (int c = 0; c < cells; ++c) {
        out << "cell " << c << " {";
        for (int w = 0; w < words; ++w)
            out << " W(m" << c << ") R(m" << (c + cells - 1) % cells
                << ")";
        out << " }\n";
    }
    return out.str();
}

JsonValue
runBody(const std::string& program, int cells,
        const std::string& version)
{
    JsonValue body = JsonValue::object();
    body.set("kind", JsonValue::str("run"));
    body.set("program", JsonValue::str(program));
    body.set("topology",
             JsonValue::object()
                 .set("kind", JsonValue::str("ring"))
                 .set("cells", JsonValue::integer(cells)));
    body.set("shape", JsonValue::object()
                          .set("name", JsonValue::str("q2c2"))
                          .set("queues", JsonValue::integer(2))
                          .set("capacity", JsonValue::integer(2))
                          .set("extension", JsonValue::integer(0))
                          .set("penalty", JsonValue::integer(4)));
    if (!version.empty())
        body.set("program_version", JsonValue::str(version));
    return body;
}

/** A journaled sweep big enough to be mid-flight when killed. */
JsonValue
sweepBody(const std::string& program, int cells, int numShapes)
{
    JsonValue body = JsonValue::object();
    body.set("kind", JsonValue::str("sweep"));
    body.set("program", JsonValue::str(program));
    body.set("topology",
             JsonValue::object()
                 .set("kind", JsonValue::str("ring"))
                 .set("cells", JsonValue::integer(cells)));
    JsonValue shapes = JsonValue::array();
    for (int k = 0; k < numShapes; ++k)
        shapes.push(JsonValue::object()
                        .set("name", JsonValue::str(
                                         "s" + std::to_string(k)))
                        .set("queues", JsonValue::integer(1 + k % 3))
                        .set("capacity",
                             JsonValue::integer(1 + (k / 3) % 3))
                        .set("extension", JsonValue::integer(0))
                        .set("penalty", JsonValue::integer(4)));
    body.set("shapes", std::move(shapes));
    JsonValue requests = JsonValue::array();
    requests.push(JsonValue::object()
                      .set("policy", JsonValue::str("compatible"))
                      .set("seed", JsonValue::integer(1)));
    body.set("requests", std::move(requests));
    body.set("checkpoint_every", JsonValue::integer(20));
    return body;
}

/** Submit and block to terminal; returns false on any failure. */
bool
submitToTerminal(ServeClient& client, const JsonValue& body)
{
    std::string id;
    std::string error;
    JsonValue response;
    if (!client.submit(body, id, response, error) || id.empty())
        return false;
    if (!client.waitTerminal(id, 60'000, response, error))
        return false;
    return response.getString("state") == "completed";
}

} // namespace

int
main(int argc, char** argv)
{
    const bool quick =
        argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    const int cells = 6;
    const int words = 40;
    const int coldSubs = quick ? 8 : 64;
    const int cachedSubs = quick ? 16 : 256;
    const int threads = 4;
    const int perThread = quick ? 4 : 32;

    bench::banner("SV1", "syscommd serving throughput & compile cache");
    bench::JsonWriter json("serve", "BENCH_serve.json");

    serve::DaemonOptions options;
    options.socketPath = "/tmp/bench_serve_" +
                         std::to_string(::getpid()) + ".sock";
    options.workers = 4;
    options.maxQueue = 512;
    options.cacheCapacity = 16;
    serve::SyscommDaemon daemon(std::move(options));
    std::string error;
    if (!daemon.start(error)) {
        std::fprintf(stderr, "bench_serve: %s\n", error.c_str());
        return 1;
    }
    const std::string socketPath =
        "/tmp/bench_serve_" + std::to_string(::getpid()) + ".sock";

    const std::string program = ringText(cells, words);
    bench::row({"regime", "subs", "subs/sec", "builds"});
    bench::rule(4);

    // -- cold: every submission compiles ---------------------------
    {
        ServeClient client;
        if (!client.connectUnix(socketPath, error)) {
            std::fprintf(stderr, "bench_serve: %s\n", error.c_str());
            return 1;
        }
        const std::int64_t before = sim::CompiledProgram::buildCount();
        const Clock::time_point start = Clock::now();
        int ok = 0;
        for (int i = 0; i < coldSubs; ++i) {
            // A fresh program_version gives every submission its own
            // cache key: the all-miss regime (and with more versions
            // than cache capacity, the LRU churns too).
            ok += submitToTerminal(
                client,
                runBody(program, cells, "v" + std::to_string(i)));
        }
        const double elapsed = seconds(start);
        const std::int64_t builds =
            sim::CompiledProgram::buildCount() - before;
        const double rate = ok / elapsed;
        bench::row({"cold", std::to_string(ok), bench::fmt(rate),
                    std::to_string(builds)});
        json.record("submissions_per_sec", rate,
                    {{"regime", "cold"},
                     {"submissions", std::to_string(ok)},
                     {"compile_builds", std::to_string(builds)}});
    }

    // -- cached: identical submissions, compile from the LRU -------
    {
        ServeClient client;
        if (!client.connectUnix(socketPath, error))
            return 1;
        const JsonValue body = runBody(program, cells, "hot");
        // Prime the entry so the timed loop is all hits.
        submitToTerminal(client, body);
        const std::int64_t before = sim::CompiledProgram::buildCount();
        const Clock::time_point start = Clock::now();
        int ok = 0;
        for (int i = 0; i < cachedSubs; ++i)
            ok += submitToTerminal(client, body);
        const double elapsed = seconds(start);
        const std::int64_t builds =
            sim::CompiledProgram::buildCount() - before;
        const double rate = ok / elapsed;
        bench::row({"cached", std::to_string(ok), bench::fmt(rate),
                    std::to_string(builds)});
        json.record("submissions_per_sec", rate,
                    {{"regime", "cached"},
                     {"submissions", std::to_string(ok)},
                     {"compile_builds", std::to_string(builds)}});
    }

    // -- shared: concurrent clients, one program, one build --------
    {
        const JsonValue body = runBody(program, cells, "shared");
        const std::int64_t before = sim::CompiledProgram::buildCount();
        std::atomic<int> ok{0};
        const Clock::time_point start = Clock::now();
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (int t = 0; t < threads; ++t) {
            pool.emplace_back([&] {
                ServeClient client;
                std::string err;
                if (!client.connectUnix(socketPath, err))
                    return;
                for (int i = 0; i < perThread; ++i)
                    ok.fetch_add(submitToTerminal(client, body));
            });
        }
        for (std::thread& t : pool)
            t.join();
        const double elapsed = seconds(start);
        const std::int64_t builds =
            sim::CompiledProgram::buildCount() - before;
        const double rate = ok.load() / elapsed;
        bench::row({"shared", std::to_string(ok.load()),
                    bench::fmt(rate), std::to_string(builds)});
        json.record("submissions_per_sec", rate,
                    {{"regime", "shared"},
                     {"submissions", std::to_string(ok.load())},
                     {"clients", std::to_string(threads)},
                     {"compile_builds", std::to_string(builds)}});
    }

    // -- cache receipt ---------------------------------------------
    {
        ServeClient client;
        if (!client.connectUnix(socketPath, error))
            return 1;
        JsonValue stats;
        if (client.stats(stats, error)) {
            const JsonValue* cache = stats.find("cache");
            if (cache != nullptr) {
                const double hits =
                    static_cast<double>(cache->getInt("hits", 0));
                const double misses =
                    static_cast<double>(cache->getInt("misses", 0));
                const double total = hits + misses;
                const double hitRate =
                    total > 0.0 ? hits / total : 0.0;
                std::printf("cache: %.0f hits / %.0f misses "
                            "(hit rate %.3f), %lld entries\n",
                            hits, misses, hitRate,
                            static_cast<long long>(
                                cache->getInt("entries", 0)));
                json.record("cache_hit_rate", hitRate,
                            {{"hits", std::to_string(
                                          cache->getInt("hits", 0))},
                             {"misses",
                              std::to_string(
                                  cache->getInt("misses", 0))},
                             {"evictions",
                              std::to_string(
                                  cache->getInt("evictions", 0))}});
            }
        }
    }

    daemon.stop();

    // -- restart: killed mid-sweep, recovery to first result -------
    // A daemon on a spool is stopped mid-sweep (parked at a
    // checkpoint, the on-disk state a SIGKILL leaves behind modulo
    // torn tails); the measured interval is replacement-daemon start
    // to the sweep's served result — spool re-admission + journal
    // resume + remaining compute.
    {
        namespace fs = std::filesystem;
        const std::string pid = std::to_string(::getpid());
        const std::string spool = "/tmp/bench_serve_spool_" + pid;
        fs::remove_all(spool);
        const JsonValue body =
            sweepBody(ringText(cells, 200), cells, 24);

        std::string id;
        {
            serve::DaemonOptions first;
            first.socketPath = "/tmp/bench_serve_r1_" + pid + ".sock";
            first.spoolDir = spool;
            first.workers = 2;
            serve::SyscommDaemon victim(first);
            if (!victim.start(error)) {
                std::fprintf(stderr, "bench_serve: %s\n",
                             error.c_str());
                return 1;
            }
            ServeClient client;
            JsonValue response;
            if (!client.connectUnix(first.socketPath, error) ||
                !client.submit(body, id, response, error) ||
                id.empty()) {
                std::fprintf(stderr, "bench_serve: restart submit\n");
                return 1;
            }
            // Let the sweep journal some rows, then kill the daemon.
            for (int spin = 0; spin < 200; ++spin) {
                if (client.status(id, response, error)) {
                    const JsonValue* progress =
                        response.find("progress");
                    if (progress != nullptr &&
                        progress->getInt("rows_done", 0) >= 4)
                        break;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            }
            client.drain(response, error);
            victim.stop();
        }

        serve::DaemonOptions second;
        second.socketPath = "/tmp/bench_serve_r2_" + pid + ".sock";
        second.spoolDir = spool;
        second.workers = 2;
        const Clock::time_point start = Clock::now();
        serve::SyscommDaemon replacement(second);
        if (!replacement.start(error)) {
            std::fprintf(stderr, "bench_serve: %s\n", error.c_str());
            return 1;
        }
        ServeClient client;
        JsonValue response;
        std::int64_t fromJournal = 0;
        bool ok = client.connectUnix(second.socketPath, error) &&
                  client.waitTerminal(id, 120'000, response, error) &&
                  response.getString("state") == "completed";
        const double elapsed = seconds(start);
        if (ok && client.result(id, response, error)) {
            const JsonValue* result = response.find("result");
            if (result != nullptr)
                fromJournal = result->getInt("rows_from_journal", 0);
        }
        replacement.stop();
        fs::remove_all(spool);
        if (!ok) {
            std::fprintf(stderr, "bench_serve: restart recovery: %s\n",
                         error.c_str());
            return 1;
        }
        std::printf("restart: %.1f ms from start to served result "
                    "(%lld rows resumed from journal)\n",
                    elapsed * 1e3,
                    static_cast<long long>(fromJournal));
        json.record("restart_recovery_ms", elapsed * 1e3,
                    {{"regime", "restart"},
                     {"rows_from_journal",
                      std::to_string(fromJournal)}});
    }
    return 0;
}
