/**
 * @file
 * Experiment P1: cost of the compile-time analyses. The crossing-off
 * procedure, the related-message analysis and the section 6 labeler
 * all scale near-linearly in program size for stream-like programs,
 * so the avoidance machinery is practical at compile time.
 */

#include <benchmark/benchmark.h>

#include "core/competing.h"
#include "core/crossoff.h"
#include "core/labeling.h"
#include "core/program_gen.h"
#include "core/related.h"

namespace {

using namespace syscomm;

Program
makeProgram(int messages, int words_each)
{
    Topology topo = Topology::linearArray(8);
    GenOptions gen;
    gen.numMessages = messages;
    gen.maxWords = words_each;
    gen.seed = 42;
    gen.interleave = 0.1;
    return randomDeadlockFreeProgram(topo, gen);
}

void
BM_CrossOff(benchmark::State& state)
{
    Program p = makeProgram(static_cast<int>(state.range(0)), 8);
    for (auto _ : state) {
        CrossOffResult r = crossOff(p);
        benchmark::DoNotOptimize(r.deadlockFree);
    }
    state.SetItemsProcessed(state.iterations() * p.totalTransferOps());
}
BENCHMARK(BM_CrossOff)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void
BM_CrossOffLookahead(benchmark::State& state)
{
    Program p = makeProgram(static_cast<int>(state.range(0)), 8);
    CrossOffOptions options;
    options.lookahead = true;
    options.skip_bound = uniformSkipBound(4);
    for (auto _ : state) {
        CrossOffResult r = crossOff(p, options);
        benchmark::DoNotOptimize(r.deadlockFree);
    }
    state.SetItemsProcessed(state.iterations() * p.totalTransferOps());
}
BENCHMARK(BM_CrossOffLookahead)->Arg(16)->Arg(64)->Arg(256);

void
BM_RelatedClasses(benchmark::State& state)
{
    Program p = makeProgram(static_cast<int>(state.range(0)), 8);
    for (auto _ : state) {
        UnionFind uf = computeRelatedClasses(p);
        benchmark::DoNotOptimize(uf.size());
    }
}
BENCHMARK(BM_RelatedClasses)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void
BM_Labeling(benchmark::State& state)
{
    Program p = makeProgram(static_cast<int>(state.range(0)), 6);
    for (auto _ : state) {
        Labeling l = labelMessages(p);
        benchmark::DoNotOptimize(l.success);
    }
}
BENCHMARK(BM_Labeling)->Arg(16)->Arg(64)->Arg(256);

void
BM_CompetingAnalysis(benchmark::State& state)
{
    Topology topo = Topology::mesh(6, 6);
    GenOptions gen;
    gen.numMessages = static_cast<int>(state.range(0));
    gen.maxWords = 6;
    gen.seed = 9;
    Program p = randomDeadlockFreeProgram(topo, gen);
    for (auto _ : state) {
        auto analysis = CompetingAnalysis::analyze(p, topo);
        benchmark::DoNotOptimize(analysis.maxCompeting());
    }
}
BENCHMARK(BM_CompetingAnalysis)->Arg(16)->Arg(64)->Arg(256);

} // namespace

BENCHMARK_MAIN();
