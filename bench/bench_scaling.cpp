/**
 * @file
 * Experiment P1: cost of the compile-time analyses. The crossing-off
 * procedure, the related-message analysis and the section 6 labeler
 * all scale near-linearly in program size for stream-like programs,
 * so the avoidance machinery is practical at compile time.
 *
 * Experiment P2: run-time cost of the simulator itself across array
 * sizes, on a sparse/streaming workload (a few long streams over a
 * mostly idle array). BM_SimulateReference scans every link, queue
 * and cell each cycle; BM_SimulateEventDriven touches only the
 * active set. The per-iteration work is one full simulation run.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>

#include "bench_util.h"
#include "core/competing.h"
#include "core/crossoff.h"
#include "core/labeling.h"
#include "core/program_gen.h"
#include "core/related.h"
#include "sim/batch.h"
#include "sim/session.h"

namespace {

using namespace syscomm;

Program
makeProgram(int messages, int words_each)
{
    Topology topo = Topology::linearArray(8);
    GenOptions gen;
    gen.numMessages = messages;
    gen.maxWords = words_each;
    gen.seed = 42;
    gen.interleave = 0.1;
    return randomDeadlockFreeProgram(topo, gen);
}

void
BM_CrossOff(benchmark::State& state)
{
    Program p = makeProgram(static_cast<int>(state.range(0)), 8);
    for (auto _ : state) {
        CrossOffResult r = crossOff(p);
        benchmark::DoNotOptimize(r.deadlockFree);
    }
    state.SetItemsProcessed(state.iterations() * p.totalTransferOps());
}
BENCHMARK(BM_CrossOff)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void
BM_CrossOffLookahead(benchmark::State& state)
{
    Program p = makeProgram(static_cast<int>(state.range(0)), 8);
    CrossOffOptions options;
    options.lookahead = true;
    options.skip_bound = uniformSkipBound(4);
    for (auto _ : state) {
        CrossOffResult r = crossOff(p, options);
        benchmark::DoNotOptimize(r.deadlockFree);
    }
    state.SetItemsProcessed(state.iterations() * p.totalTransferOps());
}
BENCHMARK(BM_CrossOffLookahead)->Arg(16)->Arg(64)->Arg(256);

void
BM_RelatedClasses(benchmark::State& state)
{
    Program p = makeProgram(static_cast<int>(state.range(0)), 8);
    for (auto _ : state) {
        UnionFind uf = computeRelatedClasses(p);
        benchmark::DoNotOptimize(uf.size());
    }
}
BENCHMARK(BM_RelatedClasses)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void
BM_Labeling(benchmark::State& state)
{
    Program p = makeProgram(static_cast<int>(state.range(0)), 6);
    for (auto _ : state) {
        Labeling l = labelMessages(p);
        benchmark::DoNotOptimize(l.success);
    }
}
BENCHMARK(BM_Labeling)->Arg(16)->Arg(64)->Arg(256);

void
BM_CompetingAnalysis(benchmark::State& state)
{
    Topology topo = Topology::mesh(6, 6);
    GenOptions gen;
    gen.numMessages = static_cast<int>(state.range(0));
    gen.maxWords = 6;
    gen.seed = 9;
    Program p = randomDeadlockFreeProgram(topo, gen);
    for (auto _ : state) {
        auto analysis = CompetingAnalysis::analyze(p, topo);
        benchmark::DoNotOptimize(analysis.maxCompeting());
    }
}
BENCHMARK(BM_CompetingAnalysis)->Arg(16)->Arg(64)->Arg(256);

void
simulateScaling(benchmark::State& state, sim::KernelKind kernel)
{
    int cells = static_cast<int>(state.range(0));
    Program p = bench::streamingProgram(cells);
    MachineSpec spec;
    spec.topo = Topology::linearArray(cells);
    spec.queuesPerLink = 2;
    spec.queueCapacity = 4;
    // Compile once; the bench measures the run-time kernel, not the
    // compile-time labeler (P1 covers that). Stats-only collection.
    sim::SessionOptions options;
    options.kernel = kernel;
    sim::SimSession session(p, spec, options);
    Cycle cycles = 0;
    for (auto _ : state) {
        sim::RunResult r = session.run({});
        cycles = r.cycles;
        benchmark::DoNotOptimize(r.status);
    }
    state.SetItemsProcessed(state.iterations() * cycles);
    state.counters["sim_cycles"] = static_cast<double>(cycles);
}

void
BM_SimulateReference(benchmark::State& state)
{
    simulateScaling(state, sim::KernelKind::kReference);
}
BENCHMARK(BM_SimulateReference)->Arg(64)->Arg(256)->Arg(512);

void
BM_SimulateEventDriven(benchmark::State& state)
{
    simulateScaling(state, sim::KernelKind::kEventDriven);
}
BENCHMARK(BM_SimulateEventDriven)->Arg(64)->Arg(256)->Arg(512);

/**
 * P3: SweepRunner throughput — a 32-run seed sweep of the 256-cell
 * streaming workload per iteration, across worker counts. On a
 * multi-core host the runs/sec column should scale with Arg until
 * memory bandwidth interferes.
 */
void
BM_SweepRunner(benchmark::State& state)
{
    int workers = static_cast<int>(state.range(0));
    Program p = bench::streamingProgram(256, 4, 16, 16);
    MachineSpec spec;
    spec.topo = Topology::linearArray(256);
    spec.queuesPerLink = 2;
    spec.queueCapacity = 4;
    std::vector<sim::RunRequest> requests;
    for (int i = 0; i < 32; ++i) {
        sim::RunRequest request;
        request.seed = static_cast<std::uint64_t>(i + 1);
        requests.push_back(request);
    }
    sim::SweepOptions sweepOptions;
    sweepOptions.numWorkers = workers;
    sim::SweepRunner runner(p, spec, {}, sweepOptions);
    for (auto _ : state) {
        sim::SweepSummary summary = runner.run(requests);
        if (summary.completed() !=
            static_cast<std::int64_t>(requests.size())) {
            state.SkipWithError("sweep incomplete");
            break;
        }
        benchmark::DoNotOptimize(summary.p50Cycles);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(requests.size()));
}
BENCHMARK(BM_SweepRunner)->Arg(1)->Arg(2)->Arg(4);

} // namespace

BENCHMARK_MAIN();
