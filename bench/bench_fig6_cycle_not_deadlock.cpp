/**
 * @file
 * Experiment F6 (paper Fig. 6): messages that form a sender/receiver
 * cycle do NOT imply a deadlocked program — "to determine if a program
 * is deadlock-free, it is insufficient just to check whether the
 * messages form a cycle".
 */

#include <cstdio>

#include "algos/paper_figures.h"
#include "bench_util.h"
#include "core/compile.h"
#include "sim/machine.h"
#include "text/printer.h"

using namespace syscomm;
using namespace syscomm::bench;

int
main()
{
    banner("F6", "message cycle without deadlock (Fig. 6)");

    Program p = algos::fig6CycleProgram();
    std::printf("\nmessages form the cycle A: C1->C2, B: C2->C3, "
                "C: C3->C4, D: C4->C1\n\n%s\n",
                text::renderColumns(p).c_str());

    MachineSpec spec;
    spec.topo = algos::fig6Topology();
    spec.queuesPerLink = 1;
    CompilePlan plan = compileProgram(p, spec);
    std::printf("%s\n", plan.report(p).c_str());

    row({"policy", "status", "cycles"});
    rule(3);
    for (sim::PolicyKind kind :
         {sim::PolicyKind::kCompatible, sim::PolicyKind::kStatic,
          sim::PolicyKind::kFcfs}) {
        sim::SimOptions options;
        options.policy = kind;
        sim::RunResult r = sim::simulateProgram(p, spec, options);
        row({sim::policyKindName(kind), r.statusStr(),
             std::to_string(r.cycles)});
    }
    std::printf("\nshape check: deadlock-free despite the cycle; runs to\n"
                "completion with a single queue per link.\n");
    return 0;
}
