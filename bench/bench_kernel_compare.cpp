/**
 * @file
 * Experiment K1: event-driven active-set kernel vs the dense
 * reference kernel on a sparse/streaming workload, across array sizes
 * 8-512. The workload is the case the paper's machinery is built
 * around: a handful of long word streams crossing a large,
 * mostly-idle array, so per-cycle work is tiny relative to machine
 * size. Reports simulated cycles/sec per kernel plus the speedup,
 * and appends machine-readable lines to BENCH_kernel.json.
 *
 * Usage: bench_kernel_compare [--quick]
 *   --quick  CI smoke: fewer sizes, shorter measurement windows.
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "core/program.h"
#include "core/topology.h"
#include "sim/session.h"

namespace {

using namespace syscomm;
using sim::KernelKind;
using sim::RunResult;
using sim::RunStatus;

MachineSpec
makeSpec(int cells)
{
    MachineSpec spec;
    spec.topo = Topology::linearArray(cells);
    spec.queuesPerLink = 2;
    spec.queueCapacity = 4;
    return spec;
}

struct Measurement
{
    double cyclesPerSec = 0.0;
    Cycle simCycles = 0;
};

Measurement
measure(const Program& p, const MachineSpec& spec, KernelKind kernel,
        double min_seconds)
{
    using Clock = std::chrono::steady_clock;

    // One compiled session per kernel: labeling/validation/allocation
    // happen once up front, so the timed loop measures the run-time
    // kernels alone (P1 covers the compile-time analyses). Stats-only
    // collection keeps result materialization out of the timing too.
    sim::SessionOptions options;
    options.kernel = kernel;
    sim::SimSession session(p, spec, options);

    // Warm-up + correctness guard.
    RunResult first = session.run({});
    if (first.status != RunStatus::kCompleted) {
        std::fprintf(stderr, "workload did not complete: %s\n",
                     first.statusStr());
        std::exit(1);
    }

    Measurement out;
    out.simCycles = first.cycles;
    Cycle total_cycles = 0;
    auto start = Clock::now();
    double elapsed = 0.0;
    do {
        RunResult r = session.run({});
        total_cycles += r.cycles;
        elapsed = std::chrono::duration<double>(Clock::now() - start)
                      .count();
    } while (elapsed < min_seconds);
    out.cyclesPerSec = static_cast<double>(total_cycles) / elapsed;
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    if (argc > 1 && !quick) {
        std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
        return 2;
    }
    double window = quick ? 0.05 : 0.4;

    syscomm::bench::banner("K1", "event-driven vs reference kernel, "
                                 "streaming workload");
    syscomm::bench::JsonWriter json("kernel_compare", "BENCH_kernel.json");
    syscomm::bench::row({"cells", "sim cycles", "ref cyc/s", "event cyc/s",
                         "speedup"});
    syscomm::bench::rule(5);

    const int all_sizes[] = {8, 16, 32, 64, 128, 256, 512};
    const int quick_sizes[] = {8, 64, 256};
    const int* sizes = quick ? quick_sizes : all_sizes;
    int count = quick ? 3 : 7;

    for (int i = 0; i < count; ++i) {
        int cells = sizes[i];
        Program p = syscomm::bench::streamingProgram(cells);
        MachineSpec spec = makeSpec(cells);
        Measurement ref =
            measure(p, spec, KernelKind::kReference, window);
        Measurement evt =
            measure(p, spec, KernelKind::kEventDriven, window);
        double speedup = evt.cyclesPerSec / ref.cyclesPerSec;
        syscomm::bench::row({std::to_string(cells),
                             std::to_string(ref.simCycles),
                             syscomm::bench::fmt(ref.cyclesPerSec),
                             syscomm::bench::fmt(evt.cyclesPerSec),
                             syscomm::bench::fmt(speedup)});
        std::string cells_str = std::to_string(cells);
        json.record("cycles_per_sec", ref.cyclesPerSec,
                    {{"kernel", "reference"}, {"cells", cells_str}});
        json.record("cycles_per_sec", evt.cyclesPerSec,
                    {{"kernel", "event-driven"}, {"cells", cells_str}});
        json.record("speedup", speedup, {{"cells", cells_str}});
    }
    return 0;
}
