/**
 * @file
 * Experiment F9 (paper Fig. 9): interleaved writes to multiple
 * messages — the symmetric case of Fig. 8, on the sender's side.
 * Includes the paper's section 7 static-assignment remedy.
 */

#include <cstdio>

#include "algos/paper_figures.h"
#include "bench_util.h"
#include "core/compile.h"
#include "core/related.h"
#include "sim/machine.h"
#include "text/printer.h"

using namespace syscomm;
using namespace syscomm::bench;

int
main()
{
    banner("F9", "queue-induced deadlock 3: interleaved writes (Fig. 9)");

    Program p = algos::fig9Program();
    std::printf("\n%s\n", text::renderColumns(p).c_str());
    std::printf("A and B related: %s (C1 writes them interleaved)\n\n",
                areRelated(p, *p.messageByName("A"), *p.messageByName("B"))
                    ? "yes"
                    : "no");

    row({"policy", "queues", "status", "cycles"});
    rule(4);
    for (int queues : {1, 2}) {
        for (sim::PolicyKind kind :
             {sim::PolicyKind::kFcfs, sim::PolicyKind::kCompatible,
              sim::PolicyKind::kStatic}) {
            MachineSpec s;
            s.topo = algos::fig9Topology();
            s.queuesPerLink = queues;
            sim::SimOptions options;
            options.policy = kind;
            sim::RunResult r = sim::simulateProgram(p, s, options);
            row({sim::policyKindName(kind), std::to_string(queues),
                 r.statusStr(), std::to_string(r.cycles)});
        }
    }

    std::printf("\nshape check: with one queue every policy deadlocks or\n"
                "cannot even start (static); with two queues between C1\n"
                "and C2 all of them complete — the paper's section 7\n"
                "static example.\n");
    return 0;
}
