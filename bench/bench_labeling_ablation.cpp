/**
 * @file
 * Experiment A1 (paper section 5 remark): the trivial all-equal
 * labeling is consistent but "will not likely yield an efficient use
 * of queues" — it forces every competitor into one simultaneous group.
 * Compare section 6 labels vs trivial labels on real workloads:
 * queues required, completion, and queue-wait time. Appends
 * machine-readable lines to BENCH_labeling.json.
 */

#include <cstdio>

#include "algos/convolution.h"
#include "algos/fir.h"
#include "algos/matvec.h"
#include "algos/streams.h"
#include "bench_util.h"
#include "core/compile.h"
#include "sim/session.h"

using namespace syscomm;
using namespace syscomm::bench;

namespace {

struct Workload
{
    std::string name;
    Program program;
    Topology topo;
};

void
report(JsonWriter& json, const Workload& w)
{
    // One compile pass serves every labeling: validation and the
    // competing analysis do not depend on labels, so the per-labeling
    // sessions share a CompiledProgram (labels stay per-session
    // config) and the feasibility probe reads the shared analysis.
    auto compiled = sim::CompiledProgram::compile(
        w.program, w.topo, /*labels=*/{}, /*precompute_labels=*/false);
    const CompetingAnalysis& analysis = compiled->competing();
    Labeling section6 = labelMessages(w.program);
    Labeling graph = graphLabeling(w.program);
    Labeling trivial = trivialLabeling(w.program);

    for (const auto& [label_name, labeling] :
         {std::pair<const char*, const Labeling*>{"section6", &section6},
          {"graph", &graph},
          {"trivial", &trivial}}) {
        if (!labeling->success)
            continue;
        MachineSpec probe;
        probe.topo = w.topo;
        probe.queuesPerLink = 1;
        Feasibility f =
            checkDynamicFeasibility(analysis, labeling->labels, probe);

        MachineSpec spec;
        spec.topo = w.topo;
        spec.queuesPerLink = f.requiredQueuesPerLink;
        // The labeling under test is session config: the session
        // skips its own labeler and uses these labels for every run.
        sim::SessionOptions options;
        options.labels = labeling->normalized();
        sim::SimSession session(compiled, spec, options);
        sim::RunResult r = session.run({});
        row({w.name, label_name,
             std::to_string(f.requiredQueuesPerLink), r.statusStr(),
             std::to_string(r.cycles), fmt(r.stats.avgRequestWait())});
        json.record("completion_cycles",
                    r.completed() ? static_cast<double>(r.cycles) : -1.0,
                    {{"workload", w.name},
                     {"labeling", label_name},
                     {"queues", std::to_string(f.requiredQueuesPerLink)},
                     {"status", r.statusStr()}});
        json.record("avg_request_wait", r.stats.avgRequestWait(),
                    {{"workload", w.name},
                     {"labeling", label_name},
                     {"queues", std::to_string(f.requiredQueuesPerLink)}});
    }
}

} // namespace

int
main()
{
    banner("A1", "labeling ablation: section 6 vs trivial labels");
    JsonWriter json("labeling_ablation", "BENCH_labeling.json");

    std::printf("\neach labeling runs with exactly the queue count it "
                "requires\n\n");
    row({"workload", "labeling", "queues", "status", "cycles",
         "avg-wait"});
    rule(6);

    {
        algos::FirSpec fir = algos::FirSpec::random(6, 24, 5);
        report(json, {"fir(6,24)", algos::makeFirProgram(fir),
                algos::firTopology(6)});
    }
    {
        algos::ConvSpec conv = algos::ConvSpec::random(4, 8, 9);
        report(json, {"conv(4,8)", algos::makeConvolutionProgram(conv),
                algos::convTopology(conv)});
    }
    {
        algos::MatVecSpec mv = algos::MatVecSpec::random(6, 6, 3);
        report(json, {"matvec(6x6)", algos::makeMatVecProgram(mv),
                algos::matvecTopology(mv)});
    }
    {
        algos::StreamSpec s;
        s.numCells = 5;
        s.numStreams = 6;
        s.wordsPerStream = 8;
        s.pattern = algos::StreamPattern::kSequential;
        report(json, {"streams(6seq)", algos::makeStreamsProgram(s),
                algos::streamsTopology(s)});
    }

    std::printf("\nshape check: section 6 labels need far fewer queues\n"
                "(distinct labels serialize queue reuse); trivial labels\n"
                "need a queue per competing message on the busiest link.\n");
    return 0;
}
