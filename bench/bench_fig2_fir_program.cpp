/**
 * @file
 * Experiment F2 (paper Fig. 2): the 3-tap FIR filter program for
 * host + C1..C3, its compile plan, and its execution — plus the
 * generalized k-tap generator at larger sizes.
 */

#include <cstdio>

#include "algos/fir.h"
#include "algos/paper_figures.h"
#include "bench_util.h"
#include "core/compile.h"
#include "sim/machine.h"
#include "text/printer.h"

using namespace syscomm;
using namespace syscomm::bench;

int
main()
{
    banner("F2", "FIR filter program (Fig. 2)");

    Program p = algos::fig2FirProgram();
    std::printf("\n%s\n", text::renderColumns(p).c_str());

    MachineSpec spec;
    spec.topo = algos::fig2Topology();
    spec.queuesPerLink = 2;
    CompilePlan plan = compileProgram(p, spec);
    std::printf("%s\n", plan.report(p).c_str());

    sim::SimOptions options;
    options.labels = plan.normalizedLabels;
    sim::RunResult r = sim::simulateProgram(p, spec, options);
    auto ya = *p.messageByName("YA");
    std::printf("status: %s after %lld cycles\n", r.statusStr(),
                static_cast<long long>(r.cycles));
    std::printf("host received y1 = %.0f (paper: 34), y2 = %.0f "
                "(paper: 49)\n\n",
                r.received[ya][0], r.received[ya][1]);

    std::printf("generalized k-tap FIR (random weights/inputs)\n\n");
    row({"taps", "outputs", "ops", "cycles", "max-err"});
    rule(5);
    for (int taps : {2, 4, 8, 16}) {
        for (int outputs : {8, 32}) {
            algos::FirSpec fir =
                algos::FirSpec::random(taps, outputs, taps * 100 + outputs);
            Program fp = algos::makeFirProgram(fir);
            MachineSpec fspec;
            fspec.topo = algos::firTopology(taps);
            fspec.queuesPerLink = 2;
            sim::RunResult fr = sim::simulateProgram(fp, fspec);
            auto y = *fp.messageByName("Y1");
            std::vector<double> expected = algos::firReference(fir);
            double err = 0;
            for (std::size_t i = 0; i < expected.size(); ++i) {
                err = std::max(err,
                               std::abs(fr.received[y][i] - expected[i]));
            }
            row({std::to_string(taps), std::to_string(outputs),
                 std::to_string(fp.totalOps()), std::to_string(fr.cycles),
                 fmt(err)});
        }
    }
    return 0;
}
