/**
 * @file
 * Experiment S1: what compile-once/run-many buys. 64 seed-varied runs
 * of the 256-cell sparse/streaming workload through one SimSession
 * (state reset in place, stats-only collection) vs 64 fresh
 * simulateProgram() calls (revalidate, relabel, reallocate and
 * materialize every result vector per run), plus SweepRunner
 * thread-scaling over 1/2/4/8 workers. Appends machine-readable
 * lines to BENCH_session.json.
 *
 * Usage: bench_session_reuse [--quick]
 *   --quick  CI smoke: fewer runs per mode, no full thread ladder.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/program.h"
#include "core/topology.h"
#include "sim/batch.h"
#include "sim/machine.h"
#include "sim/session.h"

namespace {

using namespace syscomm;
using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

MachineSpec
makeSpec(int cells)
{
    MachineSpec spec;
    spec.topo = Topology::linearArray(cells);
    spec.queuesPerLink = 2;
    spec.queueCapacity = 4;
    return spec;
}

} // namespace

int
main(int argc, char** argv)
{
    bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    if (argc > 1 && !quick) {
        std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
        return 2;
    }
    const int kCells = 256;
    const int kRuns = quick ? 16 : 64;
    const int kReps = quick ? 1 : 3; // repeat and keep the best

    bench::banner("S1", "SimSession reuse vs one-shot simulateProgram, "
                        "256-cell sparse streaming workload");
    bench::JsonWriter json("session_reuse", "BENCH_session.json");

    // Short sparse streams: 4 messages of 4 words with 16-cycle
    // compute gaps over a 256-cell array. Runs are short relative to
    // the per-run compile/allocate/collect overhead the session
    // amortizes — the sweep regime (many short seed-varied runs) the
    // API is built for. The default long-stream shape is reported
    // separately below.
    Program program = bench::streamingProgram(kCells, 4, 4, 16);
    MachineSpec spec = makeSpec(kCells);

    // Correctness guard: both paths agree on the outcome.
    {
        sim::SimSession session(program, spec);
        sim::RunResult reused = session.run({});
        sim::RunResult oneshot = sim::simulateProgram(program, spec);
        if (!reused.completed() || !oneshot.completed() ||
            reused.cycles != oneshot.cycles) {
            std::fprintf(stderr, "workload mismatch: reused=%s/%lld "
                                 "one-shot=%s/%lld\n",
                         reused.statusStr(),
                         static_cast<long long>(reused.cycles),
                         oneshot.statusStr(),
                         static_cast<long long>(oneshot.cycles));
            return 1;
        }
    }

    // ------------------------------------------------------------------
    // A: one session, kRuns seed-varied runs, stats-only collection.
    // ------------------------------------------------------------------
    double best_session = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
        sim::SimSession session(program, spec);
        auto start = Clock::now();
        for (int i = 0; i < kRuns; ++i) {
            sim::RunRequest request;
            request.seed = static_cast<std::uint64_t>(i + 1);
            sim::RunResult r = session.run(request);
            if (!r.completed())
                return 1;
        }
        best_session = std::min(best_session, seconds(start));
    }

    // ------------------------------------------------------------------
    // B: kRuns fresh simulateProgram() calls (the legacy path:
    // revalidates, relabels, reallocates, collects everything).
    // ------------------------------------------------------------------
    double best_oneshot = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
        auto start = Clock::now();
        for (int i = 0; i < kRuns; ++i) {
            sim::SimOptions options;
            options.seed = static_cast<std::uint64_t>(i + 1);
            sim::RunResult r = sim::simulateProgram(program, spec, options);
            if (!r.completed())
                return 1;
        }
        best_oneshot = std::min(best_oneshot, seconds(start));
    }

    double speedup = best_oneshot / best_session;
    bench::row({"mode", "runs", "seconds", "runs/sec"});
    bench::rule(4);
    bench::row({"session-reuse", std::to_string(kRuns),
                bench::fmt(best_session),
                bench::fmt(kRuns / best_session)});
    bench::row({"one-shot", std::to_string(kRuns),
                bench::fmt(best_oneshot),
                bench::fmt(kRuns / best_oneshot)});
    std::printf("reuse speedup: %.2fx\n\n", speedup);

    std::string runs_str = std::to_string(kRuns);
    std::string cells_str = std::to_string(kCells);
    json.record("seconds", best_session,
                {{"mode", "session-reuse"},
                 {"runs", runs_str},
                 {"cells", cells_str}});
    json.record("seconds", best_oneshot,
                {{"mode", "one-shot"},
                 {"runs", runs_str},
                 {"cells", cells_str}});
    json.record("speedup", speedup,
                {{"runs", runs_str}, {"cells", cells_str}});

    // ------------------------------------------------------------------
    // Context: the default long-stream shape (128-word streams). The
    // simulation loop dominates there, so reuse buys less — reported
    // for scale, not as the headline.
    // ------------------------------------------------------------------
    if (!quick) {
        Program longProgram = bench::streamingProgram(kCells);
        double session_s = 1e300;
        double oneshot_s = 1e300;
        {
            sim::SimSession session(longProgram, spec);
            auto start = Clock::now();
            for (int i = 0; i < kRuns; ++i) {
                sim::RunRequest request;
                request.seed = static_cast<std::uint64_t>(i + 1);
                if (!session.run(request).completed())
                    return 1;
            }
            session_s = seconds(start);
        }
        {
            auto start = Clock::now();
            for (int i = 0; i < kRuns; ++i) {
                sim::SimOptions options;
                options.seed = static_cast<std::uint64_t>(i + 1);
                if (!sim::simulateProgram(longProgram, spec, options)
                         .completed())
                    return 1;
            }
            oneshot_s = seconds(start);
        }
        std::printf("long-stream (128-word) reuse speedup: %.2fx\n\n",
                    oneshot_s / session_s);
        json.record("speedup_long_stream", oneshot_s / session_s,
                    {{"runs", runs_str}, {"cells", cells_str}});
    }

    // ------------------------------------------------------------------
    // SweepRunner thread scaling: the same request batch across
    // 1/2/4/8 workers.
    // ------------------------------------------------------------------
    bench::banner("S2", "SweepRunner thread scaling");
    std::vector<sim::RunRequest> requests;
    for (int i = 0; i < kRuns; ++i) {
        sim::RunRequest request;
        request.seed = static_cast<std::uint64_t>(i + 1);
        requests.push_back(request);
    }

    bench::row({"workers", "seconds", "runs/sec", "speedup"});
    bench::rule(4);
    double base = 0.0;
    std::vector<int> ladder = quick ? std::vector<int>{1, 4}
                                    : std::vector<int>{1, 2, 4, 8};
    for (int workers : ladder) {
        sim::SweepOptions sweepOptions;
        sweepOptions.numWorkers = workers;
        sim::SweepRunner runner(program, spec, {}, sweepOptions);
        double best = 1e300;
        std::int64_t completed = 0;
        for (int rep = 0; rep < kReps; ++rep) {
            sim::SweepSummary summary = runner.run(requests);
            completed = summary.completed();
            best = std::min(best, summary.wallSeconds);
        }
        if (completed != static_cast<std::int64_t>(requests.size())) {
            std::fprintf(stderr, "sweep incomplete: %lld/%zu\n",
                         static_cast<long long>(completed),
                         requests.size());
            return 1;
        }
        if (workers == ladder.front())
            base = best;
        bench::row({std::to_string(workers), bench::fmt(best),
                    bench::fmt(kRuns / best), bench::fmt(base / best)});
        json.record("sweep_seconds", best,
                    {{"workers", std::to_string(workers)},
                     {"runs", runs_str},
                     {"cells", cells_str}});
        json.record("sweep_speedup", base / best,
                    {{"workers", std::to_string(workers)},
                     {"runs", runs_str},
                     {"cells", cells_str}});
    }

    // ------------------------------------------------------------------
    // S3: the persistent worker pool. Many *small* batches through one
    // runner — the regime where the old design paid a full thread
    // spawn + join per run() call. The pool is warmed by the first
    // batch; every later batch is a condition-variable hand-off.
    // ------------------------------------------------------------------
    bench::banner("S3", "persistent pool: many small batches per runner");
    const int kBatches = quick ? 16 : 128;
    const int kBatchSize = 8;
    std::vector<sim::RunRequest> smallBatch;
    for (int i = 0; i < kBatchSize; ++i) {
        sim::RunRequest request;
        request.seed = static_cast<std::uint64_t>(i + 1);
        smallBatch.push_back(request);
    }

    bench::row({"workers", "batches", "seconds", "batches/sec"});
    bench::rule(4);
    for (int workers : ladder) {
        sim::SweepOptions sweepOptions;
        sweepOptions.numWorkers = workers;
        sim::SweepRunner runner(program, spec, {}, sweepOptions);
        // Warm-up batch: spawns the pool threads and compiles the
        // per-worker sessions; the timed loop then measures steady
        // state, which is what a sweep service would see.
        if (runner.run(smallBatch).completed() != kBatchSize)
            return 1;
        double best = 1e300;
        for (int rep = 0; rep < kReps; ++rep) {
            auto start = Clock::now();
            for (int b = 0; b < kBatches; ++b) {
                if (runner.run(smallBatch).completed() != kBatchSize)
                    return 1;
            }
            best = std::min(best, seconds(start));
        }
        bench::row({std::to_string(workers), std::to_string(kBatches),
                    bench::fmt(best), bench::fmt(kBatches / best)});
        json.record("small_batch_seconds", best,
                    {{"workers", std::to_string(workers)},
                     {"batches", std::to_string(kBatches)},
                     {"batch_size", std::to_string(kBatchSize)},
                     {"cells", cells_str}});
        json.record("small_batches_per_sec", kBatches / best,
                    {{"workers", std::to_string(workers)},
                     {"batches", std::to_string(kBatches)},
                     {"batch_size", std::to_string(kBatchSize)},
                     {"cells", cells_str}});
    }
    return 0;
}
