/**
 * @file
 * F1: survivability under injected faults, with and without the
 * recovery pipeline (sim/fault.h + sim/recovery.h).
 *
 * The workload is a ring of transfer streams — the one topology in
 * the repertoire with route redundancy, so losing a link is
 * survivable in principle: the degraded machine still connects every
 * sender to its receiver the long way around. The sweep axis is fault
 * intensity (events per seeded random plan); every (intensity, seed)
 * grid point runs twice:
 *
 *  - plain injection: the plan as a ShapeSweep request axis (each
 *    request carries its own FaultPlan) — runs that freeze under
 *    faults stay dead (RunStatus::kFaulted);
 *  - recovery: RecoveryDriver checkpoints the same run, and on
 *    kFaulted rebuilds the degraded topology, repairs the residual
 *    program and re-delivers the remaining words.
 *
 * Emits BENCH_fault.json: per-intensity completion rates for both
 * modes, recovered-run slowdown vs the fault-free baseline, and a
 * machine digest per grid row — CI runs the bench twice and diffs the
 * digests, extending the cross-host determinism check to faulted runs
 * and the recovery pipeline.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/fault.h"
#include "sim/recovery.h"
#include "sim/shape_sweep.h"

using namespace syscomm;
using namespace syscomm::bench;

namespace {

const int kIntensities[] = {1, 2, 4, 8};
constexpr int kSeedsPerIntensity = 8;
constexpr int kCells = 12;
constexpr int kStreams = 6;
constexpr int kWordsPerStream = 24;
constexpr Cycle kCheckpointEvery = 32;

std::string
hexDigest(std::uint64_t digest)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(digest));
    return buf;
}

/** Transfer streams around a ring: cell i sends to cell (i+3) mod n,
 *  so every route has a surviving detour when one link dies. */
Program
ringStreams()
{
    Program p(kCells);
    for (int s = 0; s < kStreams; ++s) {
        CellId from = static_cast<CellId>((s * kCells) / kStreams);
        CellId to = static_cast<CellId>((from + 3) % kCells);
        MessageId id =
            p.declareMessage("S" + std::to_string(s), from, to);
        for (int w = 0; w < kWordsPerStream; ++w)
            p.write(from, id);
        for (int w = 0; w < kWordsPerStream; ++w)
            p.read(to, id);
    }
    return p;
}

} // namespace

int
main()
{
    banner("F1", "fault injection survivability (ring, link faults)");
    JsonWriter json("fault_sweep", "BENCH_fault.json");

    Program p = ringStreams();
    Topology topo = Topology::ring(kCells);
    MachineSpec spec;
    spec.topo = topo;
    spec.queuesPerLink = 2;
    spec.queueCapacity = 2;

    // Fault-free baseline for the slowdown metric.
    sim::SimSession baselineSession(p, spec);
    sim::RunResult baseline = baselineSession.run({});
    if (!baseline.completed()) {
        std::printf("baseline did not complete (%s) — aborting\n",
                    baseline.statusStr());
        return 1;
    }
    json.record("baseline_cycles", static_cast<double>(baseline.cycles));

    // The plan grid. Plans live in one stable vector: every
    // RunRequest (and the recovery driver) keeps a pointer into it
    // for the whole sweep.
    std::vector<sim::FaultPlan> plans;
    plans.reserve(std::size(kIntensities) * kSeedsPerIntensity);
    std::vector<sim::RunRequest> requests;
    for (int intensity : kIntensities) {
        for (int seed = 0; seed < kSeedsPerIntensity; ++seed) {
            sim::FaultPlanOptions fo;
            fo.seed = static_cast<std::uint64_t>(1000 * intensity +
                                                 seed);
            fo.numEvents = intensity;
            fo.maxCycle = baseline.cycles; // faults land mid-run
            plans.push_back(sim::randomFaultPlan(topo, spec, fo));
        }
    }
    for (const sim::FaultPlan& plan : plans) {
        sim::RunRequest request;
        request.faults = &plan;
        requests.push_back(request);
    }

    // Plain injection over the fault-plan request axis: one shape,
    // every plan a row, compiled once.
    std::vector<sim::ShapeSpec> shapes(1);
    shapes[0].name = "ring-base";
    shapes[0].queuesPerLink = spec.queuesPerLink;
    shapes[0].queueCapacity = spec.queueCapacity;
    sim::ShapeSweep sweep(p, topo, shapes);
    sim::ShapeSweepResult injected = sweep.run(requests);

    std::printf("\nper-intensity survivability (%d seeds each)\n\n",
                kSeedsPerIntensity);
    row({"faults", "inj-complete", "inj-faulted", "recovered",
         "unrecoverable", "mean-slowdown"});
    rule(6);

    sim::RecoveryDriver driver(p, spec);
    std::size_t at = 0;
    for (int intensity : kIntensities) {
        int injCompleted = 0;
        int injFaulted = 0;
        int recovered = 0;
        int unrecoverable = 0;
        double slowdownSum = 0.0;
        int slowdownRuns = 0;
        for (int seed = 0; seed < kSeedsPerIntensity; ++seed, ++at) {
            const sim::ShapeSweepRow& gridRow = injected.row(0, at);
            const sim::RunResult& inj = gridRow.result;
            injCompleted += inj.completed();
            injFaulted += inj.status == sim::RunStatus::kFaulted;
            json.record(
                "injected_cycles", static_cast<double>(inj.cycles),
                {{"intensity", std::to_string(intensity)},
                 {"seed", std::to_string(seed)},
                 {"status", inj.statusStr()},
                 {"machine_digest", hexDigest(gridRow.machineDigest)}});

            // The recovery pipeline on the identical plan.
            sim::RecoveryOptions ro;
            ro.faults = &plans[at];
            ro.checkpointEvery = kCheckpointEvery;
            sim::RecoveryReport rec = driver.run(ro);
            if (rec.faulted) {
                recovered += rec.recovered;
                unrecoverable += !rec.recoverable;
                if (rec.recovered) {
                    const double total = static_cast<double>(
                        rec.primary.cycles + rec.recovery.cycles);
                    slowdownSum +=
                        total / static_cast<double>(baseline.cycles);
                    ++slowdownRuns;
                }
            }
            // A run whose plan never fired has no recovery story to
            // tell: a -1 "outcome" with an all-zero recovery digest
            // only pollutes the series, so the record is emitted for
            // actually-faulted runs alone (the injected_cycles record
            // above still covers every run).
            if (rec.faulted) {
                json.record(
                    "recovery_outcome", rec.recovered ? 1.0 : 0.0,
                    {{"intensity", std::to_string(intensity)},
                     {"seed", std::to_string(seed)},
                     {"recoverable", rec.recoverable ? "yes" : "no"},
                     {"residual_words",
                      std::to_string(rec.residualWords)},
                     {"dead_links", std::to_string(rec.deadLinks)},
                     {"recovery_digest",
                      hexDigest(rec.recoveryMachineDigest)},
                     {"error", rec.error}});
            }
        }
        const double meanSlowdown =
            slowdownRuns > 0 ? slowdownSum / slowdownRuns : 0.0;
        row({std::to_string(intensity), std::to_string(injCompleted),
             std::to_string(injFaulted), std::to_string(recovered),
             std::to_string(unrecoverable), fmt(meanSlowdown)});
        json.record(
            "completion_rate",
            static_cast<double>(injCompleted) / kSeedsPerIntensity,
            {{"intensity", std::to_string(intensity)},
             {"mode", "injected"}});
        json.record(
            "completion_rate",
            static_cast<double>(injCompleted + recovered) /
                kSeedsPerIntensity,
            {{"intensity", std::to_string(intensity)},
             {"mode", "recovered"}});
        if (slowdownRuns > 0) {
            json.record("mean_recovered_slowdown", meanSlowdown,
                        {{"intensity", std::to_string(intensity)}});
        }
    }

    std::printf("\nshape check: plain injection loses runs as intensity\n"
                "grows; the recovery pipeline completes the remaining\n"
                "words over surviving ring routes, at a slowdown that\n"
                "reflects re-sent post-checkpoint traffic and detours.\n");
    return 0;
}
