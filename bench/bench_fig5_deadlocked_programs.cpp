/**
 * @file
 * Experiment F5 (paper Fig. 5): the three deadlocked programs P1, P2,
 * P3 — compile-time classification (basic and lookahead) and run-time
 * behavior across buffer capacities.
 */

#include <cstdio>
#include <functional>

#include "algos/paper_figures.h"
#include "bench_util.h"
#include "core/crossoff.h"
#include "sim/machine.h"
#include "text/printer.h"

using namespace syscomm;
using namespace syscomm::bench;

int
main()
{
    banner("F5", "deadlocked program examples (Fig. 5)");

    struct Case
    {
        const char* name;
        Program program;
    };
    Case cases[] = {{"P1", algos::fig5P1()},
                    {"P2", algos::fig5P2()},
                    {"P3", algos::fig5P3()}};

    for (const Case& c : cases) {
        std::printf("\n%s:\n%s", c.name,
                    text::renderColumns(c.program).c_str());
    }

    std::printf("\ncompile-time classification\n\n");
    row({"program", "basic", "lookahead b=1", "lookahead b=2",
         "lookahead b=8"});
    rule(5);
    for (const Case& c : cases) {
        auto verdict = [&](int bound) {
            CrossOffOptions o;
            o.lookahead = true;
            o.skip_bound = uniformSkipBound(bound);
            return crossOff(c.program, o).deadlockFree ? "free"
                                                       : "deadlocked";
        };
        row({c.name,
             isDeadlockFree(c.program) ? "free" : "deadlocked",
             verdict(1), verdict(2), verdict(8)});
    }

    std::printf("\nrun-time behavior (2 queues/link, capacity sweep)\n\n");
    row({"program", "cap=1", "cap=2", "cap=4"});
    rule(4);
    for (const Case& c : cases) {
        std::vector<std::string> cells{c.name};
        for (int capacity : {1, 2, 4}) {
            MachineSpec spec;
            spec.topo = algos::fig5Topology();
            spec.queuesPerLink = 2;
            spec.queueCapacity = capacity;
            sim::RunResult r = sim::simulateProgram(c.program, spec);
            cells.push_back(r.statusStr());
        }
        row(cells);
    }

    std::printf("\nshape check: P1 frees up at capacity 2 (section 8's\n"
                "worked example), P2 at capacity 1, P3 never (rule R1:\n"
                "reads cannot be skipped).\n");
    return 0;
}
