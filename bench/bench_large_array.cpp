/**
 * @file
 * Experiment L1: event-kernel scaling to 100k-cell arrays. Runs the
 * three largeArrayProgram phases (sparse, streaming, dense-active) at
 * 4k/16k/64k/100k cells through prebuilt SimSessions (compile cost
 * excluded — this measures the kernel), reporting wall seconds,
 * simulated cycles/sec, and ns per cell-cycle. The dense-active
 * column is the one the active-set rework is for: every cell blocks
 * and wakes every few cycles, so per-mutation cost is the whole
 * story — near-constant ns/cell-cycle across sizes means the kernel
 * scales linearly, a growing value means the set machinery is
 * super-linear. The reference kernel is timed at the smaller sizes
 * for an absolute anchor. Each row also reports memory next to the
 * time — the arena/SoA layout work moves both: `rss(MB)` is the
 * process's *current* resident set right after the timed runs (the
 * live cost of that row's sessions + program), and `peakRSS(MB)` the
 * process-wide high-water mark (monotone over the whole sweep — it
 * only moves when a row out-sizes everything before it, so compare
 * rss per row and peak across the run). Appends JSON lines to
 * BENCH_large_array.json.
 *
 * Usage: bench_large_array [--quick]
 *   --quick  CI smoke: 4k cells only, fewer repetitions.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

#include "bench_util.h"
#include "core/program_gen.h"
#include "core/topology.h"
#include "sim/session.h"

namespace {

using namespace syscomm;
using Clock = std::chrono::steady_clock;

/** Current resident set size of this process in MiB (0 if unknown). */
double
currentRssMb()
{
#if defined(__linux__)
    // /proc/self/statm: total and resident size in pages.
    std::FILE* f = std::fopen("/proc/self/statm", "r");
    if (f == nullptr)
        return 0.0;
    long total = 0, resident = 0;
    int fields = std::fscanf(f, "%ld %ld", &total, &resident);
    std::fclose(f);
    if (fields != 2)
        return 0.0;
    return static_cast<double>(resident) *
           static_cast<double>(sysconf(_SC_PAGESIZE)) / (1024.0 * 1024.0);
#else
    return 0.0;
#endif
}

/** Peak resident set size of this process in MiB (0 if unknown). */
double
peakRssMb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0.0;
#if defined(__APPLE__)
    return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
    return static_cast<double>(usage.ru_maxrss) / 1024.0; // KiB -> MiB
#endif
#else
    return 0.0;
#endif
}

MachineSpec
makeSpec(int cells)
{
    MachineSpec spec;
    spec.topo = Topology::linearArray(cells);
    spec.queuesPerLink = 2; // dense-active needs one per direction
    spec.queueCapacity = 4;
    return spec;
}

LargeArrayOptions
phaseOptions(ArrayPhase phase, int cells)
{
    LargeArrayOptions options;
    options.phase = phase;
    options.seed = 1;
    switch (phase) {
      case ArrayPhase::kSparse:
        options.messages = 8; // fixed: activity independent of size
        options.wordsPerMessage = 128;
        options.computeGap = 16;
        break;
      case ArrayPhase::kStreaming:
        options.messages = std::max(8, cells / 1024);
        options.wordsPerMessage = 64;
        options.computeGap = 8;
        break;
      case ArrayPhase::kDenseActive:
        // Long enough that the run dwarfs the per-run reset cost.
        options.wordsPerMessage = 64;
        break;
    }
    return options;
}

struct Timing
{
    double seconds = 0.0;
    Cycle cycles = 0;
};

/** Best-of-@p reps timing of run() on a prebuilt session. */
bool
timeKernel(sim::SimSession& session, int reps, Timing& out)
{
    out.seconds = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
        sim::RunRequest request;
        request.seed = static_cast<std::uint64_t>(rep + 1);
        auto start = Clock::now();
        sim::RunResult r = session.run(request);
        double s =
            std::chrono::duration<double>(Clock::now() - start).count();
        if (!r.completed()) {
            std::fprintf(stderr, "run did not complete: %s\n",
                         r.statusStr());
            return false;
        }
        out.cycles = r.cycles;
        out.seconds = std::min(out.seconds, s);
    }
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    if (argc > 1 && !quick) {
        std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
        return 2;
    }
    const int kReps = quick ? 2 : 3;
    const std::vector<int> sizes =
        quick ? std::vector<int>{4096}
              : std::vector<int>{4096, 16384, 65536, 100000};
    // Reference-kernel anchor: dense scans cost O(machine) per cycle,
    // so keep the oracle to the sizes where that stays in budget.
    const int kMaxReferenceCells = quick ? 4096 : 16384;

    bench::banner("L1", "event-kernel scaling, 4k-100k cell arrays "
                        "(sparse / streaming / dense-active)");
    bench::JsonWriter json("large_array", "BENCH_large_array.json");

    const ArrayPhase phases[] = {ArrayPhase::kSparse,
                                 ArrayPhase::kStreaming,
                                 ArrayPhase::kDenseActive};

    bench::row({"phase", "cells", "kernel", "cycles", "seconds",
                "cyc/sec", "ns/cell-cyc", "rss(MB)", "peakRSS(MB)"},
               13);
    bench::rule(9, 13);
    for (ArrayPhase phase : phases) {
        for (int cells : sizes) {
            Program program =
                largeArrayProgram(cells, phaseOptions(phase, cells));
            MachineSpec spec = makeSpec(cells);

            std::vector<sim::KernelKind> kernels = {
                sim::KernelKind::kEventDriven};
            if (cells <= kMaxReferenceCells)
                kernels.push_back(sim::KernelKind::kReference);

            for (sim::KernelKind kernel : kernels) {
                sim::SessionOptions sessionOptions;
                sessionOptions.kernel = kernel;
                sim::SimSession session(program, spec, sessionOptions);
                Timing t;
                if (!timeKernel(session, kReps, t))
                    return 1;
                double cycPerSec =
                    static_cast<double>(t.cycles) / t.seconds;
                double nsPerCellCycle =
                    1e9 * t.seconds /
                    (static_cast<double>(t.cycles) *
                     static_cast<double>(cells));
                double rssMb = currentRssMb();
                double peakMb = peakRssMb();
                bench::row({arrayPhaseName(phase),
                            std::to_string(cells),
                            sim::kernelKindName(kernel),
                            std::to_string(t.cycles),
                            bench::fmt(t.seconds), bench::fmt(cycPerSec),
                            bench::fmt(nsPerCellCycle),
                            bench::fmt(rssMb), bench::fmt(peakMb)},
                           13);
                json.record("seconds", t.seconds,
                            {{"phase", arrayPhaseName(phase)},
                             {"cells", std::to_string(cells)},
                             {"kernel", sim::kernelKindName(kernel)},
                             {"cycles", std::to_string(t.cycles)}});
                json.record("ns_per_cell_cycle", nsPerCellCycle,
                            {{"phase", arrayPhaseName(phase)},
                             {"cells", std::to_string(cells)},
                             {"kernel", sim::kernelKindName(kernel)}});
                json.record("rss_mb", rssMb,
                            {{"phase", arrayPhaseName(phase)},
                             {"cells", std::to_string(cells)},
                             {"kernel", sim::kernelKindName(kernel)}});
                json.record("peak_rss_mb", peakMb,
                            {{"phase", arrayPhaseName(phase)},
                             {"cells", std::to_string(cells)},
                             {"kernel", sim::kernelKindName(kernel)}});
            }
        }
        bench::rule(9, 13);
    }
    std::printf(
        "linear scaling <=> ns/cell-cyc stays flat as cells grow\n");
    return 0;
}
