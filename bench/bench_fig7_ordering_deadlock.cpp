/**
 * @file
 * Experiment F7 (paper Fig. 7): queue-induced deadlock from message
 * arrival order. With one queue per link, FCFS hands the C3-C4 queue
 * to B before C and C4 starves; the section 6 labels (A=1, B=3, C=2)
 * with compatible assignment avoid it.
 */

#include <cstdio>

#include "algos/paper_figures.h"
#include "bench_util.h"
#include "core/compile.h"
#include "sim/machine.h"
#include "text/printer.h"

using namespace syscomm;
using namespace syscomm::bench;

int
main()
{
    banner("F7", "queue-induced deadlock 1: arrival order (Fig. 7)");

    Program p = algos::fig7Program();
    std::printf("\n%s\n", text::renderColumns(p).c_str());

    MachineSpec spec;
    spec.topo = algos::fig7Topology();
    spec.queuesPerLink = 1;
    CompilePlan plan = compileProgram(p, spec);
    std::printf("section 6 labels: %s   (paper: A=1 B=3 C=2)\n\n",
                plan.labeling.str(p).c_str());

    row({"policy", "queues", "status", "cycles", "audit"});
    rule(5);
    for (int queues : {1, 2}) {
        for (sim::PolicyKind kind :
             {sim::PolicyKind::kFcfs, sim::PolicyKind::kRandom,
              sim::PolicyKind::kCompatible,
              sim::PolicyKind::kCompatibleEager}) {
            MachineSpec s = spec;
            s.queuesPerLink = queues;
            sim::SimOptions options;
            options.policy = kind;
            options.audit = true;
            sim::RunResult r = sim::simulateProgram(p, s, options);
            row({sim::policyKindName(kind), std::to_string(queues),
                 r.statusStr(), std::to_string(r.cycles),
                 r.audit.compatible ? "clean" : "violations"});
        }
    }

    {
        sim::SimOptions options;
        options.policy = sim::PolicyKind::kFcfs;
        sim::RunResult r = sim::simulateProgram(p, spec, options);
        if (r.status == sim::RunStatus::kDeadlocked) {
            std::printf("\nFCFS deadlock snapshot (the paper's lower-half "
                        "diagram):\n%s",
                        r.deadlock.render().c_str());
        }
    }

    std::printf("\nstream-length sweep (FCFS vs compatible, 1 queue)\n\n");
    row({"stream-len", "fcfs", "compatible"});
    rule(3);
    for (int len : {1, 2, 4, 8, 16}) {
        Program pl = algos::fig7Program(len);
        sim::SimOptions fcfs;
        fcfs.policy = sim::PolicyKind::kFcfs;
        sim::SimOptions compat;
        compat.policy = sim::PolicyKind::kCompatible;
        row({std::to_string(len),
             sim::simulateProgram(pl, spec, fcfs).statusStr(),
             sim::simulateProgram(pl, spec, compat).statusStr()});
    }
    return 0;
}
