/**
 * @file
 * Experiment F4 (paper Fig. 4): the crossing-off procedure performed
 * on the Fig. 2 program. The paper's trace takes 12 steps with two
 * executable pairs crossed in steps 3, 5 and 9.
 */

#include <cstdio>

#include "algos/paper_figures.h"
#include "bench_util.h"
#include "core/crossoff.h"

using namespace syscomm;
using namespace syscomm::bench;

int
main()
{
    banner("F4", "crossing-off trace of the Fig. 2 program");

    Program p = algos::fig2FirProgram();
    CrossOffResult result = crossOff(p);

    std::printf("\ndeadlock-free: %s\n",
                result.deadlockFree ? "yes" : "no");
    std::printf("steps: %zu (paper: 12)\n", result.rounds.size());
    std::printf("pairs: %zu (paper: 15)\n\n", result.sequence.size());
    std::printf("%s\n", result.traceStr(p).c_str());

    std::printf("double steps (two pairs executable): ");
    for (std::size_t s = 0; s < result.rounds.size(); ++s) {
        if (result.rounds[s].size() > 1)
            std::printf("%zu ", s + 1);
    }
    std::printf(" (paper: 3 5 9)\n");
    return 0;
}
