/**
 * @file
 * Experiment W1: the systolic algorithm suite end-to-end — FIR,
 * convolution, matrix-vector, odd-even sort, LCS (the paper's P-NAC
 * reference), and mesh matmul. For each workload: cycles on a
 * 2-queue/link machine, the unlimited-queue ideal, the efficiency
 * ratio, and delivered-word throughput. This quantifies how close the
 * paper's avoidance machinery gets to a special-purpose array that
 * "can afford providing as many queues as required" (section 9).
 */

#include <cstdio>

#include "algos/align.h"
#include "algos/convolution.h"
#include "algos/fir.h"
#include "algos/matvec.h"
#include "algos/mesh_matmul.h"
#include "algos/sort.h"
#include "bench_util.h"
#include "core/compile.h"
#include "sim/machine.h"
#include "sim/trace.h"

using namespace syscomm;
using namespace syscomm::bench;

namespace {

void
measure(const std::string& name, const Program& p, const Topology& topo,
        int queues)
{
    MachineSpec spec;
    spec.topo = topo;
    spec.queuesPerLink = queues;
    CompilePlan plan = compileProgram(p, spec);
    if (!plan.ok) {
        row({name, "compile-fail", plan.dynamicFeasibility.reason});
        return;
    }
    sim::SimOptions options;
    options.labels = plan.normalizedLabels;
    sim::RunResult r = sim::simulateProgram(p, spec, options);
    Cycle ideal = sim::idealCycles(p, topo);
    double efficiency =
        r.cycles > 0 ? static_cast<double>(ideal) /
                           static_cast<double>(r.cycles)
                     : 0.0;
    double throughput =
        r.cycles > 0 ? static_cast<double>(r.stats.wordsDelivered) /
                           static_cast<double>(r.cycles)
                     : 0.0;
    row({name, std::to_string(p.totalOps()), std::to_string(queues),
         r.statusStr(), std::to_string(r.cycles), std::to_string(ideal),
         fmt(efficiency), fmt(throughput)},
        12);
}

} // namespace

int
main()
{
    banner("W1", "systolic algorithm suite: constrained vs ideal queues");

    std::printf("\n");
    row({"workload", "ops", "queues", "status", "cycles", "ideal",
         "effcy", "words/cyc"},
        12);
    rule(8, 12);

    {
        algos::FirSpec fir = algos::FirSpec::random(8, 64, 1);
        measure("fir(8,64)", algos::makeFirProgram(fir),
                algos::firTopology(8), 2);
    }
    {
        algos::ConvSpec conv = algos::ConvSpec::random(6, 12, 2);
        measure("conv(6,12)", algos::makeConvolutionProgram(conv),
                algos::convTopology(conv), 2);
    }
    {
        algos::MatVecSpec mv = algos::MatVecSpec::random(8, 8, 3);
        measure("matvec(8x8)", algos::makeMatVecProgram(mv),
                algos::matvecTopology(mv), 2);
    }
    {
        algos::SortSpec sort = algos::SortSpec::random(10, 4);
        measure("sort(10)", algos::makeSortProgram(sort),
                algos::sortTopology(sort), 2);
    }
    {
        algos::AlignSpec align = algos::AlignSpec::random(10, 24, 5);
        measure("lcs(10,24)", algos::makeLcsProgram(align),
                algos::alignTopology(align), 2);
    }
    {
        algos::MatMulSpec mm = algos::MatMulSpec::random(4, 6, 6);
        measure("matmul(4,6)", algos::makeMatMulProgram(mm),
                algos::matmulTopology(mm), 4);
    }

    std::printf("\nFIR pipeline fill: per-message latency on fir(4,16)\n\n");
    {
        algos::FirSpec fir = algos::FirSpec::random(4, 16, 7);
        Program p = algos::makeFirProgram(fir);
        MachineSpec spec;
        spec.topo = algos::firTopology(4);
        spec.queuesPerLink = 2;
        sim::RunResult r = sim::simulateProgram(p, spec);
        std::printf("%s\n", sim::renderMessageLatencies(r, p).c_str());
        std::printf("%s\n",
                    sim::renderQueueTimeline(r, p, spec, 60).c_str());
    }

    std::printf("shape check: efficiency stays near 1 — two queues per\n"
                "link plus the avoidance machinery track the unlimited-\n"
                "queue special-purpose array closely.\n");
    return 0;
}
