#pragma once

/**
 * @file
 * k-tap FIR filter on a linear array — the generalization of the
 * paper's Fig. 2 (which is the 3-tap, 2-output instance).
 *
 * Cells: 0 is the host, 1..taps are the array. Cell i holds weight
 * w[taps-i] (the paper preloads w1..w3 into C3..C1). The x stream
 * flows right (host -> Ck) shortening by one word per cell; partial y
 * results flow left (Ck -> host), each cell adding its term:
 *
 *     y[j] = sum_{t=0..k-1} w[t] * x[j+t]      (0-based)
 */

#include <string>
#include <vector>

#include "core/machine_spec.h"
#include "core/program.h"
#include "core/topology.h"

namespace syscomm::algos {

/** Parameters of a FIR instance. */
struct FirSpec
{
    int taps = 3;
    int outputs = 2;
    /** weights[t] multiplies x[j+t]; size must equal taps. */
    std::vector<double> weights;
    /** Input samples; size must equal outputs + taps - 1. */
    std::vector<double> inputs;

    /** Fig. 2's exact instance: w = {3, 5, 7}, x = {1, 2, 3, 4}. */
    static FirSpec paperExample();

    /** A pseudo-random instance of the given size. */
    static FirSpec random(int taps, int outputs, std::uint64_t seed);
};

/** The linear array (host + taps cells) the program runs on. */
Topology firTopology(int taps);

/**
 * Build the FIR program, including compute ops so the simulator
 * produces real numerics. Message names follow Fig. 2: X1 is the
 * host->C1 stream (the paper's XA), Y1 is C1->host (YA), and so on.
 */
Program makeFirProgram(const FirSpec& spec);

/** Direct (non-systolic) reference outputs. */
std::vector<double> firReference(const FirSpec& spec);

/** Name of the y-stream message arriving at the host ("Y1"). */
std::string firHostOutputMessage();

} // namespace syscomm::algos
