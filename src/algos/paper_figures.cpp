#include "algos/paper_figures.h"

#include <cassert>

namespace syscomm::algos {

// ---------------------------------------------------------------------
// Fig. 2
// ---------------------------------------------------------------------

Topology
fig2Topology()
{
    return Topology::linearArray(4); // host + C1..C3
}

Program
fig2FirProgram()
{
    // Weights w1, w2, w3 preloaded into C3, C2, C1; inputs x1..x4.
    // y1 = w1*x1 + w2*x2 + w3*x3, y2 = w1*x2 + w2*x3 + w3*x4.
    const double w1 = 3.0, w2 = 5.0, w3 = 7.0;
    const double xs[4] = {1.0, 2.0, 3.0, 4.0};

    Program p(4);
    // Paper names XA/XB/XC and YA/YB/YC.
    MessageId xa = p.declareMessage("XA", 0, 1);
    MessageId xb = p.declareMessage("XB", 1, 2);
    MessageId xc = p.declareMessage("XC", 2, 3);
    MessageId ya = p.declareMessage("YA", 1, 0);
    MessageId yb = p.declareMessage("YB", 2, 1);
    MessageId yc = p.declareMessage("YC", 3, 2);

    auto stage = [](double v) {
        return [v](CellContext& ctx) { ctx.setNextWrite(v); };
    };
    auto stash = [](CellContext& ctx) { ctx.local(0) = ctx.lastRead(); };
    auto forwardStashed = [](CellContext& ctx) {
        ctx.setNextWrite(ctx.local(0));
    };

    // Host: W(XA)=x1..x3, R(YA)=y1, W(XA)=x4, R(YA)=y2.
    p.compute(0, stage(xs[0]));
    p.write(0, xa);
    p.compute(0, stage(xs[1]));
    p.write(0, xa);
    p.compute(0, stage(xs[2]));
    p.write(0, xa);
    p.read(0, ya);
    p.compute(0, stage(xs[3]));
    p.write(0, xa);
    p.read(0, ya);

    // C1 (weight w3): forward x1, x2; fold y1, y2.
    for (int j = 0; j < 2; ++j) {
        p.read(1, xa); // x1, x2
        p.compute(1, stash);
        p.compute(1, forwardStashed);
        p.write(1, xb);
    }
    p.read(1, xa); // x3
    p.compute(1, stash);
    p.read(1, yb); // y1 partial
    p.compute(1, [w3](CellContext& ctx) {
        ctx.local(1) = ctx.lastRead() + w3 * ctx.local(0);
    });
    p.compute(1, forwardStashed);
    p.write(1, xb); // x3
    p.compute(1, [](CellContext& ctx) { ctx.setNextWrite(ctx.local(1)); });
    p.write(1, ya); // y1
    p.read(1, xa);  // x4
    p.compute(1, stash);
    p.read(1, yb); // y2 partial
    p.compute(1, [w3](CellContext& ctx) {
        ctx.setNextWrite(ctx.lastRead() + w3 * ctx.local(0));
    });
    p.write(1, ya); // y2

    // C2 (weight w2): forward x1, x2; fold y1, y2.
    p.read(2, xb); // x1
    p.compute(2, stash);
    p.compute(2, forwardStashed);
    p.write(2, xc);
    p.read(2, xb); // x2
    p.compute(2, stash);
    p.read(2, yc); // y1 partial
    p.compute(2, [w2](CellContext& ctx) {
        ctx.local(1) = ctx.lastRead() + w2 * ctx.local(0);
    });
    p.compute(2, forwardStashed);
    p.write(2, xc); // x2
    p.compute(2, [](CellContext& ctx) { ctx.setNextWrite(ctx.local(1)); });
    p.write(2, yb); // y1
    p.read(2, xb);  // x3
    p.compute(2, stash);
    p.read(2, yc); // y2 partial
    p.compute(2, [w2](CellContext& ctx) {
        ctx.setNextWrite(ctx.lastRead() + w2 * ctx.local(0));
    });
    p.write(2, yb); // y2

    // C3 (weight w1): start y1, y2.
    for (int j = 0; j < 2; ++j) {
        p.read(3, xc); // x1, x2
        p.compute(3, [w1](CellContext& ctx) {
            ctx.setNextWrite(w1 * ctx.lastRead());
        });
        p.write(3, yc);
    }

    assert(p.valid());
    (void)xa;
    return p;
}

// ---------------------------------------------------------------------
// Fig. 5
// ---------------------------------------------------------------------

Topology
fig5Topology()
{
    return Topology::linearArray(2);
}

Program
fig5P1()
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 0, 1);
    p.write(0, a);
    p.write(0, a);
    p.write(0, b);
    p.read(1, b);
    p.read(1, a);
    p.read(1, a);
    return p;
}

Program
fig5P2()
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 1, 0);
    p.write(0, a);
    p.read(0, b);
    p.write(1, b);
    p.read(1, a);
    return p;
}

Program
fig5P3()
{
    Program p(2);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 1, 0);
    p.read(0, b);
    p.write(0, a);
    p.read(1, a);
    p.write(1, b);
    return p;
}

// ---------------------------------------------------------------------
// Fig. 6
// ---------------------------------------------------------------------

Topology
fig6Topology()
{
    return Topology::ring(4);
}

Program
fig6CycleProgram()
{
    Program p(4);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 1, 2);
    MessageId c = p.declareMessage("C", 2, 3);
    MessageId d = p.declareMessage("D", 3, 0);
    p.write(0, a);
    p.read(0, d);
    p.read(1, a);
    p.write(1, b);
    p.read(2, b);
    p.write(2, c);
    p.read(3, c);
    p.write(3, d);
    return p;
}

// ---------------------------------------------------------------------
// Fig. 7
// ---------------------------------------------------------------------

Topology
fig7Topology()
{
    return Topology::linearArray(4);
}

Program
fig7Program(int stream_len)
{
    assert(stream_len >= 1);
    Program p(4);
    // Declared in this order so declaration-order labeling reproduces
    // the paper's A=1, B=3, C=2.
    MessageId a = p.declareMessage("A", 1, 2);
    MessageId b = p.declareMessage("B", 2, 3);
    MessageId c = p.declareMessage("C", 0, 3);

    for (int i = 0; i < stream_len; ++i)
        p.write(0, c); // C1: W(C)...
    for (int i = 0; i < 4; ++i)
        p.write(1, a); // C2: W(A) x4
    for (int i = 0; i < 4; ++i)
        p.read(2, a); // C3: R(A) x4
    for (int i = 0; i < stream_len; ++i)
        p.write(2, b); // C3: W(B)...
    for (int i = 0; i < stream_len; ++i)
        p.read(3, c); // C4: R(C)...
    for (int i = 0; i < stream_len; ++i)
        p.read(3, b); // C4: R(B)...
    return p;
}

// ---------------------------------------------------------------------
// Fig. 8
// ---------------------------------------------------------------------

Topology
fig8Topology()
{
    return Topology::linearArray(3);
}

Program
fig8Program(int words_per_message)
{
    assert(words_per_message >= 2 &&
           "interleaving needs at least two words");
    int m = words_per_message;
    Program p(3);
    MessageId a = p.declareMessage("A", 1, 2);
    MessageId b = p.declareMessage("B", 0, 2);
    for (int i = 0; i < m; ++i)
        p.write(0, b); // C1: W(B)...
    for (int i = 0; i < m; ++i)
        p.write(1, a); // C2: W(A)...
    for (int i = 0; i < m; ++i) {
        p.read(2, a); // C3 interleaves R(A), R(B)
        p.read(2, b);
    }
    return p;
}

// ---------------------------------------------------------------------
// Fig. 9
// ---------------------------------------------------------------------

Topology
fig9Topology()
{
    return Topology::linearArray(3);
}

Program
fig9Program(int words_per_message)
{
    assert(words_per_message >= 2 &&
           "interleaving needs at least two words");
    int m = words_per_message;
    Program p(3);
    MessageId a = p.declareMessage("A", 0, 1);
    MessageId b = p.declareMessage("B", 0, 2);
    for (int i = 0; i < m; ++i) {
        p.write(0, a); // C1 interleaves W(A), W(B)
        p.write(0, b);
    }
    for (int i = 0; i < m; ++i)
        p.read(1, a); // C2: R(A)...
    for (int i = 0; i < m; ++i)
        p.read(2, b); // C3: R(B)...
    return p;
}

} // namespace syscomm::algos
