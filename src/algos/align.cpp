#include "algos/align.h"

#include <algorithm>
#include <cassert>
#include <random>
#include <vector>

namespace syscomm::algos {

AlignSpec
AlignSpec::random(int len_a, int len_b, std::uint64_t seed)
{
    static const char kAlphabet[] = "ACGT";
    AlignSpec spec;
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> dist(0, 3);
    for (int i = 0; i < len_a; ++i)
        spec.a.push_back(kAlphabet[dist(rng)]);
    for (int j = 0; j < len_b; ++j)
        spec.b.push_back(kAlphabet[dist(rng)]);
    return spec;
}

Topology
alignTopology(const AlignSpec& spec)
{
    return Topology::linearArray(static_cast<int>(spec.a.size()) + 1);
}

int
lcsReference(const AlignSpec& spec)
{
    int m = static_cast<int>(spec.a.size());
    int n = static_cast<int>(spec.b.size());
    std::vector<std::vector<int>> dp(m + 1, std::vector<int>(n + 1, 0));
    for (int i = 1; i <= m; ++i) {
        for (int j = 1; j <= n; ++j) {
            dp[i][j] = spec.a[i - 1] == spec.b[j - 1]
                           ? dp[i - 1][j - 1] + 1
                           : std::max(dp[i - 1][j], dp[i][j - 1]);
        }
    }
    return dp[m][n];
}

Program
makeLcsProgram(const AlignSpec& spec)
{
    int m = static_cast<int>(spec.a.size());
    int n = static_cast<int>(spec.b.size());
    assert(m >= 1 && n >= 1);

    Program program(m + 1);

    // B<i>: the character stream hop into cell i; ROW<i>: the DP row
    // L[i-1][*] hop into cell i; RES: the final score back to the host.
    std::vector<MessageId> bmsg(m + 1, kInvalidMessage);
    std::vector<MessageId> rmsg(m + 1, kInvalidMessage);
    for (int i = 1; i <= m; ++i) {
        bmsg[i] = program.declareMessage("B" + std::to_string(i), i - 1, i);
        rmsg[i] =
            program.declareMessage("ROW" + std::to_string(i), i - 1, i);
    }
    MessageId res = program.declareMessage("RES", m, 0);

    // Host: stream (b_j, 0) pairs, then read the score.
    for (int j = 0; j < n; ++j) {
        double ch = static_cast<double>(spec.b[j]);
        program.compute(0, [ch](CellContext& ctx) {
            ctx.setNextWrite(ch);
        });
        program.write(0, bmsg[1]);
        program.compute(0, [](CellContext& ctx) {
            ctx.setNextWrite(0.0);
        });
        program.write(0, rmsg[1]);
    }
    program.read(0, res);

    // Cell i: one DP row. Locals: 0 = incoming char, 1 = L[i][j-1],
    // 2 = L[i-1][j-1], 3 = L[i][j].
    for (int i = 1; i <= m; ++i) {
        double ai = static_cast<double>(spec.a[i - 1]);
        for (int j = 0; j < n; ++j) {
            program.read(i, bmsg[i]);
            program.compute(i, [](CellContext& ctx) {
                ctx.local(0) = ctx.lastRead();
            });
            program.read(i, rmsg[i]);
            program.compute(i, [ai](CellContext& ctx) {
                double up = ctx.lastRead();
                double cur = ctx.local(0) == ai
                                 ? ctx.local(2) + 1.0
                                 : std::max(up, ctx.local(1));
                ctx.local(2) = up;
                ctx.local(1) = cur;
                ctx.local(3) = cur;
            });
            if (i < m) {
                program.compute(i, [](CellContext& ctx) {
                    ctx.setNextWrite(ctx.local(0));
                });
                program.write(i, bmsg[i + 1]);
                program.compute(i, [](CellContext& ctx) {
                    ctx.setNextWrite(ctx.local(3));
                });
                program.write(i, rmsg[i + 1]);
            }
        }
    }
    program.compute(m, [](CellContext& ctx) {
        ctx.setNextWrite(ctx.local(3));
    });
    program.write(m, res);

    return program;
}

} // namespace syscomm::algos
