#include "algos/streams.h"

#include <cassert>
#include <string>
#include <vector>

namespace syscomm::algos {

const char*
streamPatternName(StreamPattern pattern)
{
    switch (pattern) {
      case StreamPattern::kSequential:
        return "sequential";
      case StreamPattern::kInterleaved:
        return "interleaved";
      case StreamPattern::kFanIn:
        return "fan-in";
      case StreamPattern::kFanOut:
        return "fan-out";
    }
    return "?";
}

Topology
streamsTopology(const StreamSpec& spec)
{
    return Topology::linearArray(spec.numCells);
}

Program
makeStreamsProgram(const StreamSpec& spec)
{
    int cells = spec.numCells;
    int streams = spec.numStreams;
    int words = spec.wordsPerStream;
    assert(cells >= 2 && streams >= 1 && words >= 1);

    Program program(cells);
    std::vector<MessageId> s(streams, kInvalidMessage);

    switch (spec.pattern) {
      case StreamPattern::kSequential: {
        for (int i = 0; i < streams; ++i)
            s[i] = program.declareMessage("S" + std::to_string(i), 0,
                                          cells - 1);
        for (int i = 0; i < streams; ++i) {
            for (int w = 0; w < words; ++w) {
                program.write(0, s[i]);
                program.read(cells - 1, s[i]);
            }
        }
        break;
      }
      case StreamPattern::kInterleaved: {
        for (int i = 0; i < streams; ++i)
            s[i] = program.declareMessage("S" + std::to_string(i), 0,
                                          cells - 1);
        for (int w = 0; w < words; ++w) {
            for (int i = 0; i < streams; ++i) {
                program.write(0, s[i]);
                program.read(cells - 1, s[i]);
            }
        }
        break;
      }
      case StreamPattern::kFanIn: {
        assert(streams <= cells - 1 &&
               "fan-in needs a distinct sender per stream");
        for (int i = 0; i < streams; ++i)
            s[i] = program.declareMessage("S" + std::to_string(i), i,
                                          cells - 1);
        for (int i = 0; i < streams; ++i) {
            for (int w = 0; w < words; ++w)
                program.write(i, s[i]);
        }
        for (int w = 0; w < words; ++w) {
            for (int i = 0; i < streams; ++i)
                program.read(cells - 1, s[i]);
        }
        break;
      }
      case StreamPattern::kFanOut: {
        assert(streams <= cells - 1 &&
               "fan-out needs a distinct receiver per stream");
        for (int i = 0; i < streams; ++i)
            s[i] = program.declareMessage("S" + std::to_string(i), 0,
                                          i + 1);
        for (int w = 0; w < words; ++w) {
            for (int i = 0; i < streams; ++i)
                program.write(0, s[i]);
        }
        for (int i = 0; i < streams; ++i) {
            for (int w = 0; w < words; ++w)
                program.read(i + 1, s[i]);
        }
        break;
      }
    }
    return program;
}

Program
makeRelayPipeline(int cells, int words)
{
    assert(cells >= 2 && words >= 1);
    Program p(cells);
    std::vector<MessageId> hop(cells, kInvalidMessage);
    for (int c = 1; c < cells; ++c)
        hop[c] = p.declareMessage("H" + std::to_string(c), c - 1, c);
    for (int w = 0; w < words; ++w)
        p.write(0, hop[1]);
    for (int c = 1; c + 1 < cells; ++c) {
        for (int w = 0; w < words; ++w) {
            p.read(c, hop[c]);
            p.write(c, hop[c + 1]);
        }
    }
    for (int w = 0; w < words; ++w)
        p.read(cells - 1, hop[cells - 1]);
    return p;
}

} // namespace syscomm::algos
