#pragma once

/**
 * @file
 * The exact example programs from the paper's figures, transcribed
 * op for op (the compute statements of Fig. 2 are carried as compute
 * ops so the simulator reproduces y1/y2 numerically).
 *
 * Cell numbering: figures label cells C1, C2, ... — here they are
 * cells 0, 1, ... (the host of Fig. 2 is cell 0).
 */

#include "core/program.h"
#include "core/topology.h"

namespace syscomm::algos {

// ---------------------------------------------------------------------
// Fig. 2 — 3-tap FIR filter on host + C1..C3 (see also algos/fir.h,
// which generates the same structure for any size).
// ---------------------------------------------------------------------

/** Host + 3 cells, linear. */
Topology fig2Topology();

/** The Fig. 2 program (weights 3, 5, 7; inputs 1, 2, 3, 4). */
Program fig2FirProgram();

// ---------------------------------------------------------------------
// Fig. 5 — three deadlocked programs over two adjacent cells.
// P1 becomes deadlock-free with lookahead when buffering >= 2 (Fig 10);
// P2 needs buffering >= 1; P3 is deadlocked at any buffer size (its
// first ops are reads on both sides, and rule R1 forbids skipping
// reads).
// ---------------------------------------------------------------------

Topology fig5Topology();

/** C1: W(A) W(A) W(B);  C2: R(B) R(A) R(A). */
Program fig5P1();

/** C1: W(A) R(B);  C2: W(B) R(A). */
Program fig5P2();

/** C1: R(B) W(A);  C2: R(A) W(B). */
Program fig5P3();

// ---------------------------------------------------------------------
// Fig. 6 — messages form a cycle by sender/receiver, but the program
// is deadlock-free (4-cell ring).
// ---------------------------------------------------------------------

Topology fig6Topology();

/**
 * A: C1->C2, B: C2->C3, C: C3->C4, D: C4->C1;
 * C1: W(A) R(D); C2: R(A) W(B); C3: R(B) W(C); C4: R(C) W(D).
 */
Program fig6CycleProgram();

// ---------------------------------------------------------------------
// Fig. 7 — queue-induced deadlock 1: arrival order at C4. Messages
// A: C2->C3 (4 words), B: C3->C4, C: C1->C4 (streamLen words each).
// The section 6 labels are A=1, B=3, C=2.
// ---------------------------------------------------------------------

Topology fig7Topology();

Program fig7Program(int stream_len = 4);

// ---------------------------------------------------------------------
// Fig. 8 — queue-induced deadlock 2: C3 reads interleaved from
// A (C2->C3) and B (C1->C3); A and B are related and need separate
// queues on the C2-C3 link.
// ---------------------------------------------------------------------

Topology fig8Topology();

Program fig8Program(int words_per_message = 2);

// ---------------------------------------------------------------------
// Fig. 9 — queue-induced deadlock 3: C1 writes interleaved to
// A (C1->C2) and B (C1->C3); symmetric to Fig. 8 on the C1-C2 link.
// ---------------------------------------------------------------------

Topology fig9Topology();

Program fig9Program(int words_per_message = 2);

} // namespace syscomm::algos
