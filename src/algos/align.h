#pragma once

/**
 * @file
 * Longest-common-subsequence length on a linear systolic array — the
 * sequence-comparison workload of the paper's reference [8] (LoPresti's
 * P-NAC, "a systolic array for comparing nucleic acid sequences").
 *
 * One cell per character of sequence A; sequence B and the DP row
 * stream through the array. Cell i computes row i of the classic DP:
 *
 *     L[i][j] = a_i == b_j ? L[i-1][j-1] + 1
 *                          : max(L[i-1][j], L[i][j-1])
 *
 * receiving L[i-1][*] from its left neighbor one value per step and
 * keeping L[i][j-1] / L[i-1][j-1] in local registers.
 */

#include <string>

#include "core/program.h"
#include "core/topology.h"

namespace syscomm::algos {

/** Parameters of an alignment instance. */
struct AlignSpec
{
    std::string a;
    std::string b;

    /** Random strings over a 4-letter (nucleotide) alphabet. */
    static AlignSpec random(int len_a, int len_b, std::uint64_t seed);
};

/** Host + one cell per character of A. */
Topology alignTopology(const AlignSpec& spec);

/**
 * Build the LCS program. The host streams B and a zero row in, and
 * reads the final score on message "RES".
 */
Program makeLcsProgram(const AlignSpec& spec);

/** Direct DP reference. */
int lcsReference(const AlignSpec& spec);

} // namespace syscomm::algos
