#pragma once

/**
 * @file
 * Matrix multiply C = A * B on a 2-D mesh — exercising the paper's
 * claim that the results "apply to arrays of higher dimensionalities".
 *
 * Cell (i, j) accumulates C[i][j]. Row streams of A enter at the left
 * edge and move right; column streams of B enter at the top edge and
 * move down; cell (i, j) multiplies the k-th A word by the k-th B word.
 * When the streams end, every cell ships its accumulated result to
 * cell (0, 0) over XY routes — a burst of n*n - 1 competing multi-hop
 * messages.
 */

#include <vector>

#include "core/program.h"
#include "core/topology.h"

namespace syscomm::algos {

/** Parameters of a mesh matmul instance. */
struct MatMulSpec
{
    /** C is n x n; A is n x k; B is k x n. */
    int n = 2;
    int k = 2;
    std::vector<double> a; ///< row-major n x k
    std::vector<double> b; ///< row-major k x n

    static MatMulSpec random(int n, int k, std::uint64_t seed);

    double aAt(int i, int t) const { return a[i * k + t]; }
    double bAt(int t, int j) const { return b[t * n + j]; }
};

/** n x n mesh with XY routing. */
Topology matmulTopology(const MatMulSpec& spec);

/** Build the program. Cell (0, 0) collects every C entry. */
Program makeMatMulProgram(const MatMulSpec& spec);

/** Row-major n x n reference product. */
std::vector<double> matmulReference(const MatMulSpec& spec);

/**
 * Reassemble C from a finished run's received-values table. Message
 * "C<i>_<j>" carries C[i][j] to cell (0, 0); the collector's own entry
 * travels on "C0_0" to cell (0, 1) so that every entry is observable
 * as a received message.
 */
std::vector<double>
extractMatMulResult(const Program& program,
                    const std::vector<std::vector<double>>& received,
                    const MatMulSpec& spec);

} // namespace syscomm::algos
