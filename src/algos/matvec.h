#pragma once

/**
 * @file
 * Dense matrix-vector product y = A x on a linear array with
 * column-stationary data: cell j receives x[j] once (a one-word,
 * multi-hop message from the host), then the partial-sum stream folds
 * left to right, each cell adding A[i][j] * x[j]. The many single-word
 * multi-hop messages make this the heaviest queue-assignment workload
 * of the bundled algorithms.
 */

#include <vector>

#include "core/program.h"
#include "core/topology.h"

namespace syscomm::algos {

/** Parameters of a matrix-vector instance. */
struct MatVecSpec
{
    int rows = 3;
    int cols = 3;
    /** Row-major rows x cols matrix. */
    std::vector<double> a;
    /** cols-long input vector. */
    std::vector<double> x;

    static MatVecSpec random(int rows, int cols, std::uint64_t seed);

    double at(int r, int c) const { return a[r * cols + c]; }
};

/** Host + one cell per column. */
Topology matvecTopology(const MatVecSpec& spec);

/** Build the program. */
Program makeMatVecProgram(const MatVecSpec& spec);

/** Direct reference product. */
std::vector<double> matvecReference(const MatVecSpec& spec);

} // namespace syscomm::algos
