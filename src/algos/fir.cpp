#include "algos/fir.h"

#include <cassert>
#include <random>

namespace syscomm::algos {

FirSpec
FirSpec::paperExample()
{
    FirSpec spec;
    spec.taps = 3;
    spec.outputs = 2;
    spec.weights = {3.0, 5.0, 7.0};
    spec.inputs = {1.0, 2.0, 3.0, 4.0};
    return spec;
}

FirSpec
FirSpec::random(int taps, int outputs, std::uint64_t seed)
{
    FirSpec spec;
    spec.taps = taps;
    spec.outputs = outputs;
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-4.0, 4.0);
    for (int t = 0; t < taps; ++t)
        spec.weights.push_back(dist(rng));
    for (int j = 0; j < outputs + taps - 1; ++j)
        spec.inputs.push_back(dist(rng));
    return spec;
}

Topology
firTopology(int taps)
{
    return Topology::linearArray(taps + 1);
}

std::vector<double>
firReference(const FirSpec& spec)
{
    assert(static_cast<int>(spec.weights.size()) == spec.taps);
    assert(static_cast<int>(spec.inputs.size()) ==
           spec.outputs + spec.taps - 1);
    std::vector<double> out(spec.outputs, 0.0);
    for (int j = 0; j < spec.outputs; ++j) {
        for (int t = 0; t < spec.taps; ++t)
            out[j] += spec.weights[t] * spec.inputs[j + t];
    }
    return out;
}

std::string
firHostOutputMessage()
{
    return "Y1";
}

Program
makeFirProgram(const FirSpec& spec)
{
    int k = spec.taps;
    int n = spec.outputs;
    assert(k >= 1 && n >= 1);
    assert(static_cast<int>(spec.weights.size()) == k);
    assert(static_cast<int>(spec.inputs.size()) == n + k - 1);

    Program program(k + 1);

    // X_i: cell i-1 -> cell i (the host is cell 0), n + k - i words.
    // Y_i: cell i -> cell i-1, n words.
    std::vector<MessageId> x(k + 1, kInvalidMessage);
    std::vector<MessageId> y(k + 1, kInvalidMessage);
    for (int i = 1; i <= k; ++i) {
        x[i] = program.declareMessage("X" + std::to_string(i), i - 1, i);
        y[i] = program.declareMessage("Y" + std::to_string(i), i, i - 1);
    }

    // Host (cell 0): emit the first k samples, then alternate reading a
    // result with emitting the next sample (Fig. 2's host column).
    for (int j = 0; j < k; ++j) {
        double sample = spec.inputs[j];
        program.compute(0, [sample](CellContext& ctx) {
            ctx.setNextWrite(sample);
        });
        program.write(0, x[1]);
    }
    for (int j = 0; j < n; ++j) {
        program.read(0, y[1]);
        int next = k + j;
        if (next < n + k - 1) {
            double sample = spec.inputs[next];
            program.compute(0, [sample](CellContext& ctx) {
                ctx.setNextWrite(sample);
            });
            program.write(0, x[1]);
        }
    }

    // Interior cells 1..k-1: forward x, fold the partial y coming from
    // the right. Cell i holds weight w[k-i] and applies it to x[j]
    // while folding y[j - (k - i)].
    for (int i = 1; i < k; ++i) {
        double w = spec.weights[k - i];
        int len = n + k - i; // words of X_i
        for (int j = 0; j < len; ++j) {
            program.read(i, x[i]);
            // Stash the sample: the next read would overwrite it.
            program.compute(i, [](CellContext& ctx) {
                ctx.local(0) = ctx.lastRead();
            });
            // Fold the partial result from the right *before*
            // forwarding the sample — Fig. 2's order. The reverse
            // order creates facing writes with the downstream cell
            // (the P2 pattern of Fig. 5) and deadlocks.
            int jy = j - (k - i); // y index this sample contributes to
            bool active = jy >= 0 && jy < n;
            if (active) {
                program.read(i, y[i + 1]);
                program.compute(i, [w](CellContext& ctx) {
                    ctx.local(1) = ctx.lastRead() + w * ctx.local(0);
                });
            }
            if (j < len - 1) {
                // Forward the sample (X_{i+1} is one word shorter).
                program.compute(i, [](CellContext& ctx) {
                    ctx.setNextWrite(ctx.local(0));
                });
                program.write(i, x[i + 1]);
            }
            if (active) {
                program.compute(i, [](CellContext& ctx) {
                    ctx.setNextWrite(ctx.local(1));
                });
                program.write(i, y[i]);
            }
        }
    }

    // Last cell k: starts each partial result with w[0] * x[j].
    {
        double w0 = spec.weights[0];
        for (int j = 0; j < n; ++j) {
            program.read(k, x[k]);
            program.compute(k, [w0](CellContext& ctx) {
                ctx.setNextWrite(w0 * ctx.lastRead());
            });
            program.write(k, y[k]);
        }
    }

    return program;
}

} // namespace syscomm::algos
