#pragma once

/**
 * @file
 * Convolution with stationary results on a linear array.
 *
 * A different systolic design point from the FIR pipeline of Fig. 2:
 * one cell per output. The sample stream flows through the array; each
 * cell accumulates its own output locally and, when done, sends the
 * single result word back to the host. The result messages are
 * multi-hop and compete with the sample stream for queues, which makes
 * this a good labeling workload.
 *
 *     y[i] = sum_{t=0..k-1} g[t] * x[i+t]      (0-based)
 */

#include <vector>

#include "core/program.h"
#include "core/topology.h"

namespace syscomm::algos {

/** Parameters of a convolution instance. */
struct ConvSpec
{
    /** Kernel; k = kernel.size(). */
    std::vector<double> kernel;
    /** Number of outputs; needs outputs + k - 1 input samples. */
    int outputs = 4;
    std::vector<double> inputs;

    static ConvSpec random(int kernel_size, int outputs,
                           std::uint64_t seed);
};

/** Host + one cell per output. */
Topology convTopology(const ConvSpec& spec);

/** Build the stationary-result convolution program. */
Program makeConvolutionProgram(const ConvSpec& spec);

/** Direct reference outputs. */
std::vector<double> convReference(const ConvSpec& spec);

} // namespace syscomm::algos
