#pragma once

/**
 * @file
 * Parameterized multi-stream traffic generators for benchmarks and
 * stress tests. Each pattern generalizes one of the paper's
 * queue-contention scenarios:
 *
 *  - kSequential: one sender, one receiver, streams back to back
 *    (distinct ascending labels; queues reused serially).
 *  - kInterleaved: one sender, one receiver, words round-robin across
 *    streams (the streams become related and share one label, needing
 *    as many queues as streams — Fig. 8/9 combined).
 *  - kFanIn: one sender per stream, a single receiver reading
 *    round-robin (Fig. 8 generalized).
 *  - kFanOut: a single sender writing round-robin, one receiver per
 *    stream (Fig. 9 generalized).
 */

#include <cstdint>

#include "core/program.h"
#include "core/topology.h"

namespace syscomm::algos {

/** Traffic shape. */
enum class StreamPattern : std::uint8_t
{
    kSequential = 0,
    kInterleaved,
    kFanIn,
    kFanOut,
};

const char* streamPatternName(StreamPattern pattern);

/** Parameters of a stream workload. */
struct StreamSpec
{
    /** Linear array size (>= 2; fan patterns need numStreams + 1). */
    int numCells = 4;
    int numStreams = 2;
    int wordsPerStream = 4;
    StreamPattern pattern = StreamPattern::kSequential;
};

Topology streamsTopology(const StreamSpec& spec);

/** Build the traffic program (stream s is message "S<s>"). */
Program makeStreamsProgram(const StreamSpec& spec);

/**
 * A relay pipeline for the Fig. 1 model comparison: every interior
 * cell explicitly reads each word and writes it onward (one R and one
 * W per word per cell — the "update a data item flowing through the
 * array" pattern), rather than letting the queue network forward
 * transparently. Message "H<c>" covers the hop into cell c.
 */
Program makeRelayPipeline(int cells, int words);

} // namespace syscomm::algos
