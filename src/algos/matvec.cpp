#include "algos/matvec.h"

#include <cassert>
#include <random>

namespace syscomm::algos {

MatVecSpec
MatVecSpec::random(int rows, int cols, std::uint64_t seed)
{
    MatVecSpec spec;
    spec.rows = rows;
    spec.cols = cols;
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-2.0, 2.0);
    for (int i = 0; i < rows * cols; ++i)
        spec.a.push_back(dist(rng));
    for (int j = 0; j < cols; ++j)
        spec.x.push_back(dist(rng));
    return spec;
}

Topology
matvecTopology(const MatVecSpec& spec)
{
    return Topology::linearArray(spec.cols + 1);
}

std::vector<double>
matvecReference(const MatVecSpec& spec)
{
    std::vector<double> y(spec.rows, 0.0);
    for (int i = 0; i < spec.rows; ++i) {
        for (int j = 0; j < spec.cols; ++j)
            y[i] += spec.at(i, j) * spec.x[j];
    }
    return y;
}

Program
makeMatVecProgram(const MatVecSpec& spec)
{
    int m = spec.rows;
    int n = spec.cols;
    assert(m >= 1 && n >= 1);
    assert(static_cast<int>(spec.a.size()) == m * n);
    assert(static_cast<int>(spec.x.size()) == n);

    Program program(n + 1);

    // X_j: one word, host -> cell j (multi-hop for j > 1).
    // P_j: m partial sums, cell j -> cell j+1 (P_n returns to host).
    std::vector<MessageId> xv(n + 1, kInvalidMessage);
    std::vector<MessageId> pv(n + 1, kInvalidMessage);
    for (int j = 1; j <= n; ++j)
        xv[j] = program.declareMessage("X" + std::to_string(j), 0, j);
    for (int j = 1; j <= n; ++j) {
        CellId to = (j == n) ? 0 : j + 1;
        pv[j] = program.declareMessage("P" + std::to_string(j), j, to);
    }

    // Host: distribute the vector, then collect the m results.
    for (int j = 1; j <= n; ++j) {
        double value = spec.x[j - 1];
        program.compute(0, [value](CellContext& ctx) {
            ctx.setNextWrite(value);
        });
        program.write(0, xv[j]);
    }
    for (int i = 0; i < m; ++i)
        program.read(0, pv[n]);

    // Cell j: latch x[j], then fold its column into the partial-sum
    // stream (cell 1 originates the stream).
    for (int j = 1; j <= n; ++j) {
        program.read(j, xv[j]);
        program.compute(j, [](CellContext& ctx) {
            ctx.local(0) = ctx.lastRead();
        });
        for (int i = 0; i < m; ++i) {
            double aij = spec.at(i, j - 1);
            if (j == 1) {
                program.compute(j, [aij](CellContext& ctx) {
                    ctx.setNextWrite(aij * ctx.local(0));
                });
            } else {
                program.read(j, pv[j - 1]);
                program.compute(j, [aij](CellContext& ctx) {
                    ctx.setNextWrite(ctx.lastRead() +
                                     aij * ctx.local(0));
                });
            }
            program.write(j, pv[j]);
        }
    }

    return program;
}

} // namespace syscomm::algos
