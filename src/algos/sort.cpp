#include "algos/sort.h"

#include <algorithm>
#include <cassert>
#include <random>

namespace syscomm::algos {

SortSpec
SortSpec::random(int n, std::uint64_t seed)
{
    SortSpec spec;
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-100.0, 100.0);
    for (int i = 0; i < n; ++i)
        spec.values.push_back(dist(rng));
    return spec;
}

Topology
sortTopology(const SortSpec& spec)
{
    return Topology::linearArray(static_cast<int>(spec.values.size()));
}

Program
makeSortProgram(const SortSpec& spec)
{
    int n = static_cast<int>(spec.values.size());
    assert(n >= 2);
    Program program(n);

    // Load each cell's value into local(0).
    for (int i = 0; i < n; ++i) {
        double v = spec.values[i];
        program.compute(i, [v](CellContext& ctx) { ctx.local(0) = v; });
    }

    // n rounds; round r exchanges pairs (i, i+1) with i % 2 == r % 2.
    for (int round = 0; round < n; ++round) {
        for (int i = round % 2; i + 1 < n; i += 2) {
            std::string tag =
                std::to_string(round) + "_" + std::to_string(i);
            MessageId to_right =
                program.declareMessage("E" + tag, i, i + 1);
            MessageId to_left =
                program.declareMessage("F" + tag, i + 1, i);

            // Left cell: send, receive, keep the minimum.
            program.compute(i, [](CellContext& ctx) {
                ctx.setNextWrite(ctx.local(0));
            });
            program.write(i, to_right);
            program.read(i, to_left);
            program.compute(i, [](CellContext& ctx) {
                ctx.local(0) = std::min(ctx.local(0), ctx.lastRead());
            });

            // Right cell: receive, send, keep the maximum.
            program.read(i + 1, to_right);
            program.compute(i + 1, [](CellContext& ctx) {
                ctx.local(1) = ctx.lastRead();
            });
            program.compute(i + 1, [](CellContext& ctx) {
                ctx.setNextWrite(ctx.local(0));
            });
            program.write(i + 1, to_left);
            program.compute(i + 1, [](CellContext& ctx) {
                ctx.local(0) = std::max(ctx.local(0), ctx.local(1));
            });
        }
    }

    // Drain: cell i >= 1 ships its value to cell 0; cell 0 echoes its
    // own minimum to cell 1 so every slot is observable.
    std::vector<MessageId> drain(n, kInvalidMessage);
    drain[0] = program.declareMessage("D0", 0, 1);
    for (int i = 1; i < n; ++i)
        drain[i] = program.declareMessage("D" + std::to_string(i), i, 0);

    auto stage_value = [](CellContext& ctx) {
        ctx.setNextWrite(ctx.local(0));
    };
    // Cell 0's echo goes out first, and cell 1 absorbs it before
    // draining its own value; otherwise W(D0)/W(D1) would face each
    // other like program P2 of Fig. 5.
    program.compute(0, stage_value);
    program.write(0, drain[0]);
    program.read(1, drain[0]);
    for (int i = 1; i < n; ++i) {
        program.compute(i, stage_value);
        program.write(i, drain[i]);
    }
    for (int i = 1; i < n; ++i)
        program.read(0, drain[i]);

    return program;
}

std::vector<double>
extractSorted(const Program& program,
              const std::vector<std::vector<double>>& received, int n)
{
    std::vector<double> out;
    for (int i = 0; i < n; ++i) {
        auto id = program.messageByName("D" + std::to_string(i));
        assert(id.has_value());
        assert(received[*id].size() == 1);
        out.push_back(received[*id][0]);
    }
    return out;
}

} // namespace syscomm::algos
