#pragma once

/**
 * @file
 * Odd-even transposition sort on a linear array: n cells, n rounds of
 * neighbor exchanges. Every exchange is a pair of one-word messages in
 * opposite directions over the same link, ordered so the program stays
 * deadlock-free (the left cell writes before it reads; the right cell
 * reads before it writes). After sorting, cells drain their values to
 * cell 0 so the result is observable.
 */

#include <vector>

#include "core/program.h"
#include "core/topology.h"

namespace syscomm::algos {

/** Parameters of a sort instance. */
struct SortSpec
{
    /** Values to sort; one cell per value (at least 2). */
    std::vector<double> values;

    static SortSpec random(int n, std::uint64_t seed);
};

Topology sortTopology(const SortSpec& spec);

/** Build the odd-even transposition sort program. */
Program makeSortProgram(const SortSpec& spec);

/**
 * Extract the sorted sequence from a finished run. Cell 0 keeps the
 * minimum locally, so it also echoes it on message "D0" to cell 1;
 * cells i >= 1 send "D<i>" to cell 0.
 */
std::vector<double>
extractSorted(const Program& program,
              const std::vector<std::vector<double>>& received, int n);

} // namespace syscomm::algos
