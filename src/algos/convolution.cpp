#include "algos/convolution.h"

#include <cassert>
#include <random>

namespace syscomm::algos {

ConvSpec
ConvSpec::random(int kernel_size, int outputs, std::uint64_t seed)
{
    ConvSpec spec;
    spec.outputs = outputs;
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-3.0, 3.0);
    for (int t = 0; t < kernel_size; ++t)
        spec.kernel.push_back(dist(rng));
    for (int j = 0; j < outputs + kernel_size - 1; ++j)
        spec.inputs.push_back(dist(rng));
    return spec;
}

Topology
convTopology(const ConvSpec& spec)
{
    return Topology::linearArray(spec.outputs + 1);
}

std::vector<double>
convReference(const ConvSpec& spec)
{
    int k = static_cast<int>(spec.kernel.size());
    std::vector<double> out(spec.outputs, 0.0);
    for (int i = 0; i < spec.outputs; ++i) {
        for (int t = 0; t < k; ++t)
            out[i] += spec.kernel[t] * spec.inputs[i + t];
    }
    return out;
}

Program
makeConvolutionProgram(const ConvSpec& spec)
{
    int k = static_cast<int>(spec.kernel.size());
    int n = spec.outputs;
    int samples = n + k - 1;
    assert(k >= 1 && n >= 1);
    assert(static_cast<int>(spec.inputs.size()) == samples);

    Program program(n + 1);

    // X_i: sample stream hop cell i-1 -> cell i; cell i sees samples
    // x[i-1 .. samples-1] (earlier samples are consumed upstream).
    // R_i: the one-word result message cell i -> host (multi-hop).
    std::vector<MessageId> x(n + 1, kInvalidMessage);
    std::vector<MessageId> res(n + 1, kInvalidMessage);
    for (int i = 1; i <= n; ++i) {
        x[i] = program.declareMessage("X" + std::to_string(i), i - 1, i);
        res[i] = program.declareMessage("R" + std::to_string(i), i, 0);
    }

    // Host: emit every sample, then collect results in cell order.
    for (int j = 0; j < samples; ++j) {
        double sample = spec.inputs[j];
        program.compute(0, [sample](CellContext& ctx) {
            ctx.setNextWrite(sample);
        });
        program.write(0, x[1]);
    }
    for (int i = 1; i <= n; ++i)
        program.read(0, res[i]);

    // Cell i consumes its window of k samples (accumulating), forwards
    // what downstream cells still need, then emits its result.
    for (int i = 1; i <= n; ++i) {
        int stream_len = samples - (i - 1); // words of X_i
        for (int j = 0; j < stream_len; ++j) {
            program.read(i, x[i]);
            program.compute(i, [](CellContext& ctx) {
                ctx.local(0) = ctx.lastRead();
            });
            if (j < k) {
                // Sample x[(i-1) + j] contributes kernel[j] to y[i-1].
                double g = spec.kernel[j];
                program.compute(i, [g](CellContext& ctx) {
                    ctx.local(1) += g * ctx.local(0);
                });
            }
            if (i < n && j >= 1) {
                // Downstream cells need samples from x[i] onward.
                program.compute(i, [](CellContext& ctx) {
                    ctx.setNextWrite(ctx.local(0));
                });
                program.write(i, x[i + 1]);
            }
        }
        program.compute(i, [](CellContext& ctx) {
            ctx.setNextWrite(ctx.local(1));
        });
        program.write(i, res[i]);
    }

    return program;
}

} // namespace syscomm::algos
