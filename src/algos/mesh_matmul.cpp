#include "algos/mesh_matmul.h"

#include <cassert>
#include <random>

namespace syscomm::algos {

MatMulSpec
MatMulSpec::random(int n, int k, std::uint64_t seed)
{
    MatMulSpec spec;
    spec.n = n;
    spec.k = k;
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-2.0, 2.0);
    for (int i = 0; i < n * k; ++i)
        spec.a.push_back(dist(rng));
    for (int i = 0; i < k * n; ++i)
        spec.b.push_back(dist(rng));
    return spec;
}

Topology
matmulTopology(const MatMulSpec& spec)
{
    return Topology::mesh(spec.n, spec.n);
}

std::vector<double>
matmulReference(const MatMulSpec& spec)
{
    int n = spec.n;
    std::vector<double> c(n * n, 0.0);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            for (int t = 0; t < spec.k; ++t)
                c[i * n + j] += spec.aAt(i, t) * spec.bAt(t, j);
        }
    }
    return c;
}

Program
makeMatMulProgram(const MatMulSpec& spec)
{
    int n = spec.n;
    int k = spec.k;
    assert(n >= 2 && k >= 1);

    Program program(n * n);
    auto cell = [n](int i, int j) { return i * n + j; };

    // A<i>_<j>: the row-i A stream hop (i, j-1) -> (i, j), k words.
    // B<i>_<j>: the column-j B stream hop (i-1, j) -> (i, j), k words.
    // C<i>_<j>: one-word result (i, j) -> (0, 0)  [C0_0 -> (0, 1)].
    std::vector<MessageId> a_in(n * n, kInvalidMessage);
    std::vector<MessageId> b_in(n * n, kInvalidMessage);
    std::vector<MessageId> c_out(n * n, kInvalidMessage);
    for (int i = 0; i < n; ++i) {
        for (int j = 1; j < n; ++j) {
            a_in[cell(i, j)] = program.declareMessage(
                "A" + std::to_string(i) + "_" + std::to_string(j),
                cell(i, j - 1), cell(i, j));
        }
    }
    for (int i = 1; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            b_in[cell(i, j)] = program.declareMessage(
                "B" + std::to_string(i) + "_" + std::to_string(j),
                cell(i - 1, j), cell(i, j));
        }
    }
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            CellId to = (i == 0 && j == 0) ? cell(0, 1) : cell(0, 0);
            c_out[cell(i, j)] = program.declareMessage(
                "C" + std::to_string(i) + "_" + std::to_string(j),
                cell(i, j), to);
        }
    }

    // Streaming phase: for each t, obtain a word of A and B (generate
    // at the edges, read from the neighbor elsewhere), forward them,
    // and accumulate. local(0) = a word, local(1) = b word,
    // local(2) = accumulator.
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            CellId me = cell(i, j);
            for (int t = 0; t < k; ++t) {
                if (j == 0) {
                    double av = spec.aAt(i, t);
                    program.compute(me, [av](CellContext& ctx) {
                        ctx.local(0) = av;
                    });
                } else {
                    program.read(me, a_in[me]);
                    program.compute(me, [](CellContext& ctx) {
                        ctx.local(0) = ctx.lastRead();
                    });
                }
                if (j + 1 < n) {
                    program.compute(me, [](CellContext& ctx) {
                        ctx.setNextWrite(ctx.local(0));
                    });
                    program.write(me, a_in[cell(i, j + 1)]);
                }
                if (i == 0) {
                    double bv = spec.bAt(t, j);
                    program.compute(me, [bv](CellContext& ctx) {
                        ctx.local(1) = bv;
                    });
                } else {
                    program.read(me, b_in[me]);
                    program.compute(me, [](CellContext& ctx) {
                        ctx.local(1) = ctx.lastRead();
                    });
                }
                if (i + 1 < n) {
                    program.compute(me, [](CellContext& ctx) {
                        ctx.setNextWrite(ctx.local(1));
                    });
                    program.write(me, b_in[cell(i + 1, j)]);
                }
                program.compute(me, [](CellContext& ctx) {
                    ctx.local(2) += ctx.local(0) * ctx.local(1);
                });
            }
        }
    }

    // Drain phase: every cell emits its accumulated entry; (0, 0)
    // collects them row-major, then (0, 1) absorbs (0, 0)'s entry last.
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            CellId me = cell(i, j);
            if (i == 0 && j == 1) {
                // (0, 1) must absorb the collector's entry before
                // emitting its own, or the two writes face each other
                // like program P2 of Fig. 5.
                program.read(me, c_out[cell(0, 0)]);
            }
            program.compute(me, [](CellContext& ctx) {
                ctx.setNextWrite(ctx.local(2));
            });
            program.write(me, c_out[me]);
        }
    }
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            if (i == 0 && j == 0)
                continue;
            program.read(cell(0, 0), c_out[cell(i, j)]);
        }
    }

    return program;
}

std::vector<double>
extractMatMulResult(const Program& program,
                    const std::vector<std::vector<double>>& received,
                    const MatMulSpec& spec)
{
    int n = spec.n;
    std::vector<double> c(n * n, 0.0);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            auto id = program.messageByName("C" + std::to_string(i) + "_" +
                                            std::to_string(j));
            assert(id.has_value());
            assert(received[*id].size() == 1);
            c[i * n + j] = received[*id][0];
        }
    }
    return c;
}

} // namespace syscomm::algos
