#pragma once

/**
 * @file
 * Program pretty-printers: the textual format (round-trips through the
 * parser) and a Fig. 2-style side-by-side column rendering.
 */

#include <string>

#include "core/program.h"
#include "core/rational.h"

namespace syscomm::text {

/** Emit the parseProgram() textual format. */
std::string printProgram(const Program& program);

/**
 * Render the per-cell programs side by side, one op per row, in the
 * style of the paper's figures.
 */
std::string renderColumns(const Program& program);

/** renderColumns() plus a label line, e.g. for compile reports. */
std::string renderColumnsWithLabels(const Program& program,
                                    const std::vector<Rational>& labels);

} // namespace syscomm::text
