#include "text/parser.h"

#include <cctype>
#include <optional>
#include <vector>

namespace syscomm::text {

namespace {

/** Whitespace/comment-aware tokenizer with line tracking. */
class Lexer
{
  public:
    explicit Lexer(std::string_view src) : src_(src) {}

    /** Next token, or empty at end of input. */
    std::string
    next()
    {
        skipSpace();
        if (pos_ >= src_.size())
            return "";
        std::size_t start = pos_;
        char c = src_[pos_];
        if (c == '{' || c == '}') {
            ++pos_;
            return std::string(1, c);
        }
        while (pos_ < src_.size() && !std::isspace(uc(src_[pos_])) &&
               src_[pos_] != '{' && src_[pos_] != '}' && src_[pos_] != '#') {
            ++pos_;
        }
        return std::string(src_.substr(start, pos_ - start));
    }

    int line() const { return line_; }

  private:
    static unsigned char uc(char c) { return static_cast<unsigned char>(c); }

    void
    skipSpace()
    {
        while (pos_ < src_.size()) {
            char c = src_[pos_];
            if (c == '#') {
                while (pos_ < src_.size() && src_[pos_] != '\n')
                    ++pos_;
            } else if (std::isspace(uc(c))) {
                if (c == '\n')
                    ++line_;
                ++pos_;
            } else {
                break;
            }
        }
    }

    std::string_view src_;
    std::size_t pos_ = 0;
    int line_ = 1;
};

std::optional<int>
parseInt(const std::string& token)
{
    if (token.empty())
        return std::nullopt;
    std::size_t i = token[0] == '-' ? 1 : 0;
    if (i >= token.size())
        return std::nullopt;
    for (; i < token.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(token[i])))
            return std::nullopt;
    }
    return std::stoi(token);
}

/** "W(NAME)" / "R(NAME)" -> (kind, NAME). */
std::optional<std::pair<char, std::string>>
parseOpToken(const std::string& token)
{
    if (token.size() < 4)
        return std::nullopt;
    char kind = token[0];
    if ((kind != 'W' && kind != 'R') || token[1] != '(' ||
        token.back() != ')') {
        return std::nullopt;
    }
    return std::make_pair(kind, token.substr(2, token.size() - 3));
}

} // namespace

ParseResult
parseProgram(std::string_view source)
{
    ParseResult result;
    Lexer lex(source);

    auto fail = [&](const std::string& msg) {
        result.ok = false;
        result.error = "line " + std::to_string(lex.line()) + ": " + msg;
        return result;
    };

    // Collected declarations; the Program is built once 'cells' is known.
    int num_cells = -1;
    std::optional<Program> program;

    auto ensureProgram = [&]() -> bool { return program.has_value(); };

    while (true) {
        std::string token = lex.next();
        if (token.empty())
            break;

        if (token == "cells") {
            auto n = parseInt(lex.next());
            if (!n || *n < 1)
                return fail("'cells' needs a positive integer");
            if (program)
                return fail("duplicate 'cells' directive");
            num_cells = *n;
            program.emplace(num_cells);
        } else if (token == "message") {
            if (!ensureProgram())
                return fail("'message' before 'cells'");
            std::string name = lex.next();
            if (name.empty())
                return fail("'message' needs a name");
            auto sender = parseInt(lex.next());
            std::string arrow = lex.next();
            auto receiver = parseInt(lex.next());
            if (!sender || arrow != "->" || !receiver)
                return fail("expected 'message NAME sender -> receiver'");
            if (program->messageByName(name))
                return fail("duplicate message '" + name + "'");
            if (*sender < 0 || *sender >= num_cells || *receiver < 0 ||
                *receiver >= num_cells) {
                return fail("message '" + name + "' endpoint out of range");
            }
            program->declareMessage(name, *sender, *receiver);
        } else if (token == "cell") {
            if (!ensureProgram())
                return fail("'cell' before 'cells'");
            auto id = parseInt(lex.next());
            if (!id || *id < 0 || *id >= num_cells)
                return fail("bad cell id");
            if (lex.next() != "{")
                return fail("expected '{' after cell id");
            while (true) {
                std::string op = lex.next();
                if (op.empty())
                    return fail("unterminated cell block");
                if (op == "}")
                    break;
                if (op == "C") {
                    program->compute(*id, ComputeFn{});
                    continue;
                }
                auto parsed = parseOpToken(op);
                if (!parsed)
                    return fail("bad op token '" + op + "'");
                auto msg = program->messageByName(parsed->second);
                if (!msg)
                    return fail("unknown message '" + parsed->second + "'");
                if (parsed->first == 'W')
                    program->write(*id, *msg);
                else
                    program->read(*id, *msg);
            }
        } else {
            return fail("unexpected token '" + token + "'");
        }
    }

    if (!program)
        return fail("missing 'cells' directive");
    result.program = std::move(*program);
    result.ok = true;
    return result;
}

} // namespace syscomm::text
