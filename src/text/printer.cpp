#include "text/printer.h"

#include <algorithm>
#include <sstream>

namespace syscomm::text {

namespace {

std::string
opToken(const Program& program, const Op& op)
{
    if (op.isCompute())
        return "C";
    return std::string(op.isWrite() ? "W(" : "R(") +
           program.message(op.msg).name + ")";
}

} // namespace

std::string
printProgram(const Program& program)
{
    std::ostringstream os;
    os << "cells " << program.numCells() << "\n";
    for (const MessageDecl& m : program.messages()) {
        os << "message " << m.name << " " << m.sender << " -> "
           << m.receiver << "\n";
    }
    for (CellId cell = 0; cell < program.numCells(); ++cell) {
        const auto& ops = program.cellOps(cell);
        if (ops.empty())
            continue;
        os << "cell " << cell << " {";
        for (const Op& op : ops)
            os << " " << opToken(program, op);
        os << " }\n";
    }
    return os.str();
}

std::string
renderColumns(const Program& program)
{
    int width = 12;
    std::size_t rows = 0;
    for (CellId c = 0; c < program.numCells(); ++c)
        rows = std::max(rows, program.cellOps(c).size());

    std::ostringstream os;
    for (CellId c = 0; c < program.numCells(); ++c) {
        std::string head = "cell " + std::to_string(c);
        os << head << std::string(width - head.size(), ' ');
    }
    os << "\n";
    for (std::size_t row = 0; row < rows; ++row) {
        for (CellId c = 0; c < program.numCells(); ++c) {
            const auto& ops = program.cellOps(c);
            std::string tok =
                row < ops.size() ? opToken(program, ops[row]) : "";
            if (static_cast<int>(tok.size()) < width)
                tok += std::string(width - tok.size(), ' ');
            os << tok;
        }
        os << "\n";
    }
    return os.str();
}

std::string
renderColumnsWithLabels(const Program& program,
                        const std::vector<Rational>& labels)
{
    std::ostringstream os;
    os << "messages:";
    for (const MessageDecl& m : program.messages()) {
        os << "  " << m.name << "(" << m.sender << "->" << m.receiver
           << ")=" << labels[m.id].str();
    }
    os << "\n" << renderColumns(program);
    return os.str();
}

} // namespace syscomm::text
