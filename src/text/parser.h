#pragma once

/**
 * @file
 * A small textual format for array programs, so examples, tools and
 * tests can state programs the way the paper's figures do.
 *
 * Grammar (comments run from '#' to end of line):
 *
 *     cells <N>
 *     message <NAME> <sender> -> <receiver>
 *     cell <id> { W(<NAME>) R(<NAME>) C ... }
 *
 * 'C' is an (empty) compute op. Cell blocks may span lines and may be
 * repeated; ops append in order.
 */

#include <string>
#include <string_view>

#include "core/program.h"

namespace syscomm::text {

/** Result of parsing. */
struct ParseResult
{
    bool ok = false;
    std::string error; ///< includes a line number
    Program program{1};
};

/** Parse a program from the textual format. */
ParseResult parseProgram(std::string_view source);

} // namespace syscomm::text
