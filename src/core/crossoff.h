#pragma once

/**
 * @file
 * The crossing-off procedure (paper, sections 3 and 8.1).
 *
 * A pair of operations W(X), R(X) is *executable* when both are at the
 * effective front of their cell programs. The procedure repeatedly
 * crosses executable pairs off; a program is **deadlock-free** iff
 * every R/W operation can be crossed off.
 *
 * With lookahead enabled (section 8.1), an operation may head a pair
 * even when it is not literally first, provided every uncrossed
 * operation before it is a *write* (rule R1) and, for each message M,
 * the number of uncrossed writes to M skipped this way does not exceed
 * the total buffering capacity of the queues M crosses (rule R2).
 */

#include <functional>
#include <string>
#include <vector>

#include "core/program.h"
#include "core/topology.h"
#include "core/types.h"

namespace syscomm {

/** Per-message bound on skipped writes (rule R2). */
using SkipBoundFn = std::function<int(MessageId)>;

/** No skipping at all: lookahead degenerates to the basic procedure. */
SkipBoundFn zeroSkipBound();

/** The same bound for every message. */
SkipBoundFn uniformSkipBound(int bound);

/** Effectively unlimited buffering (infinite queues thought experiment). */
SkipBoundFn unlimitedSkipBound();

/**
 * The paper's actual R2 bound: the total capacity of the queues the
 * message will cross, i.e. hops(route) * capacity_per_queue (each hop
 * holds one queue of the given capacity, including any memory-backed
 * extension).
 */
SkipBoundFn routeCapacitySkipBound(const Program& program,
                                   const Topology& topo,
                                   int capacity_per_queue);

/** Options controlling a crossing-off run. */
struct CrossOffOptions
{
    /** Enable section 8.1 lookahead. */
    bool lookahead = false;
    /** Rule R2 bound; only consulted when lookahead is true. */
    SkipBoundFn skip_bound;
};

/** One crossed-off executable pair. */
struct PairEvent
{
    MessageId msg = kInvalidMessage;
    /** Which word of the message this pair transfers (0-based). */
    int wordIndex = 0;
    /** Op index of the W in the sender's full program. */
    int senderPos = 0;
    /** Op index of the R in the receiver's full program. */
    int receiverPos = 0;
    /**
     * Distinct messages whose (uncrossed) writes were skipped while
     * locating this pair. Used by the modified labeling of section 8.2.
     */
    std::vector<MessageId> skippedMessages;
};

/** Outcome of a full crossing-off run. */
struct CrossOffResult
{
    /** True iff every transfer op was crossed off. */
    bool deadlockFree = false;
    /**
     * Greedy rounds, Fig. 4 style: round k contains every pair that was
     * executable at the start of step k+1.
     */
    std::vector<std::vector<PairEvent>> rounds;
    /** The same pairs flattened in crossing order. */
    std::vector<PairEvent> sequence;
    /** Number of transfer ops left uncrossed (0 when deadlock-free). */
    int remainingOps = 0;
    /**
     * For a deadlocked program: the first uncrossed op of each cell
     * that still has work, as (cell, op-index) pairs.
     */
    std::vector<std::pair<CellId, int>> stuckFronts;

    /** Human-readable stuck-state description (empty if deadlock-free). */
    std::string describeStuck(const Program& program) const;

    /** Fig. 4-style step listing: "step N: W(X)/R(X) ...". */
    std::string traceStr(const Program& program) const;
};

/**
 * Incremental crossing-off engine. The labeling scheme of section 6
 * drives this one pair at a time; the free function crossOff() runs it
 * greedily in rounds.
 */
class CrossOffEngine
{
  public:
    CrossOffEngine(const Program& program, CrossOffOptions options = {});

    /**
     * All currently executable pairs, in ascending message-id order
     * (one candidate pair per message: its first uncrossed W and R).
     */
    std::vector<PairEvent> executablePairs() const;

    /** Whether a specific message's next pair is executable now. */
    bool isExecutable(MessageId msg) const;

    /** Cross one pair off (must come from executablePairs()). */
    void crossOffPair(const PairEvent& pair);

    /** True when every transfer op has been crossed. */
    bool done() const { return crossed_count_ == total_transfers_; }

    int remainingOps() const { return total_transfers_ - crossed_count_; }

    /** Number of words of @p msg already crossed off. */
    int wordsCrossed(MessageId msg) const { return next_word_[msg]; }

    /**
     * True if the op at (cell, full-program index) has been crossed.
     * Compute ops count as always crossed.
     */
    bool isCrossed(CellId cell, int op_index) const;

    /**
     * Index (into the full program) of the first uncrossed transfer op
     * of @p cell, or -1 when the cell is finished.
     */
    int frontOp(CellId cell) const;

    /**
     * Messages with at least one op remaining in @p cell's uncrossed
     * suffix — "messages the cell will still read from or write to"
     * (used by labeling rule 1a/1b).
     */
    std::vector<MessageId> futureMessages(CellId cell) const;

    const Program& program() const { return program_; }

  private:
    struct CellState
    {
        /** Indices of transfer ops in the full program, in order. */
        std::vector<int> transferPos;
        /** Message of each transfer op. */
        std::vector<MessageId> transferMsg;
        /** Kind (true = write) of each transfer op. */
        std::vector<bool> isWrite;
        /** Crossed flags, parallel to transferPos. */
        std::vector<bool> crossed;
        /** First uncrossed index into transferPos (lazily advanced). */
        int front = 0;
    };

    /** Advance a cell's front pointer past crossed ops. */
    void advanceFront(CellState& cs) const;

    /**
     * Check rule R1/R2 for reaching transfer index @p target in
     * @p cell's list; fills @p skipped with distinct skipped messages.
     * In basic mode this requires target == front.
     */
    bool canReach(const CellState& cs, int target,
                  std::vector<MessageId>* skipped) const;

    const Program& program_;
    CrossOffOptions options_;
    std::vector<CellState> cells_;
    /** Per message: positions (index into CellState lists) of its W/R ops. */
    std::vector<std::vector<int>> write_slots_;
    std::vector<std::vector<int>> read_slots_;
    /** Per message: next word (pair) to cross. */
    std::vector<int> next_word_;
    int total_transfers_ = 0;
    int crossed_count_ = 0;
};

/**
 * Run the crossing-off procedure to completion, greedily crossing all
 * executable pairs each round (this reproduces the step structure of
 * Fig. 4). Pick order cannot change the verdict: crossing a pair never
 * disables another executable pair.
 */
CrossOffResult crossOff(const Program& program, CrossOffOptions options = {});

/** Convenience: is the program deadlock-free (basic procedure)? */
bool isDeadlockFree(const Program& program);

/** Convenience: deadlock-free with lookahead under the given bound? */
bool isDeadlockFreeWithLookahead(const Program& program, SkipBoundFn bound);

} // namespace syscomm
