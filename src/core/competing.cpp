#include "core/competing.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace syscomm {

CompetingAnalysis
CompetingAnalysis::analyze(const Program& program, const Topology& topo)
{
    CompetingAnalysis out;
    out.routes_.reserve(program.numMessages());
    out.on_link_.assign(topo.numLinks(), {});
    out.on_link_dir_.assign(topo.numLinks(), {});

    for (const MessageDecl& m : program.messages()) {
        Route route = computeRoute(topo, m.sender, m.receiver);
        for (const Hop& hop : route.hops) {
            out.on_link_[hop.link].push_back(m.id);
            out.on_link_dir_[hop.link][static_cast<int>(hop.dir)]
                .push_back(m.id);
        }
        out.routes_.push_back(std::move(route));
    }
    return out;
}

int
CompetingAnalysis::maxCompeting() const
{
    int best = 0;
    for (const auto& dirs : on_link_dir_) {
        for (const auto& msgs : dirs)
            best = std::max(best, static_cast<int>(msgs.size()));
    }
    return best;
}

int
CompetingAnalysis::maxOnLink() const
{
    int best = 0;
    for (const auto& msgs : on_link_)
        best = std::max(best, static_cast<int>(msgs.size()));
    return best;
}

Feasibility
checkStaticFeasibility(const CompetingAnalysis& analysis,
                       const MachineSpec& spec)
{
    Feasibility f;
    f.requiredQueuesPerLink = 0;
    for (LinkIndex link = 0; link < analysis.numLinks(); ++link) {
        int need = static_cast<int>(analysis.onLink(link).size());
        if (need > f.requiredQueuesPerLink) {
            f.requiredQueuesPerLink = need;
            f.worstLink = link;
        }
    }
    f.feasible = f.requiredQueuesPerLink <= spec.queuesPerLink;
    if (f.feasible) {
        f.reason = "every message can hold a dedicated queue";
    } else {
        f.reason = "link " + std::to_string(f.worstLink) + " carries " +
                   std::to_string(f.requiredQueuesPerLink) +
                   " messages but has only " +
                   std::to_string(spec.queuesPerLink) + " queues";
    }
    return f;
}

Feasibility
checkDynamicFeasibility(const CompetingAnalysis& analysis,
                        const std::vector<Rational>& labels,
                        const MachineSpec& spec)
{
    Feasibility f;
    f.requiredQueuesPerLink = 0;
    for (LinkIndex link = 0; link < analysis.numLinks(); ++link) {
        std::map<Rational, int> group_sizes;
        for (MessageId m : analysis.onLink(link))
            ++group_sizes[labels[m]];
        for (const auto& [label, size] : group_sizes) {
            if (size > f.requiredQueuesPerLink) {
                f.requiredQueuesPerLink = size;
                f.worstLink = link;
            }
        }
    }
    f.feasible = f.requiredQueuesPerLink <= spec.queuesPerLink;
    if (f.feasible) {
        f.reason = "every same-label group fits its link's queue pool";
    } else {
        f.reason = "link " + std::to_string(f.worstLink) + " has a " +
                   std::to_string(f.requiredQueuesPerLink) +
                   "-message same-label group but only " +
                   std::to_string(spec.queuesPerLink) + " queues";
    }
    return f;
}

} // namespace syscomm
