#include "core/related.h"

#include <algorithm>
#include <map>

namespace syscomm {

UnionFind
computeRelatedClasses(const Program& program)
{
    UnionFind uf(program.numMessages());

    // For each cell, find each pair of *consecutive* same-kind ops on
    // the same message; every other message with an op strictly between
    // them is related to it. (Consecutive pairs suffice: a gap between
    // non-consecutive ops decomposes into consecutive gaps, and the
    // relation is transitive.)
    for (CellId cell = 0; cell < program.numCells(); ++cell) {
        const std::vector<Op>& ops = program.cellOps(cell);
        // last seen position per (msg, kind): kind 0 = read, 1 = write.
        std::map<std::pair<MessageId, int>, int> last_seen;
        for (int pos = 0; pos < static_cast<int>(ops.size()); ++pos) {
            const Op& op = ops[pos];
            if (!op.isTransfer())
                continue;
            int kind = op.isWrite() ? 1 : 0;
            auto key = std::make_pair(op.msg, kind);
            auto it = last_seen.find(key);
            if (it != last_seen.end()) {
                // Everything strictly between it->second and pos is
                // related to op.msg.
                for (int i = it->second + 1; i < pos; ++i) {
                    if (ops[i].isTransfer() && ops[i].msg != op.msg)
                        uf.unite(op.msg, ops[i].msg);
                }
                it->second = pos;
            } else {
                last_seen.emplace(key, pos);
            }
        }
    }
    return uf;
}

std::vector<std::vector<MessageId>>
relatedGroups(const Program& program)
{
    UnionFind uf = computeRelatedClasses(program);
    std::map<int, std::vector<MessageId>> by_root;
    for (MessageId m = 0; m < program.numMessages(); ++m)
        by_root[uf.find(m)].push_back(m);

    std::vector<std::vector<MessageId>> groups;
    groups.reserve(by_root.size());
    for (auto& [root, members] : by_root) {
        std::sort(members.begin(), members.end());
        groups.push_back(std::move(members));
    }
    std::sort(groups.begin(), groups.end(),
              [](const auto& a, const auto& b) { return a[0] < b[0]; });
    return groups;
}

bool
areRelated(const Program& program, MessageId a, MessageId b)
{
    return computeRelatedClasses(program).same(a, b);
}

} // namespace syscomm
