#include "core/program.h"

#include <cassert>

namespace syscomm {

Program::Program(int num_cells) : num_cells_(num_cells)
{
    assert(num_cells >= 1);
    ops_.resize(num_cells);
}

MessageId
Program::declareMessage(std::string name, CellId sender, CellId receiver)
{
    MessageId id = static_cast<MessageId>(messages_.size());
    MessageDecl decl;
    decl.id = id;
    decl.name = std::move(name);
    decl.sender = sender;
    decl.receiver = receiver;
    by_name_.emplace(decl.name, id);
    messages_.push_back(std::move(decl));
    write_counts_.push_back(0);
    read_counts_.push_back(0);
    return id;
}

void
Program::read(CellId cell, MessageId msg)
{
    assert(cell >= 0 && cell < num_cells_);
    assert(msg >= 0 && msg < numMessages());
    ops_[cell].push_back(Op::read(msg));
    ++read_counts_[msg];
}

void
Program::write(CellId cell, MessageId msg)
{
    assert(cell >= 0 && cell < num_cells_);
    assert(msg >= 0 && msg < numMessages());
    ops_[cell].push_back(Op::write(msg));
    ++write_counts_[msg];
}

void
Program::compute(CellId cell, ComputeFn fn)
{
    assert(cell >= 0 && cell < num_cells_);
    std::int32_t id = static_cast<std::int32_t>(compute_fns_.size());
    compute_fns_.push_back(std::move(fn));
    ops_[cell].push_back(Op::compute(id));
}

std::optional<MessageId>
Program::messageByName(std::string_view name) const
{
    auto it = by_name_.find(std::string(name));
    if (it == by_name_.end())
        return std::nullopt;
    return it->second;
}

int
Program::totalOps() const
{
    int total = 0;
    for (const auto& cell_ops : ops_)
        total += static_cast<int>(cell_ops.size());
    return total;
}

int
Program::totalTransferOps() const
{
    int total = 0;
    for (const auto& cell_ops : ops_) {
        for (const Op& op : cell_ops) {
            if (op.isTransfer())
                ++total;
        }
    }
    return total;
}

std::vector<std::string>
Program::validate() const
{
    std::vector<std::string> issues;

    for (const MessageDecl& m : messages_) {
        if (m.name.empty())
            issues.push_back("message " + std::to_string(m.id) +
                             " has an empty name");
        if (m.sender == m.receiver) {
            issues.push_back("message " + m.name +
                             ": sender equals receiver (" +
                             std::to_string(m.sender) + ")");
        }
        if (m.sender < 0 || m.sender >= num_cells_) {
            issues.push_back("message " + m.name + ": sender " +
                             std::to_string(m.sender) + " out of range");
        }
        if (m.receiver < 0 || m.receiver >= num_cells_) {
            issues.push_back("message " + m.name + ": receiver " +
                             std::to_string(m.receiver) + " out of range");
        }
    }
    // Duplicate names: by_name_ keeps the first id, so a size mismatch
    // means at least one duplicate.
    if (by_name_.size() != messages_.size())
        issues.push_back("duplicate message names declared");

    // Op placement: W only at sender, R only at receiver.
    for (CellId cell = 0; cell < num_cells_; ++cell) {
        for (std::size_t i = 0; i < ops_[cell].size(); ++i) {
            const Op& op = ops_[cell][i];
            if (!op.isTransfer())
                continue;
            const MessageDecl& m = messages_[op.msg];
            if (op.isWrite() && m.sender != cell) {
                issues.push_back("cell " + std::to_string(cell) + " op " +
                                 std::to_string(i) + ": W(" + m.name +
                                 ") but sender is cell " +
                                 std::to_string(m.sender));
            }
            if (op.isRead() && m.receiver != cell) {
                issues.push_back("cell " + std::to_string(cell) + " op " +
                                 std::to_string(i) + ": R(" + m.name +
                                 ") but receiver is cell " +
                                 std::to_string(m.receiver));
            }
        }
    }

    // Word-count agreement and usage.
    for (const MessageDecl& m : messages_) {
        if (write_counts_[m.id] == 0 && read_counts_[m.id] == 0) {
            issues.push_back("message " + m.name +
                             " is declared but never used");
            continue;
        }
        if (write_counts_[m.id] != read_counts_[m.id]) {
            issues.push_back(
                "message " + m.name + ": " +
                std::to_string(write_counts_[m.id]) + " writes but " +
                std::to_string(read_counts_[m.id]) + " reads");
        }
    }
    return issues;
}

std::vector<std::string>
Program::validate(int topology_num_cells) const
{
    std::vector<std::string> issues = validate();
    if (topology_num_cells != num_cells_) {
        issues.push_back("program has " + std::to_string(num_cells_) +
                         " cells but topology has " +
                         std::to_string(topology_num_cells));
    }
    return issues;
}

} // namespace syscomm
