#include "core/rational.h"

#include <numeric>
#include <ostream>

namespace syscomm {

namespace {

std::int64_t
gcd64(std::int64_t a, std::int64_t b)
{
    if (a < 0)
        a = -a;
    if (b < 0)
        b = -b;
    return std::gcd(a, b);
}

/** Multiply with overflow assertion. */
std::int64_t
mulChecked(std::int64_t a, std::int64_t b)
{
    std::int64_t out = 0;
    [[maybe_unused]] bool overflow = __builtin_mul_overflow(a, b, &out);
    assert(!overflow && "rational label arithmetic overflowed");
    return out;
}

std::int64_t
addChecked(std::int64_t a, std::int64_t b)
{
    std::int64_t out = 0;
    [[maybe_unused]] bool overflow = __builtin_add_overflow(a, b, &out);
    assert(!overflow && "rational label arithmetic overflowed");
    return out;
}

} // namespace

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den)
{
    assert(den_ != 0 && "rational denominator must be nonzero");
    if (den_ < 0) {
        num_ = -num_;
        den_ = -den_;
    }
    std::int64_t g = gcd64(num_, den_);
    if (g > 1) {
        num_ /= g;
        den_ /= g;
    }
    if (num_ == 0)
        den_ = 1;
}

Rational
Rational::operator+(const Rational& o) const
{
    return Rational(addChecked(mulChecked(num_, o.den_),
                               mulChecked(o.num_, den_)),
                    mulChecked(den_, o.den_));
}

Rational
Rational::operator-(const Rational& o) const
{
    return *this + (-o);
}

Rational
Rational::operator*(const Rational& o) const
{
    return Rational(mulChecked(num_, o.num_), mulChecked(den_, o.den_));
}

Rational
Rational::operator/(const Rational& o) const
{
    assert(o.num_ != 0 && "rational division by zero");
    return Rational(mulChecked(num_, o.den_), mulChecked(den_, o.num_));
}

int
Rational::compare(const Rational& o) const
{
    // Compare num_/den_ vs o.num_/o.den_ via cross multiplication.
    std::int64_t lhs = mulChecked(num_, o.den_);
    std::int64_t rhs = mulChecked(o.num_, den_);
    return lhs < rhs ? -1 : (lhs > rhs ? 1 : 0);
}

Rational
Rational::midpoint(const Rational& a, const Rational& b)
{
    return (a + b) / Rational(2);
}

std::int64_t
Rational::nextInteger() const
{
    // floor(value) + 1.
    std::int64_t q = num_ / den_;
    std::int64_t r = num_ % den_;
    if (r < 0)
        --q;
    return q + 1;
}

std::string
Rational::str() const
{
    if (den_ == 1)
        return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream&
operator<<(std::ostream& os, const Rational& r)
{
    return os << r.str();
}

} // namespace syscomm
