#pragma once

/**
 * @file
 * Array topologies: the graph of cells and the links between adjacent
 * cells. Section 2 of the paper uses 1-D arrays in all examples but
 * states that the results apply to any interconnection topology; we
 * support linear arrays, rings, 2-D meshes, and custom graphs.
 */

#include <optional>
#include <string>
#include <vector>

#include "core/types.h"

namespace syscomm {

/** An undirected link between two adjacent cells (a < b after normalization). */
struct Link
{
    CellId a = kInvalidCell;
    CellId b = kInvalidCell;
};

/**
 * A static interconnection topology.
 *
 * Routing is deterministic: 2-D meshes use dimension-order (XY)
 * routing; every other topology uses breadth-first shortest paths with
 * smallest-neighbor tie-breaking, so a message's route — and therefore
 * the set of intervals it crosses — is a pure function of its sender
 * and receiver, as the paper assumes for minimum-length routes.
 */
class Topology
{
  public:
    /** An empty topology; assign one of the factory results. */
    Topology() = default;

    /** A linear array of @p num_cells cells: 0 - 1 - ... - n-1. */
    static Topology linearArray(int num_cells);

    /** A ring: 0 - 1 - ... - n-1 - 0. Requires num_cells >= 3. */
    static Topology ring(int num_cells);

    /**
     * A rows x cols mesh. Cell (r, c) has id r * cols + c; XY routing
     * (column first, then row) is used.
     */
    static Topology mesh(int rows, int cols);

    /**
     * A rows x cols torus (mesh plus wraparound links). Routed by BFS
     * shortest paths. Requires rows >= 3 and cols >= 3 so wrap links
     * are distinct from mesh links.
     */
    static Topology torus(int rows, int cols);

    /** An arbitrary connected graph over num_cells cells. */
    static Topology custom(int num_cells, std::vector<Link> links);

    int numCells() const { return num_cells_; }
    int numLinks() const { return static_cast<int>(links_.size()); }

    const Link& link(LinkIndex idx) const { return links_[idx]; }

    /** Index of the link between two adjacent cells, if any. */
    std::optional<LinkIndex> linkBetween(CellId x, CellId y) const;

    /** Neighboring cells of @p cell, ascending. */
    const std::vector<CellId>& neighbors(CellId cell) const
    {
        return adjacency_[cell];
    }

    /**
     * Deterministic minimum-length path from @p from to @p to, both
     * endpoints included. Empty if unreachable; {from} if from == to.
     */
    std::vector<CellId> routePath(CellId from, CellId to) const;

    /** True for topologies built by mesh(). */
    bool isMesh() const { return mesh_rows_ > 0; }
    int meshRows() const { return mesh_rows_; }
    int meshCols() const { return mesh_cols_; }

    /** Direction of travel when moving from @p from over link @p idx. */
    LinkDir directionFrom(LinkIndex idx, CellId from) const
    {
        return links_[idx].a == from ? LinkDir::kForward
                                     : LinkDir::kBackward;
    }

    /** Short description, e.g. "linear(4)" or "mesh(3x3)". */
    const std::string& name() const { return name_; }

  private:
    void finalize();

    int num_cells_ = 0;
    int mesh_rows_ = 0;
    int mesh_cols_ = 0;
    std::string name_;
    std::vector<Link> links_;
    std::vector<std::vector<CellId>> adjacency_;
    // Per-cell (neighbor, link index) pairs, sorted by neighbor —
    // linkBetween is a binary search over a cell's degree. O(cells +
    // links) memory, unlike the dense cells x cells matrix it
    // replaces, which capped arrays around 64k cells (a 100k-cell
    // linear array needed a 40 GB table).
    std::vector<std::vector<std::pair<CellId, LinkIndex>>> link_adj_;
};

} // namespace syscomm
