#pragma once

/**
 * @file
 * Array topologies: the graph of cells and the links between adjacent
 * cells. Section 2 of the paper uses 1-D arrays in all examples but
 * states that the results apply to any interconnection topology; we
 * support linear arrays, rings, 2-D meshes, and custom graphs.
 */

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/types.h"

namespace syscomm {

/** An undirected link between two adjacent cells (a < b after normalization). */
struct Link
{
    CellId a = kInvalidCell;
    CellId b = kInvalidCell;
};

/**
 * A static interconnection topology.
 *
 * Routing is deterministic: 2-D meshes use dimension-order (XY)
 * routing; every other topology uses breadth-first shortest paths with
 * smallest-neighbor tie-breaking, so a message's route — and therefore
 * the set of intervals it crosses — is a pure function of its sender
 * and receiver, as the paper assumes for minimum-length routes.
 */
class Topology
{
  public:
    /** An empty topology; assign one of the factory results. */
    Topology() = default;

    /** A linear array of @p num_cells cells: 0 - 1 - ... - n-1. */
    static Topology linearArray(int num_cells);

    /** A ring: 0 - 1 - ... - n-1 - 0. Requires num_cells >= 3. */
    static Topology ring(int num_cells);

    /**
     * A rows x cols mesh. Cell (r, c) has id r * cols + c; XY routing
     * (column first, then row) is used.
     */
    static Topology mesh(int rows, int cols);

    /**
     * A rows x cols torus (mesh plus wraparound links). Routed by BFS
     * shortest paths. Requires rows >= 3 and cols >= 3 so wrap links
     * are distinct from mesh links.
     */
    static Topology torus(int rows, int cols);

    /** An arbitrary connected graph over num_cells cells. */
    static Topology custom(int num_cells, std::vector<Link> links);

    int numCells() const { return num_cells_; }
    int numLinks() const { return static_cast<int>(links_.size()); }

    const Link& link(LinkIndex idx) const { return links_[idx]; }

    /** Index of the link between two adjacent cells, if any. */
    std::optional<LinkIndex> linkBetween(CellId x, CellId y) const;

    /** Neighboring cells of @p cell, ascending. */
    const std::vector<CellId>& neighbors(CellId cell) const
    {
        return adjacency_[cell];
    }

    /**
     * Deterministic minimum-length path from @p from to @p to, both
     * endpoints included. Empty if unreachable; {from} if from == to.
     */
    std::vector<CellId> routePath(CellId from, CellId to) const;

    /** True for topologies built by mesh(). */
    bool isMesh() const { return mesh_rows_ > 0; }
    int meshRows() const { return mesh_rows_; }
    int meshCols() const { return mesh_cols_; }

    /** Direction of travel when moving from @p from over link @p idx. */
    LinkDir directionFrom(LinkIndex idx, CellId from) const
    {
        return links_[idx].a == from ? LinkDir::kForward
                                     : LinkDir::kBackward;
    }

    /** Short description, e.g. "linear(4)" or "mesh(3x3)". */
    const std::string& name() const { return name_; }

  private:
    void finalize();

    int num_cells_ = 0;
    int mesh_rows_ = 0;
    int mesh_cols_ = 0;
    std::string name_;
    std::vector<Link> links_;
    std::vector<std::vector<CellId>> adjacency_;
    // Per-cell (neighbor, link index) pairs, sorted by neighbor —
    // linkBetween is a binary search over a cell's degree. O(cells +
    // links) memory, unlike the dense cells x cells matrix it
    // replaces, which capped arrays around 64k cells (a 100k-cell
    // linear array needed a 40 GB table).
    std::vector<std::vector<std::pair<CellId, LinkIndex>>> link_adj_;
};

/**
 * A shared, immutable handle to a Topology.
 *
 * MachineSpec used to hold its Topology by value, so an N-shape
 * ladder over a 100k-cell array kept N+2 identical topologies alive
 * (one per per-shape spec, one in the CompiledProgram, one in the
 * sweep driver). This handle keeps exactly one: copying a
 * SharedTopology copies a pointer, and assigning a plain Topology
 * wraps it in a fresh shared node. The forwarding accessors keep
 * `spec.topo.numLinks()`-style call sites reading exactly as they did
 * with the by-value member; a SharedTopology also converts implicitly
 * to `const Topology&` for APIs that take the graph itself.
 *
 * The wrapped Topology is const — shape ladders, compiled programs
 * and live sessions all alias it concurrently, so nobody mutates it.
 * To change a machine's topology, assign a new one.
 */
class SharedTopology
{
  public:
    /** An empty topology (one process-wide shared instance). */
    SharedTopology();
    /** Wrap @p topo in a fresh shared node (one copy/move). */
    SharedTopology(Topology topo)
        : topo_(std::make_shared<const Topology>(std::move(topo)))
    {}
    /** Adopt an existing shared node (must be non-null). */
    SharedTopology(std::shared_ptr<const Topology> topo)
        : topo_(std::move(topo))
    {}

    /** The underlying graph; never null. */
    const Topology& get() const { return *topo_; }
    operator const Topology&() const { return *topo_; }
    /** The shared node (for sharing assertions and custom aliasing). */
    const std::shared_ptr<const Topology>& ptr() const { return topo_; }

    // Forwarders mirroring the Topology read API, so the by-value
    // member's call sites (`spec.topo.numCells()`, ...) are unchanged.
    int numCells() const { return topo_->numCells(); }
    int numLinks() const { return topo_->numLinks(); }
    const Link& link(LinkIndex idx) const { return topo_->link(idx); }
    std::optional<LinkIndex> linkBetween(CellId x, CellId y) const
    {
        return topo_->linkBetween(x, y);
    }
    const std::vector<CellId>& neighbors(CellId cell) const
    {
        return topo_->neighbors(cell);
    }
    std::vector<CellId> routePath(CellId from, CellId to) const
    {
        return topo_->routePath(from, to);
    }
    bool isMesh() const { return topo_->isMesh(); }
    int meshRows() const { return topo_->meshRows(); }
    int meshCols() const { return topo_->meshCols(); }
    LinkDir directionFrom(LinkIndex idx, CellId from) const
    {
        return topo_->directionFrom(idx, from);
    }
    const std::string& name() const { return topo_->name(); }

  private:
    std::shared_ptr<const Topology> topo_;
};

} // namespace syscomm
