#include "core/crossoff.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>
#include <unordered_map>

#include "core/route.h"

namespace syscomm {

SkipBoundFn
zeroSkipBound()
{
    return [](MessageId) { return 0; };
}

SkipBoundFn
uniformSkipBound(int bound)
{
    return [bound](MessageId) { return bound; };
}

SkipBoundFn
unlimitedSkipBound()
{
    return [](MessageId) { return std::numeric_limits<int>::max(); };
}

SkipBoundFn
routeCapacitySkipBound(const Program& program, const Topology& topo,
                       int capacity_per_queue)
{
    auto bounds = std::make_shared<std::vector<int>>();
    bounds->reserve(program.numMessages());
    for (const MessageDecl& m : program.messages()) {
        Route route = computeRoute(topo, m.sender, m.receiver);
        bounds->push_back(route.numHops() * capacity_per_queue);
    }
    return [bounds](MessageId id) { return (*bounds)[id]; };
}

// ---------------------------------------------------------------------
// CrossOffEngine
// ---------------------------------------------------------------------

CrossOffEngine::CrossOffEngine(const Program& program, CrossOffOptions options)
    : program_(program), options_(std::move(options))
{
    if (options_.lookahead && !options_.skip_bound)
        options_.skip_bound = zeroSkipBound();

    int num_cells = program.numCells();
    int num_msgs = program.numMessages();
    cells_.resize(num_cells);
    write_slots_.resize(num_msgs);
    read_slots_.resize(num_msgs);
    next_word_.assign(num_msgs, 0);

    for (CellId cell = 0; cell < num_cells; ++cell) {
        CellState& cs = cells_[cell];
        const std::vector<Op>& ops = program.cellOps(cell);
        for (int pos = 0; pos < static_cast<int>(ops.size()); ++pos) {
            const Op& op = ops[pos];
            if (!op.isTransfer())
                continue;
            int slot = static_cast<int>(cs.transferPos.size());
            cs.transferPos.push_back(pos);
            cs.transferMsg.push_back(op.msg);
            cs.isWrite.push_back(op.isWrite());
            cs.crossed.push_back(false);
            if (op.isWrite())
                write_slots_[op.msg].push_back(slot);
            else
                read_slots_[op.msg].push_back(slot);
            ++total_transfers_;
        }
    }
}

void
CrossOffEngine::advanceFront(CellState& cs) const
{
    while (cs.front < static_cast<int>(cs.crossed.size()) &&
           cs.crossed[cs.front]) {
        ++cs.front;
    }
}

bool
CrossOffEngine::canReach(const CellState& cs, int target,
                         std::vector<MessageId>* skipped) const
{
    if (target < cs.front)
        return true; // already behind the front: impossible for uncrossed ops
    if (!options_.lookahead) {
        // Basic procedure: the op must be the literal front.
        for (int i = cs.front; i < target; ++i) {
            if (!cs.crossed[i])
                return false;
        }
        return true;
    }
    // Lookahead: rule R1 (skip writes only) + rule R2 (bounded skipping).
    std::unordered_map<MessageId, int> skip_counts;
    for (int i = cs.front; i < target; ++i) {
        if (cs.crossed[i])
            continue;
        if (!cs.isWrite[i])
            return false; // R1: reads can never be skipped
        int count = ++skip_counts[cs.transferMsg[i]];
        if (count > options_.skip_bound(cs.transferMsg[i]))
            return false; // R2: exceeds the queue capacity on the route
    }
    if (skipped) {
        for (const auto& [msg, count] : skip_counts)
            skipped->push_back(msg);
        std::sort(skipped->begin(), skipped->end());
    }
    return true;
}

bool
CrossOffEngine::isExecutable(MessageId msg) const
{
    int word = next_word_[msg];
    if (word >= static_cast<int>(write_slots_[msg].size()))
        return false; // fully crossed
    if (word >= static_cast<int>(read_slots_[msg].size()))
        return false; // malformed program (unbalanced counts)
    const MessageDecl& decl = program_.message(msg);
    const CellState& sender = cells_[decl.sender];
    const CellState& receiver = cells_[decl.receiver];
    return canReach(sender, write_slots_[msg][word], nullptr) &&
           canReach(receiver, read_slots_[msg][word], nullptr);
}

std::vector<PairEvent>
CrossOffEngine::executablePairs() const
{
    std::vector<PairEvent> pairs;
    for (MessageId msg = 0; msg < program_.numMessages(); ++msg) {
        int word = next_word_[msg];
        if (word >= static_cast<int>(write_slots_[msg].size()) ||
            word >= static_cast<int>(read_slots_[msg].size())) {
            continue;
        }
        const MessageDecl& decl = program_.message(msg);
        const CellState& sender = cells_[decl.sender];
        const CellState& receiver = cells_[decl.receiver];
        int wslot = write_slots_[msg][word];
        int rslot = read_slots_[msg][word];
        std::vector<MessageId> skipped;
        if (!canReach(sender, wslot, &skipped))
            continue;
        if (!canReach(receiver, rslot, &skipped))
            continue;
        PairEvent ev;
        ev.msg = msg;
        ev.wordIndex = word;
        ev.senderPos = sender.transferPos[wslot];
        ev.receiverPos = receiver.transferPos[rslot];
        std::sort(skipped.begin(), skipped.end());
        skipped.erase(std::unique(skipped.begin(), skipped.end()),
                      skipped.end());
        ev.skippedMessages = std::move(skipped);
        pairs.push_back(std::move(ev));
    }
    return pairs;
}

void
CrossOffEngine::crossOffPair(const PairEvent& pair)
{
    MessageId msg = pair.msg;
    assert(pair.wordIndex == next_word_[msg] &&
           "pairs must be crossed in word order");
    const MessageDecl& decl = program_.message(msg);
    CellState& sender = cells_[decl.sender];
    CellState& receiver = cells_[decl.receiver];
    int wslot = write_slots_[msg][pair.wordIndex];
    int rslot = read_slots_[msg][pair.wordIndex];
    assert(!sender.crossed[wslot] && !receiver.crossed[rslot]);
    sender.crossed[wslot] = true;
    receiver.crossed[rslot] = true;
    crossed_count_ += 2;
    ++next_word_[msg];
    advanceFront(sender);
    advanceFront(receiver);
}

bool
CrossOffEngine::isCrossed(CellId cell, int op_index) const
{
    const CellState& cs = cells_[cell];
    const std::vector<Op>& ops = program_.cellOps(cell);
    assert(op_index >= 0 && op_index < static_cast<int>(ops.size()));
    if (!ops[op_index].isTransfer())
        return true;
    // Binary search the transfer slot holding this op index.
    auto it = std::lower_bound(cs.transferPos.begin(), cs.transferPos.end(),
                               op_index);
    assert(it != cs.transferPos.end() && *it == op_index);
    return cs.crossed[it - cs.transferPos.begin()];
}

int
CrossOffEngine::frontOp(CellId cell) const
{
    const CellState& cs = cells_[cell];
    if (cs.front >= static_cast<int>(cs.transferPos.size()))
        return -1;
    return cs.transferPos[cs.front];
}

std::vector<MessageId>
CrossOffEngine::futureMessages(CellId cell) const
{
    const CellState& cs = cells_[cell];
    std::vector<MessageId> out;
    for (int i = cs.front; i < static_cast<int>(cs.transferMsg.size()); ++i) {
        if (!cs.crossed[i])
            out.push_back(cs.transferMsg[i]);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

// ---------------------------------------------------------------------
// Free functions
// ---------------------------------------------------------------------

CrossOffResult
crossOff(const Program& program, CrossOffOptions options)
{
    CrossOffEngine engine(program, std::move(options));
    CrossOffResult result;
    while (true) {
        std::vector<PairEvent> pairs = engine.executablePairs();
        if (pairs.empty())
            break;
        for (const PairEvent& pair : pairs) {
            engine.crossOffPair(pair);
            result.sequence.push_back(pair);
        }
        result.rounds.push_back(std::move(pairs));
    }
    result.deadlockFree = engine.done();
    result.remainingOps = engine.remainingOps();
    if (!result.deadlockFree) {
        for (CellId cell = 0; cell < program.numCells(); ++cell) {
            int pos = engine.frontOp(cell);
            if (pos >= 0)
                result.stuckFronts.push_back({cell, pos});
        }
    }
    return result;
}

bool
isDeadlockFree(const Program& program)
{
    return crossOff(program).deadlockFree;
}

bool
isDeadlockFreeWithLookahead(const Program& program, SkipBoundFn bound)
{
    CrossOffOptions options;
    options.lookahead = true;
    options.skip_bound = std::move(bound);
    return crossOff(program, std::move(options)).deadlockFree;
}

namespace {

std::string
opToken(const Program& program, CellId cell, int pos)
{
    const Op& op = program.cellOps(cell)[pos];
    if (op.isCompute())
        return "compute";
    std::string kind = op.isWrite() ? "W" : "R";
    return kind + "(" + program.message(op.msg).name + ")";
}

} // namespace

std::string
CrossOffResult::describeStuck(const Program& program) const
{
    if (deadlockFree)
        return "";
    std::string out = "deadlocked program: no executable pair; " +
                      std::to_string(remainingOps) + " ops remain\n";
    for (const auto& [cell, pos] : stuckFronts) {
        out += "  cell " + std::to_string(cell) + " stuck at op " +
               std::to_string(pos) + ": " + opToken(program, cell, pos) +
               "\n";
    }
    return out;
}

std::string
CrossOffResult::traceStr(const Program& program) const
{
    std::string out;
    for (std::size_t step = 0; step < rounds.size(); ++step) {
        out += "Step " + std::to_string(step + 1) + ":";
        for (const PairEvent& pair : rounds[step]) {
            const MessageDecl& m = program.message(pair.msg);
            out += "  W(" + m.name + ")/R(" + m.name + ")";
            if (!pair.skippedMessages.empty()) {
                out += " [skipped:";
                for (MessageId s : pair.skippedMessages)
                    out += " " + program.message(s).name;
                out += "]";
            }
        }
        out += "\n";
    }
    return out;
}

} // namespace syscomm
