#include "core/repair.h"

#include <algorithm>
#include <map>
#include <vector>

namespace syscomm {

RepairResult
repairProgram(const Program& program)
{
    RepairResult result;

    for (CellId c = 0; c < program.numCells(); ++c) {
        for (const Op& op : program.cellOps(c)) {
            if (op.isCompute()) {
                result.error = "cell " + std::to_string(c) +
                               " contains compute ops; reordering would "
                               "change their data dependencies";
                return result;
            }
        }
    }
    std::vector<std::string> issues = program.validate();
    if (!issues.empty()) {
        result.error = "invalid program: " + issues.front();
        return result;
    }

    // Original position of each message's k-th W (in its sender's
    // program) and k-th R (in its receiver's program).
    int num_msgs = program.numMessages();
    std::vector<std::vector<int>> wpos(num_msgs), rpos(num_msgs);
    for (CellId c = 0; c < program.numCells(); ++c) {
        const auto& ops = program.cellOps(c);
        for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
            if (ops[i].isWrite())
                wpos[ops[i].msg].push_back(i);
            else
                rpos[ops[i].msg].push_back(i);
        }
    }

    // Greedy serialization (section 3.3): repeatedly emit the pending
    // transfer whose original ops are earliest.
    Program repaired(program.numCells());
    for (const MessageDecl& m : program.messages())
        repaired.declareMessage(m.name, m.sender, m.receiver);

    std::vector<int> next(num_msgs, 0);
    int remaining = 0;
    for (MessageId m = 0; m < num_msgs; ++m)
        remaining += static_cast<int>(wpos[m].size());

    while (remaining > 0) {
        MessageId best = kInvalidMessage;
        long best_cost = 0;
        for (MessageId m = 0; m < num_msgs; ++m) {
            if (next[m] >= static_cast<int>(wpos[m].size()))
                continue;
            long cost = static_cast<long>(wpos[m][next[m]]) +
                        static_cast<long>(rpos[m][next[m]]);
            if (best == kInvalidMessage || cost < best_cost ||
                (cost == best_cost && m < best)) {
                best = m;
                best_cost = cost;
            }
        }
        const MessageDecl& decl = program.message(best);
        repaired.write(decl.sender, best);
        repaired.read(decl.receiver, best);
        ++next[best];
        --remaining;
    }

    // Count displaced ops for reporting.
    for (CellId c = 0; c < program.numCells(); ++c) {
        const auto& before = program.cellOps(c);
        const auto& after = repaired.cellOps(c);
        for (std::size_t i = 0; i < before.size(); ++i) {
            if (!(before[i] == after[i]))
                ++result.movedOps;
        }
    }

    result.success = true;
    result.program = std::move(repaired);
    return result;
}

bool
isReorderingOf(const Program& original, const Program& repaired)
{
    if (original.numCells() != repaired.numCells() ||
        original.numMessages() != repaired.numMessages()) {
        return false;
    }
    for (MessageId m = 0; m < original.numMessages(); ++m) {
        const MessageDecl& a = original.message(m);
        const MessageDecl& b = repaired.message(m);
        if (a.name != b.name || a.sender != b.sender ||
            a.receiver != b.receiver) {
            return false;
        }
    }
    // Identical per-cell op multisets. (Ops of one message and kind
    // are interchangeable, so multiset equality plus the builder's
    // append-only construction implies word order is preserved.)
    for (CellId c = 0; c < original.numCells(); ++c) {
        std::map<std::pair<MessageId, int>, int> counts;
        for (const Op& op : original.cellOps(c)) {
            if (op.isCompute())
                return false;
            ++counts[{op.msg, op.isWrite() ? 1 : 0}];
        }
        for (const Op& op : repaired.cellOps(c)) {
            if (op.isCompute())
                return false;
            --counts[{op.msg, op.isWrite() ? 1 : 0}];
        }
        for (const auto& [key, count] : counts) {
            if (count != 0)
                return false;
        }
    }
    return true;
}

} // namespace syscomm
