#pragma once

/**
 * @file
 * Exact rational arithmetic for message labels.
 *
 * Section 6 of the paper notes that a label "may have to be a real
 * number between two consecutive integers"; rationals keep the labeling
 * exact so that consistency checks never suffer floating-point ties.
 */

#include <cassert>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace syscomm {

/**
 * A reduced-fraction rational number with 64-bit numerator/denominator.
 *
 * The denominator is always positive and gcd(num, den) == 1. The label
 * algebra used by the labeler only ever takes midpoints and successors,
 * so magnitudes stay tiny; overflow is guarded by assertions.
 */
class Rational
{
  public:
    /** Zero. */
    constexpr Rational() : num_(0), den_(1) {}

    /** An integer value. */
    constexpr Rational(std::int64_t value) : num_(value), den_(1) {}

    /** num/den, reduced; den must be nonzero. */
    Rational(std::int64_t num, std::int64_t den);

    std::int64_t num() const { return num_; }
    std::int64_t den() const { return den_; }

    /** True when the value is an integer. */
    bool isInteger() const { return den_ == 1; }

    Rational operator+(const Rational& o) const;
    Rational operator-(const Rational& o) const;
    Rational operator*(const Rational& o) const;
    Rational operator/(const Rational& o) const;
    Rational operator-() const { return Rational(-num_, den_); }

    bool operator==(const Rational& o) const
    {
        return num_ == o.num_ && den_ == o.den_;
    }
    bool operator!=(const Rational& o) const { return !(*this == o); }
    bool operator<(const Rational& o) const { return compare(o) < 0; }
    bool operator>(const Rational& o) const { return o < *this; }
    bool operator<=(const Rational& o) const { return !(o < *this); }
    bool operator>=(const Rational& o) const { return !(*this < o); }

    /** Three-way comparison: negative/zero/positive like strcmp. */
    int compare(const Rational& o) const;

    /** Exact midpoint (a + b) / 2. */
    static Rational midpoint(const Rational& a, const Rational& b);

    /** Smallest integer strictly greater than this value. */
    std::int64_t nextInteger() const;

    /** Decimal-ish rendering, e.g. "3" or "5/2". */
    std::string str() const;

    /** Approximate double value (for reporting only). */
    double toDouble() const
    {
        return static_cast<double>(num_) / static_cast<double>(den_);
    }

  private:
    std::int64_t num_;
    std::int64_t den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

} // namespace syscomm
