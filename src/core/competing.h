#pragma once

/**
 * @file
 * Competing-message analysis and queue-feasibility checks.
 *
 * Messages that cross the same interval in the same direction are
 * *competing* (section 2.3) and may have to share queues. The
 * feasibility checks implement the queue-count side conditions of
 * section 7: static assignment needs a dedicated queue per message on
 * each link; the dynamic ordered/simultaneous scheme needs at least as
 * many queues per link as the largest same-label group crossing it
 * (assumption (ii) of Theorem 1).
 */

#include <array>
#include <string>
#include <vector>

#include "core/machine_spec.h"
#include "core/program.h"
#include "core/rational.h"
#include "core/route.h"
#include "core/types.h"

namespace syscomm {

/** Route and per-link competition structure of one program. */
class CompetingAnalysis
{
  public:
    static CompetingAnalysis analyze(const Program& program,
                                     const Topology& topo);

    /** Deterministic route of a message. */
    const Route& route(MessageId msg) const { return routes_[msg]; }
    const std::vector<Route>& routes() const { return routes_; }

    /** Messages crossing a link in either direction, ascending ids. */
    const std::vector<MessageId>& onLink(LinkIndex link) const
    {
        return on_link_[link];
    }

    /** Messages crossing a link in one direction (competing set). */
    const std::vector<MessageId>& onLinkDir(LinkIndex link,
                                            LinkDir dir) const
    {
        return on_link_dir_[link][static_cast<int>(dir)];
    }

    int numLinks() const { return static_cast<int>(on_link_.size()); }

    /** Largest competing set over all (link, direction) pairs. */
    int maxCompeting() const;

    /** Largest total message count over all links (both directions). */
    int maxOnLink() const;

  private:
    std::vector<Route> routes_;
    std::vector<std::vector<MessageId>> on_link_;
    std::vector<std::array<std::vector<MessageId>, 2>> on_link_dir_;
};

/** Verdict of a feasibility check. */
struct Feasibility
{
    bool feasible = false;
    /** Queues per link the scheme needs for this program. */
    int requiredQueuesPerLink = 0;
    /** A link achieving the requirement (diagnostics). */
    LinkIndex worstLink = kInvalidLink;
    std::string reason;
};

/**
 * Can every message get a dedicated queue on each link it crosses
 * (static assignment, section 7.1)?
 */
Feasibility checkStaticFeasibility(const CompetingAnalysis& analysis,
                                   const MachineSpec& spec);

/**
 * Does each link have enough queues for the largest same-label group
 * crossing it (dynamic ordered + simultaneous assignment, section 7.2)?
 * Same-label groups are counted across both directions because the
 * queues of a link form one shared pool.
 */
Feasibility checkDynamicFeasibility(const CompetingAnalysis& analysis,
                                    const std::vector<Rational>& labels,
                                    const MachineSpec& spec);

} // namespace syscomm
