#pragma once

/**
 * @file
 * simlint: the static program-verification pass.
 *
 * The paper makes deadlock-freedom the programmer/compiler's burden
 * (section 3.3) and supplies the machinery to discharge it statically:
 * the crossing-off procedure (sections 3 and 8.1) and the Theorem 1
 * labeling conditions (sections 5-7). analyzeProgram() turns those
 * analyses into a linter: it runs over a (Program, Topology) pair plus
 * a machine shape and emits a structured AnalysisReport of typed
 * diagnostics — machine-readable coordinates (cell, message, op, link)
 * next to the human text — with four passes:
 *
 *  1. **Deadlock certification.** The crossing-off procedure with
 *     section 8.1 lookahead under the shape's real R2 bound
 *     (hops x per-queue capacity). When it fails, the stuck state is
 *     distilled into a *minimal blocked-cycle witness*: the wait-for
 *     graph over stuck cell fronts (a reader waits on its message's
 *     sender, a writer on its receiver) is functional, so walking it
 *     finds a cycle — the R/W pairs that wedge each other. Every cell
 *     on that cycle has an incoming wait edge, which makes it blocked
 *     under *any* run-time assignment policy: an edge into a cell
 *     means reaching that cell's next pairable op requires either an
 *     unreachable read (reads cannot be skipped, rule R1) or skipping
 *     more uncrossed writes than the route can buffer (rule R2) — and
 *     a real machine buffers no more than the R2 bound. The witness
 *     is therefore a certificate of dynamic deadlock, not a
 *     heuristic; the cross-validation suite holds it to that.
 *  2. **Buffer-bound inference.** Deadlock-freedom under lookahead is
 *     monotone in queue capacity, so a binary search over the R2
 *     bound reports the minimum per-queue capacity (and the minimum
 *     uniform skip bound) at which the program becomes deadlock-free
 *     — section 8.1 as a capacity-planning answer. Reports -1 when no
 *     finite buffering helps (a read cycle).
 *  3. **Label feasibility.** The Theorem 1 conditions against the
 *     exact labeling a SimSession would use (section 6 scheme with
 *     trivial fallback — see CompiledProgram::labels()): consistency
 *     (condition i) and enough queues per link for the largest
 *     same-label group (condition ii), reporting which condition
 *     fails and where. kCertified is precisely the test_theorem1
 *     recipe: basic crossing-off passes, the labeling is consistent,
 *     and the shape is dynamically feasible — Theorem 1 then
 *     guarantees completion under the compatible policy.
 *  4. **Route liveness.** Unroutable messages, program/topology cell
 *     mismatches and compute-op neighborhood pins surfaced as
 *     diagnostics instead of late compile errors or asserts.
 *
 * The serve layer runs this at admission (syscommd --lint) and caches
 * the verdict on the CompiledProgram, so N submissions of one program
 * pay for one analysis; serve/lint.h renders the report as JSON.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "core/program.h"
#include "core/topology.h"
#include "core/types.h"

namespace syscomm {

/** How bad a diagnostic is. */
enum class Severity : std::uint8_t
{
    kInfo = 0, ///< Property worth knowing; nothing is wrong.
    kWarning,  ///< Cannot certify; the program may still complete.
    kError,    ///< Will not run correctly (deadlock, invalid, ...).
};

const char* severityName(Severity severity);

/** Diagnostic rules. Wire ids are stable ("SL001", ...). */
enum class LintRule : std::uint8_t
{
    kInvalidProgram = 0, ///< SL001: structural validation failed.
    kUnroutableMessage,  ///< SL002: no route between the endpoints.
    kTopologyMismatch,   ///< SL003: program/topology cell counts differ.
    kComputePin,         ///< SL004: compute ops pin the neighborhood.
    kDeadlockWitness,    ///< SL010: blocked cycle (one entry per cell).
    kBufferBound,        ///< SL011: minimum capacity inference.
    kNoFiniteBuffer,     ///< SL012: no finite buffering avoids deadlock.
    kLookaheadOnly,      ///< SL013: free only with buffering (not basic).
    kLabelingFallback,   ///< SL020: section 6 failed; trivial labels.
    kInconsistentLabels, ///< SL021: label consistency violation.
    kQueueInfeasible,    ///< SL022: Theorem 1 condition (ii) fails.
};

/** Stable wire id, e.g. "SL010". */
const char* lintRuleId(LintRule rule);

/** One finding. Coordinates are optional (-1 / kInvalid* = not tied
 *  to that axis); text is the human-readable sentence. */
struct Diagnostic
{
    Severity severity = Severity::kInfo;
    LintRule rule = LintRule::kInvalidProgram;
    CellId cell = kInvalidCell;
    MessageId msg = kInvalidMessage;
    /** Op index into the cell's full program. */
    int op = -1;
    LinkIndex link = kInvalidLink;
    std::string text;

    /** "error SL010 cell=3 op=4 msg=B: ..." */
    std::string str(const Program& program) const;
};

/** One cell of the blocked cycle: the op it is wedged at and the cell
 *  it waits for (the entry for that cell follows in the cycle). */
struct WitnessEntry
{
    CellId cell = kInvalidCell;
    /** Full-program index of the cell's first uncrossed op. */
    int op = -1;
    MessageId msg = kInvalidMessage;
    /** True when the stuck op is a write (waits on the receiver);
     *  false for a read (waits on the sender). */
    bool isWrite = false;
    CellId waitsFor = kInvalidCell;
};

/**
 * The minimal blocked cycle of a statically-deadlocked program, in
 * wait-for order: entry i waits for entry (i+1) % size. Empty unless
 * the verdict is kDeadlock.
 */
struct DeadlockWitness
{
    std::vector<WitnessEntry> cycle;
    /** All cells the crossing-off procedure left stuck (the cycle is
     *  the minimal core; the rest are blocked behind it). */
    int blockedCells = 0;

    bool empty() const { return cycle.empty(); }
    /** "cell 0 waits at op 0 R(Y) for cell 1; cell 1 ..." */
    std::string str(const Program& program) const;
};

/** The analyzer's overall verdict. */
enum class LintVerdict : std::uint8_t
{
    /**
     * Theorem 1 applies: deadlock-free (basic crossing-off), the
     * default labeling is consistent, and the shape satisfies
     * condition (ii) — a compatible-policy run on this shape
     * completes.
     */
    kCertified = 0,
    /**
     * The crossing-off procedure with lookahead at the shape's full
     * buffering fails: the program deadlocks on this shape under any
     * assignment policy. `witness` carries the blocked cycle.
     */
    kDeadlock,
    /**
     * Neither: e.g. deadlock-free only with buffering (Theorem 1 as
     * wired does not cover it), or the shape is queue-infeasible.
     * Serveable, but not certified.
     */
    kUnknown,
    /** Structural validation failed; nothing else was analyzed. */
    kInvalid,
};

const char* lintVerdictName(LintVerdict verdict);

/** The machine shape the analysis assumes (MachineSpec minus topo). */
struct AnalyzeOptions
{
    int queuesPerLink = 2;
    int queueCapacity = 1;
    /** iWarp-style memory extension words per queue (section 8). */
    int extensionCapacity = 0;

    /** Effective per-queue capacity (the R2 bound's multiplier). */
    int totalQueueCapacity() const
    {
        return queueCapacity + extensionCapacity;
    }
};

/** Everything analyzeProgram() derives. */
struct AnalysisReport
{
    LintVerdict verdict = LintVerdict::kUnknown;
    /** The shape analyzed (echoed so cached reports self-describe). */
    AnalyzeOptions shape;
    std::vector<Diagnostic> diagnostics;
    /** Non-empty iff verdict == kDeadlock. */
    DeadlockWitness witness;

    // Pass 2: buffer-bound inference.
    /** Smallest per-queue capacity making the program deadlock-free
     *  under lookahead (0 = free without buffering, -1 = no finite
     *  capacity helps). */
    int minUniformCapacity = -1;
    /** Smallest uniform R2 skip bound (uniformSkipBound) that does it
     *  (0 = basic free, -1 = none). Differs from capacity on
     *  multi-hop routes, where the per-message bound scales with
     *  route length. */
    int minUniformSkipBound = -1;

    // Pass 3: label feasibility at the shape.
    /** Basic crossing-off verdict (lookahead-free is in `verdict`). */
    bool basicDeadlockFree = false;
    /** Section 6 labeling failed and the trivial labeling was used
     *  (mirrors the SimSession default). */
    bool labelingFellBack = false;
    /** The labeling in force is consistent (condition i). */
    bool labelsConsistent = false;
    /** Condition (ii) holds on this shape. */
    bool feasibleAtShape = false;
    /** Queues per link condition (ii) demands. */
    int requiredQueuesPerLink = 0;
    LinkIndex worstLink = kInvalidLink;

    /** Any error-severity diagnostics? */
    bool hasErrors() const;
    /** Multi-line human-readable report. */
    std::string render(const Program& program) const;
};

/**
 * Run all four passes. Pure: consults nothing but its arguments, so
 * the result is cacheable under the (program, topology) digest the
 * serve cache already keys on plus the shape.
 */
AnalysisReport analyzeProgram(const Program& program,
                              const Topology& topo,
                              const AnalyzeOptions& options = {});

} // namespace syscomm
