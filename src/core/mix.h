#pragma once

/**
 * @file
 * splitmix64: the shared bit-mixing primitive behind every cheap
 * deterministic stream in the codebase — the random policy's
 * per-link counted RNG (sim/assignment.cpp) and the workload
 * generators' parameter jitter (core/program_gen.cpp). One
 * definition so a constant tweak cannot silently fork the streams.
 */

#include <cstdint>

namespace syscomm {

/** One splitmix64 state advance + finalizer (Steele et al. 2014). */
inline std::uint64_t
splitmix64(std::uint64_t& state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Stateless finalizer form: mix a single value. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    return splitmix64(x);
}

} // namespace syscomm
