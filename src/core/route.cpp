#include "core/route.h"

#include <cassert>

namespace syscomm {

std::string
Route::str() const
{
    std::string out;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out += " -> ";
        out += std::to_string(cells[i]);
    }
    return out;
}

Route
computeRoute(const Topology& topo, CellId sender, CellId receiver)
{
    Route route;
    route.cells = topo.routePath(sender, receiver);
    assert(!route.cells.empty() && "sender and receiver are not connected");
    for (std::size_t i = 0; i + 1 < route.cells.size(); ++i) {
        CellId from = route.cells[i];
        CellId to = route.cells[i + 1];
        auto link = topo.linkBetween(from, to);
        assert(link.has_value());
        Hop hop;
        hop.link = *link;
        hop.from = from;
        hop.to = to;
        hop.dir = topo.directionFrom(*link, from);
        route.hops.push_back(hop);
    }
    return route;
}

} // namespace syscomm
