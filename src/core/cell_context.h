#pragma once

/**
 * @file
 * Execution context handed to compute ops. Defined in core so that
 * programs can carry compute callbacks, implemented by the simulator.
 */

#include <functional>

#include "core/types.h"

namespace syscomm {

/**
 * Per-cell state visible to a compute op while the simulator runs.
 *
 * The model mirrors the paper's Fig. 2 statements such as
 * "Y1 = Y1 + w3 * x3": a cell reads words into a staging register,
 * combines them with local registers, and stages the next word to
 * write. None of this is visible to the deadlock analyses.
 */
class CellContext
{
  public:
    virtual ~CellContext() = default;

    /** Value of the most recently read word (0.0 before any read). */
    virtual double lastRead() const = 0;

    /** Stage the value the next W op on this cell will send. */
    virtual void setNextWrite(double value) = 0;

    /** Local register file; grows on demand. */
    virtual double& local(int index) = 0;

    /** The executing cell. */
    virtual CellId cellId() const = 0;

    /** Current simulation cycle. */
    virtual Cycle now() const = 0;
};

/** A local computation executed by the simulator between transfers. */
using ComputeFn = std::function<void(CellContext&)>;

} // namespace syscomm
