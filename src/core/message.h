#pragma once

/**
 * @file
 * Message declarations. Section 2.1: "We assume that all the messages
 * are declared prior to program execution. The declaration will
 * identify the sender and receiver of every message."
 */

#include <string>

#include "core/types.h"

namespace syscomm {

/**
 * A declared message: a finite sequence of words travelling from one
 * cell (the sender) to another (the receiver). The word count is not
 * part of the declaration; it is derived from the number of W ops the
 * sender's program performs on the message.
 */
struct MessageDecl
{
    MessageId id = kInvalidMessage;
    std::string name;
    CellId sender = kInvalidCell;
    CellId receiver = kInvalidCell;

    /** "A: 0 -> 2" rendering. */
    std::string str() const;
};

} // namespace syscomm
