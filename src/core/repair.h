#pragma once

/**
 * @file
 * Deadlock repair: reorder cell programs into a deadlock-free
 * schedule. Section 3.3 puts the burden of writing deadlock-free
 * programs on "the programmer or compiler"; this module is that
 * compiler pass.
 *
 * The repair may permute operations on *different* messages within a
 * cell, but never reorders the operations of one message (word order
 * is semantic). It therefore applies only to transfer-only programs:
 * compute ops pin their neighborhood and are refused.
 *
 * The scheduler follows the section 3.3 strategy — serialize word
 * transfers — picking at each step the transferable message whose
 * pending operations sit earliest in the original programs, so the
 * original interleaving is preserved wherever it was already safe.
 */

#include <string>

#include "core/program.h"

namespace syscomm {

/** Outcome of a repair attempt. */
struct RepairResult
{
    bool success = false;
    std::string error;
    /** Deadlock-free reordering (valid when success). */
    Program program{1};
    /** Number of ops whose position changed. */
    int movedOps = 0;
};

/**
 * Produce a deadlock-free reordering of @p program, or fail if the
 * program contains compute ops or is structurally invalid. Always
 * succeeds on valid transfer-only programs.
 */
RepairResult repairProgram(const Program& program);

/**
 * Check that @p repaired is a legal reordering of @p original: same
 * declarations, same per-cell op multiset, and per-message op order
 * preserved within each cell.
 */
bool isReorderingOf(const Program& original, const Program& repaired);

} // namespace syscomm
