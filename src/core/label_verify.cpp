#include "core/label_verify.h"

#include <cassert>

namespace syscomm {

std::string
ConsistencyIssue::str(const Program& program) const
{
    return "cell " + std::to_string(cell) + " op " + std::to_string(pos) +
           ": label of " + program.message(curMsg).name + " (" +
           curLabel.str() + ") is below preceding " +
           program.message(prevMsg).name + " (" + prevLabel.str() + ")";
}

std::vector<ConsistencyIssue>
checkLabelConsistency(const Program& program,
                      const std::vector<Rational>& labels)
{
    assert(static_cast<int>(labels.size()) == program.numMessages());
    std::vector<ConsistencyIssue> issues;
    for (CellId cell = 0; cell < program.numCells(); ++cell) {
        const std::vector<Op>& ops = program.cellOps(cell);
        bool have_prev = false;
        MessageId prev_msg = kInvalidMessage;
        Rational prev_label;
        for (int pos = 0; pos < static_cast<int>(ops.size()); ++pos) {
            const Op& op = ops[pos];
            if (!op.isTransfer())
                continue;
            const Rational& label = labels[op.msg];
            if (have_prev && label < prev_label) {
                ConsistencyIssue issue;
                issue.cell = cell;
                issue.pos = pos;
                issue.prevMsg = prev_msg;
                issue.curMsg = op.msg;
                issue.prevLabel = prev_label;
                issue.curLabel = label;
                issues.push_back(issue);
            }
            have_prev = true;
            prev_msg = op.msg;
            prev_label = label;
        }
    }
    return issues;
}

bool
isConsistentLabeling(const Program& program,
                     const std::vector<Rational>& labels)
{
    return checkLabelConsistency(program, labels).empty();
}

} // namespace syscomm
