#include "core/labeling.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "core/related.h"

namespace syscomm {

std::vector<std::int64_t>
Labeling::normalized() const
{
    std::vector<Rational> distinct = labels;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    std::vector<std::int64_t> out(labels.size(), 0);
    for (std::size_t i = 0; i < labels.size(); ++i) {
        auto it = std::lower_bound(distinct.begin(), distinct.end(),
                                   labels[i]);
        out[i] = static_cast<std::int64_t>(it - distinct.begin()) + 1;
    }
    return out;
}

std::string
Labeling::str(const Program& program) const
{
    if (!success)
        return "<labeling failed: " + error + ">";
    std::string out;
    for (MessageId m = 0; m < program.numMessages(); ++m) {
        if (m)
            out += " ";
        out += program.message(m).name + "=" + labels[m].str();
    }
    return out;
}

namespace {

/** Mutable state of one labeling run. */
struct LabelerState
{
    const Program& program;
    UnionFind related;
    std::vector<std::optional<Rational>> labels;
    /** Label of the last message each cell accessed (crossed off). */
    std::vector<std::optional<Rational>> lastAccess;
    Rational maxLabel = Rational(0);
    std::vector<std::string>* log = nullptr;

    explicit LabelerState(const Program& p)
        : program(p),
          related(computeRelatedClasses(p)),
          labels(p.numMessages()),
          lastAccess(p.numCells())
    {}

    void
    note(const std::string& line)
    {
        if (log)
            log->push_back(line);
    }

    /**
     * Set a label on @p msg and propagate it to every unlabeled member
     * of its related class (rule 1c; also applied after rule 1d so
     * relatedness is honored no matter which rule labels first).
     */
    void
    setLabelWithClass(MessageId msg, const Rational& label)
    {
        int root = related.find(msg);
        for (MessageId m = 0; m < program.numMessages(); ++m) {
            if (related.find(m) == root && !labels[m].has_value()) {
                labels[m] = label;
                if (label > maxLabel)
                    maxLabel = label;
                if (m != msg) {
                    note("    related message " + program.message(m).name +
                         " inherits label " + label.str());
                }
            }
        }
    }
};

} // namespace

Labeling
labelMessages(const Program& program, const LabelingOptions& options)
{
    Labeling result;
    result.labels.assign(program.numMessages(), Rational(0));

    CrossOffOptions co;
    co.lookahead = options.lookahead;
    co.skip_bound = options.skip_bound;
    CrossOffEngine engine(program, co);

    LabelerState st(program);
    if (options.record_log)
        st.log = &result.log;

    while (!engine.done()) {
        std::vector<PairEvent> pairs = engine.executablePairs();
        if (pairs.empty()) {
            result.error = "program is not deadlock-free; crossing-off "
                           "stuck with " +
                           std::to_string(engine.remainingOps()) +
                           " ops remaining";
            return result;
        }

        // Step 1: pick an executable pair per the configured policy.
        // executablePairs() returns ascending message-id order.
        const PairEvent* chosen = &pairs.front();
        switch (options.pick) {
          case LabelingOptions::Pick::kDeclarationOrder:
            break;
          case LabelingOptions::Pick::kReverseDeclaration:
            chosen = &pairs.back();
            break;
          case LabelingOptions::Pick::kLabeledFirst: {
            for (const PairEvent& p : pairs) {
                bool p_labeled = st.labels[p.msg].has_value();
                bool c_labeled = st.labels[chosen->msg].has_value();
                if (p_labeled && !c_labeled) {
                    chosen = &p;
                } else if (p_labeled == c_labeled && p_labeled &&
                           *st.labels[p.msg] < *st.labels[chosen->msg]) {
                    chosen = &p;
                }
            }
            break;
          }
        }
        PairEvent pair = *chosen;
        MessageId a = pair.msg;
        const MessageDecl& decl = program.message(a);

        if (!st.labels[a].has_value()) {
            // Messages either endpoint will still touch, with labels.
            std::vector<MessageId> future = engine.futureMessages(decl.sender);
            std::vector<MessageId> future_r =
                engine.futureMessages(decl.receiver);
            future.insert(future.end(), future_r.begin(), future_r.end());

            std::optional<Rational> upper;
            for (MessageId m : future) {
                if (m == a || !st.labels[m].has_value())
                    continue;
                if (!upper || *st.labels[m] < *upper)
                    upper = st.labels[m];
            }

            if (!upper) {
                // Rule 1a: fresh label above everything in use.
                Rational label = Rational(st.maxLabel.nextInteger());
                st.note("label " + decl.name + " = " + label.str() +
                        " (rule 1a: fresh maximum)");
                st.setLabelWithClass(a, label);
            } else {
                // Rule 1b: strictly between the endpoints' last access
                // and the smallest labeled future message.
                Rational lower(0);
                for (CellId cell : {decl.sender, decl.receiver}) {
                    if (st.lastAccess[cell] && *st.lastAccess[cell] > lower)
                        lower = *st.lastAccess[cell];
                }
                if (lower > *upper) {
                    result.error =
                        "rule 1b infeasible for message " + decl.name +
                        ": need a label in (" + lower.str() + ", " +
                        upper->str() + ")";
                    return result;
                }
                // Strictly between when possible; when the bounds
                // coincide the message shares that label (labels may
                // be shared — consistency only needs non-decreasing
                // sequences).
                Rational label = lower == *upper
                                     ? lower
                                     : Rational::midpoint(lower, *upper);
                st.note("label " + decl.name + " = " + label.str() +
                        " (rule 1b: between " + lower.str() + " and " +
                        upper->str() + ")");
                st.setLabelWithClass(a, label);
            }
        }

        // Rule 1d (lookahead): skipped messages share A's label.
        for (MessageId skipped : pair.skippedMessages) {
            if (!st.labels[skipped].has_value()) {
                st.note("label " + program.message(skipped).name + " = " +
                        st.labels[a]->str() + " (rule 1d: write skipped "
                        "while locating " + decl.name + ")");
                st.setLabelWithClass(skipped, *st.labels[a]);
            }
        }

        // Steps 2-3: cross the pair off and continue.
        engine.crossOffPair(pair);
        st.lastAccess[decl.sender] = st.labels[a];
        st.lastAccess[decl.receiver] = st.labels[a];
    }

    for (MessageId m = 0; m < program.numMessages(); ++m) {
        assert(st.labels[m].has_value() &&
               "crossing-off completed, so every message was executed");
        result.labels[m] = *st.labels[m];
    }
    result.success = true;
    return result;
}

Labeling
trivialLabeling(const Program& program)
{
    Labeling result;
    result.success = true;
    result.labels.assign(program.numMessages(), Rational(1));
    return result;
}

namespace {

/** Iterative Tarjan SCC over a dense-id digraph. */
class SccFinder
{
  public:
    explicit SccFinder(const std::vector<std::vector<int>>& adj)
        : adj_(adj),
          index_(adj.size(), -1),
          low_(adj.size(), 0),
          on_stack_(adj.size(), false),
          component_(adj.size(), -1)
    {
        for (int v = 0; v < static_cast<int>(adj.size()); ++v) {
            if (index_[v] < 0)
                run(v);
        }
    }

    int componentOf(int v) const { return component_[v]; }
    int numComponents() const { return num_components_; }

  private:
    struct Frame
    {
        int node;
        std::size_t next_edge;
    };

    void
    run(int root)
    {
        std::vector<Frame> frames{{root, 0}};
        push(root);
        while (!frames.empty()) {
            Frame& frame = frames.back();
            int v = frame.node;
            if (frame.next_edge < adj_[v].size()) {
                int w = adj_[v][frame.next_edge++];
                if (index_[w] < 0) {
                    push(w);
                    frames.push_back({w, 0});
                } else if (on_stack_[w]) {
                    low_[v] = std::min(low_[v], index_[w]);
                }
            } else {
                if (low_[v] == index_[v]) {
                    while (true) {
                        int w = stack_.back();
                        stack_.pop_back();
                        on_stack_[w] = false;
                        component_[w] = num_components_;
                        if (w == v)
                            break;
                    }
                    ++num_components_;
                }
                frames.pop_back();
                if (!frames.empty()) {
                    int parent = frames.back().node;
                    low_[parent] = std::min(low_[parent], low_[v]);
                }
            }
        }
    }

    void
    push(int v)
    {
        index_[v] = low_[v] = next_index_++;
        stack_.push_back(v);
        on_stack_[v] = true;
    }

    const std::vector<std::vector<int>>& adj_;
    std::vector<int> index_, low_;
    std::vector<bool> on_stack_;
    std::vector<int> component_;
    std::vector<int> stack_;
    int next_index_ = 0;
    int num_components_ = 0;
};

} // namespace

Labeling
graphLabeling(const Program& program)
{
    int n = program.numMessages();
    Labeling result;
    result.labels.assign(n, Rational(0));
    if (n == 0) {
        result.success = true;
        return result;
    }

    // Precedence edges: m1 -> m2 when some cell touches m1 directly
    // before m2. Related messages (section 6) also constrain equality:
    // add edges both ways so they fall into one component.
    std::vector<std::vector<int>> adj(n);
    for (CellId cell = 0; cell < program.numCells(); ++cell) {
        MessageId prev = kInvalidMessage;
        for (const Op& op : program.cellOps(cell)) {
            if (!op.isTransfer())
                continue;
            if (prev != kInvalidMessage && prev != op.msg)
                adj[prev].push_back(op.msg);
            prev = op.msg;
        }
    }
    UnionFind related = computeRelatedClasses(program);
    for (MessageId m = 0; m < n; ++m) {
        int root = related.find(m);
        if (root != m) {
            adj[m].push_back(root);
            adj[root].push_back(m);
        }
    }

    SccFinder scc(adj);

    // Kahn's algorithm over the condensation, always picking the
    // component containing the smallest message id — deterministic and
    // close to declaration order.
    int comps = scc.numComponents();
    std::vector<std::vector<int>> cadj(comps);
    std::vector<int> indegree(comps, 0);
    for (int v = 0; v < n; ++v) {
        for (int w : adj[v]) {
            int cv = scc.componentOf(v);
            int cw = scc.componentOf(w);
            if (cv != cw)
                cadj[cv].push_back(cw);
        }
    }
    for (int c = 0; c < comps; ++c) {
        std::sort(cadj[c].begin(), cadj[c].end());
        cadj[c].erase(std::unique(cadj[c].begin(), cadj[c].end()),
                      cadj[c].end());
        for (int w : cadj[c])
            ++indegree[w];
    }
    std::vector<int> smallest(comps, n);
    for (int v = 0; v < n; ++v) {
        smallest[scc.componentOf(v)] =
            std::min(smallest[scc.componentOf(v)], v);
    }

    std::vector<int> ready;
    for (int c = 0; c < comps; ++c) {
        if (indegree[c] == 0)
            ready.push_back(c);
    }
    auto by_smallest = [&](int a, int b) {
        return smallest[a] > smallest[b]; // min-heap by smallest member
    };
    std::make_heap(ready.begin(), ready.end(), by_smallest);

    std::vector<std::int64_t> comp_label(comps, 0);
    std::int64_t next_label = 1;
    int emitted = 0;
    while (!ready.empty()) {
        std::pop_heap(ready.begin(), ready.end(), by_smallest);
        int c = ready.back();
        ready.pop_back();
        comp_label[c] = next_label++;
        ++emitted;
        for (int w : cadj[c]) {
            if (--indegree[w] == 0) {
                ready.push_back(w);
                std::push_heap(ready.begin(), ready.end(), by_smallest);
            }
        }
    }
    assert(emitted == comps && "condensation is a DAG");
    (void)emitted;

    for (MessageId m = 0; m < n; ++m)
        result.labels[m] = Rational(comp_label[scc.componentOf(m)]);
    result.success = true;
    return result;
}

} // namespace syscomm
