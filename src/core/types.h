#pragma once

/**
 * @file
 * Fundamental identifier types shared by every syscomm module.
 *
 * The model follows Kung (1988), "Deadlock Avoidance for Systolic
 * Communication": an array of cells (the host is treated as a cell)
 * exchanges declared messages over links; each link carries a fixed
 * number of hardware queues.
 */

#include <cstdint>

namespace syscomm {

/** Index of a cell (processing element). The host is an ordinary cell. */
using CellId = std::int32_t;

/** Index of a declared message (a finite sequence of words). */
using MessageId = std::int32_t;

/** Index of an undirected link (the "interval" between adjacent cells). */
using LinkIndex = std::int32_t;

/** Simulation time, in cycles. */
using Cycle = std::int64_t;

/** Sentinel for "no cell". */
inline constexpr CellId kInvalidCell = -1;

/** Sentinel for "no message". */
inline constexpr MessageId kInvalidMessage = -1;

/** Sentinel for "no link". */
inline constexpr LinkIndex kInvalidLink = -1;

/**
 * Direction of travel across an undirected link {a, b} with a < b.
 * kForward means a -> b; kBackward means b -> a. Messages crossing the
 * same link in the same direction are "competing" (paper, section 2.3).
 */
enum class LinkDir : std::uint8_t { kForward = 0, kBackward = 1 };

/** Flip a link direction. */
constexpr LinkDir
opposite(LinkDir d)
{
    return d == LinkDir::kForward ? LinkDir::kBackward : LinkDir::kForward;
}

/** Short human-readable arrow for a direction. */
constexpr const char*
dirArrow(LinkDir d)
{
    return d == LinkDir::kForward ? "->" : "<-";
}

} // namespace syscomm
