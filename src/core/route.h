#pragma once

/**
 * @file
 * Message routes: the ordered sequence of directed hops (queues) a
 * message occupies between its sender and its receiver. Section 2.3:
 * "during program execution every message is assigned to a sequence of
 * queues, through which words in the message are transferred".
 */

#include <string>
#include <vector>

#include "core/topology.h"
#include "core/types.h"

namespace syscomm {

/** One directed hop of a route: crossing @p link from @p from to @p to. */
struct Hop
{
    LinkIndex link = kInvalidLink;
    LinkDir dir = LinkDir::kForward;
    CellId from = kInvalidCell;
    CellId to = kInvalidCell;
};

/** A full sender-to-receiver route. */
struct Route
{
    /** Cells visited, sender first, receiver last. */
    std::vector<CellId> cells;
    /** Directed hops; hops.size() == cells.size() - 1. */
    std::vector<Hop> hops;

    int numHops() const { return static_cast<int>(hops.size()); }
    bool empty() const { return hops.empty(); }

    /** "0 -> 1 -> 2" rendering. */
    std::string str() const;
};

/**
 * Compute the deterministic minimum-length route between two cells.
 * Asserts that the cells are connected.
 */
Route computeRoute(const Topology& topo, CellId sender, CellId receiver);

} // namespace syscomm
