#include "core/program_gen.h"

#include <algorithm>
#include <cassert>
#include <random>
#include <vector>

#include "core/mix.h"

namespace syscomm {

Program
randomDeadlockFreeProgram(const Topology& topo, const GenOptions& options)
{
    assert(topo.numCells() >= 2);
    std::mt19937_64 rng(options.seed);
    std::uniform_int_distribution<CellId> cell_dist(0, topo.numCells() - 1);
    std::uniform_int_distribution<int> words_dist(1, options.maxWords);

    Program program(topo.numCells());
    std::vector<int> remaining;
    remaining.reserve(options.numMessages);

    for (int i = 0; i < options.numMessages; ++i) {
        CellId sender = cell_dist(rng);
        CellId receiver = cell_dist(rng);
        while (receiver == sender)
            receiver = cell_dist(rng);
        if (!options.multiHop) {
            // Pick a random neighbor as the receiver instead.
            const auto& nbrs = topo.neighbors(sender);
            assert(!nbrs.empty());
            std::uniform_int_distribution<std::size_t> nbr_dist(
                0, nbrs.size() - 1);
            receiver = nbrs[nbr_dist(rng)];
        }
        program.declareMessage("M" + std::to_string(i), sender, receiver);
        remaining.push_back(words_dist(rng));
    }

    // Section 3.3: serialize word transfers; each step appends one
    // W/R pair for a chosen unfinished message. With probability
    // (1 - interleave) the previous message continues, keeping its
    // words contiguous.
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::vector<MessageId> live;
    for (MessageId m = 0; m < program.numMessages(); ++m)
        live.push_back(m);
    std::size_t current = static_cast<std::size_t>(-1);
    while (!live.empty()) {
        if (current >= live.size() || coin(rng) < options.interleave) {
            std::uniform_int_distribution<std::size_t> pick(
                0, live.size() - 1);
            current = pick(rng);
        }
        MessageId m = live[current];
        const MessageDecl& decl = program.message(m);
        program.write(decl.sender, m);
        program.read(decl.receiver, m);
        if (--remaining[m] == 0) {
            live[current] = live.back();
            live.pop_back();
            current = static_cast<std::size_t>(-1);
        }
    }
    return program;
}

const char*
arrayPhaseName(ArrayPhase phase)
{
    switch (phase) {
      case ArrayPhase::kSparse:
        return "sparse";
      case ArrayPhase::kStreaming:
        return "streaming";
      case ArrayPhase::kDenseActive:
        return "dense-active";
    }
    return "?";
}

namespace {

void
addStream(Program& p, MessageId id, CellId from, CellId to, int words,
          int compute_gap)
{
    for (int w = 0; w < words; ++w) {
        for (int g = 0; g < compute_gap; ++g)
            p.compute(from, [](CellContext& ctx) { ctx.local(0) += 1.0; });
        p.write(from, id);
    }
    for (int w = 0; w < words; ++w)
        p.read(to, id);
}

} // namespace

Program
largeArrayProgram(int cells, const LargeArrayOptions& options)
{
    assert(cells >= 2);
    Program p(cells);
    const int words = std::max(1, options.wordsPerMessage);

    switch (options.phase) {
      case ArrayPhase::kSparse: {
        // A few long streams over bounded spans, senders spread out:
        // nearly every cell and link stays idle for the whole run.
        int messages = std::max(1, options.messages);
        int span = std::max(2, std::min(32, cells / (2 * messages)));
        if (span >= cells)
            span = cells - 1;
        for (int m = 0; m < messages; ++m) {
            CellId from =
                static_cast<CellId>((static_cast<std::int64_t>(m) *
                                     (cells - span - 1)) /
                                    messages);
            CellId to = static_cast<CellId>(from + span);
            addStream(p,
                      p.declareMessage("S" + std::to_string(m), from, to),
                      from, to, words, std::max(1, options.computeGap));
        }
        break;
      }
      case ArrayPhase::kStreaming: {
        // Disjoint spans tiling the whole array, one stream each, so
        // activity is uniform but only a couple of words per stream
        // are in flight at any cycle.
        int messages = std::max(1, options.messages);
        int span = std::max(2, cells / messages);
        for (int m = 0; m * span + 1 < cells; ++m) {
            CellId from = static_cast<CellId>(m * span);
            CellId to = static_cast<CellId>(
                std::min(cells - 1, m * span + span - 1));
            addStream(p,
                      p.declareMessage("T" + std::to_string(m), from, to),
                      from, to, words, std::max(1, options.computeGap));
        }
        break;
      }
      case ArrayPhase::kDenseActive: {
        // Neighbor ping-pong on disjoint even/odd pairs (0,1), (2,3),
        // ... in both directions, so the machine needs >= 2 queues
        // per link. Every *cell* is busy every cycle — the point is
        // active-set churn at machine scale — while the links between
        // pairs stay idle by construction.
        for (CellId c = 0; c + 1 < cells; c += 2) {
            int w = 1 + static_cast<int>(
                            mix64(options.seed +
                                  static_cast<std::uint64_t>(c)) %
                            static_cast<std::uint64_t>(words));
            MessageId fwd = p.declareMessage(
                "F" + std::to_string(c), c, static_cast<CellId>(c + 1));
            MessageId bwd = p.declareMessage(
                "B" + std::to_string(c), static_cast<CellId>(c + 1), c);
            for (int i = 0; i < w; ++i) {
                p.write(c, fwd);
                p.read(c, bwd);
                p.write(static_cast<CellId>(c + 1), bwd);
                p.read(static_cast<CellId>(c + 1), fwd);
            }
        }
        break;
      }
    }
    return p;
}

Program
perturbProgram(const Program& program, int swaps, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);

    // Copy the op lists, then transpose random adjacent transfer ops.
    std::vector<std::vector<Op>> ops(program.numCells());
    for (CellId c = 0; c < program.numCells(); ++c)
        ops[c] = program.cellOps(c);

    std::uniform_int_distribution<CellId> cell_dist(0,
                                                    program.numCells() - 1);
    for (int s = 0; s < swaps; ++s) {
        CellId cell = cell_dist(rng);
        auto& list = ops[cell];
        if (list.size() < 2)
            continue;
        std::uniform_int_distribution<std::size_t> pos_dist(0,
                                                            list.size() - 2);
        std::size_t pos = pos_dist(rng);
        std::swap(list[pos], list[pos + 1]);
    }

    // Rebuild a fresh program with identical declarations.
    Program out(program.numCells());
    for (const MessageDecl& m : program.messages())
        out.declareMessage(m.name, m.sender, m.receiver);
    for (CellId c = 0; c < program.numCells(); ++c) {
        for (const Op& op : ops[c]) {
            if (op.isWrite())
                out.write(c, op.msg);
            else if (op.isRead())
                out.read(c, op.msg);
            else
                out.compute(c, program.computeFn(op.computeId));
        }
    }
    return out;
}

} // namespace syscomm
