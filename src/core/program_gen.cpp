#include "core/program_gen.h"

#include <algorithm>
#include <cassert>
#include <random>
#include <vector>

namespace syscomm {

Program
randomDeadlockFreeProgram(const Topology& topo, const GenOptions& options)
{
    assert(topo.numCells() >= 2);
    std::mt19937_64 rng(options.seed);
    std::uniform_int_distribution<CellId> cell_dist(0, topo.numCells() - 1);
    std::uniform_int_distribution<int> words_dist(1, options.maxWords);

    Program program(topo.numCells());
    std::vector<int> remaining;
    remaining.reserve(options.numMessages);

    for (int i = 0; i < options.numMessages; ++i) {
        CellId sender = cell_dist(rng);
        CellId receiver = cell_dist(rng);
        while (receiver == sender)
            receiver = cell_dist(rng);
        if (!options.multiHop) {
            // Pick a random neighbor as the receiver instead.
            const auto& nbrs = topo.neighbors(sender);
            assert(!nbrs.empty());
            std::uniform_int_distribution<std::size_t> nbr_dist(
                0, nbrs.size() - 1);
            receiver = nbrs[nbr_dist(rng)];
        }
        program.declareMessage("M" + std::to_string(i), sender, receiver);
        remaining.push_back(words_dist(rng));
    }

    // Section 3.3: serialize word transfers; each step appends one
    // W/R pair for a chosen unfinished message. With probability
    // (1 - interleave) the previous message continues, keeping its
    // words contiguous.
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::vector<MessageId> live;
    for (MessageId m = 0; m < program.numMessages(); ++m)
        live.push_back(m);
    std::size_t current = static_cast<std::size_t>(-1);
    while (!live.empty()) {
        if (current >= live.size() || coin(rng) < options.interleave) {
            std::uniform_int_distribution<std::size_t> pick(
                0, live.size() - 1);
            current = pick(rng);
        }
        MessageId m = live[current];
        const MessageDecl& decl = program.message(m);
        program.write(decl.sender, m);
        program.read(decl.receiver, m);
        if (--remaining[m] == 0) {
            live[current] = live.back();
            live.pop_back();
            current = static_cast<std::size_t>(-1);
        }
    }
    return program;
}

Program
perturbProgram(const Program& program, int swaps, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);

    // Copy the op lists, then transpose random adjacent transfer ops.
    std::vector<std::vector<Op>> ops(program.numCells());
    for (CellId c = 0; c < program.numCells(); ++c)
        ops[c] = program.cellOps(c);

    std::uniform_int_distribution<CellId> cell_dist(0,
                                                    program.numCells() - 1);
    for (int s = 0; s < swaps; ++s) {
        CellId cell = cell_dist(rng);
        auto& list = ops[cell];
        if (list.size() < 2)
            continue;
        std::uniform_int_distribution<std::size_t> pos_dist(0,
                                                            list.size() - 2);
        std::size_t pos = pos_dist(rng);
        std::swap(list[pos], list[pos + 1]);
    }

    // Rebuild a fresh program with identical declarations.
    Program out(program.numCells());
    for (const MessageDecl& m : program.messages())
        out.declareMessage(m.name, m.sender, m.receiver);
    for (CellId c = 0; c < program.numCells(); ++c) {
        for (const Op& op : ops[c]) {
            if (op.isWrite())
                out.write(c, op.msg);
            else if (op.isRead())
                out.read(c, op.msg);
            else
                out.compute(c, program.computeFn(op.computeId));
        }
    }
    return out;
}

} // namespace syscomm
