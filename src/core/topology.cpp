#include "core/topology.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace syscomm {

SharedTopology::SharedTopology()
{
    // Default-constructed MachineSpecs are common and short-lived;
    // every one of them aliases a single empty graph instead of
    // allocating its own.
    static const std::shared_ptr<const Topology> empty =
        std::make_shared<const Topology>();
    topo_ = empty;
}

Topology
Topology::linearArray(int num_cells)
{
    assert(num_cells >= 1);
    Topology t;
    t.num_cells_ = num_cells;
    t.name_ = "linear(" + std::to_string(num_cells) + ")";
    for (CellId c = 0; c + 1 < num_cells; ++c)
        t.links_.push_back({c, c + 1});
    t.finalize();
    return t;
}

Topology
Topology::ring(int num_cells)
{
    assert(num_cells >= 3);
    Topology t;
    t.num_cells_ = num_cells;
    t.name_ = "ring(" + std::to_string(num_cells) + ")";
    for (CellId c = 0; c + 1 < num_cells; ++c)
        t.links_.push_back({c, c + 1});
    t.links_.push_back({0, num_cells - 1});
    t.finalize();
    return t;
}

Topology
Topology::mesh(int rows, int cols)
{
    assert(rows >= 1 && cols >= 1);
    Topology t;
    t.num_cells_ = rows * cols;
    t.mesh_rows_ = rows;
    t.mesh_cols_ = cols;
    t.name_ = "mesh(" + std::to_string(rows) + "x" + std::to_string(cols) +
              ")";
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            CellId id = r * cols + c;
            if (c + 1 < cols)
                t.links_.push_back({id, id + 1});
            if (r + 1 < rows)
                t.links_.push_back({id, id + cols});
        }
    }
    t.finalize();
    return t;
}

Topology
Topology::torus(int rows, int cols)
{
    assert(rows >= 3 && cols >= 3);
    Topology t;
    t.num_cells_ = rows * cols;
    t.name_ = "torus(" + std::to_string(rows) + "x" +
              std::to_string(cols) + ")";
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            CellId id = r * cols + c;
            CellId right = r * cols + (c + 1) % cols;
            CellId down = ((r + 1) % rows) * cols + c;
            t.links_.push_back({id, right});
            t.links_.push_back({id, down});
        }
    }
    t.finalize();
    return t;
}

Topology
Topology::custom(int num_cells, std::vector<Link> links)
{
    assert(num_cells >= 1);
    Topology t;
    t.num_cells_ = num_cells;
    t.name_ = "custom(" + std::to_string(num_cells) + ")";
    t.links_ = std::move(links);
    for (Link& l : t.links_) {
        assert(l.a != l.b && "self-links are not allowed");
        assert(l.a >= 0 && l.a < num_cells && l.b >= 0 && l.b < num_cells);
        if (l.a > l.b)
            std::swap(l.a, l.b);
    }
    t.finalize();
    return t;
}

void
Topology::finalize()
{
    // Normalize endpoint order and build adjacency + lookup.
    for (Link& l : links_) {
        if (l.a > l.b)
            std::swap(l.a, l.b);
    }
    adjacency_.assign(num_cells_, {});
    link_adj_.assign(num_cells_, {});
    for (LinkIndex i = 0; i < numLinks(); ++i) {
        const Link& l = links_[i];
        link_adj_[l.a].push_back({l.b, i});
        link_adj_[l.b].push_back({l.a, i});
    }
    for (auto& nbrs : link_adj_) {
        std::sort(nbrs.begin(), nbrs.end());
        // Parallel links were never meaningfully supported: the old
        // dense lookup table silently kept the last duplicate, the
        // sorted adjacency would keep the first. Reject them instead
        // of letting the choice drift.
        assert(std::adjacent_find(nbrs.begin(), nbrs.end(),
                                  [](const auto& x, const auto& y) {
                                      return x.first == y.first;
                                  }) == nbrs.end() &&
               "parallel links between one cell pair are not supported");
    }
    // adjacency_ is the projection of link_adj_ onto neighbors; derive
    // it from the sorted pairs so the two can never disagree.
    for (CellId c = 0; c < num_cells_; ++c) {
        adjacency_[c].reserve(link_adj_[c].size());
        for (const auto& [nbr, idx] : link_adj_[c]) {
            (void)idx;
            adjacency_[c].push_back(nbr);
        }
    }
}

std::optional<LinkIndex>
Topology::linkBetween(CellId x, CellId y) const
{
    if (x < 0 || y < 0 || x >= num_cells_ || y >= num_cells_)
        return std::nullopt;
    const auto& nbrs = link_adj_[x];
    auto it = std::lower_bound(
        nbrs.begin(), nbrs.end(), y,
        [](const std::pair<CellId, LinkIndex>& p, CellId cell) {
            return p.first < cell;
        });
    if (it == nbrs.end() || it->first != y)
        return std::nullopt;
    return it->second;
}

std::vector<CellId>
Topology::routePath(CellId from, CellId to) const
{
    assert(from >= 0 && from < num_cells_ && to >= 0 && to < num_cells_);
    if (from == to)
        return {from};

    if (isMesh()) {
        // Dimension-order (XY) routing: adjust column first, then row.
        std::vector<CellId> path{from};
        int r = from / mesh_cols_;
        int c = from % mesh_cols_;
        int tr = to / mesh_cols_;
        int tc = to % mesh_cols_;
        while (c != tc) {
            c += (tc > c) ? 1 : -1;
            path.push_back(r * mesh_cols_ + c);
        }
        while (r != tr) {
            r += (tr > r) ? 1 : -1;
            path.push_back(r * mesh_cols_ + c);
        }
        return path;
    }

    // BFS with smallest-neighbor preference: parents are assigned in
    // ascending neighbor order, making the shortest path deterministic.
    std::vector<CellId> parent(num_cells_, kInvalidCell);
    std::queue<CellId> frontier;
    parent[from] = from;
    frontier.push(from);
    while (!frontier.empty()) {
        CellId cur = frontier.front();
        frontier.pop();
        if (cur == to)
            break;
        for (CellId nxt : adjacency_[cur]) {
            if (parent[nxt] == kInvalidCell) {
                parent[nxt] = cur;
                frontier.push(nxt);
            }
        }
    }
    if (parent[to] == kInvalidCell)
        return {};
    std::vector<CellId> path;
    for (CellId cur = to; cur != from; cur = parent[cur])
        path.push_back(cur);
    path.push_back(from);
    std::reverse(path.begin(), path.end());
    return path;
}

} // namespace syscomm
