#include "core/topology.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace syscomm {

Topology
Topology::linearArray(int num_cells)
{
    assert(num_cells >= 1);
    Topology t;
    t.num_cells_ = num_cells;
    t.name_ = "linear(" + std::to_string(num_cells) + ")";
    for (CellId c = 0; c + 1 < num_cells; ++c)
        t.links_.push_back({c, c + 1});
    t.finalize();
    return t;
}

Topology
Topology::ring(int num_cells)
{
    assert(num_cells >= 3);
    Topology t;
    t.num_cells_ = num_cells;
    t.name_ = "ring(" + std::to_string(num_cells) + ")";
    for (CellId c = 0; c + 1 < num_cells; ++c)
        t.links_.push_back({c, c + 1});
    t.links_.push_back({0, num_cells - 1});
    t.finalize();
    return t;
}

Topology
Topology::mesh(int rows, int cols)
{
    assert(rows >= 1 && cols >= 1);
    Topology t;
    t.num_cells_ = rows * cols;
    t.mesh_rows_ = rows;
    t.mesh_cols_ = cols;
    t.name_ = "mesh(" + std::to_string(rows) + "x" + std::to_string(cols) +
              ")";
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            CellId id = r * cols + c;
            if (c + 1 < cols)
                t.links_.push_back({id, id + 1});
            if (r + 1 < rows)
                t.links_.push_back({id, id + cols});
        }
    }
    t.finalize();
    return t;
}

Topology
Topology::torus(int rows, int cols)
{
    assert(rows >= 3 && cols >= 3);
    Topology t;
    t.num_cells_ = rows * cols;
    t.name_ = "torus(" + std::to_string(rows) + "x" +
              std::to_string(cols) + ")";
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            CellId id = r * cols + c;
            CellId right = r * cols + (c + 1) % cols;
            CellId down = ((r + 1) % rows) * cols + c;
            t.links_.push_back({id, right});
            t.links_.push_back({id, down});
        }
    }
    t.finalize();
    return t;
}

Topology
Topology::custom(int num_cells, std::vector<Link> links)
{
    assert(num_cells >= 1);
    Topology t;
    t.num_cells_ = num_cells;
    t.name_ = "custom(" + std::to_string(num_cells) + ")";
    t.links_ = std::move(links);
    for (Link& l : t.links_) {
        assert(l.a != l.b && "self-links are not allowed");
        assert(l.a >= 0 && l.a < num_cells && l.b >= 0 && l.b < num_cells);
        if (l.a > l.b)
            std::swap(l.a, l.b);
    }
    t.finalize();
    return t;
}

void
Topology::finalize()
{
    // Normalize endpoint order and build adjacency + lookup.
    for (Link& l : links_) {
        if (l.a > l.b)
            std::swap(l.a, l.b);
    }
    adjacency_.assign(num_cells_, {});
    link_lookup_.assign(static_cast<std::size_t>(num_cells_) * num_cells_,
                        kInvalidLink);
    for (LinkIndex i = 0; i < numLinks(); ++i) {
        const Link& l = links_[i];
        adjacency_[l.a].push_back(l.b);
        adjacency_[l.b].push_back(l.a);
        link_lookup_[static_cast<std::size_t>(l.a) * num_cells_ + l.b] = i;
        link_lookup_[static_cast<std::size_t>(l.b) * num_cells_ + l.a] = i;
    }
    for (auto& nbrs : adjacency_)
        std::sort(nbrs.begin(), nbrs.end());
}

std::optional<LinkIndex>
Topology::linkBetween(CellId x, CellId y) const
{
    if (x < 0 || y < 0 || x >= num_cells_ || y >= num_cells_)
        return std::nullopt;
    LinkIndex idx =
        link_lookup_[static_cast<std::size_t>(x) * num_cells_ + y];
    if (idx == kInvalidLink)
        return std::nullopt;
    return idx;
}

std::vector<CellId>
Topology::routePath(CellId from, CellId to) const
{
    assert(from >= 0 && from < num_cells_ && to >= 0 && to < num_cells_);
    if (from == to)
        return {from};

    if (isMesh()) {
        // Dimension-order (XY) routing: adjust column first, then row.
        std::vector<CellId> path{from};
        int r = from / mesh_cols_;
        int c = from % mesh_cols_;
        int tr = to / mesh_cols_;
        int tc = to % mesh_cols_;
        while (c != tc) {
            c += (tc > c) ? 1 : -1;
            path.push_back(r * mesh_cols_ + c);
        }
        while (r != tr) {
            r += (tr > r) ? 1 : -1;
            path.push_back(r * mesh_cols_ + c);
        }
        return path;
    }

    // BFS with smallest-neighbor preference: parents are assigned in
    // ascending neighbor order, making the shortest path deterministic.
    std::vector<CellId> parent(num_cells_, kInvalidCell);
    std::queue<CellId> frontier;
    parent[from] = from;
    frontier.push(from);
    while (!frontier.empty()) {
        CellId cur = frontier.front();
        frontier.pop();
        if (cur == to)
            break;
        for (CellId nxt : adjacency_[cur]) {
            if (parent[nxt] == kInvalidCell) {
                parent[nxt] = cur;
                frontier.push(nxt);
            }
        }
    }
    if (parent[to] == kInvalidCell)
        return {};
    std::vector<CellId> path;
    for (CellId cur = to; cur != from; cur = parent[cur])
        path.push_back(cur);
    path.push_back(from);
    std::reverse(path.begin(), path.end());
    return path;
}

} // namespace syscomm
