#pragma once

/**
 * @file
 * Label-consistency verification (paper, section 5, step 1).
 *
 * A labeling is *consistent* when every cell program writes to or
 * reads from messages with non-decreasing labels, scanning the
 * program text in order.
 */

#include <string>
#include <vector>

#include "core/program.h"
#include "core/rational.h"
#include "core/types.h"

namespace syscomm {

/** One violation of label consistency. */
struct ConsistencyIssue
{
    CellId cell = kInvalidCell;
    /** Op index (full program) where the label decreased. */
    int pos = 0;
    MessageId prevMsg = kInvalidMessage;
    MessageId curMsg = kInvalidMessage;
    Rational prevLabel;
    Rational curLabel;

    std::string str(const Program& program) const;
};

/**
 * Check a labeling (indexed by MessageId) for consistency. Returns all
 * positions where a cell program's label sequence decreases; empty
 * means consistent.
 */
std::vector<ConsistencyIssue>
checkLabelConsistency(const Program& program,
                      const std::vector<Rational>& labels);

/** Convenience: no violations. */
bool isConsistentLabeling(const Program& program,
                          const std::vector<Rational>& labels);

} // namespace syscomm
