#pragma once

/**
 * @file
 * Cell-program operations. The paper's deadlock machinery uses only
 * the read (R) and write (W) operations of a program; compute ops are
 * carried so the simulator can execute real numerics (e.g. the
 * multiply-accumulate statements of Fig. 2) but are invisible to every
 * analysis.
 */

#include <cstdint>

#include "core/types.h"

namespace syscomm {

/** Kind of a cell-program operation. */
enum class OpKind : std::uint8_t
{
    kRead = 0,    ///< R(X): pop one word from message X's final queue.
    kWrite = 1,   ///< W(X): push one word into message X's first queue.
    kCompute = 2, ///< Local computation; never blocks, not analyzed.
};

/** One operation in a cell program. */
struct Op
{
    OpKind kind = OpKind::kCompute;
    /** Message operated on (kInvalidMessage for compute ops). */
    MessageId msg = kInvalidMessage;
    /** Index into the program's compute-function table (compute only). */
    std::int32_t computeId = -1;

    static Op read(MessageId m) { return {OpKind::kRead, m, -1}; }
    static Op write(MessageId m) { return {OpKind::kWrite, m, -1}; }
    static Op compute(std::int32_t id)
    {
        return {OpKind::kCompute, kInvalidMessage, id};
    }

    bool isRead() const { return kind == OpKind::kRead; }
    bool isWrite() const { return kind == OpKind::kWrite; }
    bool isCompute() const { return kind == OpKind::kCompute; }
    /** True for the R/W ops the deadlock analyses consider. */
    bool isTransfer() const { return kind != OpKind::kCompute; }

    bool operator==(const Op& o) const
    {
        return kind == o.kind && msg == o.msg && computeId == o.computeId;
    }
};

} // namespace syscomm
