#pragma once

/**
 * @file
 * Related-message analysis (paper, section 6).
 *
 * Two messages A and B are related if, in some cell program, an R(A)
 * or W(A) appears between two R(B)s or between two W(B)s. The relation
 * is closed symmetrically and transitively; related messages must
 * share a label so the compatible queue assignment gives them separate
 * queues simultaneously (Figs. 8 and 9).
 */

#include <vector>

#include "core/program.h"
#include "core/types.h"

namespace syscomm {

/** Classic union-find over dense integer ids. */
class UnionFind
{
  public:
    explicit UnionFind(int n) : parent_(n), rank_(n, 0)
    {
        for (int i = 0; i < n; ++i)
            parent_[i] = i;
    }

    int find(int x) const
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    /** Merge the classes of a and b; returns the new root. */
    int unite(int a, int b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return a;
        if (rank_[a] < rank_[b])
            std::swap(a, b);
        parent_[b] = a;
        if (rank_[a] == rank_[b])
            ++rank_[a];
        return a;
    }

    bool same(int a, int b) const { return find(a) == find(b); }

    int size() const { return static_cast<int>(parent_.size()); }

  private:
    mutable std::vector<int> parent_;
    std::vector<int> rank_;
};

/**
 * Compute the related-message equivalence classes of a program.
 * The returned union-find has one element per message id.
 */
UnionFind computeRelatedClasses(const Program& program);

/**
 * The equivalence classes as explicit groups (singletons included),
 * each sorted ascending, groups ordered by their smallest member.
 */
std::vector<std::vector<MessageId>> relatedGroups(const Program& program);

/** Are two messages related (directly or transitively)? */
bool areRelated(const Program& program, MessageId a, MessageId b);

} // namespace syscomm
