#pragma once

/**
 * @file
 * Random program generators for property tests and Monte-Carlo
 * benchmarks.
 *
 * randomDeadlockFreeProgram() follows the paper's section 3.3 writing
 * strategy: "write the cell programs as if only one word in one message
 * would be transferred in a given step". Serializing word transfers
 * guarantees the crossing-off procedure can replay the generation
 * order, so the result is deadlock-free by construction.
 */

#include <cstdint>

#include "core/program.h"
#include "core/topology.h"

namespace syscomm {

/** Knobs for the random generators. */
struct GenOptions
{
    int numMessages = 8;
    /** Words per message are drawn uniformly from [1, maxWords]. */
    int maxWords = 6;
    std::uint64_t seed = 1;
    /** Allow sender/receiver pairs that are not adjacent. */
    bool multiHop = true;
    /**
     * Probability of switching to a different message between words.
     * 0 emits each message's words contiguously (no related messages,
     * mostly distinct labels); higher values interleave messages,
     * creating related classes that must share labels — and therefore
     * need wider queue pools.
     */
    double interleave = 0.3;
};

/**
 * A random deadlock-free program over the given topology (section 3.3
 * strategy). Always validates cleanly and passes the basic
 * crossing-off procedure.
 */
Program randomDeadlockFreeProgram(const Topology& topo,
                                  const GenOptions& options);

/**
 * Copy @p program with @p swaps random adjacent transpositions applied
 * inside random cell programs. Word-count structure is preserved, so
 * the result still validates, but deadlock-freedom may be destroyed —
 * useful for exercising the detectors.
 */
Program perturbProgram(const Program& program, int swaps,
                       std::uint64_t seed);

} // namespace syscomm
