#pragma once

/**
 * @file
 * Random program generators for property tests and Monte-Carlo
 * benchmarks.
 *
 * randomDeadlockFreeProgram() follows the paper's section 3.3 writing
 * strategy: "write the cell programs as if only one word in one message
 * would be transferred in a given step". Serializing word transfers
 * guarantees the crossing-off procedure can replay the generation
 * order, so the result is deadlock-free by construction.
 */

#include <cstdint>

#include "core/program.h"
#include "core/topology.h"

namespace syscomm {

/** Knobs for the random generators. */
struct GenOptions
{
    int numMessages = 8;
    /** Words per message are drawn uniformly from [1, maxWords]. */
    int maxWords = 6;
    std::uint64_t seed = 1;
    /** Allow sender/receiver pairs that are not adjacent. */
    bool multiHop = true;
    /**
     * Probability of switching to a different message between words.
     * 0 emits each message's words contiguously (no related messages,
     * mostly distinct labels); higher values interleave messages,
     * creating related classes that must share labels — and therefore
     * need wider queue pools.
     */
    double interleave = 0.3;
};

/**
 * A random deadlock-free program over the given topology (section 3.3
 * strategy). Always validates cleanly and passes the basic
 * crossing-off procedure.
 */
Program randomDeadlockFreeProgram(const Topology& topo,
                                  const GenOptions& options);

/**
 * Copy @p program with @p swaps random adjacent transpositions applied
 * inside random cell programs. Word-count structure is preserved, so
 * the result still validates, but deadlock-freedom may be destroyed —
 * useful for exercising the detectors.
 */
Program perturbProgram(const Program& program, int swaps,
                       std::uint64_t seed);

/**
 * Activity shape of a large-array workload. The three phases cover
 * the regimes that stress different parts of an event-driven kernel:
 * sparse exercises fast-forward over idle stretches, streaming
 * exercises the hot-link forwarding scan, and dense-active exercises
 * active-set mutation throughput (every cell blocks and wakes every
 * few cycles).
 */
enum class ArrayPhase
{
    /** A handful of long streams; almost the whole array is idle. */
    kSparse,
    /** Disjoint medium streams tiling the array end to end. */
    kStreaming,
    /** Neighbor ping-pong on disjoint cell pairs: every cell busy. */
    kDenseActive,
};

const char* arrayPhaseName(ArrayPhase phase);

/** Knobs for largeArrayProgram(). */
struct LargeArrayOptions
{
    ArrayPhase phase = ArrayPhase::kStreaming;
    /** Stream count for sparse/streaming (dense derives its own). */
    int messages = 8;
    /** Words per message (dense jitters per pair from the seed). */
    int wordsPerMessage = 32;
    /** Sender compute cycles per word (sparse/streaming only). */
    int computeGap = 8;
    std::uint64_t seed = 1;
};

/**
 * A deadlock-free workload for a @p cells-cell linear array in the
 * given phase, deterministic in the options. Built for the 4k-100k
 * cell scaling experiments (bench_large_array) and the large-array
 * kernel-equivalence tests; cells/messages scale with the array, the
 * per-cell program stays O(wordsPerMessage).
 */
Program largeArrayProgram(int cells, const LargeArrayOptions& options);

} // namespace syscomm
