#include "core/message.h"

namespace syscomm {

std::string
MessageDecl::str() const
{
    return name + ": " + std::to_string(sender) + " -> " +
           std::to_string(receiver);
}

} // namespace syscomm
