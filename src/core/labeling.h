#pragma once

/**
 * @file
 * Consistent message labeling (paper, sections 5, 6 and 8.2).
 *
 * Every message receives a positive label; multiple messages may share
 * one. A labeling is *consistent* when each cell program touches
 * messages in non-decreasing label order. The section 6 scheme labels
 * messages in the order the crossing-off procedure first executes
 * them:
 *
 *   1a. If neither endpoint of the message will touch an
 *       already-labeled message, use a fresh maximum label.
 *   1b. Otherwise pick a label strictly between the last label either
 *       endpoint accessed and the smallest label either endpoint will
 *       still access (possibly a non-integer rational).
 *   1c. Related messages receive the same label.
 *   1d. With lookahead, messages whose writes were skipped receive the
 *       executing message's label (section 8.2).
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/crossoff.h"
#include "core/program.h"
#include "core/rational.h"
#include "core/types.h"

namespace syscomm {

/** Options for the section 6 labeler. */
struct LabelingOptions
{
    /** Use the lookahead crossing-off procedure (section 8). */
    bool lookahead = false;
    /** Rule R2 bound (lookahead only). */
    SkipBoundFn skip_bound;
    /**
     * Which executable pair step 1 picks when several are available.
     * The paper leaves this open ("how to pick an optimal one ... is an
     * issue"); declaration order reproduces the paper's Fig. 7 labels.
     */
    enum class Pick : std::uint8_t
    {
        kDeclarationOrder,   ///< Lowest message id first.
        kReverseDeclaration, ///< Highest message id first (stress order).
        kLabeledFirst,       ///< Prefer already-labeled messages.
    };
    Pick pick = Pick::kDeclarationOrder;
    /** Record a human-readable narration of each labeling step. */
    bool record_log = false;
};

/** Result of a labeling run. */
struct Labeling
{
    bool success = false;
    std::string error;
    /** Label per MessageId; meaningful only when success is true. */
    std::vector<Rational> labels;
    /** Step-by-step narration (when record_log was set). */
    std::vector<std::string> log;

    /**
     * Labels renormalized to dense positive integers 1..k, preserving
     * order and ties. Handy for reports and for the simulator.
     */
    std::vector<std::int64_t> normalized() const;

    /** "A=1 B=3 C=2" rendering. */
    std::string str(const Program& program) const;
};

/**
 * Run the section 6 scheme. Fails (success == false) when the program
 * is not deadlock-free under the selected crossing-off options, or in
 * the (never observed for deadlock-free programs) case that rule 1b's
 * bounds are infeasible.
 */
Labeling labelMessages(const Program& program,
                       const LabelingOptions& options = {});

/**
 * The trivial consistent labeling: every message gets label 1
 * (section 5 remark). Always consistent, but forces the compatible
 * assignment to treat all competitors as one simultaneous group, so it
 * "will not likely yield an efficient use of queues".
 */
Labeling trivialLabeling(const Program& program);

/**
 * Direct constraint-graph labeling — an alternative scheme under the
 * paper's "many labeling schemes can be used" remark. Consistency
 * demands label(m1) <= label(m2) whenever some cell program touches m1
 * immediately before m2; those constraints form a digraph whose
 * strongly connected components *must* share a label and whose
 * condensation can be labeled in topological order with distinct
 * integers. The result is always consistent (even for deadlocked
 * programs, since consistency is a property of the text alone) and
 * shares labels only where sharing is forced.
 */
Labeling graphLabeling(const Program& program);

} // namespace syscomm
