#pragma once

/**
 * @file
 * Machine description: topology plus the per-link queue resources.
 * "There are a fixed number of queues between adjacent cells"
 * (paper, section 2.3).
 */

#include "core/topology.h"

namespace syscomm {

/** Static description of a programmable systolic array. */
struct MachineSpec
{
    /**
     * The interconnection graph, shared rather than owned: copying a
     * spec (or assigning one spec's topo to another) aliases the same
     * immutable Topology, so a shape ladder of N specs over a
     * 100k-cell array keeps one topology alive instead of N.
     * Assigning a plain Topology wraps it in a fresh shared node.
     */
    SharedTopology topo;
    /** Hardware queues on each link (shared by both directions). */
    int queuesPerLink = 2;
    /** Words a queue buffers; 1 models the paper's plain latch. */
    int queueCapacity = 1;
    /**
     * Extra words spillable into the receiving cell's local memory
     * (the iWarp "queue extension" of section 8). 0 disables it.
     */
    int extensionCapacity = 0;
    /**
     * Extra cycles a word pays when it passed through the extension
     * ("at the expense of larger queue access time").
     */
    int extensionPenalty = 4;

    /** Effective per-queue capacity including the extension. */
    int totalQueueCapacity() const
    {
        return queueCapacity + extensionCapacity;
    }
};

} // namespace syscomm
