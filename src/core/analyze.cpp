#include "core/analyze.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "core/competing.h"
#include "core/crossoff.h"
#include "core/label_verify.h"
#include "core/labeling.h"
#include "core/machine_spec.h"

namespace syscomm {

namespace {

Diagnostic makeDiag(Severity severity, LintRule rule, std::string text)
{
    Diagnostic d;
    d.severity = severity;
    d.rule = rule;
    d.text = std::move(text);
    return d;
}

std::string opStr(const Program& program, CellId cell, int opIndex)
{
    const auto& ops = program.cellOps(cell);
    if (opIndex < 0 || opIndex >= static_cast<int>(ops.size()))
        return "?";
    const Op& op = ops[opIndex];
    if (op.isCompute())
        return "C";
    std::string name = op.msg != kInvalidMessage &&
                               op.msg < program.numMessages()
                           ? program.message(op.msg).name
                           : "?";
    return (op.isWrite() ? "W(" : "R(") + name + ")";
}

/**
 * Pass 1 witness extraction. The wait-for graph over the stuck fronts
 * is functional (each stuck cell waits for exactly one other cell: its
 * front op's partner endpoint), so following edges from any stuck cell
 * must revisit a cell, and the revisited suffix is a simple blocked
 * cycle.
 *
 * Why the partner of a stuck front is itself stuck: a front R(m) is
 * message m's first uncrossed read, so m's next pair has its read side
 * reachable; the pair being non-executable means the sender's first
 * uncrossed W(m) is unreachable, hence the sender still has uncrossed
 * work. Symmetrically for a front W(m) and its receiver.
 */
DeadlockWitness extractWitness(const Program& program,
                               const CrossOffResult& stuck)
{
    DeadlockWitness witness;
    witness.blockedCells = static_cast<int>(stuck.stuckFronts.size());
    if (stuck.stuckFronts.empty())
        return witness;

    std::unordered_map<CellId, int> frontOf;
    frontOf.reserve(stuck.stuckFronts.size());
    for (const auto& [cell, op] : stuck.stuckFronts)
        frontOf.emplace(cell, op);

    std::vector<WitnessEntry> path;
    std::unordered_map<CellId, int> visitedAt;
    CellId cur = stuck.stuckFronts.front().first;
    while (visitedAt.find(cur) == visitedAt.end())
    {
        auto it = frontOf.find(cur);
        if (it == frontOf.end())
            break; // Unreachable by construction; degrade gracefully.
        const Op& op = program.cellOps(cur)[it->second];
        WitnessEntry entry;
        entry.cell = cur;
        entry.op = it->second;
        entry.msg = op.msg;
        entry.isWrite = op.isWrite();
        const MessageDecl& decl = program.message(op.msg);
        entry.waitsFor = entry.isWrite ? decl.receiver : decl.sender;
        visitedAt.emplace(cur, static_cast<int>(path.size()));
        path.push_back(entry);
        cur = entry.waitsFor;
    }

    auto cycleStart = visitedAt.find(cur);
    if (cycleStart != visitedAt.end())
        path.erase(path.begin(), path.begin() + cycleStart->second);
    witness.cycle = std::move(path);
    return witness;
}

/**
 * Pass 2 helper: smallest value in [1, hi] for which @p free holds,
 * or -1 when even hi fails. Deadlock-freedom is monotone in the skip
 * bound (rule R2 only ever compares a count against it), so binary
 * search applies.
 */
template <typename FreeAt>
int searchSmallest(int hi, FreeAt&& free)
{
    if (!free(hi))
        return -1;
    int lo = 1;
    while (lo < hi)
    {
        int mid = lo + (hi - lo) / 2;
        if (free(mid))
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

} // namespace

const char* severityName(Severity severity)
{
    switch (severity)
    {
        case Severity::kInfo: return "info";
        case Severity::kWarning: return "warning";
        case Severity::kError: return "error";
    }
    return "?";
}

const char* lintRuleId(LintRule rule)
{
    switch (rule)
    {
        case LintRule::kInvalidProgram: return "SL001";
        case LintRule::kUnroutableMessage: return "SL002";
        case LintRule::kTopologyMismatch: return "SL003";
        case LintRule::kComputePin: return "SL004";
        case LintRule::kDeadlockWitness: return "SL010";
        case LintRule::kBufferBound: return "SL011";
        case LintRule::kNoFiniteBuffer: return "SL012";
        case LintRule::kLookaheadOnly: return "SL013";
        case LintRule::kLabelingFallback: return "SL020";
        case LintRule::kInconsistentLabels: return "SL021";
        case LintRule::kQueueInfeasible: return "SL022";
    }
    return "SL000";
}

const char* lintVerdictName(LintVerdict verdict)
{
    switch (verdict)
    {
        case LintVerdict::kCertified: return "certified";
        case LintVerdict::kDeadlock: return "deadlock";
        case LintVerdict::kUnknown: return "unknown";
        case LintVerdict::kInvalid: return "invalid";
    }
    return "?";
}

std::string Diagnostic::str(const Program& program) const
{
    std::ostringstream out;
    out << severityName(severity) << ' ' << lintRuleId(rule);
    if (cell != kInvalidCell)
        out << " cell=" << cell;
    if (op >= 0)
        out << " op=" << op;
    if (msg != kInvalidMessage && msg < program.numMessages())
        out << " msg=" << program.message(msg).name;
    if (link != kInvalidLink)
        out << " link=" << link;
    out << ": " << text;
    return out.str();
}

std::string DeadlockWitness::str(const Program& program) const
{
    std::ostringstream out;
    for (std::size_t i = 0; i < cycle.size(); ++i)
    {
        const WitnessEntry& e = cycle[i];
        if (i)
            out << "; ";
        out << "cell " << e.cell << " waits at op " << e.op << ' '
            << opStr(program, e.cell, e.op) << " for cell " << e.waitsFor;
    }
    return out.str();
}

bool AnalysisReport::hasErrors() const
{
    return std::any_of(diagnostics.begin(), diagnostics.end(),
                       [](const Diagnostic& d) {
                           return d.severity == Severity::kError;
                       });
}

std::string AnalysisReport::render(const Program& program) const
{
    std::ostringstream out;
    out << "verdict: " << lintVerdictName(verdict) << " (queues="
        << shape.queuesPerLink << " capacity=" << shape.queueCapacity
        << " extension=" << shape.extensionCapacity << ")\n";
    if (!witness.empty())
        out << "witness: " << witness.str(program) << '\n';
    for (const Diagnostic& d : diagnostics)
        out << "  " << d.str(program) << '\n';
    return out.str();
}

AnalysisReport analyzeProgram(const Program& program, const Topology& topo,
                              const AnalyzeOptions& options)
{
    AnalysisReport report;
    report.shape = options;

    // ------------------------------------------------------------------
    // Pass 4a: structural validity. Everything downstream indexes by
    // the program's cells and messages, so invalid programs stop here.
    // ------------------------------------------------------------------
    if (program.numCells() > topo.numCells())
    {
        Diagnostic d = makeDiag(
            Severity::kError, LintRule::kTopologyMismatch,
            "program declares " + std::to_string(program.numCells()) +
                " cells but the topology has only " +
                std::to_string(topo.numCells()));
        report.diagnostics.push_back(std::move(d));
        report.verdict = LintVerdict::kInvalid;
        return report;
    }
    std::vector<std::string> issues = program.validate(topo.numCells());
    if (!issues.empty())
    {
        for (std::string& issue : issues)
            report.diagnostics.push_back(makeDiag(Severity::kError,
                                                  LintRule::kInvalidProgram,
                                                  std::move(issue)));
        report.verdict = LintVerdict::kInvalid;
        return report;
    }

    // ------------------------------------------------------------------
    // Pass 4b: route liveness. Must precede CompetingAnalysis, which
    // asserts connectivity. Standard topologies are connected; custom
    // (e.g. fault-degraded) ones may not be.
    // ------------------------------------------------------------------
    bool unroutable = false;
    for (MessageId m = 0; m < program.numMessages(); ++m)
    {
        const MessageDecl& decl = program.message(m);
        if (topo.routePath(decl.sender, decl.receiver).empty())
        {
            Diagnostic d = makeDiag(
                Severity::kError, LintRule::kUnroutableMessage,
                "message " + decl.name + " has no route from cell " +
                    std::to_string(decl.sender) + " to cell " +
                    std::to_string(decl.receiver));
            d.msg = m;
            d.cell = decl.sender;
            report.diagnostics.push_back(std::move(d));
            unroutable = true;
        }
    }
    if (unroutable)
    {
        report.verdict = LintVerdict::kInvalid;
        return report;
    }

    // ------------------------------------------------------------------
    // Pass 4c: compute-op neighborhood pins (informational). A cell
    // with compute ops cannot be remapped by repair/recovery and its
    // callbacks cannot cross the serve socket.
    // ------------------------------------------------------------------
    for (CellId cell = 0; cell < program.numCells(); ++cell)
    {
        int computeOps = 0;
        for (const Op& op : program.cellOps(cell))
            if (op.isCompute())
                ++computeOps;
        if (computeOps == 0)
            continue;
        Diagnostic d = makeDiag(
            Severity::kInfo, LintRule::kComputePin,
            "cell has " + std::to_string(computeOps) +
                " compute op(s): pinned to its physical neighborhood "
                "(repair cannot remap it; callbacks do not serialize)");
        d.cell = cell;
        report.diagnostics.push_back(std::move(d));
    }

    // ------------------------------------------------------------------
    // Pass 1: deadlock certification. The basic procedure first (the
    // Theorem 1 precondition), then lookahead under the shape's real
    // R2 bound: hops(route) x effective per-queue capacity.
    // ------------------------------------------------------------------
    const int capacity = options.totalQueueCapacity();
    CrossOffResult basic = crossOff(program);
    report.basicDeadlockFree = basic.deadlockFree;

    CrossOffOptions shapeOpts;
    shapeOpts.lookahead = true;
    shapeOpts.skip_bound = routeCapacitySkipBound(program, topo, capacity);
    CrossOffResult atShape =
        basic.deadlockFree ? basic : crossOff(program, shapeOpts);
    if (!atShape.deadlockFree)
    {
        report.verdict = LintVerdict::kDeadlock;
        report.witness = extractWitness(program, atShape);
        for (const WitnessEntry& e : report.witness.cycle)
        {
            Diagnostic d = makeDiag(
                Severity::kError, LintRule::kDeadlockWitness,
                "blocked cycle: " + opStr(program, e.cell, e.op) +
                    " cannot pair (waits for cell " +
                    std::to_string(e.waitsFor) + "); " +
                    std::to_string(atShape.remainingOps) +
                    " transfer op(s) uncrossable at per-queue capacity " +
                    std::to_string(capacity));
            d.cell = e.cell;
            d.op = e.op;
            d.msg = e.msg;
            report.diagnostics.push_back(std::move(d));
        }
    }

    // ------------------------------------------------------------------
    // Pass 2: buffer-bound inference. Monotone in the bound, so binary
    // search; a per-message bound of maxLen words is equivalent to
    // unlimited buffering (no message has more writes to skip).
    // ------------------------------------------------------------------
    int maxLen = 1;
    for (MessageId m = 0; m < program.numMessages(); ++m)
        maxLen = std::max(maxLen, program.messageLength(m));
    if (basic.deadlockFree)
    {
        report.minUniformCapacity = 0;
        report.minUniformSkipBound = 0;
    }
    else
    {
        report.minUniformCapacity = searchSmallest(maxLen, [&](int cap) {
            CrossOffOptions o;
            o.lookahead = true;
            o.skip_bound = routeCapacitySkipBound(program, topo, cap);
            return crossOff(program, o).deadlockFree;
        });
        report.minUniformSkipBound = searchSmallest(maxLen, [&](int bound) {
            CrossOffOptions o;
            o.lookahead = true;
            o.skip_bound = uniformSkipBound(bound);
            return crossOff(program, o).deadlockFree;
        });
        if (report.minUniformCapacity < 0)
        {
            report.diagnostics.push_back(makeDiag(
                Severity::kError, LintRule::kNoFiniteBuffer,
                "no finite queue capacity avoids deadlock (a read cycle: "
                "rule R1 can skip writes only)"));
        }
        else
        {
            Severity sev = report.minUniformCapacity > capacity
                               ? Severity::kWarning
                               : Severity::kInfo;
            report.diagnostics.push_back(makeDiag(
                sev, LintRule::kBufferBound,
                "deadlock-free from per-queue capacity " +
                    std::to_string(report.minUniformCapacity) +
                    " (uniform skip bound " +
                    std::to_string(report.minUniformSkipBound) +
                    "); analyzed shape provides " + std::to_string(capacity)));
            if (atShape.deadlockFree)
            {
                report.diagnostics.push_back(makeDiag(
                    Severity::kWarning, LintRule::kLookaheadOnly,
                    "deadlock-free only via section 8.1 lookahead "
                    "buffering; the basic procedure fails, so Theorem 1 "
                    "certification does not apply"));
            }
        }
    }

    // ------------------------------------------------------------------
    // Pass 3: label feasibility. Uses the exact labeling a SimSession
    // would (section 6 scheme, trivial fallback — keep in lockstep
    // with CompiledProgram::labels()), then Theorem 1's conditions:
    // (i) consistency, (ii) queues per link >= largest same-label
    // group crossing it.
    // ------------------------------------------------------------------
    Labeling labeling = labelMessages(program);
    if (!labeling.success)
    {
        report.labelingFellBack = true;
        labeling = trivialLabeling(program);
        report.diagnostics.push_back(makeDiag(
            report.verdict == LintVerdict::kDeadlock ? Severity::kInfo
                                                     : Severity::kWarning,
            LintRule::kLabelingFallback,
            "section 6 labeling failed; the trivial all-1 labeling is in "
            "force (all competitors form one simultaneous group)"));
    }
    std::vector<ConsistencyIssue> inconsistent =
        checkLabelConsistency(program, labeling.labels);
    report.labelsConsistent = inconsistent.empty();
    for (const ConsistencyIssue& issue : inconsistent)
    {
        Diagnostic d = makeDiag(Severity::kError,
                                LintRule::kInconsistentLabels, issue.str(program));
        d.cell = issue.cell;
        d.op = issue.pos;
        d.msg = issue.curMsg;
        report.diagnostics.push_back(std::move(d));
    }

    CompetingAnalysis competing = CompetingAnalysis::analyze(program, topo);
    MachineSpec spec;
    // Alias the caller's topology without copying it; the spec does not
    // outlive this call.
    spec.topo = SharedTopology(
        std::shared_ptr<const Topology>(std::shared_ptr<const Topology>(),
                                        &topo));
    spec.queuesPerLink = options.queuesPerLink;
    spec.queueCapacity = options.queueCapacity;
    spec.extensionCapacity = options.extensionCapacity;
    Feasibility dynamic =
        checkDynamicFeasibility(competing, labeling.labels, spec);
    report.feasibleAtShape = dynamic.feasible;
    report.requiredQueuesPerLink = dynamic.requiredQueuesPerLink;
    report.worstLink = dynamic.worstLink;
    if (!dynamic.feasible)
    {
        Diagnostic d = makeDiag(
            report.verdict == LintVerdict::kDeadlock ? Severity::kInfo
                                                     : Severity::kWarning,
            LintRule::kQueueInfeasible,
            "Theorem 1 condition (ii) fails: " + dynamic.reason);
        d.link = dynamic.worstLink;
        report.diagnostics.push_back(std::move(d));
    }

    if (report.verdict != LintVerdict::kDeadlock)
    {
        bool certified = report.basicDeadlockFree &&
                         report.labelsConsistent && report.feasibleAtShape;
        report.verdict =
            certified ? LintVerdict::kCertified : LintVerdict::kUnknown;
    }
    return report;
}

} // namespace syscomm
