#include "core/compile.h"

#include "core/label_verify.h"

namespace syscomm {

CompilePlan
compileProgram(const Program& program, const MachineSpec& spec,
               const CompileOptions& options)
{
    CompilePlan plan;

    plan.validationIssues = program.validate(spec.topo.numCells());
    if (!plan.validationIssues.empty()) {
        plan.error = "program validation failed: " +
                     plan.validationIssues.front();
        return plan;
    }

    // Step 1: deadlock-freedom via crossing-off.
    CrossOffOptions co;
    co.lookahead = options.lookahead;
    if (options.lookahead) {
        co.skip_bound = routeCapacitySkipBound(program, spec.topo,
                                               spec.totalQueueCapacity());
    }
    plan.crossoff = crossOff(program, co);
    if (!plan.crossoff.deadlockFree) {
        plan.error = plan.crossoff.describeStuck(program);
        return plan;
    }

    // Step 2: consistent labeling (scheme per options).
    switch (options.scheme) {
      case LabelScheme::kSection6: {
        LabelingOptions lo;
        lo.lookahead = options.lookahead;
        lo.skip_bound = co.skip_bound;
        lo.pick = options.pick;
        lo.record_log = options.record_log;
        plan.labeling = labelMessages(program, lo);
        break;
      }
      case LabelScheme::kGraph:
        plan.labeling = graphLabeling(program);
        break;
      case LabelScheme::kTrivial:
        plan.labeling = trivialLabeling(program);
        break;
    }
    if (plan.labeling.success &&
        !isConsistentLabeling(program, plan.labeling.labels)) {
        plan.labeling.success = false;
        plan.labeling.error = "section 6 scheme produced an inconsistent "
                              "labeling";
    }
    if (!plan.labeling.success) {
        if (!options.allowTrivialFallback) {
            plan.error = "labeling failed: " + plan.labeling.error;
            return plan;
        }
        plan.labeling = trivialLabeling(program);
        plan.usedTrivialFallback = true;
    }
    plan.normalizedLabels = plan.labeling.normalized();

    // Step 3: feasibility of a compatible assignment on this machine.
    plan.competing = CompetingAnalysis::analyze(program, spec.topo);
    plan.staticFeasibility = checkStaticFeasibility(plan.competing, spec);
    plan.dynamicFeasibility =
        checkDynamicFeasibility(plan.competing, plan.labeling.labels, spec);

    if (!plan.dynamicFeasibility.feasible) {
        plan.error = "no compatible queue assignment possible: " +
                     plan.dynamicFeasibility.reason;
        return plan;
    }

    plan.ok = true;
    return plan;
}

std::string
CompilePlan::report(const Program& program) const
{
    std::string out;
    out += "deadlock-free: ";
    out += crossoff.deadlockFree ? "yes" : "no";
    out += "\n";
    if (!crossoff.deadlockFree) {
        out += crossoff.describeStuck(program);
        return out;
    }
    out += "labels: " + labeling.str(program);
    if (usedTrivialFallback)
        out += " (trivial fallback)";
    out += "\n";
    out += "static assignment:  " +
           std::string(staticFeasibility.feasible ? "feasible" :
                                                    "infeasible") +
           " (needs " + std::to_string(staticFeasibility.requiredQueuesPerLink) +
           " queues/link)\n";
    out += "dynamic assignment: " +
           std::string(dynamicFeasibility.feasible ? "feasible" :
                                                     "infeasible") +
           " (needs " +
           std::to_string(dynamicFeasibility.requiredQueuesPerLink) +
           " queues/link)\n";
    if (!ok)
        out += "error: " + error + "\n";
    return out;
}

} // namespace syscomm
