#pragma once

/**
 * @file
 * The array program: one operation sequence per cell plus the message
 * declarations (paper, section 2). This is the input to every analysis
 * and to the simulator.
 */

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/cell_context.h"
#include "core/message.h"
#include "core/op.h"
#include "core/types.h"

namespace syscomm {

/**
 * A program for an array of cells.
 *
 * Build with declareMessage() / read() / write() / compute(), then call
 * validate() before handing the program to an analysis. All write and
 * read operations are known at build time ("compile time" in the
 * paper): control is data-independent.
 */
class Program
{
  public:
    /** A program over cells 0 .. num_cells-1. */
    explicit Program(int num_cells);

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /**
     * Declare a message. Names must be unique and nonempty; sender and
     * receiver must be distinct cells of the array.
     */
    MessageId declareMessage(std::string name, CellId sender,
                             CellId receiver);

    /** Append R(msg) to @p cell's program. */
    void read(CellId cell, MessageId msg);

    /** Append W(msg) to @p cell's program. */
    void write(CellId cell, MessageId msg);

    /** Append a local computation to @p cell's program. */
    void compute(CellId cell, ComputeFn fn);

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    int numCells() const { return num_cells_; }
    int numMessages() const { return static_cast<int>(messages_.size()); }

    const MessageDecl& message(MessageId id) const { return messages_[id]; }
    const std::vector<MessageDecl>& messages() const { return messages_; }

    /** Look a message up by name. */
    std::optional<MessageId> messageByName(std::string_view name) const;

    /** The operation sequence of one cell. */
    const std::vector<Op>& cellOps(CellId cell) const { return ops_[cell]; }

    /**
     * Number of words in a message: the count of W ops its sender
     * performs on it. validate() checks this equals the read count.
     */
    int messageLength(MessageId id) const { return write_counts_[id]; }

    /** Compute callback table lookup. */
    const ComputeFn& computeFn(std::int32_t id) const
    {
        return compute_fns_[id];
    }

    /** Total operations, including compute ops. */
    int totalOps() const;

    /** Total R/W operations (the ones the analyses see). */
    int totalTransferOps() const;

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /**
     * Structural checks (paper section 2): W(X) appears only in the
     * sender's program and R(X) only in the receiver's; write and read
     * counts match; every declared message is used. Returns a list of
     * human-readable problems; empty means valid.
     */
    std::vector<std::string> validate() const;

    /** validate() plus cell-range checks against a topology. */
    std::vector<std::string> validate(int topology_num_cells) const;

    /** Convenience: validate() returned no issues. */
    bool valid() const { return validate().empty(); }

  private:
    int num_cells_ = 0;
    std::vector<MessageDecl> messages_;
    std::unordered_map<std::string, MessageId> by_name_;
    std::vector<std::vector<Op>> ops_;
    std::vector<ComputeFn> compute_fns_;
    std::vector<int> write_counts_;
    std::vector<int> read_counts_;
};

} // namespace syscomm
