#pragma once

/**
 * @file
 * The end-to-end compile pipeline — the library's headline API.
 *
 * compileProgram() performs, in order, the three steps of the paper's
 * deadlock-avoidance procedure (section 9 summary):
 *
 *   1. check the program is deadlock-free (crossing-off, section 3/8),
 *   2. produce a consistent message labeling (section 6, with the
 *      trivial all-equal labeling as a fallback),
 *   3. check that a compatible queue assignment is possible on the
 *      target machine (assumption (ii) of Theorem 1, section 7).
 *
 * The resulting plan feeds the simulator's compatible queue-assignment
 * policy.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "core/competing.h"
#include "core/crossoff.h"
#include "core/labeling.h"
#include "core/machine_spec.h"
#include "core/program.h"

namespace syscomm {

/** Which consistent labeling scheme the pipeline uses. */
enum class LabelScheme : std::uint8_t
{
    kSection6 = 0, ///< The paper's crossing-off-driven scheme (§6).
    kGraph,        ///< Constraint-graph / SCC-condensation scheme.
    kTrivial,      ///< All-equal labels (§5 remark; queue-hungry).
};

/** Options for compileProgram(). */
struct CompileOptions
{
    /** Use the section 8 lookahead procedure (needs buffered queues). */
    bool lookahead = false;
    /** Labeling scheme to run. */
    LabelScheme scheme = LabelScheme::kSection6;
    /** Pair-pick policy for the §6 labeler. */
    LabelingOptions::Pick pick = LabelingOptions::Pick::kDeclarationOrder;
    /**
     * When the section 6 scheme fails (it should not for deadlock-free
     * programs), fall back to the trivial all-equal labeling rather
     * than failing the compile.
     */
    bool allowTrivialFallback = true;
    /** Record labeling narration. */
    bool record_log = false;
};

/** Everything the compile pipeline derives from a program. */
struct CompilePlan
{
    bool ok = false;
    std::string error;

    /** Program structural validation issues (empty when fine). */
    std::vector<std::string> validationIssues;
    /** Crossing-off verdict and trace. */
    CrossOffResult crossoff;
    /** The labeling used (section 6 or trivial fallback). */
    Labeling labeling;
    bool usedTrivialFallback = false;
    /** labeling.normalized() for convenience. */
    std::vector<std::int64_t> normalizedLabels;
    /** Routes + competing sets. */
    CompetingAnalysis competing;
    /** Section 7 feasibility on the given machine. */
    Feasibility staticFeasibility;
    Feasibility dynamicFeasibility;

    /** Multi-line human-readable report. */
    std::string report(const Program& program) const;
};

/** Run the full pipeline against a machine description. */
CompilePlan compileProgram(const Program& program, const MachineSpec& spec,
                           const CompileOptions& options = {});

} // namespace syscomm
