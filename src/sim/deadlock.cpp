#include "sim/deadlock.h"

#include <sstream>

namespace syscomm::sim {

std::string
DeadlockReport::render() const
{
    if (!deadlocked)
        return "no deadlock";
    std::ostringstream os;
    os << "DEADLOCK at cycle " << atCycle << "\n";
    os << "blocked cells:\n";
    for (const CellBlockInfo& c : cells) {
        os << "  cell " << c.cell << " @ op " << c.pc << " " << c.op
           << " -- " << c.reason << "\n";
    }
    os << "links:\n";
    for (const LinkSnapshot& l : links) {
        os << "  link " << l.link << " (" << l.a << " -- " << l.b << "):";
        for (const QueueSnapshot& q : l.queues) {
            os << " [" << q.msg << " " << q.occupancy << "/" << q.capacity
               << "]";
        }
        if (!l.waiting.empty()) {
            os << "  waiting:";
            for (const std::string& w : l.waiting)
                os << " " << w;
        }
        os << "\n";
    }
    if (!faults.empty()) {
        os << "implicated faults:\n";
        for (const FaultAttribution& f : faults) {
            os << "  [" << f.eventIndex << "] " << f.event << " -- "
               << f.why << "\n";
        }
    }
    return os.str();
}

} // namespace syscomm::sim
