#pragma once

/**
 * @file
 * Deterministic fault injection: a FaultPlan is a seeded, cycle-stamped
 * schedule of hardware failures applied identically by both kernels.
 *
 * The paper assumes perfectly healthy hardware and puts the whole
 * deadlock-freedom burden on the program (section 3.3); production
 * arrays lose links, lose cells, and see buffer capacity degrade
 * mid-run. A FaultPlan makes those scenarios first-class *and*
 * reproducible: the plan is plain data (sorted by cycle, digestable),
 * both kernels apply due events at the top of each executed cycle, and
 * skipped work (a dead link never ticks its assignment policy) is
 * skipped identically — so the bit-identity harness extends unchanged
 * to faulted runs, and a plan digest can gate crash-resume journals.
 *
 * Event kinds:
 *  - kKillLink:     the link is permanently unusable from `cycle` on.
 *                   No queue requests, assignments, pushes, pops or
 *                   forwarding ever happen on it again.
 *  - kKillCell:     the cell freezes (never executes another op) and
 *                   every link adjacent to it dies, from `cycle` on.
 *  - kDegradeQueue: queue `queue` on `link` has its effective capacity
 *                   clamped to `arg` words (>= 1). Words already over
 *                   the clamp stay buffered and drain normally; new
 *                   pushes obey the clamp.
 *  - kStallLink:    the link is unusable for `arg` cycles starting at
 *                   `cycle`, then revives. A transient brown-out: the
 *                   run is never declared dead while a stall is still
 *                   pending.
 *
 * A run whose frozen state implicates injected events terminates with
 * RunStatus::kFaulted and a DeadlockReport carrying fault attribution;
 * see sim/recovery.h for the checkpoint-based pipeline that resumes
 * such runs on a degraded topology.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/machine_spec.h"
#include "core/topology.h"
#include "core/types.h"

namespace syscomm::sim {

/** What a FaultEvent does to the machine. */
enum class FaultKind : std::uint8_t {
    kKillLink = 0,
    kKillCell,
    kDegradeQueue,
    kStallLink,
};

/** Short lowercase name ("kill-link", "stall-link", ...). */
const char* faultKindName(FaultKind k);

/** One cycle-stamped failure. Fields beyond the kind's are ignored. */
struct FaultEvent
{
    /** Applied at the top of this cycle, before any phase runs.
     *  Cycle 0 events are applied before policy initialization. */
    Cycle cycle = 0;
    FaultKind kind = FaultKind::kKillLink;
    /** Target link (kKillLink / kDegradeQueue / kStallLink). */
    LinkIndex link = kInvalidLink;
    /** Target cell (kKillCell). */
    CellId cell = kInvalidCell;
    /** Target queue id on `link` (kDegradeQueue). */
    int queue = -1;
    /** New capacity in words (kDegradeQueue, >= 1) or stall length in
     *  cycles (kStallLink, >= 1). */
    int arg = 0;

    /** One-line human description, e.g. "cycle 12: kill-link L3". */
    std::string describe() const;
};

/**
 * A deterministic fault schedule: events sorted by cycle (stable, so
 * same-cycle events apply in insertion order). Plans are plain data —
 * share one plan across runs, kernels and sweep rows freely; the run
 * only reads it. Like RunRequest::observer, a plan passed to a run
 * must outlive the run (and any adoptState/restoreCheckpoint chains
 * derived from it).
 */
class FaultPlan
{
  public:
    FaultPlan() = default;
    explicit FaultPlan(std::vector<FaultEvent> events);

    /** Insert keeping the by-cycle order (stable). */
    void add(const FaultEvent& e);

    const std::vector<FaultEvent>& events() const { return events_; }
    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }

    /** "" when every event targets real hardware and has a sane arg;
     *  otherwise what is wrong. A run with an invalid plan is a
     *  config error. */
    std::string validate(const Topology& topo,
                         const MachineSpec& spec) const;

    /** Order-sensitive FNV digest of the full schedule. Folded into
     *  sweep journal config digests so crash-resume of a faulted
     *  sweep stays gated on the exact plan. */
    std::uint64_t digest() const;

  private:
    std::vector<FaultEvent> events_;
};

/** Knobs for randomFaultPlan. */
struct FaultPlanOptions
{
    std::uint64_t seed = 1;
    /** Total events to draw. */
    int numEvents = 4;
    /** Event cycles are drawn uniformly from [1, maxCycle]. */
    Cycle maxCycle = 256;
    /** Kind mix: disabled kinds are never drawn. At least one must
     *  stay enabled. */
    bool killLinks = true;
    bool killCells = false;
    bool degradeQueues = true;
    bool stallLinks = true;
    /** Stall lengths are drawn from [1, maxStall]. */
    int maxStall = 32;
};

/**
 * Seeded plan generator: same (topo, spec, options) => same plan,
 * everywhere. Targets are drawn uniformly over real links/cells/queues
 * and degrade capacities over [1, queueCapacity + extensionCapacity],
 * so the result always validates.
 */
FaultPlan randomFaultPlan(const Topology& topo, const MachineSpec& spec,
                          const FaultPlanOptions& options);

} // namespace syscomm::sim
