#pragma once

/**
 * @file
 * A minimal contiguous view, the currency of the arena layout.
 *
 * The simulation hot state (queues, crossings, cells) lives in
 * SimArena's contiguous pools; LinkState and friends hold Span views
 * into those pools instead of owning std::vectors. A Span is two
 * words — pointer and length — and deliberately supports only what
 * the kernels and tests use: indexing, iteration, size/empty/back.
 * (C++17 tree; std::span is C++20.)
 */

#include <cassert>
#include <cstddef>

namespace syscomm::sim {

template <typename T>
class Span
{
  public:
    Span() = default;
    Span(T* data, std::size_t size) : data_(data), size_(size) {}

    T* begin() const { return data_; }
    T* end() const { return data_ + size_; }
    T* data() const { return data_; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T& operator[](std::size_t i) const
    {
        assert(i < size_);
        return data_[i];
    }

    T& front() const
    {
        assert(size_ > 0);
        return data_[0];
    }

    T& back() const
    {
        assert(size_ > 0);
        return data_[size_ - 1];
    }

  private:
    T* data_ = nullptr;
    std::size_t size_ = 0;
};

} // namespace syscomm::sim
