#pragma once

/**
 * @file
 * Deadlock snapshot reporting. Because the simulator is deterministic
 * and progress is monotone, a cycle with zero progress events and
 * unfinished work is a proof of deadlock; this module renders the
 * frozen state (Fig. 7 lower-half style).
 */

#include <string>
#include <vector>

#include "core/types.h"

namespace syscomm::sim {

/** Frozen state of one cell. */
struct CellBlockInfo
{
    CellId cell = kInvalidCell;
    int pc = 0;
    std::string op;     ///< e.g. "R(C)"
    std::string reason; ///< blockReasonName() text
};

/** Frozen state of one queue. */
struct QueueSnapshot
{
    int id = 0;
    std::string msg; ///< assigned message name, or "-"
    int occupancy = 0;
    int capacity = 0;
};

/** Frozen state of one link. */
struct LinkSnapshot
{
    LinkIndex link = kInvalidLink;
    CellId a = kInvalidCell;
    CellId b = kInvalidCell;
    std::vector<QueueSnapshot> queues;
    /** Names of messages waiting (requested but unassigned) here. */
    std::vector<std::string> waiting;
};

/** Full deadlock snapshot. */
struct DeadlockReport
{
    bool deadlocked = false;
    Cycle atCycle = 0;
    std::vector<CellBlockInfo> cells;
    std::vector<LinkSnapshot> links;

    /** Multi-line rendering of the blocked machine state. */
    std::string render() const;
};

} // namespace syscomm::sim
