#pragma once

/**
 * @file
 * Deadlock snapshot reporting. Because the simulator is deterministic
 * and progress is monotone, a cycle with zero progress events and
 * unfinished work is a proof of deadlock; this module renders the
 * frozen state (Fig. 7 lower-half style).
 */

#include <string>
#include <vector>

#include "core/types.h"

namespace syscomm::sim {

/** Frozen state of one cell. */
struct CellBlockInfo
{
    CellId cell = kInvalidCell;
    int pc = 0;
    std::string op;     ///< e.g. "R(C)"
    std::string reason; ///< blockReasonName() text
};

/** Frozen state of one queue. */
struct QueueSnapshot
{
    int id = 0;
    std::string msg; ///< assigned message name, or "-"
    int occupancy = 0;
    int capacity = 0;
};

/** Frozen state of one link. */
struct LinkSnapshot
{
    LinkIndex link = kInvalidLink;
    CellId a = kInvalidCell;
    CellId b = kInvalidCell;
    std::vector<QueueSnapshot> queues;
    /** Names of messages waiting (requested but unassigned) here. */
    std::vector<std::string> waiting;
};

/**
 * One injected fault implicated in the frozen state: the event still
 * holds unfinished traffic or an unfinished cell hostage at the stall
 * cycle. Attribution is computed from kernel-independent machine state
 * (crossing phases, cell program counters), so both kernels report the
 * same set.
 */
struct FaultAttribution
{
    /** Index into the run's FaultPlan::events(). */
    int eventIndex = -1;
    /** FaultEvent::describe() text (self-contained for rendering). */
    std::string event;
    /** Why the event is implicated, e.g. "2 unfinished crossings". */
    std::string why;
};

/** Full deadlock snapshot. */
struct DeadlockReport
{
    bool deadlocked = false;
    Cycle atCycle = 0;
    std::vector<CellBlockInfo> cells;
    std::vector<LinkSnapshot> links;
    /** Non-empty exactly when the run ended RunStatus::kFaulted. */
    std::vector<FaultAttribution> faults;

    /** Multi-line rendering of the blocked machine state. */
    std::string render() const;
};

} // namespace syscomm::sim
