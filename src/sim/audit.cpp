#include "sim/audit.h"

#include <map>

namespace syscomm::sim {

std::string
AuditReport::str(const Program& program) const
{
    if (compatible)
        return "assignment trace is compatible with the labeling";
    std::string out = "assignment trace violates compatibility (" +
                      std::to_string(violations.size()) + " violations):\n";
    for (const AuditViolation& v : violations) {
        out += "  link " + std::to_string(v.link) + ": " +
               program.message(v.second).name + " vs " +
               program.message(v.first).name + ": " + v.detail + "\n";
    }
    return out;
}

AuditReport
auditAssignments(const Program& program, const CompetingAnalysis& competing,
                 const std::vector<std::int64_t>& labels,
                 const std::vector<AssignmentEvent>& events)
{
    (void)program;
    AuditReport report;

    // Index assignment cycles per (link, msg).
    std::map<std::pair<LinkIndex, MessageId>, Cycle> assigned_at;
    for (const AssignmentEvent& ev : events)
        assigned_at[{ev.link, ev.msg}] = ev.cycle;

    auto lookup = [&](LinkIndex link,
                      MessageId msg) -> std::optional<Cycle> {
        auto it = assigned_at.find({link, msg});
        if (it == assigned_at.end())
            return std::nullopt;
        return it->second;
    };

    for (LinkIndex link = 0; link < competing.numLinks(); ++link) {
        // Ordered assignment among same-direction competitors.
        for (int d = 0; d < 2; ++d) {
            const auto& msgs =
                competing.onLinkDir(link, static_cast<LinkDir>(d));
            for (MessageId m2 : msgs) {
                auto t2 = lookup(link, m2);
                if (!t2)
                    continue;
                for (MessageId m1 : msgs) {
                    if (m1 == m2 || labels[m1] >= labels[m2])
                        continue;
                    auto t1 = lookup(link, m1);
                    if (!t1 || *t1 > *t2) {
                        AuditViolation v;
                        v.link = link;
                        v.first = m1;
                        v.second = m2;
                        v.detail =
                            "label " + std::to_string(labels[m2]) +
                            " assigned at cycle " + std::to_string(*t2) +
                            " before smaller label " +
                            std::to_string(labels[m1]) +
                            (t1 ? " (cycle " + std::to_string(*t1) + ")"
                                : " (never assigned)");
                        report.violations.push_back(std::move(v));
                    }
                }
            }
        }
        // Simultaneous assignment among same-label messages sharing the
        // link's pool.
        const auto& all = competing.onLink(link);
        for (MessageId m2 : all) {
            auto t2 = lookup(link, m2);
            if (!t2)
                continue;
            for (MessageId m1 : all) {
                if (m1 >= m2 || labels[m1] != labels[m2])
                    continue;
                auto t1 = lookup(link, m1);
                if (!t1 || *t1 != *t2) {
                    AuditViolation v;
                    v.link = link;
                    v.first = m1;
                    v.second = m2;
                    v.detail =
                        "same label " + std::to_string(labels[m1]) +
                        " but not assigned simultaneously (" +
                        (t1 ? std::to_string(*t1) : std::string("never")) +
                        " vs " + std::to_string(*t2) + ")";
                    report.violations.push_back(std::move(v));
                }
            }
        }
    }
    report.compatible = report.violations.empty();
    return report;
}

} // namespace syscomm::sim
