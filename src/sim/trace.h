#pragma once

/**
 * @file
 * Post-run visualization: an ASCII queue-occupancy timeline in the
 * spirit of Fig. 7's lower-half "time T / T+D1 / T+D1+D2" snapshots,
 * built from the run's assignment/release events, plus per-message
 * latency reporting.
 */

#include <string>

#include "core/machine_spec.h"
#include "core/program.h"
#include "sim/machine.h"

namespace syscomm::sim {

/**
 * Render one character column per cycle (subsampled to at most
 * @p max_width columns) for every hardware queue; the character is
 * the first letter of the message holding the queue, '.' when free.
 */
std::string renderQueueTimeline(const RunResult& result,
                                const Program& program,
                                const MachineSpec& spec,
                                int max_width = 72);

/**
 * Per-message timing table: cycle the first word entered the network,
 * cycle the last word was read, and the span between them.
 */
std::string renderMessageLatencies(const RunResult& result,
                                   const Program& program);

/**
 * Completion time of @p program on @p topo with effectively unlimited
 * queue resources (a dedicated, deep queue per message) — the
 * baseline "special-purpose array" of section 9, where "the hardware
 * designer can afford providing as many queues as required".
 */
Cycle idealCycles(const Program& program, const Topology& topo);

} // namespace syscomm::sim
