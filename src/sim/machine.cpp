#include "sim/machine.h"

#include <cassert>

#include "core/labeling.h"

namespace syscomm::sim {

const char*
runStatusName(RunStatus status)
{
    switch (status) {
      case RunStatus::kCompleted:
        return "completed";
      case RunStatus::kDeadlocked:
        return "deadlocked";
      case RunStatus::kMaxCycles:
        return "max-cycles";
      case RunStatus::kConfigError:
        return "config-error";
    }
    return "?";
}

namespace {

std::string
opText(const Program& program, const Op& op)
{
    if (op.isCompute())
        return "compute";
    return std::string(op.isWrite() ? "W(" : "R(") +
           program.message(op.msg).name + ")";
}

} // namespace

struct ArraySimulator::Impl
{
    const Program& program;
    const MachineSpec& spec;
    SimOptions options;

    CompetingAnalysis competing;
    std::vector<LinkState> links;
    std::vector<CellRuntime> cells;
    std::unique_ptr<AssignmentPolicy> policy;
    std::vector<std::int64_t> labels;

    /** Next word index each sender will write / receiver will read. */
    std::vector<int> writeSeq;
    std::vector<int> readSeq;

    RunResult result;
    std::vector<std::string> validation;

    Impl(const Program& p, const MachineSpec& s, SimOptions o)
        : program(p), spec(s), options(std::move(o))
    {
        validation = program.validate(spec.topo.numCells());
        if (!validation.empty())
            return;

        competing = CompetingAnalysis::analyze(program, spec.topo);

        labels = options.labels;
        bool needs_labels = options.policy == PolicyKind::kCompatible ||
                            options.policy == PolicyKind::kCompatibleEager ||
                            options.audit;
        if (labels.empty() && needs_labels) {
            Labeling labeling = labelMessages(program);
            if (!labeling.success)
                labeling = trivialLabeling(program);
            labels = labeling.normalized();
        }

        links.reserve(spec.topo.numLinks());
        for (LinkIndex l = 0; l < spec.topo.numLinks(); ++l) {
            links.emplace_back(l, spec.queuesPerLink, spec.queueCapacity,
                               spec.extensionCapacity,
                               spec.extensionPenalty);
        }
        for (MessageId m = 0; m < program.numMessages(); ++m) {
            const Route& route = competing.route(m);
            for (int h = 0; h < route.numHops(); ++h) {
                links[route.hops[h].link].addCrossing(
                    m, route.hops[h].dir, h, program.messageLength(m));
            }
        }
        cells.reserve(program.numCells());
        for (CellId c = 0; c < program.numCells(); ++c)
            cells.emplace_back(c, &program.cellOps(c));

        policy = makePolicy(options.policy, labels, options.seed);

        writeSeq.assign(program.numMessages(), 0);
        readSeq.assign(program.numMessages(), 0);

        result.received.resize(program.numMessages());
        result.stats.perCellBlocked.assign(program.numCells(), 0);
        result.labelsUsed = labels;
        result.msgTiming.assign(program.numMessages(), {-1, -1});
    }

    // -----------------------------------------------------------------
    // Per-cycle phases
    // -----------------------------------------------------------------

    /** Record a policy decision batch as events + stats. */
    std::int64_t
    applyDecisions(LinkState& link,
                   const std::vector<AssignmentDecision>& decisions,
                   Cycle now)
    {
        for (const AssignmentDecision& d : decisions) {
            const Crossing& c = link.crossing(d.msg);
            AssignmentEvent ev;
            ev.cycle = now;
            ev.link = link.index();
            ev.msg = d.msg;
            ev.queueId = d.queueId;
            ev.dir = c.dir;
            result.events.push_back(ev);
            ++result.stats.assignments;
            if (c.requestedAt >= 0)
                result.stats.requestWaitCycles += now - c.requestedAt;
        }
        return static_cast<std::int64_t>(decisions.size());
    }

    /** Release a finished message's queue, keeping the event log. */
    void
    releaseMsg(LinkState& link, MessageId msg, Cycle now)
    {
        AssignmentEvent ev;
        ev.cycle = now;
        ev.link = link.index();
        ev.msg = msg;
        ev.queueId = link.crossing(msg).queueId;
        ev.dir = link.crossing(msg).dir;
        result.releases.push_back(ev);
        link.finishMsg(msg, now);
        ++result.stats.releases;
    }

    std::int64_t
    assignmentPhase(Cycle now)
    {
        std::int64_t progress = 0;
        std::vector<AssignmentDecision> decisions;
        for (LinkState& link : links) {
            decisions.clear();
            policy->tick(link, now, decisions);
            progress += applyDecisions(link, decisions, now);
        }
        return progress;
    }

    /** Move in-flight words one hop; request next-hop queues. */
    std::int64_t
    forwardingPhase(Cycle now)
    {
        std::int64_t progress = 0;
        // Iterate links in descending index so that, for ascending
        // routes, downstream queues drain before upstream ones push.
        for (auto it = links.rbegin(); it != links.rend(); ++it) {
            LinkState& link = *it;
            for (HwQueue& q : link.queues()) {
                if (q.isFree() || q.empty())
                    continue;
                MessageId msg = q.assignedMsg();
                const Crossing& c = link.crossing(msg);
                const Route& route = competing.route(msg);
                if (c.hopIndex + 1 >= route.numHops())
                    continue; // final hop: the receiver pops it
                const Hop& next_hop = route.hops[c.hopIndex + 1];
                LinkState& next_link = links[next_hop.link];
                Crossing& nc = next_link.crossing(msg);
                if (nc.phase == CrossingPhase::kIdle) {
                    // The message header arrived at the intermediate
                    // cell: ask for the next queue (section 5).
                    next_link.request(msg, now);
                    ++result.stats.requests;
                    ++progress;
                    continue;
                }
                if (nc.phase != CrossingPhase::kAssigned)
                    continue;
                if (!q.canPop(now))
                    continue;
                HwQueue& nq = next_link.queue(nc.queueId);
                if (!nq.canPush())
                    continue;
                Word w = q.pop(now);
                nq.push(w, now);
                ++result.stats.wordsForwarded;
                ++progress;
                if (q.wordsRemaining() == 0) {
                    releaseMsg(link, msg, now);
                    ++progress;
                }
            }
        }
        return progress;
    }

    std::int64_t
    executeWrite(CellRuntime& cell, const Op& op, Cycle now)
    {
        std::int64_t progress = 0;

        // Memory-to-memory model: stage the word through local memory
        // before it may enter the output queue (2 accesses).
        if (options.memoryToMemory) {
            if (cell.stallRemaining() < 0) {
                cell.setStallRemaining(2 * options.memAccessCost);
                result.stats.memAccesses += 2;
            }
            if (cell.stallRemaining() > 0) {
                cell.setStallRemaining(cell.stallRemaining() - 1);
                ++result.stats.memStallCycles;
                cell.lastBlock = BlockReason::kMemoryStall;
                return 1;
            }
        }

        const Route& route = competing.route(op.msg);
        LinkState& link = links[route.hops[0].link];
        Crossing& c = link.crossing(op.msg);
        if (c.phase == CrossingPhase::kIdle) {
            link.request(op.msg, now);
            ++result.stats.requests;
            cell.lastBlock = BlockReason::kQueueNotAssigned;
            return 1;
        }
        if (c.phase != CrossingPhase::kAssigned) {
            cell.lastBlock = BlockReason::kQueueNotAssigned;
            return 0;
        }
        HwQueue& q = link.queue(c.queueId);
        if (!q.canPush()) {
            cell.lastBlock = BlockReason::kQueueFull;
            return 0;
        }
        Word w;
        w.msg = op.msg;
        w.seq = writeSeq[op.msg]++;
        w.value = cell.takeWriteValue();
        if (w.seq == 0)
            result.msgTiming[op.msg].first = now;
        q.push(w, now);
        ++result.stats.opsExecuted;
        ++progress;
        cell.advance();
        return progress;
    }

    std::int64_t
    executeRead(CellRuntime& cell, const Op& op, Cycle now)
    {
        // Memory-to-memory model, phase 2: after the word left the
        // queue it must pass through local memory (2 accesses).
        if (options.memoryToMemory && cell.readCompleted()) {
            if (cell.stallRemaining() > 0) {
                cell.setStallRemaining(cell.stallRemaining() - 1);
                ++result.stats.memStallCycles;
                cell.lastBlock = BlockReason::kMemoryStall;
                return 1;
            }
            ++result.stats.opsExecuted;
            cell.advance();
            return 1;
        }

        const Route& route = competing.route(op.msg);
        const Hop& last_hop = route.hops.back();
        LinkState& link = links[last_hop.link];
        Crossing& c = link.crossing(op.msg);
        if (c.phase != CrossingPhase::kAssigned) {
            cell.lastBlock = c.phase == CrossingPhase::kRequested
                                 ? BlockReason::kQueueNotAssigned
                                 : BlockReason::kWordNotArrived;
            return 0;
        }
        HwQueue& q = link.queue(c.queueId);
        if (!q.canPop(now)) {
            cell.lastBlock = BlockReason::kWordNotArrived;
            return 0;
        }
        Word w = q.pop(now);
        assert(w.msg == op.msg);
        assert(w.seq == readSeq[op.msg] && "words arrive in order");
        ++readSeq[op.msg];
        cell.recordRead(w.value);
        result.received[op.msg].push_back(w.value);
        ++result.stats.wordsDelivered;
        if (readSeq[op.msg] == program.messageLength(op.msg))
            result.msgTiming[op.msg].second = now;
        std::int64_t progress = 1;
        if (q.wordsRemaining() == 0) {
            releaseMsg(link, op.msg, now);
            ++progress;
        }
        if (options.memoryToMemory) {
            cell.setReadCompleted(true);
            cell.setStallRemaining(2 * options.memAccessCost);
            result.stats.memAccesses += 2;
            return progress;
        }
        ++result.stats.opsExecuted;
        cell.advance();
        return progress;
    }

    std::int64_t
    cellPhase(Cycle now)
    {
        std::int64_t progress = 0;
        for (CellRuntime& cell : cells) {
            if (cell.done())
                continue;
            cell.setNow(now);
            cell.lastBlock = BlockReason::kNone;
            const Op& op = cell.currentOp();
            std::int64_t delta = 0;
            switch (op.kind) {
              case OpKind::kCompute: {
                const ComputeFn& fn = program.computeFn(op.computeId);
                if (fn)
                    fn(cell);
                ++result.stats.opsExecuted;
                ++result.stats.computeOps;
                cell.advance();
                delta = 1;
                break;
              }
              case OpKind::kWrite:
                delta = executeWrite(cell, op, now);
                break;
              case OpKind::kRead:
                delta = executeRead(cell, op, now);
                break;
            }
            if (delta == 0) {
                ++result.stats.cellBlockedCycles;
                ++result.stats.perCellBlocked[cell.cellId()];
            }
            progress += delta;
        }
        return progress;
    }

    /**
     * A zero-progress cycle is a deadlock only when no queue is about
     * to change state by itself (extension penalties and per-cycle
     * interlocks resolve with time, not with other agents' actions).
     */
    bool
    timedEventPending(Cycle now) const
    {
        for (const LinkState& link : links) {
            for (const HwQueue& q : link.queues()) {
                if (q.pendingTimedEvent(now))
                    return true;
            }
        }
        return false;
    }

    bool
    allDone() const
    {
        for (const CellRuntime& cell : cells) {
            if (!cell.done())
                return false;
        }
        return true;
    }

    DeadlockReport
    snapshot(Cycle now) const
    {
        DeadlockReport report;
        report.deadlocked = true;
        report.atCycle = now;
        for (const CellRuntime& cell : cells) {
            if (cell.done())
                continue;
            CellBlockInfo info;
            info.cell = cell.cellId();
            info.pc = cell.pc();
            info.op = opText(program, cell.currentOp());
            info.reason = blockReasonName(cell.lastBlock);
            report.cells.push_back(std::move(info));
        }
        for (const LinkState& link : links) {
            LinkSnapshot snap;
            snap.link = link.index();
            snap.a = spec.topo.link(link.index()).a;
            snap.b = spec.topo.link(link.index()).b;
            for (const HwQueue& q : link.queues()) {
                QueueSnapshot qs;
                qs.id = q.id();
                qs.msg = q.isFree() ? "-"
                                    : program.message(q.assignedMsg()).name;
                qs.occupancy = q.size();
                qs.capacity = q.totalCapacity();
                snap.queues.push_back(std::move(qs));
            }
            for (const Crossing& c : link.crossings()) {
                if (c.phase == CrossingPhase::kRequested)
                    snap.waiting.push_back(program.message(c.msg).name);
            }
            report.links.push_back(std::move(snap));
        }
        return report;
    }

    void
    collectQueueStats()
    {
        for (const LinkState& link : links) {
            for (const HwQueue& q : link.queues()) {
                result.stats.queueBusyCycles += q.busyCycles();
                result.stats.queueOccupancySum += q.occupancySum();
                result.stats.extendedWords += q.extendedWords();
            }
        }
    }

    RunResult
    run()
    {
        if (!validation.empty()) {
            result.status = RunStatus::kConfigError;
            result.error = "invalid program: " + validation.front();
            return std::move(result);
        }

        // Cycle 0: policy setup (static assignment happens here).
        {
            std::vector<AssignmentDecision> decisions;
            for (LinkState& link : links) {
                decisions.clear();
                if (!policy->initLink(link, decisions)) {
                    result.status = RunStatus::kConfigError;
                    result.error = "policy '" + policy->name() +
                                   "' cannot set up link " +
                                   std::to_string(link.index()) +
                                   " (not enough queues?)";
                    return std::move(result);
                }
                applyDecisions(link, decisions, 0);
            }
        }

        for (Cycle now = 1; now <= options.maxCycles; ++now) {
            for (LinkState& link : links)
                link.beginCycle(now);

            std::int64_t progress = 0;
            progress += assignmentPhase(now);
            progress += forwardingPhase(now);
            progress += cellPhase(now);

            if (allDone()) {
                result.status = RunStatus::kCompleted;
                result.cycles = now;
                break;
            }
            if (progress == 0 && !timedEventPending(now)) {
                result.status = RunStatus::kDeadlocked;
                result.cycles = now;
                result.deadlock = snapshot(now);
                break;
            }
            if (now == options.maxCycles) {
                result.status = RunStatus::kMaxCycles;
                result.cycles = now;
            }
        }

        result.stats.cycles = result.cycles;
        collectQueueStats();
        if (options.audit && !labels.empty()) {
            result.audit = auditAssignments(program, competing, labels,
                                            result.events);
        }
        return std::move(result);
    }
};

ArraySimulator::ArraySimulator(const Program& program,
                               const MachineSpec& spec, SimOptions options)
    : impl_(std::make_unique<Impl>(program, spec, std::move(options)))
{}

ArraySimulator::~ArraySimulator() = default;

RunResult
ArraySimulator::run()
{
    return impl_->run();
}

RunResult
simulateProgram(const Program& program, const MachineSpec& spec,
                const SimOptions& options)
{
    return ArraySimulator(program, spec, options).run();
}

} // namespace syscomm::sim
