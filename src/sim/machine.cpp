#include "sim/machine.h"

namespace syscomm::sim {

SessionOptions
sessionOptionsFrom(const SimOptions& options)
{
    SessionOptions session;
    session.kernel = options.kernel;
    // options.labels travels as the per-run override (runRequestFrom),
    // which label resolution prefers unconditionally — a session-level
    // copy here would never be consulted. The single-use simulator
    // only labeled when the policy or audit needed it; keep that
    // laziness so one-shot FCFS/random runs pay nothing for the
    // labeler.
    session.precomputeLabels = false;
    session.memoryToMemory = options.memoryToMemory;
    session.memAccessCost = options.memAccessCost;
    return session;
}

RunRequest
runRequestFrom(const SimOptions& options)
{
    RunRequest request;
    request.policy = options.policy;
    request.seed = options.seed;
    request.maxCycles = options.maxCycles;
    request.collect = Collect::kEvents | Collect::kReleases |
                      Collect::kMsgTiming | Collect::kReceived;
    if (options.audit)
        request.collect |= Collect::kAudit;
    // The single-use simulator used caller-given labels for
    // everything, even label-free policies (they still landed in
    // labelsUsed); a per-run override preserves that exactly.
    request.labels = options.labels;
    return request;
}

ArraySimulator::ArraySimulator(const Program& program,
                               const MachineSpec& spec, SimOptions options)
    : options_(std::move(options)),
      session_(program, spec, sessionOptionsFrom(options_))
{}

ArraySimulator::~ArraySimulator() = default;

RunResult
ArraySimulator::run()
{
    return session_.run(runRequestFrom(options_));
}

RunResult
simulateProgram(const Program& program, const MachineSpec& spec,
                const SimOptions& options)
{
    return ArraySimulator(program, spec, options).run();
}

} // namespace syscomm::sim
