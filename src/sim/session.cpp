#include "sim/session.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <functional>
#include <utility>

#include "core/competing.h"
#include "core/labeling.h"
#include "sim/active_set.h"
#include "sim/cell_exec.h"
#include "sim/link_state.h"

namespace syscomm::sim {

const char*
runStatusName(RunStatus status)
{
    switch (status) {
      case RunStatus::kCompleted:
        return "completed";
      case RunStatus::kDeadlocked:
        return "deadlocked";
      case RunStatus::kMaxCycles:
        return "max-cycles";
      case RunStatus::kConfigError:
        return "config-error";
    }
    return "?";
}

const char*
kernelKindName(KernelKind kind)
{
    switch (kind) {
      case KernelKind::kEventDriven:
        return "event-driven";
      case KernelKind::kReference:
        return "reference";
    }
    return "?";
}

namespace {

std::string
opText(const Program& program, const Op& op)
{
    if (op.isCompute())
        return "compute";
    return std::string(op.isWrite() ? "W(" : "R(") +
           program.message(op.msg).name + ")";
}

using LinkSet = SortedIndexSet<LinkIndex, kInvalidLink>;
using CellSet = SortedIndexSet<CellId, kInvalidCell>;

const std::vector<std::int64_t> kNoLabels;

} // namespace

/**
 * The simulation engine. Everything allocated here is sized once at
 * construction and reset in place by resetRun(); run() must not
 * allocate proportionally to machine size, only to what it is asked
 * to collect.
 */
struct SimSession::Impl
{
    const Program& program;
    const MachineSpec& spec;
    SessionOptions options;

    // -----------------------------------------------------------------
    // Compile-once state (immutable across runs)
    // -----------------------------------------------------------------

    std::vector<std::string> validation;
    std::string firstError;
    CompetingAnalysis competing;

    /** Session default labels; computed lazily at most once. */
    std::vector<std::int64_t> sessionLabels;
    bool sessionLabelsReady = false;

    /**
     * Links at least one route crosses, descending index: the
     * forwarding order. Descending means that, for ascending routes,
     * downstream queues drain before upstream ones push into them.
     * Computed once from the route set; links no message ever crosses
     * are never scanned — and never need resetting either, so the
     * per-run reset cost is O(routed links), not O(machine).
     */
    std::vector<LinkIndex> routedLinksDesc;

    /**
     * Cells with a non-empty program, ascending. Only these ever
     * mutate (empty-program cells are born done and the kernels never
     * step them), so they bound the per-run cell reset.
     */
    std::vector<CellId> programCells;

    bool eventMode = false;
    int runs = 0;

    // -----------------------------------------------------------------
    // Machine state (reset in place per run)
    // -----------------------------------------------------------------

    std::vector<LinkState> links;
    std::vector<CellRuntime> cells;

    /** Next word index each sender will write / receiver will read. */
    std::vector<int> writeSeq;
    std::vector<int> readSeq;

    RunResult result;

    // -----------------------------------------------------------------
    // Per-run configuration (set at the top of run())
    // -----------------------------------------------------------------

    AssignmentPolicy* policy = nullptr;
    const std::vector<std::int64_t>* runLabels = &kNoLabels;
    RunObserver* observer = nullptr;
    Cycle maxCycles = 0;
    bool collectEvents = false;
    bool needEvents = false; ///< events vector feeds the audit too
    bool collectReleases = false;
    bool collectTiming = false;
    bool collectReceived = false;
    bool doAudit = false;

    /**
     * One cached policy instance per PolicyKind, rebuilt only when
     * the run's labels differ from the cached copy; reseeded via
     * AssignmentPolicy::resetRun() so a reused policy is
     * indistinguishable from a freshly constructed one.
     */
    struct CachedPolicy
    {
        std::unique_ptr<AssignmentPolicy> policy;
        std::vector<std::int64_t> labels;
    };
    std::array<CachedPolicy, kNumPolicyKinds> policyCache;

    // -----------------------------------------------------------------
    // Event-driven kernel state (unused by the reference kernel).
    //
    // The invariant behind every set here: it is always safe to wake
    // or revisit too much (a spurious visit blocks again and accounts
    // identically to the dense kernel), but never to wake too late.
    // -----------------------------------------------------------------

    /** Cells that must be visited next cellPhase, ascending id. */
    CellSet activeCells;
    int doneCells = 0;
    /** Link a sleeping cell waits on (kInvalidLink = none). */
    std::vector<LinkIndex> cellWaitLink;
    /** Cells to wake on any queue event of a link (at most ~2 each). */
    std::vector<std::vector<CellId>> linkWaiters;
    /** (cycle, cell) wake-ups for purely time-driven queue readiness;
     *  a min-heap over contiguous storage so it clears in O(1). */
    std::vector<std::pair<Cycle, CellId>> timedWakes;

    /** Per link: assigned, non-empty, non-final-hop queues ("hot"). */
    std::vector<int> fwdCount;
    LinkSet fwdLinks;
    /** Per link: non-empty queues (timed-event scan scope). */
    std::vector<int> nonEmptyCount;
    LinkSet nonEmptyLinks;
    /** Per link: crossings in kRequested phase (policy must run). */
    std::vector<int> pendingCount;
    LinkSet pendingLinks;
    /** Links whose state changed this cycle: re-tick the policy once. */
    std::vector<char> recheckFlag;
    std::vector<LinkIndex> recheckList;
    std::vector<LinkIndex> tickScratch;

    /** Out-params of the executors for sleep registration. */
    LinkIndex blockLink = kInvalidLink;
    Cycle blockTimedWake = -1;

    /** Per-tick scratch; tickLink runs on the per-cycle hot path. */
    std::vector<AssignmentDecision> decisionScratch;

    Impl(const Program& p, const MachineSpec& s, SessionOptions o)
        : program(p), spec(s), options(std::move(o))
    {
        validation = program.validate(spec.topo.numCells());
        if (!validation.empty()) {
            firstError = "invalid program: " + validation.front();
            return;
        }

        competing = CompetingAnalysis::analyze(program, spec.topo);

        if (options.precomputeLabels)
            defaultLabels();

        links.reserve(spec.topo.numLinks());
        for (LinkIndex l = 0; l < spec.topo.numLinks(); ++l) {
            links.emplace_back(l, spec.queuesPerLink, spec.queueCapacity,
                               spec.extensionCapacity,
                               spec.extensionPenalty);
        }
        for (MessageId m = 0; m < program.numMessages(); ++m) {
            const Route& route = competing.route(m);
            for (int h = 0; h < route.numHops(); ++h) {
                links[route.hops[h].link].addCrossing(
                    m, route.hops[h].dir, h, program.messageLength(m));
            }
        }
        for (LinkIndex l = 0; l < spec.topo.numLinks(); ++l) {
            if (!links[l].crossings().empty())
                routedLinksDesc.push_back(l);
        }
        std::sort(routedLinksDesc.begin(), routedLinksDesc.end(),
                  std::greater<LinkIndex>());

        cells.reserve(program.numCells());
        for (CellId c = 0; c < program.numCells(); ++c) {
            cells.emplace_back(c, &program.cellOps(c));
            if (!cells.back().done())
                programCells.push_back(c);
        }

        writeSeq.assign(program.numMessages(), 0);
        readSeq.assign(program.numMessages(), 0);

        eventMode = options.kernel == KernelKind::kEventDriven;

        cellWaitLink.assign(cells.size(), kInvalidLink);
        linkWaiters.resize(links.size());
        fwdCount.assign(links.size(), 0);
        nonEmptyCount.assign(links.size(), 0);
        pendingCount.assign(links.size(), 0);
        recheckFlag.assign(links.size(), 0);
    }

    /** The session's default labels, computed at most once. */
    const std::vector<std::int64_t>&
    defaultLabels()
    {
        if (!sessionLabelsReady) {
            if (!options.labels.empty()) {
                sessionLabels = options.labels;
            } else {
                Labeling labeling = labelMessages(program);
                if (!labeling.success)
                    labeling = trivialLabeling(program);
                sessionLabels = labeling.normalized();
            }
            sessionLabelsReady = true;
        }
        return sessionLabels;
    }

    /**
     * Labels this run sees: an explicit request override is always
     * honored; otherwise the session defaults, resolved only when the
     * run actually needs labels (compatible policies or the audit).
     * A label-free run reports no labels — regardless of what earlier
     * runs resolved — so identical requests always produce identical
     * results (and match the single-use simulator).
     */
    const std::vector<std::int64_t>&
    resolveLabels(const RunRequest& request, bool needed)
    {
        if (!request.labels.empty())
            return request.labels;
        if (!needed)
            return kNoLabels;
        return defaultLabels();
    }

    AssignmentPolicy&
    getPolicy(PolicyKind kind, const std::vector<std::int64_t>& labels,
              std::uint64_t seed)
    {
        CachedPolicy& slot = policyCache[static_cast<int>(kind)];
        if (!slot.policy || slot.labels != labels) {
            slot.policy = makePolicy(kind, labels, seed);
            slot.labels = labels;
        }
        slot.policy->resetRun(seed);
        return *slot.policy;
    }

    // -----------------------------------------------------------------
    // In-place reset: the compile-once/run-many core.
    // -----------------------------------------------------------------

    void
    resetRun()
    {
        // Only routed links and program-bearing cells ever mutate, so
        // the reset is O(program activity), not O(machine) — the rest
        // of the array is still in its start-of-run state.
        for (LinkIndex l : routedLinksDesc)
            links[l].resetRun();
        for (CellId c : programCells)
            cells[c].resetRun();
        std::fill(writeSeq.begin(), writeSeq.end(), 0);
        std::fill(readSeq.begin(), readSeq.end(), 0);

        result.status = RunStatus::kConfigError;
        result.cycles = 0;
        result.error.clear();
        result.stats.resetRun(cells.size());
        result.deadlock = DeadlockReport{};
        result.events.clear();
        result.releases.clear();
        result.audit = AuditReport{};
        result.labelsUsed = *runLabels;
        if (collectTiming)
            result.msgTiming.assign(program.numMessages(), {-1, -1});
        else
            result.msgTiming.clear();
        if (collectReceived) {
            result.received.resize(program.numMessages());
            for (std::vector<double>& r : result.received)
                r.clear();
        } else {
            result.received.clear();
        }

        if (eventMode) {
            activeCells.clear();
            doneCells = 0;
            for (CellId c : programCells)
                cellWaitLink[c] = kInvalidLink;
            for (LinkIndex l : routedLinksDesc) {
                linkWaiters[l].clear();
                fwdCount[l] = 0;
                nonEmptyCount[l] = 0;
                pendingCount[l] = 0;
                recheckFlag[l] = 0;
            }
            timedWakes.clear();
            fwdLinks.clear();
            nonEmptyLinks.clear();
            pendingLinks.clear();
            recheckList.clear();
        }
    }

    // -----------------------------------------------------------------
    // Event hooks. Every queue/crossing mutation funnels through one
    // of these so the active sets stay exact. All are no-ops for the
    // reference kernel.
    // -----------------------------------------------------------------

    bool
    isFinalHop(const LinkState& link, MessageId msg) const
    {
        const Crossing& c = link.crossing(msg);
        return c.hopIndex + 1 >= competing.route(msg).numHops();
    }

    void
    wakeCell(CellId cell)
    {
        if (!cells[cell].done())
            activeCells.insert(cell);
    }

    void
    wakeWaiters(LinkIndex l)
    {
        for (CellId c : linkWaiters[l])
            wakeCell(c);
    }

    void
    markRecheck(LinkIndex l)
    {
        if (!recheckFlag[l]) {
            recheckFlag[l] = 1;
            recheckList.push_back(l);
        }
    }

    void
    onRequest(LinkIndex l)
    {
        if (!eventMode)
            return;
        if (pendingCount[l]++ == 0)
            pendingLinks.insert(l);
        // A request cannot unblock a cell, but it changes the block
        // *reason* a waiting reader would report (kIdle ->
        // kRequested); wake it so deadlock snapshots stay identical
        // to the dense kernel's.
        wakeWaiters(l);
    }

    /** After a queue push left @p q non-empty for the first time. */
    void
    onPush(LinkState& link, const HwQueue& q)
    {
        if (!eventMode)
            return;
        LinkIndex l = link.index();
        if (q.size() == 1) {
            if (nonEmptyCount[l]++ == 0)
                nonEmptyLinks.insert(l);
            if (!isFinalHop(link, q.assignedMsg())) {
                if (fwdCount[l]++ == 0)
                    fwdLinks.insert(l);
            }
        }
        wakeWaiters(l);
    }

    /** After a pop (queue still assigned to the popped message). */
    void
    onPop(LinkState& link, const HwQueue& q)
    {
        if (!eventMode)
            return;
        LinkIndex l = link.index();
        if (q.empty()) {
            if (--nonEmptyCount[l] == 0)
                nonEmptyLinks.erase(l);
            if (!isFinalHop(link, q.assignedMsg())) {
                if (--fwdCount[l] == 0)
                    fwdLinks.erase(l);
            }
        }
        wakeWaiters(l);
    }

    void
    onAssignDecision(LinkState& link, MessageId msg)
    {
        if (!eventMode)
            return;
        LinkIndex l = link.index();
        // A message assigned straight from kIdle (eager reservation)
        // never held a pending request.
        if (link.crossing(msg).requestedAt >= 0) {
            if (--pendingCount[l] == 0)
                pendingLinks.erase(l);
        }
        markRecheck(l);
        wakeWaiters(l);
    }

    void
    onRelease(LinkIndex l)
    {
        if (!eventMode)
            return;
        markRecheck(l);
        wakeWaiters(l);
    }

    // -----------------------------------------------------------------
    // Shared phase pieces
    // -----------------------------------------------------------------

    /** Record a policy decision batch as events + stats. */
    std::int64_t
    applyDecisions(LinkState& link,
                   const std::vector<AssignmentDecision>& decisions,
                   Cycle now)
    {
        for (const AssignmentDecision& d : decisions) {
            const Crossing& c = link.crossing(d.msg);
            if (needEvents || observer != nullptr) {
                AssignmentEvent ev;
                ev.cycle = now;
                ev.link = link.index();
                ev.msg = d.msg;
                ev.queueId = d.queueId;
                ev.dir = c.dir;
                if (needEvents)
                    result.events.push_back(ev);
                if (observer != nullptr)
                    observer->onAssign(ev);
            }
            ++result.stats.assignments;
            if (c.requestedAt >= 0)
                result.stats.requestWaitCycles += now - c.requestedAt;
            onAssignDecision(link, d.msg);
        }
        return static_cast<std::int64_t>(decisions.size());
    }

    /** Release a finished message's queue, keeping the event log. */
    void
    releaseMsg(LinkState& link, MessageId msg, Cycle now)
    {
        if (collectReleases || observer != nullptr) {
            AssignmentEvent ev;
            ev.cycle = now;
            ev.link = link.index();
            ev.msg = msg;
            ev.queueId = link.crossing(msg).queueId;
            ev.dir = link.crossing(msg).dir;
            if (collectReleases)
                result.releases.push_back(ev);
            if (observer != nullptr)
                observer->onRelease(ev);
        }
        link.finishMsg(msg, now);
        ++result.stats.releases;
        onRelease(link.index());
    }

    std::int64_t
    tickLink(LinkState& link, Cycle now)
    {
        decisionScratch.clear();
        policy->tick(link, now, decisionScratch);
        return applyDecisions(link, decisionScratch, now);
    }

    /** Move one link's in-flight words a hop; request next-hop queues. */
    std::int64_t
    forwardOneLink(LinkState& link, Cycle now)
    {
        std::int64_t progress = 0;
        for (HwQueue& q : link.queues()) {
            if (q.isFree() || q.empty())
                continue;
            MessageId msg = q.assignedMsg();
            const Crossing& c = link.crossing(msg);
            const Route& route = competing.route(msg);
            if (c.hopIndex + 1 >= route.numHops())
                continue; // final hop: the receiver pops it
            const Hop& next_hop = route.hops[c.hopIndex + 1];
            LinkState& next_link = links[next_hop.link];
            Crossing& nc = next_link.crossing(msg);
            if (nc.phase == CrossingPhase::kIdle) {
                // The message header arrived at the intermediate
                // cell: ask for the next queue (section 5).
                next_link.request(msg, now);
                onRequest(next_link.index());
                ++result.stats.requests;
                ++progress;
                continue;
            }
            if (nc.phase != CrossingPhase::kAssigned)
                continue;
            if (!q.canPop(now))
                continue;
            HwQueue& nq = next_link.queue(nc.queueId);
            if (!nq.canPush(now))
                continue;
            Word w = q.pop(now);
            onPop(link, q);
            nq.push(w, now);
            onPush(next_link, nq);
            ++result.stats.wordsForwarded;
            ++progress;
            if (q.wordsRemaining() == 0) {
                releaseMsg(link, msg, now);
                ++progress;
            }
        }
        return progress;
    }

    std::int64_t
    executeWrite(CellRuntime& cell, const Op& op, Cycle now)
    {
        std::int64_t progress = 0;

        // Memory-to-memory model: stage the word through local memory
        // before it may enter the output queue (2 accesses).
        if (options.memoryToMemory) {
            if (cell.stallRemaining() < 0) {
                cell.setStallRemaining(2 * options.memAccessCost);
                result.stats.memAccesses += 2;
            }
            if (cell.stallRemaining() > 0) {
                cell.setStallRemaining(cell.stallRemaining() - 1);
                ++result.stats.memStallCycles;
                cell.lastBlock = BlockReason::kMemoryStall;
                return 1;
            }
        }

        const Route& route = competing.route(op.msg);
        LinkState& link = links[route.hops[0].link];
        Crossing& c = link.crossing(op.msg);
        if (c.phase == CrossingPhase::kIdle) {
            link.request(op.msg, now);
            onRequest(link.index());
            ++result.stats.requests;
            cell.lastBlock = BlockReason::kQueueNotAssigned;
            return 1;
        }
        if (c.phase != CrossingPhase::kAssigned) {
            cell.lastBlock = BlockReason::kQueueNotAssigned;
            blockLink = link.index();
            return 0;
        }
        HwQueue& q = link.queue(c.queueId);
        if (!q.canPush(now)) {
            cell.lastBlock = BlockReason::kQueueFull;
            blockLink = link.index();
            return 0;
        }
        Word w;
        w.msg = op.msg;
        w.seq = writeSeq[op.msg]++;
        w.value = cell.takeWriteValue();
        if (collectTiming && w.seq == 0)
            result.msgTiming[op.msg].first = now;
        q.push(w, now);
        onPush(link, q);
        ++result.stats.opsExecuted;
        ++progress;
        cell.advance();
        return progress;
    }

    std::int64_t
    executeRead(CellRuntime& cell, const Op& op, Cycle now)
    {
        // Memory-to-memory model, phase 2: after the word left the
        // queue it must pass through local memory (2 accesses).
        if (options.memoryToMemory && cell.readCompleted()) {
            if (cell.stallRemaining() > 0) {
                cell.setStallRemaining(cell.stallRemaining() - 1);
                ++result.stats.memStallCycles;
                cell.lastBlock = BlockReason::kMemoryStall;
                return 1;
            }
            ++result.stats.opsExecuted;
            cell.advance();
            return 1;
        }

        const Route& route = competing.route(op.msg);
        const Hop& last_hop = route.hops.back();
        LinkState& link = links[last_hop.link];
        Crossing& c = link.crossing(op.msg);
        if (c.phase != CrossingPhase::kAssigned) {
            cell.lastBlock = c.phase == CrossingPhase::kRequested
                                 ? BlockReason::kQueueNotAssigned
                                 : BlockReason::kWordNotArrived;
            blockLink = link.index();
            return 0;
        }
        HwQueue& q = link.queue(c.queueId);
        if (!q.canPop(now)) {
            cell.lastBlock = BlockReason::kWordNotArrived;
            blockLink = link.index();
            // The front word (if any) becomes consumable by time
            // alone; schedule the wake-up.
            if (!q.empty())
                blockTimedWake = std::max(q.frontReadyCycle(), now + 1);
            return 0;
        }
        Word w = q.pop(now);
        onPop(link, q);
        assert(w.msg == op.msg);
        assert(w.seq == readSeq[op.msg] && "words arrive in order");
        int seq = readSeq[op.msg]++;
        cell.recordRead(w.value);
        if (collectReceived)
            result.received[op.msg].push_back(w.value);
        if (observer != nullptr)
            observer->onDeliver(op.msg, seq, w.value, now);
        ++result.stats.wordsDelivered;
        if (collectTiming &&
            readSeq[op.msg] == program.messageLength(op.msg))
            result.msgTiming[op.msg].second = now;
        std::int64_t progress = 1;
        if (q.wordsRemaining() == 0) {
            releaseMsg(link, op.msg, now);
            ++progress;
        }
        if (options.memoryToMemory) {
            cell.setReadCompleted(true);
            cell.setStallRemaining(2 * options.memAccessCost);
            result.stats.memAccesses += 2;
            return progress;
        }
        ++result.stats.opsExecuted;
        cell.advance();
        return progress;
    }

    /** One cell's attempt to execute its current op this cycle. */
    std::int64_t
    cellStep(CellRuntime& cell, Cycle now)
    {
        cell.setNow(now);
        cell.lastBlock = BlockReason::kNone;
        const Op& op = cell.currentOp();
        switch (op.kind) {
          case OpKind::kCompute: {
            const ComputeFn& fn = program.computeFn(op.computeId);
            if (fn)
                fn(cell);
            ++result.stats.opsExecuted;
            ++result.stats.computeOps;
            cell.advance();
            return 1;
          }
          case OpKind::kWrite:
            return executeWrite(cell, op, now);
          case OpKind::kRead:
            return executeRead(cell, op, now);
        }
        return 0;
    }

    bool
    allDone() const
    {
        for (const CellRuntime& cell : cells) {
            if (!cell.done())
                return false;
        }
        return true;
    }

    DeadlockReport
    snapshot(Cycle now) const
    {
        DeadlockReport report;
        report.deadlocked = true;
        report.atCycle = now;
        for (const CellRuntime& cell : cells) {
            if (cell.done())
                continue;
            CellBlockInfo info;
            info.cell = cell.cellId();
            info.pc = cell.pc();
            info.op = opText(program, cell.currentOp());
            info.reason = blockReasonName(cell.lastBlock);
            report.cells.push_back(std::move(info));
        }
        for (const LinkState& link : links) {
            LinkSnapshot snap;
            snap.link = link.index();
            snap.a = spec.topo.link(link.index()).a;
            snap.b = spec.topo.link(link.index()).b;
            for (const HwQueue& q : link.queues()) {
                QueueSnapshot qs;
                qs.id = q.id();
                qs.msg = q.isFree() ? "-"
                                    : program.message(q.assignedMsg()).name;
                qs.occupancy = q.size();
                qs.capacity = q.totalCapacity();
                snap.queues.push_back(std::move(qs));
            }
            for (const Crossing& c : link.crossings()) {
                if (c.phase == CrossingPhase::kRequested)
                    snap.waiting.push_back(program.message(c.msg).name);
            }
            report.links.push_back(std::move(snap));
        }
        return report;
    }

    void
    collectQueueStats()
    {
        // Unrouted links' queues are never assigned: every contribution
        // from them is zero, so only routed links need settling.
        for (LinkIndex l : routedLinksDesc) {
            for (HwQueue& q : links[l].queues()) {
                q.settleStats(result.cycles);
                result.stats.queueBusyCycles += q.busyCycles();
                result.stats.queueOccupancySum += q.occupancySum();
                result.stats.extendedWords += q.extendedWords();
            }
        }
    }

    // -----------------------------------------------------------------
    // Reference kernel: dense per-cycle scans (the oracle).
    // -----------------------------------------------------------------

    std::int64_t
    assignmentPhaseDense(Cycle now)
    {
        std::int64_t progress = 0;
        for (LinkState& link : links)
            progress += tickLink(link, now);
        return progress;
    }

    std::int64_t
    forwardingPhaseDense(Cycle now)
    {
        std::int64_t progress = 0;
        for (LinkIndex l : routedLinksDesc)
            progress += forwardOneLink(links[l], now);
        return progress;
    }

    std::int64_t
    cellPhaseDense(Cycle now)
    {
        std::int64_t progress = 0;
        for (CellRuntime& cell : cells) {
            if (cell.done())
                continue;
            std::int64_t delta = cellStep(cell, now);
            if (delta == 0) {
                ++result.stats.cellBlockedCycles;
                ++result.stats.perCellBlocked[cell.cellId()];
            }
            progress += delta;
        }
        return progress;
    }

    bool
    timedEventPendingDense(Cycle now) const
    {
        for (const LinkState& link : links) {
            for (const HwQueue& q : link.queues()) {
                if (q.pendingTimedEvent(now))
                    return true;
            }
        }
        return false;
    }

    void
    runReference()
    {
        for (Cycle now = 1; now <= maxCycles; ++now) {
            std::int64_t progress = 0;
            progress += assignmentPhaseDense(now);
            progress += forwardingPhaseDense(now);
            progress += cellPhaseDense(now);

            if (allDone()) {
                result.status = RunStatus::kCompleted;
                result.cycles = now;
                break;
            }
            if (progress == 0 && !timedEventPendingDense(now)) {
                result.status = RunStatus::kDeadlocked;
                result.cycles = now;
                result.deadlock = snapshot(now);
                break;
            }
            if (now == maxCycles) {
                result.status = RunStatus::kMaxCycles;
                result.cycles = now;
            }
        }
    }

    // -----------------------------------------------------------------
    // Event-driven kernel
    // -----------------------------------------------------------------

    void
    initActiveState()
    {
        // Empty-program cells are born done; cells with ops are not.
        doneCells = static_cast<int>(cells.size() - programCells.size());
        for (CellId c : programCells)
            activeCells.insert(c); // ascending: each insert is at the end
        // Cycle 1 must give the policy a first look at every link a
        // message crosses (eager reservation acts with no requests).
        for (LinkIndex l : routedLinksDesc)
            markRecheck(l);
    }

    void
    removeWaiter(CellId cell)
    {
        LinkIndex l = cellWaitLink[cell];
        if (l == kInvalidLink)
            return;
        auto& w = linkWaiters[l];
        w.erase(std::remove(w.begin(), w.end(), cell), w.end());
        cellWaitLink[cell] = kInvalidLink;
    }

    void
    registerWait(CellId cell, LinkIndex link, Cycle timed)
    {
        if (cellWaitLink[cell] != link) {
            removeWaiter(cell);
            if (link != kInvalidLink) {
                cellWaitLink[cell] = link;
                linkWaiters[link].push_back(cell);
            }
        }
        if (timed >= 0) {
            timedWakes.emplace_back(timed, cell);
            std::push_heap(timedWakes.begin(), timedWakes.end(),
                           std::greater<std::pair<Cycle, CellId>>());
        }
    }

    std::int64_t
    assignmentPhaseEvent(Cycle now)
    {
        tickScratch.assign(pendingLinks.items().begin(),
                           pendingLinks.items().end());
        for (LinkIndex l : recheckList) {
            recheckFlag[l] = 0;
            tickScratch.push_back(l);
        }
        recheckList.clear();
        std::sort(tickScratch.begin(), tickScratch.end());
        tickScratch.erase(
            std::unique(tickScratch.begin(), tickScratch.end()),
            tickScratch.end());
        std::int64_t progress = 0;
        for (LinkIndex l : tickScratch)
            progress += tickLink(links[l], now);
        return progress;
    }

    std::int64_t
    forwardingPhaseEvent(Cycle now)
    {
        // Descending cursor over the hot links, re-sought each step:
        // forwardOneLink both erases drained links and inserts
        // newly-hot downstream links. A new link below the cursor is
        // picked up later this same phase — exactly like the dense
        // kernel's single descending scan, which also still visits
        // links made non-empty mid-scan. Links at or above the cursor
        // were already processed and stay untouched until next cycle.
        std::int64_t progress = 0;
        LinkIndex cursor = fwdLinks.largest();
        while (cursor != kInvalidLink) {
            progress += forwardOneLink(links[cursor], now);
            cursor = fwdLinks.largestBelow(cursor);
        }
        return progress;
    }

    std::int64_t
    cellPhaseEvent(Cycle now)
    {
        while (!timedWakes.empty() && timedWakes.front().first <= now) {
            CellId c = timedWakes.front().second;
            std::pop_heap(timedWakes.begin(), timedWakes.end(),
                          std::greater<std::pair<Cycle, CellId>>());
            timedWakes.pop_back();
            wakeCell(c);
        }
        // Ascending cursor, re-sought by value each step: erasing the
        // current cell or inserting woken cells mid-scan behaves
        // exactly like std::set iteration did (inserts ahead of the
        // cursor are visited this phase, inserts behind it are not).
        std::int64_t progress = 0;
        CellId id = activeCells.firstAtLeast(0);
        while (id != kInvalidCell) {
            CellRuntime& cell = cells[id];
            // Settle the blocked span the dense kernel would have
            // accumulated while this cell slept.
            Cycle span = (now - 1) - cell.lastVisitCycle;
            if (span > 0) {
                result.stats.cellBlockedCycles += span;
                result.stats.perCellBlocked[id] += span;
            }
            cell.lastVisitCycle = now;
            blockLink = kInvalidLink;
            blockTimedWake = -1;
            std::int64_t delta = cellStep(cell, now);
            progress += delta;
            if (cell.done()) {
                ++doneCells;
                removeWaiter(id);
                activeCells.erase(id);
            } else if (delta == 0) {
                ++result.stats.cellBlockedCycles;
                ++result.stats.perCellBlocked[id];
                if (blockLink != kInvalidLink) {
                    registerWait(id, blockLink, blockTimedWake);
                    activeCells.erase(id);
                }
                // else: no known wake condition — stay active (never
                // sleep without one; costs cycles, not answers).
            }
            else {
                removeWaiter(id);
            }
            id = activeCells.firstAtLeast(id + 1);
        }
        return progress;
    }

    bool
    timedEventPendingEvent(Cycle now) const
    {
        for (LinkIndex l : nonEmptyLinks.items()) {
            for (const HwQueue& q : links[l].queues()) {
                if (q.pendingTimedEvent(now))
                    return true;
            }
        }
        return false;
    }

    /**
     * True when cycles after a zero-progress cycle may be skipped
     * wholesale: no cell is runnable, no policy re-tick is queued,
     * and skipping policy ticks cannot desynchronize the random
     * policy's RNG stream (std::shuffle draws nothing for fewer than
     * two pending requests).
     */
    bool
    canFastForward(PolicyKind kind) const
    {
        if (!activeCells.empty() || !recheckList.empty())
            return false;
        if (kind != PolicyKind::kRandom)
            return true;
        for (LinkIndex l : pendingLinks.items()) {
            if (pendingCount[l] >= 2)
                return false;
        }
        return true;
    }

    /** Earliest future cycle any queue front or cell wake matures. */
    Cycle
    nextInterestingCycle(Cycle now) const
    {
        Cycle next = -1;
        if (!timedWakes.empty())
            next = timedWakes.front().first;
        for (LinkIndex l : nonEmptyLinks.items()) {
            for (const HwQueue& q : links[l].queues()) {
                if (q.empty() || !q.pendingTimedEvent(now))
                    continue;
                Cycle ready = std::max(q.frontReadyCycle(), now + 1);
                if (next < 0 || ready < next)
                    next = ready;
            }
        }
        return next < 0 ? now + 1 : std::max(next, now + 1);
    }

    void
    runEventDriven(PolicyKind kind)
    {
        for (Cycle now = 1; now <= maxCycles; ++now) {
            std::int64_t progress = 0;
            progress += assignmentPhaseEvent(now);
            progress += forwardingPhaseEvent(now);
            progress += cellPhaseEvent(now);

            if (doneCells == static_cast<int>(cells.size())) {
                result.status = RunStatus::kCompleted;
                result.cycles = now;
                break;
            }
            if (progress == 0 && !timedEventPendingEvent(now)) {
                result.status = RunStatus::kDeadlocked;
                result.cycles = now;
                result.deadlock = snapshot(now);
                break;
            }
            if (now == maxCycles) {
                result.status = RunStatus::kMaxCycles;
                result.cycles = now;
                break;
            }
            if (progress == 0 && canFastForward(kind)) {
                // Bulk-advance: everything is waiting on queue
                // timing; jump straight to the first cycle where a
                // front word matures. The skipped cycles are provably
                // inert, and the lazy queue/cell accounting charges
                // their spans exactly as the dense kernel would.
                Cycle next = nextInterestingCycle(now);
                if (next > now + 1)
                    now = std::min(next, maxCycles) - 1;
            }
        }
        // Charge sleeping cells the blocked cycles the dense kernel
        // would have accumulated through the final cycle.
        if (result.status != RunStatus::kCompleted) {
            for (CellRuntime& cell : cells) {
                if (cell.done())
                    continue;
                Cycle span = result.cycles - cell.lastVisitCycle;
                if (span > 0) {
                    result.stats.cellBlockedCycles += span;
                    result.stats.perCellBlocked[cell.cellId()] += span;
                }
            }
        }
    }

    // -----------------------------------------------------------------

    RunResult
    run(const RunRequest& request)
    {
        ++runs;
        if (!validation.empty()) {
            RunResult bad;
            bad.status = RunStatus::kConfigError;
            bad.error = firstError;
            return bad;
        }

        doAudit = collects(request.collect, Collect::kAudit);
        runLabels = &resolveLabels(request, runNeedsLabels(request));
        policy = &getPolicy(request.policy, *runLabels, request.seed);
        observer = request.observer;
        maxCycles = request.maxCycles;
        collectEvents = collects(request.collect, Collect::kEvents);
        needEvents = collectEvents || doAudit;
        collectReleases = collects(request.collect, Collect::kReleases);
        collectTiming = collects(request.collect, Collect::kMsgTiming);
        collectReceived = collects(request.collect, Collect::kReceived);

        resetRun();

        if (eventMode)
            initActiveState();

        // Cycle 0: policy setup (static assignment happens here).
        // Unrouted links have no crossings, so initLink is a no-op on
        // them for every policy; only routed links get the call — in
        // ascending link order, matching the original all-links scan,
        // so cycle-0 assignment events keep their historical order.
        for (auto it = routedLinksDesc.rbegin();
             it != routedLinksDesc.rend(); ++it) {
            LinkState& link = links[*it];
            decisionScratch.clear();
            if (!policy->initLink(link, decisionScratch)) {
                result.status = RunStatus::kConfigError;
                result.error = "policy '" + policy->name() +
                               "' cannot set up link " +
                               std::to_string(link.index()) +
                               " (not enough queues?)";
                // Earlier links may have logged cycle-0 assignment
                // events for the audit; honor the opt-in contract on
                // this exit too.
                if (!collectEvents)
                    result.events.clear();
                return std::move(result);
            }
            applyDecisions(link, decisionScratch, 0);
        }

        if (eventMode)
            runEventDriven(request.policy);
        else
            runReference();

        result.stats.cycles = result.cycles;
        collectQueueStats();
        if (doAudit && !runLabels->empty()) {
            result.audit = auditAssignments(program, competing, *runLabels,
                                            result.events);
        }
        if (!collectEvents)
            result.events.clear();
        return std::move(result);
    }
};

SimSession::SimSession(const Program& program, const MachineSpec& spec,
                       SessionOptions options)
    : impl_(std::make_unique<Impl>(program, spec, std::move(options)))
{}

SimSession::~SimSession() = default;
SimSession::SimSession(SimSession&&) noexcept = default;
SimSession& SimSession::operator=(SimSession&&) noexcept = default;

RunResult
SimSession::run(const RunRequest& request)
{
    return impl_->run(request);
}

bool
SimSession::valid() const
{
    return impl_->validation.empty();
}

const std::string&
SimSession::error() const
{
    return impl_->firstError;
}

const std::vector<std::int64_t>&
SimSession::labels()
{
    if (!impl_->validation.empty())
        return kNoLabels;
    return impl_->defaultLabels();
}

int
SimSession::runCount() const
{
    return impl_->runs;
}

} // namespace syscomm::sim
